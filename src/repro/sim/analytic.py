"""Closed-form performance models, for sanity-checking the simulators.

Every number the simulation stack produces has a back-of-envelope
counterpart; this module collects them so tests (and users) can verify
that the machinery agrees with the math:

* tag goodput per excitation packet (airtime accounting);
* framed-slotted-Aloha slot statistics and the 1/e efficiency point;
* the TDM bound under per-slot grant overhead;
* backscatter range from the two-hop budget (log-distance inversion).
"""

from __future__ import annotations

from math import exp, log
from typing import Tuple

import numpy as np

from repro.mac.aloha import AlohaConfig
from repro.sim.config import RadioConfig

__all__ = [
    "wifi_tag_bits_per_packet",
    "tag_goodput_kbps",
    "aloha_success_probability",
    "aloha_throughput_kbps",
    "tdm_throughput_kbps",
    "backscatter_range_m",
]


def wifi_tag_bits_per_packet(payload_bytes: int, n_dbps: int = 24,
                             repetition: int = 4,
                             skipped_symbols: int = 1) -> int:
    """Tag bits riding one 802.11g packet (binary scheme).

    Mirrors the session arithmetic: data symbols = ceil((16 + 8L + 6)
    / N_DBPS); the SERVICE symbol is skipped and the envelope latency
    trims one more partial unit.
    """
    n_sym = -(-(16 + 8 * payload_bytes + 6) // n_dbps)
    usable = n_sym - skipped_symbols - 1  # latency trims a partial unit
    return max(0, usable // repetition)


def tag_goodput_kbps(bits_per_packet: int, packet_airtime_us: float,
                     gap_us: float, delivery_ratio: float = 1.0) -> float:
    """Average tag rate under saturating excitation traffic."""
    if packet_airtime_us <= 0:
        raise ValueError("airtime must be positive")
    cycle = packet_airtime_us + gap_us
    return bits_per_packet * delivery_ratio / cycle * 1e3


def aloha_success_probability(n_tags: int, n_slots: int) -> float:
    """P(a given slot holds exactly one tag) under uniform choice."""
    if n_tags < 0 or n_slots < 1:
        raise ValueError("need n_tags >= 0 and n_slots >= 1")
    if n_tags == 0:
        return 0.0
    p = 1.0 / n_slots
    return n_tags * p * (1 - p) ** (n_tags - 1)


def aloha_throughput_kbps(n_tags: int, config: AlohaConfig = None,
                          n_slots: int = None) -> float:
    """Expected FSA throughput at a given (or matched) frame size.

    With ``n_slots = n_tags`` (the controller's target) the per-slot
    success probability approaches 1/e for large populations.
    """
    cfg = config or AlohaConfig()
    slots = n_slots if n_slots is not None else max(cfg.min_slots, n_tags)
    p_single = aloha_success_probability(n_tags, slots)
    bits = slots * p_single * cfg.slot_bits
    duration = (cfg.control_airtime_us() + slots * cfg.slot_airtime_us
                + cfg.inter_round_gap_us)
    return bits / duration * 1e3


def tdm_throughput_kbps(n_tags: int, config: AlohaConfig = None) -> float:
    """Collision-free bound with per-slot grant overhead."""
    cfg = config or AlohaConfig()
    bits = n_tags * cfg.slot_bits
    duration = (cfg.control_airtime_us()
                + n_tags * (cfg.slot_airtime_us + cfg.tdm_per_slot_overhead_us)
                + cfg.inter_round_gap_us)
    return bits / duration * 1e3


def backscatter_range_m(config: RadioConfig, tx_to_tag_m: float = 1.0,
                        pl0_db: float = 30.0,
                        exponent: float = 2.6) -> float:
    """Closed-form inversion of the two-hop budget for the LOS model:

        RSSI(d) = Ptx - PL(d_tx) - L_tag - PL0 - 10 n log10(d)

    solved for RSSI = sensitivity.  Matches
    ``BackscatterLinkBudget.max_range_m`` (which bisects the same law).
    """
    budget = config.budget()
    incident = (config.tx_power_dbm - pl0_db
                - 10 * exponent * np.log10(max(tx_to_tag_m, 0.1)))
    headroom = (incident - budget.tag_loss_db - pl0_db
                - config.sensitivity_dbm())
    if headroom <= 0:
        return 0.0
    return float(10 ** (headroom / (10 * exponent)))

"""Report emitters: text, JSON, SARIF 2.1.0.

SARIF output targets the subset of the 2.1.0 spec that code-scanning
UIs consume: ``tool.driver.rules`` carries the full rule catalogue
(id, name, short/full description, help text), each result references
its rule by id + index and anchors one physical location.  Suppressed
and baselined findings are emitted with a ``suppressions`` entry so
they render greyed-out instead of vanishing.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, TextIO

from repro.tools.lint.model import LINT_VERSION, Finding, LintReport
from repro.tools.lint.rules import RULES

__all__ = ["emit_text", "to_json", "to_sarif", "write_json"]

SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json")


def emit_text(report: LintReport, stream: TextIO,
              show_suppressed: bool = False,
              show_stats: bool = False) -> None:
    rows: List[Finding] = list(report.findings)
    if show_suppressed:
        rows += report.suppressed + report.baselined
    for finding in sorted(rows, key=lambda f: (f.path, f.line, f.col,
                                               f.rule_id)):
        tag = ""
        if finding.suppressed:
            tag = "  (suppressed)"
        elif finding.baselined:
            tag = "  (baselined)"
        stream.write(finding.format() + tag + "\n")
    stream.write(
        f"reprolint: {len(report.findings)} finding(s) "
        f"({len(report.suppressed)} suppressed) in "
        f"{report.n_files} file(s)\n")
    if show_stats:
        total = report.cache_hits + report.cache_misses
        pct = (100.0 * report.cache_hits / total) if total else 0.0
        stream.write(
            f"reprolint: cache {report.cache_hits}/{total} hit(s) "
            f"({pct:.0f}%), {len(report.baselined)} baselined\n")


def to_json(report: LintReport) -> Dict[str, Any]:
    payload = report.to_dict()
    payload["version"] = LINT_VERSION
    payload["rules"] = sorted(RULES)
    return payload


def _sarif_result(finding: Finding,
                  rule_index: Dict[str, int]) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.rule_id,
        "ruleIndex": rule_index[finding.rule_id],
        "level": "error",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path.replace("\\", "/"),
                },
                "region": {
                    "startLine": finding.line,
                    "startColumn": finding.col + 1,
                },
            },
        }],
    }
    if finding.suppressed:
        result["level"] = "note"
        result["suppressions"] = [{
            "kind": "inSource",
            "justification": "reprolint: disable comment",
        }]
    elif finding.baselined:
        result["level"] = "note"
        result["suppressions"] = [{
            "kind": "external",
            "justification": "reprolint-baseline.json",
        }]
    return result


def to_sarif(report: LintReport) -> Dict[str, Any]:
    rule_ids = sorted(RULES)
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    sarif_rules: List[Dict[str, Any]] = []
    for rule_id in rule_ids:
        rule = RULES[rule_id]
        sarif_rules.append({
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": rule.rationale},
            "help": {"text": rule.rationale},
            "defaultConfiguration": {"level": "error"},
        })
    results = [
        _sarif_result(f, rule_index)
        for f in sorted(report.findings + report.suppressed
                        + report.baselined,
                        key=lambda f: (f.path, f.line, f.col, f.rule_id))
    ]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "reprolint",
                    "version": LINT_VERSION,
                    "rules": sarif_rules,
                },
            },
            "columnKind": "utf16CodeUnits",
            "results": results,
            "invocations": [{
                "executionSuccessful": report.exit_code() != 2,
                "toolExecutionNotifications": [
                    {"level": "error", "message": {"text": err}}
                    for err in report.errors
                ],
            }],
        }],
    }


def write_json(payload: Dict[str, Any], stream: TextIO) -> None:
    json.dump(payload, stream, indent=2, sort_keys=False)
    stream.write("\n")

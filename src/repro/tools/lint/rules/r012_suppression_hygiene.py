"""R012 — suppressions must suppress something and say why.

A ``# reprolint: disable=`` that matches no finding on its line is
dead weight that will hide a future regression; one without a
justification is unreviewable.  Both are findings — and R012 findings
themselves cannot be suppressed (a suppression cannot vouch for
itself; see ``mark_suppressed``).
"""

from __future__ import annotations

from typing import List

from repro.tools.lint.model import Finding, Rule
from repro.tools.lint.rules.base import FileContext, LintRule


class SuppressionHygieneRule(LintRule):
    rule = Rule(
        "R012", "suppression-hygiene",
        "suppressions must suppress something and say why",
        "Stale disables hide future regressions; unjustified ones are "
        "unreviewable.  Delete the comment, or add the why (same line "
        "after the ids, or the comment line directly above).")
    wants_prior_findings = True

    def check(self, ctx: FileContext) -> List[Finding]:
        if not self.applies_to(ctx.path):
            return []
        # Import here: the registry package imports this module.
        from repro.tools.lint.rules import RULES
        findings: List[Finding] = []
        known = set(RULES)
        for line in sorted(ctx.suppressions):
            supp = ctx.suppressions[line]
            fired = {f.rule_id for f in ctx.prior_findings
                     if f.line == line}
            if not supp.has_why:
                findings.append(self._finding(
                    ctx, line,
                    "suppression without a justification; say why on "
                    "the same line (after the ids) or the line above"))
            if "ALL" in supp.rule_ids:
                if not fired:
                    findings.append(self._finding(
                        ctx, line,
                        "disable=all suppresses nothing on this line; "
                        "delete the stale suppression"))
                continue
            for rule_id in sorted(supp.rule_ids):
                if rule_id not in known:
                    findings.append(self._finding(
                        ctx, line,
                        f"disable={rule_id} names an unknown rule"))
                elif rule_id not in fired:
                    findings.append(self._finding(
                        ctx, line,
                        f"disable={rule_id} suppresses nothing (no "
                        f"{rule_id} finding on this line); delete the "
                        f"stale id"))
        return findings

    def _finding(self, ctx: FileContext, line: int,
                 message: str) -> Finding:
        return Finding(path=ctx.path, line=line,
                       col=ctx.suppressions[line].col,
                       rule_id=self.rule.id, message=message)

"""Jain's fairness index [Jain, Durresi, Babic 1999] — Figure 17(b)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["jain_index"]


def jain_index(allocations: Sequence[float]) -> float:
    """Jain's index: (sum x)^2 / (n * sum x^2), in (0, 1].

    1.0 means perfectly equal allocations; 1/n means one user holds
    everything.  All-zero allocations are defined here as perfectly
    fair (everyone got the same nothing).
    """
    x = np.asarray(allocations, dtype=float)
    if x.size == 0:
        raise ValueError("need at least one allocation")
    if np.any(x < 0):
        raise ValueError("allocations must be non-negative")
    total_sq = float(x.sum()) ** 2
    denom = x.size * float((x ** 2).sum())
    if denom == 0:
        return 1.0
    return total_sq / denom

"""Project-wide symbol / call-graph index for cross-module rules.

One parse pass over the whole checked tree produces, per module:
classes (with bases, methods, and ``self.<attr> = ClassName(...)``
attribute types), top-level functions, and the file's import map.  Per
function it records every *call site* in a resolvable shape and every
*RNG draw site* (Generator draw methods plus the project's drawing
helpers).  Rules like R009 (phase purity) then walk the call graph —
``self.`` dispatch through base classes *and* subclasses, locally
constructed objects, imported project functions — without ever
re-parsing a file.

Resolution is deliberately best-effort: an attribute call whose
receiver type cannot be inferred is simply not followed.  The graph is
therefore an under-approximation of runtime dispatch, which is the
right polarity for a lint gate (no findings invented from calls that
cannot happen), with one exception: ``self.x()`` also follows subclass
overrides, because the batch mixin's template methods dispatch into
the per-radio sessions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.tools.lint.resolve import ImportMap, dotted_name

__all__ = ["CallRef", "DrawSite", "FuncInfo", "ClassInfo", "ModuleInfo",
           "ProjectIndex", "module_name_for_path",
           "RNG_DRAW_METHODS", "RNG_DRAW_FUNCS"]

#: numpy ``Generator`` methods that consume random state.  Seed/spawn
#: plumbing (``spawn``, ``bit_generator``) is deliberately absent.
RNG_DRAW_METHODS = frozenset({
    "standard_normal", "normal", "random", "integers", "uniform",
    "choice", "shuffle", "permutation", "permuted", "exponential",
    "poisson", "binomial", "rayleigh", "standard_exponential",
    "standard_gamma", "multivariate_normal",
})

#: Project helpers that draw from a generator (or an internal stream).
RNG_DRAW_FUNCS = frozenset({
    "random_bits", "random_psdu", "random_payload",
})


@dataclass
class CallRef:
    """One call site, in a shape the resolver understands.

    ``kind`` is one of:

    * ``"bare"`` — ``foo(...)``; resolved through the module's own
      defs, then its imports.
    * ``"self"`` — ``self.foo(...)``; resolved through the owning
      class, its bases, and its subclasses.
    * ``"selfattr"`` — ``self.obj.foo(...)``; resolved through the
      inferred type of ``self.obj`` (assigned ``ClassName(...)`` in
      ``__init__``), checked on the class and its subclasses.
    * ``"var"`` — ``x.foo(...)``; resolved through ``x = ClassName(...)``
      in the same function.
    """

    kind: str
    base: str
    name: str
    line: int
    col: int


@dataclass
class DrawSite:
    """One RNG-consuming call."""

    desc: str
    line: int
    col: int


@dataclass
class FuncInfo:
    """One function or method definition."""

    name: str
    qualname: str
    path: str
    line: int
    class_name: Optional[str] = None
    calls: List[CallRef] = field(default_factory=list)
    draws: List[DrawSite] = field(default_factory=list)
    local_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ClassInfo:
    """One class definition: bases, methods, inferred attribute types."""

    name: str
    module: str
    path: str
    line: int
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FuncInfo] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed file's contribution to the index."""

    name: str
    path: str
    functions: Dict[str, FuncInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    imports: ImportMap = field(default_factory=ImportMap)


def module_name_for_path(path: str) -> str:
    """Dotted module name for a checked file, best-effort.

    ``src/repro/sim/engine.py`` -> ``repro.sim.engine``; trees without
    a recognisable package root fall back to the stem.
    """
    parts = list(path.replace("\\", "/").split("/"))
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for root in ("repro", "tests", "benchmarks"):
        if root in parts:
            return ".".join(parts[parts.index(root):])
    return parts[-1] if parts else path


class _FunctionScanner(ast.NodeVisitor):
    """Collects call sites, draw sites, and local constructor types
    inside one function body (nested defs included, nested classes
    excluded)."""

    def __init__(self, info: FuncInfo, imports: ImportMap) -> None:
        self.info = info
        self.imports = imports

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return None  # nested classes are indexed separately

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_ctor_type(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_ctor_type([node.target], node.value)
        self.generic_visit(node)

    def _record_ctor_type(self, targets: Sequence[ast.expr],
                          value: ast.expr) -> None:
        if not (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)):
            return
        cls = value.func.id
        if not cls or not cls[0].isupper():
            return  # heuristics: constructors are CapWords
        for target in targets:
            if isinstance(target, ast.Name):
                self.info.local_types[target.id] = cls

    def visit_Call(self, node: ast.Call) -> None:
        self._record_call(node)
        self.generic_visit(node)

    def _record_call(self, node: ast.Call) -> None:
        func = node.func
        line, col = node.lineno, node.col_offset
        if isinstance(func, ast.Name):
            self.info.calls.append(
                CallRef("bare", "", func.id, line, col))
            if func.id in RNG_DRAW_FUNCS:
                self.info.draws.append(
                    DrawSite(f"{func.id}()", line, col))
            return
        if not isinstance(func, ast.Attribute):
            return
        attr = func.attr
        recv = func.value
        if attr in RNG_DRAW_METHODS or attr in RNG_DRAW_FUNCS:
            recv_name = dotted_name(recv) or "<expr>"
            self.info.draws.append(
                DrawSite(f"{recv_name}.{attr}()", line, col))
        if isinstance(recv, ast.Name):
            if recv.id == "self":
                self.info.calls.append(
                    CallRef("self", "", attr, line, col))
            else:
                self.info.calls.append(
                    CallRef("var", recv.id, attr, line, col))
        elif (isinstance(recv, ast.Attribute)
              and isinstance(recv.value, ast.Name)
              and recv.value.id == "self"):
            self.info.calls.append(
                CallRef("selfattr", recv.attr, attr, line, col))


def _scan_function(node: ast.AST, info: FuncInfo,
                   imports: ImportMap) -> None:
    scanner = _FunctionScanner(info, imports)
    for stmt in getattr(node, "body", []):
        scanner.visit(stmt)


class ProjectIndex:
    """Symbol and call-graph index over every parsed file."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_path: Dict[str, ModuleInfo] = {}
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        self.functions_by_name: Dict[str, List[FuncInfo]] = {}
        self._subclasses: Dict[str, List[ClassInfo]] = {}

    # -- construction -----------------------------------------------------

    @classmethod
    def build(cls, files: Iterable[Tuple[str, ast.AST]]) -> "ProjectIndex":
        index = cls()
        for path, tree in files:
            index.add_file(path, tree)
        index.finalise()
        return index

    def add_file(self, path: str, tree: ast.AST) -> None:
        mod = ModuleInfo(name=module_name_for_path(path), path=path,
                         imports=ImportMap(tree))
        for node in getattr(tree, "body", []):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FuncInfo(name=node.name,
                                qualname=f"{mod.name}.{node.name}",
                                path=path, line=node.lineno)
                _scan_function(node, info, mod.imports)
                mod.functions[node.name] = info
            elif isinstance(node, ast.ClassDef):
                self._index_class(mod, node)
        self.modules[mod.name] = mod
        self.by_path[path] = mod

    def _index_class(self, mod: ModuleInfo, node: ast.ClassDef) -> None:
        cinfo = ClassInfo(name=node.name, module=mod.name, path=mod.path,
                          line=node.lineno)
        for base in node.bases:
            base_name = dotted_name(base)
            if base_name:
                cinfo.bases.append(base_name.rpartition(".")[2])
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                finfo = FuncInfo(
                    name=stmt.name,
                    qualname=f"{mod.name}.{node.name}.{stmt.name}",
                    path=mod.path, line=stmt.lineno,
                    class_name=node.name)
                _scan_function(stmt, finfo, mod.imports)
                cinfo.methods[stmt.name] = finfo
                if stmt.name == "__init__":
                    self._collect_attr_types(cinfo, stmt)
        mod.classes[node.name] = cinfo

    @staticmethod
    def _collect_attr_types(cinfo: ClassInfo,
                            init: ast.AST) -> None:
        for sub in ast.walk(init):
            if not isinstance(sub, ast.Assign):
                continue
            value = sub.value
            if not (isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id[:1].isupper()):
                continue
            for target in sub.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    cinfo.attr_types[target.attr] = value.func.id

    def finalise(self) -> None:
        """Build the cross-module lookup tables; call after add_file."""
        self.classes_by_name.clear()
        self.functions_by_name.clear()
        self._subclasses.clear()
        for mod in self.modules.values():
            for cinfo in mod.classes.values():
                self.classes_by_name.setdefault(cinfo.name, []).append(cinfo)
            for finfo in mod.functions.values():
                self.functions_by_name.setdefault(finfo.name,
                                                  []).append(finfo)
        for mod in self.modules.values():
            for cinfo in mod.classes.values():
                for base in self._transitive_bases(cinfo):
                    self._subclasses.setdefault(base, []).append(cinfo)

    def _transitive_bases(self, cinfo: ClassInfo,
                          seen: Optional[Set[str]] = None) -> Set[str]:
        if seen is None:
            seen = set()
        out: Set[str] = set()
        for base in cinfo.bases:
            if base in seen:
                continue
            seen.add(base)
            out.add(base)
            for parent in self.classes_by_name.get(base, []):
                out |= self._transitive_bases(parent, seen)
        return out

    # -- resolution -------------------------------------------------------

    def subclasses_of(self, class_name: str) -> List[ClassInfo]:
        return self._subclasses.get(class_name, [])

    def _method_in_hierarchy(self, cinfo: ClassInfo, name: str,
                             seen: Optional[Set[str]] = None
                             ) -> List[FuncInfo]:
        """The method on *cinfo* or the nearest base defining it."""
        if seen is None:
            seen = set()
        if cinfo.name in seen:
            return []
        seen.add(cinfo.name)
        if name in cinfo.methods:
            return [cinfo.methods[name]]
        out: List[FuncInfo] = []
        for base in cinfo.bases:
            for parent in self.classes_by_name.get(base, []):
                out += self._method_in_hierarchy(parent, name, seen)
        return out

    def resolve_self_call(self, cinfo: ClassInfo,
                          name: str) -> List[FuncInfo]:
        """``self.name(...)`` inside *cinfo*: the class and its bases,
        plus every in-project subclass override (template-method
        dispatch)."""
        out = self._method_in_hierarchy(cinfo, name)
        for sub in self.subclasses_of(cinfo.name):
            if name in sub.methods:
                out.append(sub.methods[name])
        return out

    def resolve_class(self, mod: ModuleInfo,
                      name: str) -> List[ClassInfo]:
        """A class referenced by bare name in *mod*: local def, import
        target, then (unique) global bare-name match."""
        if name in mod.classes:
            return [mod.classes[name]]
        canon = mod.imports.canonical(name)
        if canon and "." in canon:
            target_mod, _, symbol = canon.rpartition(".")
            owner = self.modules.get(target_mod)
            if owner and symbol in owner.classes:
                return [owner.classes[symbol]]
        candidates = self.classes_by_name.get(name, [])
        return candidates if len(candidates) == 1 else []

    def resolve_call(self, site: CallRef, owner: FuncInfo,
                     mod: ModuleInfo) -> List[FuncInfo]:
        """Callee candidates for one call site, best-effort."""
        cinfo = (mod.classes.get(owner.class_name)
                 if owner.class_name else None)
        if site.kind == "self" and cinfo is not None:
            return self.resolve_self_call(cinfo, site.name)
        if site.kind == "selfattr" and cinfo is not None:
            type_names = []
            if site.base in cinfo.attr_types:
                type_names.append(cinfo.attr_types[site.base])
            else:
                # The mixin pattern: ``self.tag`` is assigned by the
                # concrete subclasses, not by the class that calls it.
                for sub in self.subclasses_of(cinfo.name):
                    if site.base in sub.attr_types:
                        type_names.append(sub.attr_types[site.base])
            out: List[FuncInfo] = []
            for type_name in type_names:
                for target in self.resolve_class(mod, type_name):
                    out += self._method_in_hierarchy(target, site.name)
            return out
        if site.kind == "var":
            type_name = owner.local_types.get(site.base)
            if type_name is None:
                return []
            out = []
            for target in self.resolve_class(mod, type_name):
                out += self._method_in_hierarchy(target, site.name)
            return out
        if site.kind == "bare":
            if site.name in mod.functions:
                return [mod.functions[site.name]]
            # A constructor call: follow into __init__.
            for target in self.resolve_class(mod, site.name):
                out = self._method_in_hierarchy(target, "__init__")
                if out:
                    return out
                return []
            canon = mod.imports.canonical(site.name)
            if canon and "." in canon:
                target_mod, _, symbol = canon.rpartition(".")
                owner_mod = self.modules.get(target_mod)
                if owner_mod and symbol in owner_mod.functions:
                    return [owner_mod.functions[symbol]]
            return []
        return []

"""Parallel, deterministic, fault-tolerant experiment engine.

Every evaluation figure re-runs the signal-level PHY chain hundreds of
times; serially that is the dominant wall-clock cost of the repo.  The
engine fans the independent units of work — distance points for link
sweeps (Figures 10-13), tag counts for the MAC experiment (Figure 17) —
out over a ``ProcessPoolExecutor`` while keeping results bit-identical
for any worker count.

Determinism contract
--------------------
The master seed is expanded with ``numpy.random.SeedSequence.spawn``
into one child per task *in task order*, and each task derives every
random draw (fading, payload, scrambler seed, tag bits, noise) from its
own child generator.  Results therefore depend only on
``(spec, task index)`` — never on which worker ran the task, in what
order, or on which attempt it finally succeeded — so ``n_jobs=1`` and
``n_jobs=8`` agree point-for-point, and a retried task reproduces the
exact point an unfailed run would have produced.

Fault tolerance
---------------
Worker exceptions and overrunning tasks no longer lose the sweep.  A
:class:`FailurePolicy` controls what happens instead:

* ``fail_fast`` (default): the first exhausted task aborts the run with
  :class:`TaskFailure` — the historical behaviour, made explicit.
* ``degrade``: the sweep completes; failed tasks yield a ``None`` point
  and a :class:`TaskRecord` carrying status/error/attempts, so failures
  are flagged rather than silently dropped.

Each task is retried up to ``max_attempts`` times with exponential
backoff (retries wait in a ready queue rather than blocking result
collection), and ``timeout_s`` bounds one attempt's *execution* time:
at most ``n_jobs`` attempts are in flight at once so the deadline never
runs against queue wait, a queued attempt that never started is
requeued instead of timed out, and a genuinely hung worker is abandoned
— its pool is replaced immediately and its process killed at shutdown.
For tests, :class:`FaultInjector` deterministically fails or delays
chosen ``(task, attempt)`` pairs.

Checkpoint / resume
-------------------
``run(spec, checkpoint="sweep.jsonl")`` journals every completed point
to a JSONL file keyed by a spec fingerprint; re-running the same spec
against the same journal recomputes only the missing tasks and returns
points bit-identical to an uninterrupted run (per-task seeding makes
each point independent of which run computed it).

Observability
-------------
Workers time the PHY stages (``phy.<radio>.encode/channel/decode`` via
:mod:`repro.obs`) and the engine folds those snapshots, task
durations, and retry counters into :attr:`RunResult.metrics`.  With
tracing enabled (``trace=TraceConfig(...)`` or ``run(...,
trace_path=...)``) every worker also records hierarchical spans
(``engine.task`` wrapping the PHY work) and sampled per-packet
forensic events; the engine re-roots each worker's span tree under its
own ``engine.run`` span, so the aggregated tree is identical for any
worker count, and streams every event — including its own
``engine.retry`` / ``engine.requeue`` records — to a JSONL
:class:`~repro.obs.trace.TraceSink` keyed by the spec fingerprint.

Typical use::

    spec = ExperimentSpec(config=WIFI_CONFIG, deployment=Deployment.los(1.0),
                          distances_m=(1, 5, 10, 20), packets_per_point=10,
                          seed=100)
    engine = ExperimentEngine(n_jobs=4,
                              failure_policy=FailurePolicy.degrade_policy())
    result = engine.run(spec, checkpoint="sweep.jsonl")
    result.points          # List[LinkPoint], same for any n_jobs
    result.tasks           # List[TaskRecord]: status/attempts/duration
    result.metrics         # merged counters + stage timers
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Any, Callable, Dict, List, Mapping, Optional, Tuple,
                    Union)

import numpy as np

from repro.channel.geometry import Deployment
from repro.channel.pathloss import PathLossModel
from repro.mac.aloha import AlohaConfig
from repro.obs import MetricsRegistry, TraceConfig
from repro.obs.trace import TraceSink
from repro.sim.config import RadioConfig

__all__ = ["ExperimentSpec", "MacExperimentSpec", "RunResult", "TaskRecord",
           "FailurePolicy", "FaultInjector", "InjectedFault", "TaskFailure",
           "FingerprintMismatch", "CheckpointJournal", "spec_fingerprint",
           "RunOptions", "execute_run",
           "ExperimentEngine", "run_experiment", "default_n_jobs"]


# -- deployment (de)serialization ----------------------------------------
# Specs cross process boundaries (pickle) and land in JSON result files
# (to_dict), so the geometry needs a plain-dict form too.

def _pathloss_to_dict(model: PathLossModel) -> Dict[str, Any]:
    return {
        "exponent": model.exponent,
        "pl_d0_db": model.pl_d0_db,
        "walls": [list(w) for w in model.walls],
        "shadowing_sigma_db": model.shadowing_sigma_db,
        "name": model.name,
    }


def _pathloss_from_dict(data: Dict[str, Any]) -> PathLossModel:
    return PathLossModel(
        exponent=data["exponent"],
        pl_d0_db=data["pl_d0_db"],
        walls=tuple(tuple(w) for w in data.get("walls", ())),
        shadowing_sigma_db=data.get("shadowing_sigma_db", 0.0),
        name=data.get("name", "log-distance"),
    )


def _deployment_to_dict(dep: Deployment) -> Dict[str, Any]:
    return {
        "tx_to_tag_m": dep.tx_to_tag_m,
        "tag_to_rx_m": dep.tag_to_rx_m,
        "forward_path": _pathloss_to_dict(dep.forward_path),
        "backscatter_path": _pathloss_to_dict(dep.backscatter_path),
        "name": dep.name,
    }


def _deployment_from_dict(data: Dict[str, Any]) -> Deployment:
    return Deployment(
        tx_to_tag_m=data["tx_to_tag_m"],
        tag_to_rx_m=data["tag_to_rx_m"],
        forward_path=_pathloss_from_dict(data["forward_path"]),
        backscatter_path=_pathloss_from_dict(data["backscatter_path"]),
        name=data.get("name", "deployment"),
    )


# -- specs ----------------------------------------------------------------

@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one link-level distance sweep."""

    config: RadioConfig
    deployment: Deployment
    distances_m: Tuple[float, ...]
    packets_per_point: int = 20
    seed: int = 0
    label: str = ""

    def __post_init__(self):
        object.__setattr__(self, "distances_m",
                           tuple(float(d) for d in self.distances_m))
        if not self.distances_m:
            raise ValueError("spec needs at least one distance")
        if self.packets_per_point < 1:
            raise ValueError("packets_per_point must be >= 1")

    @property
    def n_tasks(self) -> int:
        return len(self.distances_m)

    @property
    def n_packets(self) -> int:
        return self.n_tasks * self.packets_per_point

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "link_sweep",
            "config": self.config.to_dict(),
            "deployment": _deployment_to_dict(self.deployment),
            "distances_m": list(self.distances_m),
            "packets_per_point": self.packets_per_point,
            "seed": self.seed,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentSpec":
        return cls(
            config=RadioConfig.from_dict(data["config"]),
            deployment=_deployment_from_dict(data["deployment"]),
            distances_m=tuple(data["distances_m"]),
            packets_per_point=data["packets_per_point"],
            seed=data["seed"],
            label=data.get("label", ""),
        )

    def session_key(self) -> str:
        """Cache key for worker-side simulator reuse: everything that
        shapes the session/budget, excluding distances and seed."""
        payload = {"config": self.config.to_dict(),
                   "deployment": _deployment_to_dict(self.deployment),
                   "packets_per_point": self.packets_per_point}
        return json.dumps(payload, sort_keys=True)


@dataclass(frozen=True)
class MacExperimentSpec:
    """Declarative description of one MAC tag-count sweep."""

    tag_counts: Tuple[int, ...]
    measured_rounds: int = 12
    simulated_rounds: int = 400
    seed: int = 0
    config: Optional[AlohaConfig] = None
    label: str = ""

    def __post_init__(self):
        object.__setattr__(self, "tag_counts",
                           tuple(int(n) for n in self.tag_counts))
        if not self.tag_counts:
            raise ValueError("spec needs at least one tag count")

    @property
    def n_tasks(self) -> int:
        return len(self.tag_counts)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "mac_sweep",
            "tag_counts": list(self.tag_counts),
            "measured_rounds": self.measured_rounds,
            "simulated_rounds": self.simulated_rounds,
            "seed": self.seed,
            "config": (dataclasses.asdict(self.config)
                       if self.config is not None else None),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MacExperimentSpec":
        cfg = data.get("config")
        return cls(
            tag_counts=tuple(data["tag_counts"]),
            measured_rounds=data["measured_rounds"],
            simulated_rounds=data["simulated_rounds"],
            seed=data["seed"],
            config=AlohaConfig(**cfg) if cfg is not None else None,
            label=data.get("label", ""),
        )


Spec = Union[ExperimentSpec, MacExperimentSpec]


def spec_fingerprint(spec: Spec) -> str:
    """Stable short hash of a spec; keys checkpoints and result caches.

    Stability contract
    ------------------
    The fingerprint is the first 16 hex digits of the SHA-256 of the
    spec's ``to_dict()`` payload serialized as sort-keyed, compact-free
    ``json.dumps`` (default separators).  It is a *persistent* key: the
    checkpoint journal, the trace sink, and the sweep service's
    content-addressed result store all file data under it, so the
    mapping from spec values to fingerprint must never change across
    refactors.  ``tests/sim/test_fingerprint_golden.py`` freezes both
    the serialized JSON and the resulting hash; any change that breaks
    it silently orphans every stored checkpoint and cached result, and
    needs an explicit migration, not a quiet edit.  Adding a *new* spec
    field is only safe if its default round-trips to the same payload
    (i.e. ``to_dict`` omits it or emits the historical value).
    """
    payload = json.dumps(spec.to_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


# -- failure handling ------------------------------------------------------

class EngineError(RuntimeError):
    """Base class for engine-level failures."""


class TaskFailure(EngineError):
    """A task exhausted its attempts under the ``fail_fast`` policy."""


class FingerprintMismatch(EngineError, ValueError):
    """A persisted artifact belongs to a different spec than expected.

    Raised when a checkpoint journal or stored result is opened with an
    explicit ``expect_fingerprint`` that does not match the spec it is
    being used with — resuming one spec's sweep from another spec's
    journal would silently mix incompatible points.  Subclasses
    ``ValueError`` so pre-typed callers that caught the bare error keep
    working.
    """

    def __init__(self, expected: str, actual: str,
                 context: str = "checkpoint") -> None:
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"{context} fingerprint mismatch: expected {expected}, "
            f"got {actual} (the artifact belongs to a different spec)")


class InjectedFault(RuntimeError):
    """Deterministic test fault raised by :class:`FaultInjector`."""


@dataclass(frozen=True)
class FailurePolicy:
    """What the engine does when a task raises or overruns.

    Parameters
    ----------
    mode:
        ``"fail_fast"`` aborts the run on the first exhausted task
        (raising :class:`TaskFailure`); ``"degrade"`` records the
        failure in the task's :class:`TaskRecord`, leaves a ``None``
        point in its slot, and finishes the sweep.
    max_attempts:
        Total tries per task (1 = no retry).  Retries re-use the task's
        seed, so a retry-then-success is bit-identical to a clean run.
    backoff_base_s / backoff_factor / backoff_max_s:
        Sleep ``min(base * factor**(attempt-1), max)`` seconds before
        attempt ``attempt+1``.  ``base=0`` (default) disables sleeping,
        which keeps tests fast and deterministic.
    timeout_s:
        Upper bound on one attempt's *execution* time — queue wait never
        counts, because the engine keeps at most ``n_jobs`` attempts on
        the active pool and requeues (rather than times out) anything
        that never started.  In-process (``n_jobs=1``) execution cannot
        be interrupted, so the bound is checked after the attempt
        finishes ("soft") and is not retried (an identical deterministic
        rerun cannot get faster) unless a fault injector is present.
        Pool workers are abandoned at the deadline (attempt classified
        ``timeout``, retried normally): the engine replaces the worker
        pool so the hung process cannot occupy a slot, and kills it at
        pool shutdown.
    """

    mode: str = "fail_fast"
    max_attempts: int = 1
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0
    timeout_s: Optional[float] = None

    def __post_init__(self):
        if self.mode not in ("fail_fast", "degrade"):
            raise ValueError("mode must be 'fail_fast' or 'degrade'")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")

    @property
    def fail_fast(self) -> bool:
        return self.mode == "fail_fast"

    def backoff_s(self, attempt: int) -> float:
        """Sleep before the attempt after *attempt* (1-based)."""
        if self.backoff_base_s <= 0:
            return 0.0
        return min(self.backoff_base_s * self.backoff_factor ** (attempt - 1),
                   self.backoff_max_s)

    @classmethod
    def degrade_policy(cls, max_attempts: int = 3,
                       timeout_s: Optional[float] = None,
                       backoff_base_s: float = 0.0) -> "FailurePolicy":
        """A resilient default: retry, then flag-and-continue."""
        return cls(mode="degrade", max_attempts=max_attempts,
                   timeout_s=timeout_s, backoff_base_s=backoff_base_s)


@dataclass(frozen=True)
class FaultInjector:
    """Deterministic fault injection for engine tests.

    ``fail[i] = n`` makes the first *n* attempts of task *i* raise
    :class:`InjectedFault`; ``hang_s[i] = t`` makes attempts of task *i*
    sleep *t* seconds first (the first ``hang_attempts.get(i, 1)``
    attempts).  Keyed by ``(task index, attempt)``, so behaviour is
    identical inline and across worker processes.
    """

    fail: Mapping[int, int] = field(default_factory=dict)
    hang_s: Mapping[int, float] = field(default_factory=dict)
    hang_attempts: Mapping[int, int] = field(default_factory=dict)

    def apply(self, task_index: int, attempt: int) -> None:
        if attempt <= self.fail.get(task_index, 0):
            raise InjectedFault(
                f"injected fault (task {task_index}, attempt {attempt})")
        if task_index in self.hang_s:
            n_hang = self.hang_attempts.get(task_index, 1)
            if attempt <= n_hang:
                time.sleep(self.hang_s[task_index])


# -- results --------------------------------------------------------------

@dataclass
class TaskRecord:
    """Per-task outcome: what ran, how often, how long, and how it ended.

    ``status`` is ``"ok"``, ``"failed"``, or ``"timeout"``; ``resumed``
    marks tasks satisfied from a checkpoint journal (``attempts == 0``).
    """

    index: int
    task: float
    status: str = "ok"
    attempts: int = 1
    duration_s: float = 0.0
    error: Optional[str] = None
    resumed: bool = False
    spawn_key: Tuple[int, ...] = ()
    # Decode-forensics breakdown for this task's packets: stage -> count
    # (see repro.obs.forensics).  Empty for MAC sweeps and failed tasks.
    stage_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "task": self.task,
            "status": self.status,
            "attempts": self.attempts,
            "duration_s": self.duration_s,
            "error": self.error,
            "resumed": self.resumed,
            "spawn_key": list(self.spawn_key),
            "stage_counts": dict(self.stage_counts),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TaskRecord":
        return cls(
            index=int(data["index"]),
            task=data["task"],
            status=data.get("status", "ok"),
            attempts=int(data.get("attempts", 1)),
            duration_s=float(data.get("duration_s", 0.0)),
            error=data.get("error"),
            resumed=bool(data.get("resumed", False)),
            spawn_key=tuple(data.get("spawn_key", ())),
            stage_counts=dict(data.get("stage_counts") or {}),
        )


class _ProgressTracker:
    """Per-run progress fan-out: counts finished tasks and forwards one
    row per event to the caller's callback (a
    :class:`repro.obs.ProgressJournal` in the service, anything callable
    in tests).

    A broken callback must never kill the run it is narrating: emit
    errors are swallowed and surfaced as the ``engine.progress.errors``
    counter instead.  Rows carry task bookkeeping only — durations and
    stage-count deltas, never wall-clock timestamps — so everything
    deterministic stays deterministic and the journal stays out of
    results and fingerprints.
    """

    def __init__(self, callback: Optional[Callable[[Dict[str, Any]], None]],
                 metrics: "MetricsRegistry", n_tasks: int) -> None:
        self._callback = callback
        self._metrics = metrics
        self.n_tasks = n_tasks
        self.done = 0

    def emit(self, kind: str, **fields: Any) -> None:
        if self._callback is None:
            return
        row: Dict[str, Any] = {"kind": kind}
        row.update(fields)
        try:
            self._callback(row)
        except (OSError, ValueError, TypeError):
            self._metrics.inc("engine.progress.errors")

    def task_done(self, record: "TaskRecord") -> None:
        self.done += 1
        if self._callback is None:
            return
        self.emit("task", index=record.index, task=record.task,
                  status=record.status, attempts=record.attempts,
                  resumed=record.resumed, duration_s=record.duration_s,
                  tasks_done=self.done, n_tasks=self.n_tasks,
                  stage_counts=dict(record.stage_counts))


def _stage_counts_from(snapshot: Optional[Dict[str, Any]]) -> Dict[str, int]:
    """Extract one task's per-stage packet breakdown from its metrics
    snapshot (the ``phy.<radio>.stage.<stage>`` counters)."""
    out: Dict[str, int] = {}
    if not snapshot:
        return out
    for name, value in snapshot.get("counters", {}).items():
        if name.startswith("phy.") and ".stage." in name:
            stage = name.rsplit(".stage.", 1)[1]
            out[stage] = out.get(stage, 0) + int(value)
    return out


@dataclass
class RunResult:
    """Points plus the per-task and timing metadata of the run."""

    spec: Spec
    points: List[Any]
    wall_time_s: float
    n_jobs: int
    n_tasks: int
    packets_simulated: int = 0
    tasks: List[TaskRecord] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def packets_per_second(self) -> float:
        if self.wall_time_s <= 0 or not self.packets_simulated:
            return 0.0
        return self.packets_simulated / self.wall_time_s

    @property
    def failed_tasks(self) -> List[TaskRecord]:
        return [t for t in self.tasks if not t.ok]

    @property
    def n_failed(self) -> int:
        return len(self.failed_tasks)

    @property
    def ok(self) -> bool:
        return self.n_failed == 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "points": [dataclasses.asdict(p) if p is not None else None
                       for p in self.points],
            "tasks": [t.to_dict() for t in self.tasks],
            "metrics": self.metrics,
            "timing": {
                "wall_time_s": self.wall_time_s,
                "n_jobs": self.n_jobs,
                "n_tasks": self.n_tasks,
                "n_failed": self.n_failed,
                "packets_simulated": self.packets_simulated,
                "packets_per_second": self.packets_per_second,
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output (or the sweep
        service's stored form).  Round-trips bit-identically through
        default ``json.dumps``/``loads`` — Python serializes floats via
        ``repr``, which is exact, and the NaN BER sentinel survives as
        the bare ``NaN`` token — so a cached result equals the freshly
        computed one point-for-point."""
        from repro.sim.spec import load_spec

        spec = load_spec(data["spec"], warn_legacy=False)
        if isinstance(spec, MacExperimentSpec):
            from repro.sim.macsim import MacExperimentPoint as point_cls
        else:
            from repro.sim.linksim import LinkPoint as point_cls  # type: ignore[no-redef]
        points = [point_cls(**p) if p is not None else None
                  for p in data.get("points", [])]
        timing = data.get("timing", {})
        return cls(
            spec=spec,
            points=points,
            wall_time_s=float(timing.get("wall_time_s", 0.0)),
            n_jobs=int(timing.get("n_jobs", 1)),
            n_tasks=int(timing.get("n_tasks", len(points))),
            packets_simulated=int(timing.get("packets_simulated", 0)),
            tasks=[TaskRecord.from_dict(t) for t in data.get("tasks", [])],
            metrics=dict(data.get("metrics") or {}),
        )

    def to_json(self, **dumps_kwargs) -> str:
        # NaN (the no-data BER sentinel) is not valid strict JSON; emit
        # null instead so any consumer can parse the output.
        def _clean(obj):
            if isinstance(obj, float):
                return None if np.isnan(obj) else obj
            if isinstance(obj, dict):
                return {k: _clean(v) for k, v in obj.items()}
            if isinstance(obj, (list, tuple)):
                return [_clean(v) for v in obj]
            return obj

        return json.dumps(_clean(self.to_dict()), **dumps_kwargs)


# -- checkpoint journal ---------------------------------------------------

class CheckpointJournal:
    """Append-only JSONL journal of completed sweep points.

    Each line records one task outcome under the owning spec's
    fingerprint.  ``load()`` returns the completed points of *this*
    spec only — journals are safe to share across specs, and rows from
    an edited spec are simply ignored.  A torn final line (the process
    died mid-write) is skipped, so resume is crash-safe.

    The first row a spec writes is a *header* carrying its enveloped
    spec (:func:`repro.sim.spec.dump_spec`), so a journal is
    self-describing: tooling can recover which specs produced it
    without the original code.  Opening a journal with an explicit
    *expect_fingerprint* that does not match the spec raises
    :class:`FingerprintMismatch` instead of silently resuming nothing.
    """

    def __init__(self, path: Union[str, os.PathLike], spec: Spec,
                 expect_fingerprint: Optional[str] = None):
        self.path = Path(path)
        self.fingerprint = spec_fingerprint(spec)
        if (expect_fingerprint is not None
                and expect_fingerprint != self.fingerprint):
            raise FingerprintMismatch(expect_fingerprint, self.fingerprint,
                                      context="checkpoint journal")
        self._spec = spec
        self._kind = "mac_sweep" if isinstance(spec, MacExperimentSpec) \
            else "link_sweep"
        self._header_written = False

    def _rows(self) -> List[Dict[str, Any]]:
        """Parse every intact row; torn/non-JSON lines are skipped."""
        rows: List[Dict[str, Any]] = []
        if not self.path.exists():
            return rows
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail write from a killed run
            if isinstance(rec, dict):
                rows.append(rec)
        return rows

    def load_entries(self) -> Dict[int, Dict[str, Any]]:
        """Completed raw journal rows for this spec, keyed by task index
        (last write wins, matching :meth:`load`)."""
        entries: Dict[int, Dict[str, Any]] = {}
        for rec in self._rows():
            if (rec.get("spec") != self.fingerprint
                    or rec.get("kind") == "header"
                    or rec.get("status") != "ok"
                    or rec.get("point") is None):
                continue
            entries[int(rec["index"])] = rec
        return entries

    def ensure_header(self) -> None:
        """Append the self-describing header row once per spec."""
        if self._header_written:
            return
        if any(rec.get("kind") == "header"
               and rec.get("spec") == self.fingerprint
               for rec in self._rows()):
            self._header_written = True
            return
        from repro.sim.spec import dump_spec

        self._append_row({"spec": self.fingerprint, "kind": "header",
                          "envelope": dump_spec(self._spec)})
        self._header_written = True

    @staticmethod
    def header_envelopes(path: Union[str, os.PathLike]
                         ) -> Dict[str, Dict[str, Any]]:
        """``{fingerprint: spec envelope}`` for every header in *path*."""
        out: Dict[str, Dict[str, Any]] = {}
        journal_path = Path(path)
        if not journal_path.exists():
            return out
        for line in journal_path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail write from a killed run
            if (isinstance(rec, dict) and rec.get("kind") == "header"
                    and isinstance(rec.get("envelope"), dict)):
                out[str(rec.get("spec"))] = rec["envelope"]
        return out

    def load(self) -> Dict[int, Any]:
        """Completed ``{task index: point}`` entries for this spec."""
        return {i: self._point_from(rec["point"])
                for i, rec in self.load_entries().items()}

    def append(self, record: TaskRecord, point: Any) -> None:
        self.ensure_header()
        self._append_row({
            "spec": self.fingerprint,
            "index": record.index,
            "task": record.task,
            "status": record.status,
            "attempts": record.attempts,
            "duration_s": record.duration_s,
            "error": record.error,
            "stage_counts": dict(record.stage_counts),
            # json allows the NaN token by default and loads it back as
            # float('nan'), so the BER sentinel survives a round trip.
            "point": dataclasses.asdict(point) if point is not None else None,
        })

    def _append_row(self, rec: Dict[str, Any]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as fh:
            fh.write(json.dumps(rec) + "\n")
            fh.flush()

    def _point_from(self, data: Dict[str, Any]) -> Any:
        if self._kind == "mac_sweep":
            from repro.sim.macsim import MacExperimentPoint

            return MacExperimentPoint(**data)
        from repro.sim.linksim import LinkPoint

        return LinkPoint(**data)


# -- worker side ----------------------------------------------------------
# Module-level so they pickle under every start method.  Each worker
# process keeps a small simulator cache: sessions wire up full PHY
# chains, which is the expensive part of task setup.

_SIM_CACHE: Dict[str, Any] = {}
_SIM_CACHE_MAX = 8


def _simulator_for(spec: ExperimentSpec):
    from repro.sim.linksim import LinkSimulator

    key = spec.session_key()
    sim = _SIM_CACHE.get(key)
    if sim is None:
        # The seed is irrelevant: engine tasks inject their own per-task
        # generator, so the simulator's internal stream is never drawn.
        sim = LinkSimulator(spec.config, spec.deployment,
                            packets_per_point=spec.packets_per_point,
                            seed=0)
        if len(_SIM_CACHE) >= _SIM_CACHE_MAX:
            _SIM_CACHE.pop(next(iter(_SIM_CACHE)))
        _SIM_CACHE[key] = sim
    return sim


def _run_link_point(spec: ExperimentSpec, distance_m: float,
                    seed_seq: np.random.SeedSequence):
    sim = _simulator_for(spec)
    rng = np.random.default_rng(seed_seq)
    return sim.simulate_point(distance_m, rng=rng, share_excitation=True)


def _run_mac_point(spec: MacExperimentSpec, n_tags: int,
                   seed_seq: np.random.SeedSequence):
    from repro.sim.macsim import MacExperiment

    exp = MacExperiment(config=spec.config,
                        measured_rounds=spec.measured_rounds,
                        simulated_rounds=spec.simulated_rounds)
    return exp.run_point(n_tags, rng=np.random.default_rng(seed_seq))


def _execute_task(spec: Spec, task, seed_seq: np.random.SeedSequence,
                  task_index: int, attempt: int,
                  injector: Optional[FaultInjector],
                  trace: Optional[TraceConfig] = None):
    """One attempt of one task: returns (point, metrics snapshot, dur)."""
    from repro import obs

    start = time.perf_counter()
    with obs.collect(trace=trace) as reg:
        with reg.span("engine.task", task=task_index, attempt=attempt):
            if injector is not None:
                injector.apply(task_index, attempt)
            if isinstance(spec, ExperimentSpec):
                point = _run_link_point(spec, task, seed_seq)
            else:
                point = _run_mac_point(spec, task, seed_seq)
    return point, reg.snapshot(), time.perf_counter() - start


# -- the engine -----------------------------------------------------------

def default_n_jobs() -> int:
    """A sensible worker count for this machine (capped to keep the
    fork/IPC overhead of tiny experiments in check)."""
    return max(1, min(8, os.cpu_count() or 1))


class ExperimentEngine:
    """Runs experiment specs, optionally fanned out over processes.

    Parameters
    ----------
    n_jobs:
        Worker processes.  ``1`` executes inline (no pool, no pickling);
        ``None`` picks :func:`default_n_jobs`.  Any value yields
        bit-identical results thanks to per-task seed spawning.
    failure_policy:
        Retry/abort behaviour; defaults to :class:`FailurePolicy`'s
        ``fail_fast`` with no retries (the historical behaviour).
    fault_injector:
        Deterministic test hook; see :class:`FaultInjector`.
    trace:
        Span/event recording config (see :class:`repro.obs.TraceConfig`);
        ``None`` (default) disables tracing entirely.
    """

    def __init__(self, n_jobs: Optional[int] = 1,
                 failure_policy: Optional[FailurePolicy] = None,
                 fault_injector: Optional[FaultInjector] = None,
                 trace: Optional[TraceConfig] = None):
        if n_jobs is None:
            n_jobs = default_n_jobs()
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        self.n_jobs = int(n_jobs)
        self.failure_policy = failure_policy or FailurePolicy()
        self.fault_injector = fault_injector
        self.trace = trace

    def run(self, spec: Spec,
            checkpoint: Optional[Union[str, os.PathLike]] = None,
            trace_path: Optional[Union[str, os.PathLike]] = None,
            expect_fingerprint: Optional[str] = None,
            progress: Optional[Callable[[Dict[str, Any]], None]] = None
            ) -> RunResult:
        """Execute one spec and return its points plus metadata.

        With *checkpoint*, completed points are journaled to (and
        resumed from) the given JSONL path; see
        :class:`CheckpointJournal`.  With *trace_path*, every trace
        event of the run (worker spans, sampled packet forensics,
        engine retry/requeue records) is appended to that JSONL file
        keyed by the spec fingerprint; giving a path with no ``trace``
        config enables tracing with default sampling.  With
        *expect_fingerprint* (a caller that tracked the spec by its
        fingerprint, e.g. a resumed service job), a spec whose
        fingerprint differs raises :class:`FingerprintMismatch` before
        any work runs.  With *progress*, one row per run event — a
        ``run_start`` marker, every finished task (including resumed
        ones), a ``run_end`` marker — is passed to the callback as it
        happens; a raising callback is counted, not fatal.
        """
        if isinstance(spec, ExperimentSpec):
            tasks = spec.distances_m
            packets_per_task = spec.packets_per_point
        elif isinstance(spec, MacExperimentSpec):
            tasks = spec.tag_counts
            packets_per_task = 0
        else:
            raise TypeError(f"unsupported spec type {type(spec).__name__}")

        trace_cfg = self.trace
        if trace_path is not None and trace_cfg is None:
            trace_cfg = TraceConfig()
        fingerprint = spec_fingerprint(spec)
        if (expect_fingerprint is not None
                and expect_fingerprint != fingerprint):
            raise FingerprintMismatch(expect_fingerprint, fingerprint,
                                      context="run")

        children = np.random.SeedSequence(spec.seed).spawn(len(tasks))
        journal = CheckpointJournal(checkpoint, spec) if checkpoint else None
        metrics = MetricsRegistry(trace=trace_cfg)
        points: List[Any] = [None] * len(tasks)
        records: List[Optional[TaskRecord]] = [None] * len(tasks)

        resumed = journal.load_entries() if journal else {}
        for i, entry in resumed.items():
            if not 0 <= i < len(tasks):
                continue
            points[i] = journal._point_from(entry["point"])
            records[i] = TaskRecord(index=i, task=tasks[i], status="ok",
                                    attempts=0, duration_s=0.0, resumed=True,
                                    spawn_key=tuple(children[i].spawn_key),
                                    stage_counts=dict(
                                        entry.get("stage_counts") or {}))
            metrics.inc("engine.tasks.resumed")
        pending = [i for i in range(len(tasks)) if records[i] is None]

        tracker = _ProgressTracker(progress, metrics, len(tasks))
        tracker.emit("run_start", spec=fingerprint, n_tasks=len(tasks),
                     n_resumed=len(tasks) - len(pending),
                     n_jobs=self.n_jobs)
        for i in sorted(set(range(len(tasks))) - set(pending)):
            record = records[i]
            if record is not None:
                tracker.task_done(record)

        start = time.perf_counter()
        try:
            with metrics.span("engine.run", spec=fingerprint,
                              n_tasks=len(tasks), n_jobs=self.n_jobs):
                if pending:
                    if self.n_jobs == 1 or len(pending) == 1:
                        self._run_inline(spec, tasks, children, pending,
                                         points, records, journal, metrics,
                                         tracker)
                    else:
                        self._run_pool(spec, tasks, children, pending,
                                       points, records, journal, metrics,
                                       tracker)
        finally:
            tracker.emit("run_end", spec=fingerprint,
                         tasks_done=tracker.done, n_tasks=len(tasks),
                         ok=all(r is not None and r.ok for r in records))
            # Even an aborted (fail_fast) run leaves its forensics behind.
            if trace_path is not None:
                with TraceSink(os.fspath(trace_path), fingerprint) as sink:
                    sink.write_all(metrics.events)
        wall = time.perf_counter() - start

        task_records = [r for r in records if r is not None]
        simulated = sum(packets_per_task for r in task_records
                        if r.ok and not r.resumed)
        return RunResult(spec=spec, points=points, wall_time_s=wall,
                         n_jobs=self.n_jobs, n_tasks=len(tasks),
                         packets_simulated=simulated,
                         tasks=task_records, metrics=metrics.snapshot())

    # -- shared bookkeeping ----------------------------------------------

    def _finish_task(self, record: TaskRecord, point: Any,
                     snapshot: Optional[Dict[str, Any]],
                     points: List[Any], records: List[Optional[TaskRecord]],
                     journal: Optional[CheckpointJournal],
                     metrics: MetricsRegistry,
                     tracker: Optional[_ProgressTracker] = None) -> None:
        """Record one task's final outcome (after all its attempts)."""
        points[record.index] = point
        records[record.index] = record
        record.stage_counts = _stage_counts_from(snapshot)
        if snapshot:
            # Stamp worker events with their task before folding them in,
            # and re-root worker spans under this run's own span — the
            # aggregated tree is then invariant to the worker count.
            for ev in snapshot.get("events", []):
                ev.setdefault("task", record.index)
        metrics.merge_snapshot(snapshot, span_prefix="engine.run")
        metrics.inc(f"engine.tasks.{record.status}")
        metrics.observe("engine.task", record.duration_s)
        metrics.observe_hist("engine.task.seconds", record.duration_s)
        if journal is not None:
            journal.append(record, point)
        if tracker is not None:
            # Emit before a fail_fast abort below, so followers see the
            # failing task's row, not a silently truncated stream.
            tracker.task_done(record)
        if not record.ok and self.failure_policy.fail_fast:
            raise TaskFailure(
                f"task {record.index} (task value {record.task!r}) "
                f"{record.status} after {record.attempts} attempt(s): "
                f"{record.error}")

    def _classify(self, duration_s: float) -> Tuple[str, Optional[str]]:
        """Post-hoc (soft) timeout check for completed attempts."""
        timeout = self.failure_policy.timeout_s
        if timeout is not None and duration_s > timeout:
            return "timeout", (f"task exceeded timeout_s={timeout} "
                               f"(took {duration_s:.3f}s)")
        return "ok", None

    # -- inline execution -------------------------------------------------

    def _run_inline(self, spec, tasks, children, pending,
                    points, records, journal, metrics, tracker) -> None:
        if (isinstance(spec, ExperimentSpec)
                and self.fault_injector is None
                and metrics.trace is None
                and self.failure_policy.timeout_s is None
                and self._run_inline_batched(spec, tasks, children, pending,
                                             points, records, journal,
                                             metrics, tracker)):
            return
        policy = self.failure_policy
        for i in pending:
            attempt = 1
            while True:
                try:
                    point, snap, dur = _execute_task(
                        spec, tasks[i], children[i], i, attempt,
                        self.fault_injector, metrics.trace)
                    status, error = self._classify(dur)
                    if status != "ok":
                        point, snap = None, None
                # Broad by design: a user-supplied builder can raise
                # anything, and the error is preserved verbatim in the
                # task's TaskRecord rather than swallowed.
                except Exception as exc:
                    point, snap, dur = None, None, 0.0
                    status = "failed"
                    error = f"{type(exc).__name__}: {exc}"
                    metrics.inc("engine.tasks.raised")
                if status == "ok" or attempt >= policy.max_attempts:
                    break
                if status == "timeout" and self.fault_injector is None:
                    # An inline retry reruns the identical deterministic
                    # computation with the same seed, so a timed-out
                    # attempt can never get faster — don't multiply the
                    # overrun by max_attempts.  (An injector can make
                    # slowness attempt-dependent, so retries stay live
                    # under injection.)
                    break
                metrics.inc("engine.retries")
                backoff = policy.backoff_s(attempt)
                metrics.event("engine.retry", task=i, attempt=attempt,
                              status=status, error=error,
                              backoff_s=backoff)
                if backoff:
                    time.sleep(backoff)
                attempt += 1
            record = TaskRecord(index=i, task=tasks[i], status=status,
                                attempts=attempt, duration_s=dur, error=error,
                                spawn_key=tuple(children[i].spawn_key))
            self._finish_task(record, point, snap, points, records,
                              journal, metrics, tracker)

    def _run_inline_batched(self, spec, tasks, children, pending,
                            points, records, journal, metrics,
                            tracker) -> bool:
        """Cross-task fast path for inline link sweeps.

        All pending points run through
        :meth:`~repro.sim.linksim.LinkSimulator.simulate_points`, which
        stacks packets *across* tasks for the channel and receiver
        kernels while each task keeps its own spawned generator (so the
        points are bit-identical to the per-task path and to any
        ``n_jobs``) and its own metrics registry (so per-task
        ``stage_counts`` stay exact).  Returns False — caller falls
        back to the per-task loop — when the session lacks the batch
        API or anything raises: per-task seeding makes the recomputation
        bit-exact, and the classic loop attributes the error to its
        task.  No bookkeeping (journal, records) happens until every
        task has succeeded, so the fallback never sees partial state.
        """
        from repro import obs

        sim = _simulator_for(spec)
        if not (getattr(sim, "batch", False)
                and hasattr(sim.session, "predraw_packet")):
            return False
        regs = {i: MetricsRegistry() for i in pending}
        start = time.perf_counter()
        try:
            with obs.collect() as shared:
                results = sim.simulate_points(
                    [tasks[i] for i in pending],
                    rngs=[np.random.default_rng(children[i])
                          for i in pending],
                    share_excitation=True,
                    registries=[regs[i] for i in pending])
        # Broad by design: any failure routes to the classic per-task
        # loop, which reruns deterministically and records the error
        # against the task that raised it.
        except Exception:
            metrics.inc("engine.batch.aborted")
            return False
        total = time.perf_counter() - start
        # Shared cross-task work (stacked channel/decode timers) is not
        # attributable to one task; fold it straight into the run.
        metrics.merge_snapshot(shared.snapshot(), span_prefix="engine.run")
        metrics.inc("engine.batch.points", len(pending))
        per_task = total / max(len(pending), 1)
        for k, i in enumerate(pending):
            record = TaskRecord(index=i, task=tasks[i], status="ok",
                                attempts=1, duration_s=per_task,
                                spawn_key=tuple(children[i].spawn_key))
            self._finish_task(record, results[k], regs[i].snapshot(),
                              points, records, journal, metrics, tracker)
        return True

    # -- pool execution ---------------------------------------------------

    def _run_pool(self, spec, tasks, children, pending,
                  points, records, journal, metrics, tracker) -> None:
        policy = self.failure_policy
        workers = min(self.n_jobs, len(pending))

        pools: List[ProcessPoolExecutor] = []   # every pool ever created
        live: List[ProcessPoolExecutor] = []    # not yet shut down
        tracked: Dict[Any, int] = {}            # pool -> inflight futures
        hung: Dict[Any, int] = {}               # pool -> abandoned workers

        def new_pool() -> ProcessPoolExecutor:
            p = ProcessPoolExecutor(max_workers=workers)
            pools.append(p)
            live.append(p)
            tracked[p] = 0
            return p

        def shutdown_pool(p) -> None:
            if p not in live:
                return
            live.remove(p)
            p.shutdown(wait=False, cancel_futures=True)
            if hung.get(p):
                # ``Future.cancel`` is a no-op on a running future, so an
                # abandoned worker would keep its pool slot — and block
                # interpreter exit — forever.  Kill its processes
                # outright; results of the pool's futures were already
                # collected or discarded.  ``_processes`` is a CPython
                # implementation detail, so degrade to leaking the
                # process if it is ever absent.
                procs = getattr(p, "_processes", None) or {}
                for proc in list(procs.values()):
                    try:
                        proc.terminate()
                    except (OSError, ValueError):
                        # Already dead / handle closed; count it so a
                        # leak shows up in the run's metrics.
                        metrics.inc("engine.pool.terminate_errors")

        current = new_pool()

        # future -> (task index, attempt, execution start time, pool).
        # At most ``workers`` futures ride the active pool, so a
        # submitted attempt starts executing (almost) immediately and
        # the timeout clock only ever runs against executing attempts,
        # never against queue wait.
        inflight: Dict[Any, Tuple[int, int, float, Any]] = {}
        # (task index, attempt, earliest submit time): retries carry
        # their backoff deadline here instead of sleeping on the
        # dispatcher thread, so collection of other futures never stalls.
        ready: List[Tuple[int, int, float]] = [(i, 1, 0.0) for i in pending]

        def retire_current() -> None:
            nonlocal current
            old = current
            current = new_pool()
            if tracked[old] == 0:
                shutdown_pool(old)

        def submit_due() -> None:
            now = time.perf_counter()
            while ready and tracked[current] < workers:
                k = next((k for k, (_, _, due) in enumerate(ready)
                          if due <= now), None)
                if k is None:
                    return
                i, attempt, _ = ready.pop(k)
                try:
                    fut = current.submit(_execute_task, spec, tasks[i],
                                         children[i], i, attempt,
                                         self.fault_injector, metrics.trace)
                except (RuntimeError, OSError):
                    # BrokenProcessPool (a RuntimeError) after a crashed
                    # worker, or a dead pipe: replace the pool and
                    # resubmit there.
                    metrics.inc("engine.pool.submit_errors")
                    ready.append((i, attempt, now))
                    retire_current()
                    continue
                inflight[fut] = (i, attempt, time.perf_counter(), current)
                tracked[current] += 1

        def release(fut) -> Tuple[int, int, float, Any]:
            i, attempt, t0, p = inflight.pop(fut)
            tracked[p] -= 1
            return i, attempt, t0, p

        def handle_failure(i: int, attempt: int, status: str,
                           error: str, dur: float) -> None:
            if attempt < policy.max_attempts:
                metrics.inc("engine.retries")
                backoff = policy.backoff_s(attempt)
                metrics.event("engine.retry", task=i, attempt=attempt,
                              status=status, error=error, backoff_s=backoff)
                ready.append((i, attempt + 1, time.perf_counter() + backoff))
                return
            record = TaskRecord(index=i, task=tasks[i], status=status,
                                attempts=attempt, duration_s=dur,
                                error=error,
                                spawn_key=tuple(children[i].spawn_key))
            self._finish_task(record, None, None, points, records,
                              journal, metrics, tracker)

        try:
            while ready or inflight:
                submit_due()
                now = time.perf_counter()
                # Wake for whichever comes first: a backoff-delayed retry
                # becoming due, or an executing attempt's deadline.
                wakeups = [due for (_, _, due) in ready if due > now]
                if policy.timeout_s is not None:
                    wakeups += [t0 + policy.timeout_s
                                for (_, _, t0, _) in inflight.values()]
                if not inflight:
                    if wakeups:  # only delayed retries remain
                        time.sleep(max(min(wakeups) - now, 0.0))
                    continue
                done, _ = wait(
                    set(inflight),
                    timeout=(max(min(wakeups) - now, 0.0) + 0.01
                             if wakeups else None),
                    return_when=FIRST_COMPLETED)
                if not done and policy.timeout_s is not None:
                    now = time.perf_counter()
                    for fut, (i, attempt, t0, _) in list(inflight.items()):
                        overdue = now - t0
                        if overdue < policy.timeout_s:
                            continue
                        if fut.cancel():
                            # Never started (queued behind an abandoned
                            # worker): requeue without consuming an
                            # attempt — a task that never ran is not a
                            # timeout.
                            release(fut)
                            metrics.inc("engine.tasks.requeued")
                            metrics.event("engine.requeue", task=i,
                                          attempt=attempt)
                            ready.append((i, attempt, now))
                        elif fut.done():
                            # Completed between wait() and here; the next
                            # wait() collects it and _classify applies
                            # the soft-timeout check to its true dur.
                            continue
                        else:
                            # Genuinely executing past its deadline.
                            # Abandon the worker and retire its pool so
                            # the hung process cannot eat a slot from
                            # later submissions (healthy futures on the
                            # old pool still complete normally; worker
                            # counts may transiently exceed n_jobs).
                            i, attempt, t0, p = release(fut)
                            hung[p] = hung.get(p, 0) + 1
                            if p is current:
                                retire_current()
                            elif tracked[p] == 0:
                                shutdown_pool(p)
                            handle_failure(
                                i, attempt, "timeout",
                                f"attempt exceeded timeout_s="
                                f"{policy.timeout_s} (ran {overdue:.3f}s; "
                                f"worker abandoned)",
                                overdue)
                for fut in done:
                    i, attempt, t0, p = release(fut)
                    if p is not current and tracked[p] == 0:
                        shutdown_pool(p)
                    try:
                        point, snap, dur = fut.result()
                    except Exception as exc:
                        # Broad by design: surfaces whatever the worker
                        # raised; handle_failure records it verbatim.
                        handle_failure(i, attempt, "failed",
                                       f"{type(exc).__name__}: {exc}",
                                       time.perf_counter() - t0)
                        continue
                    status, error = self._classify(dur)
                    if status != "ok":
                        handle_failure(i, attempt, status, error, dur)
                        continue
                    record = TaskRecord(
                        index=i, task=tasks[i], status="ok",
                        attempts=attempt, duration_s=dur,
                        spawn_key=tuple(children[i].spawn_key))
                    self._finish_task(record, point, snap, points,
                                      records, journal, metrics, tracker)
        finally:
            for p in list(live):
                shutdown_pool(p)

    def run_many(self, specs) -> List[RunResult]:
        """Execute several specs back to back (shared worker budget)."""
        return [self.run(spec) for spec in specs]


def run_experiment(spec: Spec, n_jobs: Optional[int] = 1,
                   failure_policy: Optional[FailurePolicy] = None,
                   checkpoint: Optional[Union[str, os.PathLike]] = None,
                   trace: Optional[TraceConfig] = None,
                   trace_path: Optional[Union[str, os.PathLike]] = None
                   ) -> RunResult:
    """One-shot convenience wrapper around :class:`ExperimentEngine`."""
    engine = ExperimentEngine(n_jobs=n_jobs, failure_policy=failure_policy,
                              trace=trace)
    return engine.run(spec, checkpoint=checkpoint, trace_path=trace_path)


# -- reusable run orchestration -------------------------------------------
# Everything above executes a spec; *how* it executes (worker count,
# failure policy, tracing, checkpoint/trace destinations) used to live
# scattered across one-shot CLI argument plumbing.  RunOptions reifies
# that bundle as data so every front end — the CLI's run/sweep/mac
# commands and the sweep service's job workers — drives the engine
# through the same orchestration layer.

@dataclass(frozen=True)
class RunOptions:
    """How to execute a spec, independent of which spec.

    Picklable and JSON-friendly on purpose: a sweep service can journal
    the options a job was submitted with and rebuild them on restart.
    """

    n_jobs: Optional[int] = 1
    failure_policy: Optional[FailurePolicy] = None
    trace: Optional[TraceConfig] = None
    checkpoint: Optional[str] = None
    trace_path: Optional[str] = None
    expect_fingerprint: Optional[str] = None
    #: When set, every progress row (run_start / per-task / run_end) is
    #: appended to this cursor-addressed JSONL journal — the live feed
    #: behind the service's ``/jobs/<id>/events`` endpoint.  The journal
    #: is telemetry: never part of results or fingerprints.
    progress_path: Optional[str] = None

    def replace(self, **changes: Any) -> "RunOptions":
        return dataclasses.replace(self, **changes)


def execute_run(spec: Spec, options: Optional[RunOptions] = None,
                fault_injector: Optional[FaultInjector] = None) -> RunResult:
    """Execute *spec* under *options*: the shared entry point behind the
    CLI's one-shot commands and the sweep service's workers."""
    from repro.obs.progress import ProgressJournal

    options = options or RunOptions()
    engine = ExperimentEngine(n_jobs=options.n_jobs,
                              failure_policy=options.failure_policy,
                              fault_injector=fault_injector,
                              trace=options.trace)
    journal: Optional[ProgressJournal] = None
    progress: Optional[Callable[[Dict[str, Any]], None]] = None
    if options.progress_path is not None:
        journal = ProgressJournal(options.progress_path)

        def _emit(row: Dict[str, Any], _journal: ProgressJournal = journal
                  ) -> None:
            _journal.append(row)

        progress = _emit
    try:
        return engine.run(spec, checkpoint=options.checkpoint,
                          trace_path=options.trace_path,
                          expect_fingerprint=options.expect_fingerprint,
                          progress=progress)
    finally:
        if journal is not None:
            journal.close()

"""Tests for the 802.11b DSSS PHY (the HitchHike-baseline substrate)."""

import numpy as np
import pytest

from repro.channel.awgn import awgn_at_snr
from repro.phy.dsss import (
    BARKER_11,
    DsssFrameBuilder,
    DsssReceiver,
    DsssTransmitter,
    despread_symbols,
    dsss_descramble,
    dsss_scramble,
    spread_symbols,
)
from repro.phy.dsss.barker import PROCESSING_GAIN_DB
from repro.utils.bits import random_bits


class TestBarker:
    def test_length_and_alphabet(self):
        assert BARKER_11.size == 11
        assert set(np.unique(BARKER_11)) == {-1.0, 1.0}

    def test_autocorrelation_peak(self):
        """Barker property: off-peak aperiodic autocorrelation <= 1."""
        full = np.correlate(BARKER_11, BARKER_11, mode="full")
        peak = int(np.argmax(full))
        assert full[peak] == pytest.approx(11.0)
        off = np.delete(full, peak)
        assert np.max(np.abs(off)) <= 1.0 + 1e-9

    def test_processing_gain(self):
        assert PROCESSING_GAIN_DB == pytest.approx(10.4, abs=0.1)

    def test_spread_despread_round_trip(self, rng):
        syms = np.exp(1j * np.pi * rng.integers(0, 2, 50))
        chips = spread_symbols(syms)
        assert chips.size == 550
        out = despread_symbols(chips, 50)
        assert np.allclose(out, syms)

    def test_despread_suppresses_noise(self, rng):
        syms = np.ones(200, dtype=complex)
        chips = awgn_at_snr(spread_symbols(syms), 0.0, rng)
        out = despread_symbols(chips, 200)
        # Symbol SNR should be ~10.4 dB after despreading.
        err = out - 1.0
        snr = 10 * np.log10(1.0 / np.mean(np.abs(err) ** 2))
        assert snr == pytest.approx(10.4, abs=1.5)


class TestSelfSyncScrambler:
    def test_round_trip_any_seeds(self, rng):
        """Self-synchronisation: descrambler seed does not matter beyond
        the first 7 bits."""
        bits = random_bits(200, rng)
        tx = dsss_scramble(bits, seed=0x55)
        out = dsss_descramble(tx, seed=0x00)
        assert np.array_equal(out[7:], bits[7:])

    def test_matched_seed_exact(self, rng):
        bits = random_bits(100, rng)
        assert np.array_equal(dsss_descramble(dsss_scramble(bits, 0x1B),
                                              0x1B), bits)

    def test_whitens(self):
        out = dsss_scramble(np.zeros(500, dtype=np.uint8))
        assert 150 < int(out.sum()) < 350

    def test_error_propagation_is_bounded(self, rng):
        """A single on-air bit error corrupts at most 3 descrambled bits
        (the three taps) — unlike the additive scrambler's unbounded
        desynchronisation when its seed is wrong."""
        bits = random_bits(300, rng)
        tx = dsss_scramble(bits, 0x1B)
        tx[150] ^= 1
        out = dsss_descramble(tx, 0x1B)
        errors = int(np.sum(out != bits))
        assert errors <= 3

    def test_window_complement_property(self, rng):
        """Complementing a window of on-air bits complements the
        descrambled window interior (the HitchHike enabler)."""
        bits = random_bits(300, rng)
        tx = dsss_scramble(bits, 0x1B)
        tx[100:200] ^= 1
        out = dsss_descramble(tx, 0x1B)
        assert np.array_equal(out[107:200], bits[107:200] ^ 1)
        assert np.array_equal(out[207:], bits[207:])

    def test_bad_seed_raises(self):
        from repro.phy.dsss.scrambler import SelfSyncScrambler

        with pytest.raises(ValueError):
            SelfSyncScrambler(0x80)


class TestFraming:
    def test_round_trip(self):
        builder = DsssFrameBuilder()
        psdu = b"hitchhike-baseline"
        out, ok = builder.parse_bits(builder.build_bits(psdu))
        assert ok and out == psdu

    def test_header_crc_rejects_corruption(self):
        builder = DsssFrameBuilder()
        bits = builder.build_bits(b"payload").copy()
        bits[150] ^= 1  # inside the PLCP header
        out, ok = builder.parse_bits(bits)
        assert not ok

    def test_sync_tolerates_some_errors(self, rng):
        builder = DsssFrameBuilder()
        bits = builder.build_bits(b"payload").copy()
        flip = rng.choice(128, size=8, replace=False)
        bits[flip] ^= 1
        out, ok = builder.parse_bits(bits)
        assert ok and out == b"payload"

    def test_empty_psdu_raises(self):
        with pytest.raises(ValueError):
            DsssFrameBuilder().build_bits(b"")


class TestChain:
    def test_clean_round_trip(self):
        tx = DsssTransmitter(seed=4)
        psdu = tx.random_psdu(80)
        frame = tx.build(psdu)
        res = DsssReceiver().decode(frame.samples, frame.n_bits)
        assert res.ok and res.psdu == psdu

    def test_noisy_round_trip(self, rng):
        tx = DsssTransmitter(seed=4)
        psdu = tx.random_psdu(80)
        frame = tx.build(psdu)
        noisy = awgn_at_snr(frame.samples, 2.0, rng)
        res = DsssReceiver().decode(noisy, frame.n_bits)
        assert res.ok and res.psdu == psdu

    def test_one_mbps_airtime(self):
        tx = DsssTransmitter(seed=1)
        frame = tx.build(bytes(100))
        assert frame.duration_us == pytest.approx(frame.n_bits, rel=1e-6)

    def test_channel_gain_tolerated(self, rng):
        tx = DsssTransmitter(seed=2)
        psdu = tx.random_psdu(40)
        frame = tx.build(psdu)
        res = DsssReceiver().decode(frame.samples * 0.3 * np.exp(1j * 0.8),
                                    frame.n_bits)
        # Differential decoding is insensitive to a static phase/gain.
        assert res.ok and res.psdu == psdu

"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import make_rng, spawn


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42).integers(0, 1000, 10)
        b = make_rng(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(1)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawn:
    def test_children_are_independent(self):
        children = spawn(make_rng(7), 3)
        streams = [c.integers(0, 10**9, 5).tolist() for c in children]
        assert streams[0] != streams[1] != streams[2]

    def test_deterministic(self):
        a = [c.integers(0, 100, 3).tolist() for c in spawn(make_rng(7), 2)]
        b = [c.integers(0, 100, 3).tolist() for c in spawn(make_rng(7), 2)]
        assert a == b

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn(make_rng(0), -1)

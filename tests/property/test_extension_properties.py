"""Property-based tests for the extension modules: DSSS scrambler and
Barker spreading, PLM traffic shaping, rotation decoding, harvesting."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mac.shaper import PlmTrafficShaper
from repro.phy.dsss.barker import despread_symbols, spread_symbols
from repro.phy.dsss.scrambler import SelfSyncScrambler
from repro.tag.energy import EnergyBudget, RfHarvester
from repro.utils.bits import as_bits

bits_lists = st.lists(st.integers(0, 1), min_size=0, max_size=300)


class TestSelfSyncScramblerProperties:
    @given(bits_lists, st.integers(0, 127))
    def test_matched_round_trip(self, bits, seed):
        s = SelfSyncScrambler(seed)
        d = SelfSyncScrambler(seed)
        assert np.array_equal(d.descramble(s.scramble(bits)),
                              as_bits(bits))

    @given(bits_lists, st.integers(0, 127), st.integers(0, 127))
    def test_self_synchronisation(self, bits, seed_tx, seed_rx):
        """Any descrambler seed agrees after the 7-bit register fill."""
        tx = SelfSyncScrambler(seed_tx).scramble(bits)
        out = SelfSyncScrambler(seed_rx).descramble(tx)
        ref = as_bits(bits)
        assert np.array_equal(out[7:], ref[7:])

    @given(bits_lists, st.integers(0, 127))
    def test_scrambled_stream_balanced_for_long_inputs(self, bits, seed):
        if len(bits) < 100:
            return
        out = SelfSyncScrambler(seed).scramble(bits)
        # Maximal-length feedback keeps long outputs roughly balanced
        # regardless of input bias.
        density = float(out.mean())
        assert 0.2 < density < 0.8


class TestBarkerProperties:
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=120))
    def test_spread_despread_identity(self, bits):
        syms = np.exp(1j * np.pi * np.array(bits))
        out = despread_symbols(spread_symbols(syms), len(bits))
        assert np.allclose(out, syms, atol=1e-9)

    @given(st.floats(0.1, 3.0), st.floats(-np.pi, np.pi))
    def test_gain_and_phase_pass_through(self, gain, phase):
        syms = np.ones(10, dtype=complex)
        chips = spread_symbols(syms) * gain * np.exp(1j * phase)
        out = despread_symbols(chips, 10)
        assert np.allclose(out, gain * np.exp(1j * phase), atol=1e-9)


class TestShaperProperties:
    @given(bits_lists, st.integers(0, 100_000))
    def test_backlog_conserved(self, bits, backlog):
        shaper = PlmTrafficShaper()
        packets, remaining = shaper.shape(bits, backlog)
        consumed = sum(p.payload_bytes for p in packets)
        assert consumed + remaining == backlog
        assert all(p.padding_bytes >= 0 for p in packets)

    @given(bits_lists)
    def test_overhead_zero_with_huge_backlog(self, bits):
        shaper = PlmTrafficShaper()
        assert shaper.overhead_fraction(bits, 10**9) == 0.0

    @given(bits_lists, st.integers(0, 100_000))
    def test_overhead_bounded(self, bits, backlog):
        frac = PlmTrafficShaper().overhead_fraction(bits, backlog)
        assert 0.0 <= frac <= 1.0


class TestRotationDecoderProperties:
    @settings(deadline=1000, max_examples=30)
    @given(st.lists(st.integers(0, 3), min_size=1, max_size=20),
           st.integers(0, 2**31 - 1))
    def test_levels_recovered_exactly(self, levels, seed):
        from repro.core.quaternary import RotationTagDecoder

        rng = np.random.default_rng(seed)
        rep = 2
        n_sym = len(levels) * rep
        ref = rng.normal(size=(n_sym, 48)) + 1j * rng.normal(size=(n_sym, 48))
        rx = ref.copy()
        for k, lv in enumerate(levels):
            rx[k * rep:(k + 1) * rep] *= np.exp(1j * np.pi / 2 * lv)
        dec = RotationTagDecoder(repetition=rep, offset_symbols=0,
                                 n_levels=4)
        assert list(dec.decode_levels(ref, rx)) == levels


class TestHarvesterProperties:
    @given(st.floats(-60.0, 20.0), st.floats(-60.0, 20.0))
    def test_efficiency_monotone(self, a, b):
        h = RfHarvester()
        lo, hi = min(a, b), max(a, b)
        assert h.efficiency(lo) <= h.efficiency(hi) + 1e-12

    @given(st.floats(-60.0, 20.0))
    def test_duty_cycle_bounded(self, p):
        d = EnergyBudget().sustainable_duty_cycle(p)
        assert 0.0 <= d <= 1.0

"""MAC-layer experiment driver (Figure 17).

Produces the two series of Figure 17(a) — measured-style short windows
and long-run simulation — plus the fairness series of Figure 17(b) and
the >20-tag asymptotes quoted in section 4.5 (~18 kb/s for framed
slotted Aloha, ~40 kb/s for the collision-free TDM bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro import obs
from repro.mac.aloha import AlohaConfig, FramedSlottedAloha, TdmScheme
from repro.utils.rng import derive_seed, make_rng

__all__ = ["MacExperimentPoint", "MacExperiment"]


@dataclass
class MacExperimentPoint:
    """One tag-count point of Figure 17."""

    n_tags: int
    measured_kbps: float
    simulated_kbps: float
    tdm_kbps: float
    fairness: float


class MacExperiment:
    """Sweeps tag count, mirroring the paper's 4..20 tag deployment.

    ``measured_rounds`` approximates the finite observation window of a
    physical run (which is what makes the paper's fairness ~0.85 rather
    than 1.0), while ``simulated_rounds`` gives the converged value.
    """

    def __init__(self, config: Optional[AlohaConfig] = None,
                 measured_rounds: int = 12, simulated_rounds: int = 400,
                 seed: Optional[int] = None):
        self.config = config or AlohaConfig()
        self.measured_rounds = measured_rounds
        self.simulated_rounds = simulated_rounds
        self._master_seed = seed if isinstance(seed, (int, np.integer)) \
            else None
        self._rng = make_rng(seed)

    def _seed(self, gen=None) -> int:
        gen = self._rng if gen is None else gen
        return int(gen.integers(0, 2**31 - 1))

    def run_point(self, n_tags: int,
                  rng: Optional[np.random.Generator] = None
                  ) -> MacExperimentPoint:
        """All four metrics for one tag count.

        *rng*, when given, supplies the three scheme seeds instead of
        the experiment's own stream; the experiment engine passes a
        per-point spawned generator so points are independent of
        execution order.
        """
        with obs.span("mac.point", n_tags=int(n_tags)):
            measured = FramedSlottedAloha(self.config, seed=self._seed(rng)) \
                .simulate(n_tags, n_rounds=self.measured_rounds)
            simulated = FramedSlottedAloha(self.config, seed=self._seed(rng)) \
                .simulate(n_tags, n_rounds=self.simulated_rounds)
            tdm = TdmScheme(self.config, seed=self._seed(rng)) \
                .simulate(n_tags, n_rounds=self.simulated_rounds)
        return MacExperimentPoint(
            n_tags=n_tags,
            measured_kbps=measured.aggregate_throughput_kbps,
            simulated_kbps=simulated.aggregate_throughput_kbps,
            tdm_kbps=tdm.aggregate_throughput_kbps,
            fairness=measured.fairness,
        )

    def _spec_seed(self) -> int:
        # Derived from the generator's state without consuming it:
        # minting a spec seed must not change later serial draws, or
        # sweep() results would depend on whether spec()/sweep(n_jobs=N)
        # was called before or after other methods on this instance.
        if self._master_seed is None:
            self._master_seed = derive_seed(self._rng)
        return int(self._master_seed)

    def spec(self, tag_counts: Sequence[int]):
        """The :class:`~repro.sim.engine.MacExperimentSpec` equivalent
        of ``sweep(tag_counts, n_jobs=...)``."""
        from repro.sim.engine import MacExperimentSpec

        return MacExperimentSpec(tag_counts=tuple(tag_counts),
                                 measured_rounds=self.measured_rounds,
                                 simulated_rounds=self.simulated_rounds,
                                 seed=self._spec_seed(),
                                 config=self.config)

    def sweep(self, tag_counts: Sequence[int] = (4, 8, 12, 16, 20),
              n_jobs: Optional[int] = None, *,
              failure_policy=None, checkpoint=None
              ) -> List[MacExperimentPoint]:
        """The Figure 17 sweep.

        ``n_jobs=None`` keeps the historical serial stream; any integer
        routes through the parallel engine with per-point seeds (same
        results for every worker count).  *failure_policy* and
        *checkpoint* are forwarded to the engine (supplying either
        implies the engine path); a checkpointed sweep resumes
        bit-identically after an interruption.
        """
        if n_jobs is None and failure_policy is None and checkpoint is None:
            return [self.run_point(n) for n in tag_counts]

        from repro.sim.engine import ExperimentEngine

        engine = ExperimentEngine(n_jobs=1 if n_jobs is None else n_jobs,
                                  failure_policy=failure_policy)
        return engine.run(self.spec(tag_counts), checkpoint=checkpoint).points

    def asymptote_kbps(self, n_tags: int = 200, scheme: str = "aloha") -> float:
        """Throughput limit for a large population (section 4.5).

        The slot controller must be allowed to grow the frame with the
        population — a capped frame over-saturates and under-reports
        the asymptote — so ``max_slots`` is widened here.
        """
        from dataclasses import replace

        cfg = replace(self.config,
                      max_slots=max(self.config.max_slots, 2 * n_tags),
                      initial_slots=max(self.config.initial_slots,
                                        n_tags // 2))
        if scheme == "aloha":
            sim = FramedSlottedAloha(cfg, seed=self._seed())
            return sim.simulate(n_tags, n_rounds=150).aggregate_throughput_kbps
        if scheme == "tdm":
            sim = TdmScheme(cfg, seed=self._seed())
            return sim.simulate(n_tags, n_rounds=150).aggregate_throughput_kbps
        raise ValueError("scheme must be 'aloha' or 'tdm'")

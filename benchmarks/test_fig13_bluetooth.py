"""Figure 13: Bluetooth LOS deployment — throughput/BER/RSSI vs distance.

Paper anchors: ~50 kb/s inside 10 m, throughput collapsing at 12 m
where the backscattered signal reaches about -100 dBm (the CC2541's
sensitivity region), with the edge-of-range BER rising sharply.
"""

from repro.channel.geometry import Deployment
from repro.sim.config import BLE_CONFIG
from repro.sim.linksim import LinkSimulator
from repro.sim.results import format_table

DISTANCES = (1, 2, 4, 6, 8, 10, 12, 14)


def run_experiment(packets_per_point=12, seed=130, n_jobs=None):
    sim = LinkSimulator(BLE_CONFIG, Deployment.los(1.0),
                        packets_per_point=packets_per_point, seed=seed)
    return sim.sweep(DISTANCES, n_jobs=n_jobs)


def test_fig13_bluetooth(once, emit, engine_jobs):
    points = once(run_experiment, n_jobs=engine_jobs)
    rows = [[p.distance_m, p.throughput_kbps, p.ber, p.rssi_dbm,
             p.delivery_ratio] for p in points]
    table = format_table(
        ["distance (m)", "throughput (kb/s)", "tag BER", "RSSI (dBm)",
         "delivery"], rows,
        title="Figure 13: Bluetooth LOS backscatter vs distance "
              "(0 dBm FSK exciter, tag 1 m away)")
    from repro.sim.charts import ascii_chart
    from repro.sim.results import Series
    curve = Series("throughput", x_label="distance (m)",
                   y_label="kb/s")
    for p in points:
        curve.append(p.distance_m, p.throughput_kbps)
    table += "\n\n" + ascii_chart(curve, title="Bluetooth LOS throughput vs distance")
    emit("fig13_bluetooth", table)

    by_d = {p.distance_m: p for p in points}
    # (a) ~50 kb/s inside 10 m, degrading at 12 m.
    assert 46.0 < by_d[4].throughput_kbps < 55.0
    assert by_d[10].throughput_kbps > 35.0
    assert by_d[12].throughput_kbps < by_d[10].throughput_kbps + 1.0
    assert by_d[14].delivery_ratio < 0.8
    # Ordering across radios: Bluetooth range < ZigBee range < WiFi range
    # is enforced in test_fig14_regime.

"""FreeRider reproduction: backscatter communication using commodity
radios (Zhang, Josephson, Bharadia, Katti — CoNEXT 2017).

Quick start
-----------
>>> from repro.core.session import WifiBackscatterSession
>>> session = WifiBackscatterSession(seed=7)
>>> result = session.run_packet(snr_db=20)
>>> result.delivered, result.tag_ber
(True, 0.0)

Package layout
--------------
``repro.phy``      bit-exact 802.11g/n, 802.15.4 and Bluetooth PHYs
``repro.core``     codeword translation, tag-data decoding, sessions
``repro.tag``      tag hardware models (envelope detector, switch, power)
``repro.channel``  path loss, AWGN, fading, backscatter link budgets
``repro.mac``      PLM downlink + framed slotted Aloha uplink
``repro.net``      ambient traffic and coexistence models
``repro.sim``      calibrated configs and experiment drivers
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

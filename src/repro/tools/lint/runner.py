"""The lint driver: walk, parse once, index, analyse in parallel.

Pipeline for one run:

1. **Walk** — ``iter_python_files`` expands the given paths (explicit
   files always included; ``fixtures``/``__pycache__``/dot dirs
   skipped).
2. **Read + parse** — every file is read and parsed exactly once;
   unreadable, undecodable, or unparseable files become per-file
   errors (exit code 2) instead of aborting the walk.
3. **Index** — one :class:`~repro.tools.lint.index.ProjectIndex` over
   every parsed tree feeds the cross-module rules (R009).
4. **Cache check** — if the project signature matches the cache, every
   file's findings are served without running a single rule.
5. **Analyse** — otherwise all files run through all rules in a thread
   pool (the index is read-only by then), R012 audits the other rules'
   findings per file, suppressions are marked.
6. **Report** — ``--changed`` narrows *reporting* to git-modified
   files (the index stays whole-tree so cross-module results are
   right), the baseline absorbs known debt, and the report is handed
   to an emitter.
"""

from __future__ import annotations

import ast
import subprocess
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.tools.lint.baseline import (apply_baseline, load_baseline,
                                       write_baseline)
from repro.tools.lint.cache import (ResultCache, content_hash,
                                    project_signature)
from repro.tools.lint.index import ProjectIndex
from repro.tools.lint.model import Finding, LintReport
from repro.tools.lint.rules import make_checkers, ruleset_signature
from repro.tools.lint.rules.base import FileContext
from repro.tools.lint.suppress import (comments_by_line, guarded_by_line,
                                       holds_locks_by_line,
                                       mark_suppressed,
                                       suppressions_by_line)

__all__ = ["iter_python_files", "lint_source", "lint_paths"]

_SKIP_DIRS = {"fixtures", "__pycache__", ".git", "results"}


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Python files under *paths*, sorted; explicit files always
    yielded, skip-dirs and dot-dirs pruned from directory walks."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            yield path
            continue
        if not path.is_dir():
            continue
        for sub in sorted(path.rglob("*.py")):
            rel = sub.relative_to(path)
            if any(part in _SKIP_DIRS or part.startswith(".")
                   for part in rel.parts[:-1]):
                continue
            yield sub


def _analyse_file(path: str, source: str, tree: ast.AST,
                  index: ProjectIndex) -> List[Finding]:
    """Run every rule over one parsed file; returns all findings with
    suppression flags set."""
    comments = comments_by_line(source)
    module = index.by_path[path]
    ctx = FileContext(
        path=path, source=source, tree=tree,
        imports=module.imports,
        comments=comments,
        suppressions=suppressions_by_line(comments),
        index=index, module=module,
        guarded_by=guarded_by_line(comments),
        holds_locks=holds_locks_by_line(comments),
    )
    findings: List[Finding] = []
    audit_rules = []
    for checker in make_checkers():
        if checker.wants_prior_findings:
            audit_rules.append(checker)
            continue
        findings.extend(checker.check(ctx))
    ctx.prior_findings = list(findings)
    for checker in audit_rules:
        findings.extend(checker.check(ctx))
    findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
    mark_suppressed(findings, ctx.suppressions)
    return findings


def lint_source(source: str, path: str = "<snippet>") -> List[Finding]:
    """Lint one in-memory source blob (tests, tooling).

    The project index contains just this file, so cross-module
    resolution degrades to file-local — which is what a snippet can
    support.  Raises ``SyntaxError`` on unparseable input.
    """
    tree = ast.parse(source, filename=path)
    index = ProjectIndex.build([(path, tree)])
    return _analyse_file(path, source, tree, index)


def _git_changed_files(base_ref: str) -> Optional[List[str]]:
    """Paths changed vs *base_ref* plus untracked files; None when git
    is unavailable (caller falls back to reporting everything)."""
    changed: List[str] = []
    for args in (["git", "diff", "--name-only", base_ref],
                 ["git", "ls-files", "--others", "--exclude-standard"]):
        try:
            proc = subprocess.run(args, capture_output=True, text=True,
                                  timeout=30)
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        changed.extend(line.strip() for line in proc.stdout.splitlines()
                       if line.strip())
    return changed


def _matches_changed(path: str, changed: List[str]) -> bool:
    norm = path.replace("\\", "/")
    return any(norm == c or norm.endswith("/" + c) for c in changed)


def lint_paths(paths: Sequence[str], *,
               jobs: Optional[int] = None,
               cache_path: Optional[str] = None,
               changed_only: bool = False,
               base_ref: str = "HEAD",
               baseline_path: Optional[str] = None,
               update_baseline: bool = False) -> LintReport:
    """Lint files under *paths* and assemble a :class:`LintReport`."""
    report = LintReport()
    sources: Dict[str, str] = {}
    trees: Dict[str, ast.AST] = {}
    hashes: Dict[str, str] = {}

    for file_path in iter_python_files(paths):
        path = file_path.as_posix()
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            report.errors.append(f"{path}: unreadable: {exc}")
            continue
        except (UnicodeDecodeError, ValueError) as exc:
            report.errors.append(f"{path}: undecodable: {exc}")
            continue
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            report.errors.append(
                f"{path}: syntax error: {exc.msg} (line {exc.lineno})")
            continue
        except ValueError as exc:  # e.g. null bytes in source
            report.errors.append(f"{path}: unparseable: {exc}")
            continue
        sources[path] = source
        trees[path] = tree
        hashes[path] = content_hash(source)

    report.n_files = len(sources)
    project_sig = project_signature(hashes)

    cache: Optional[ResultCache] = None
    per_file: Optional[Dict[str, List[Finding]]] = None
    if cache_path is not None:
        cache = ResultCache.load(cache_path, ruleset_signature())
        per_file = cache.lookup(project_sig)

    if per_file is not None:
        report.cache_hits = len(sources)
    else:
        report.cache_misses = len(sources)
        index = ProjectIndex.build(trees.items())
        ordered = sorted(sources)

        def run_one(path: str) -> Tuple[str, List[Finding]]:
            return path, _analyse_file(path, sources[path],
                                       trees[path], index)

        if jobs is not None and jobs <= 1:
            results = [run_one(path) for path in ordered]
        else:
            with ThreadPoolExecutor(max_workers=jobs) as pool:
                results = list(pool.map(run_one, ordered))
        per_file = dict(results)
        if cache is not None and cache_path is not None:
            cache.store(project_sig, per_file)
            cache.save(cache_path)

    all_findings: List[Finding] = []
    for path in sorted(per_file):
        all_findings.extend(per_file[path])

    if changed_only:
        changed = _git_changed_files(base_ref)
        if changed is not None:
            all_findings = [f for f in all_findings
                            if _matches_changed(f.path, changed)]

    active = [f for f in all_findings if not f.suppressed]
    report.suppressed = [f for f in all_findings if f.suppressed]

    if update_baseline and baseline_path is not None:
        write_baseline(baseline_path, active)
    baseline = (load_baseline(baseline_path)
                if baseline_path is not None else {})
    report.findings, report.baselined = apply_baseline(active, baseline)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return report

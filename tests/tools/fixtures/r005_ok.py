"""R005-clean: None defaults, containers created per call."""


def collect(item, acc=None):
    if acc is None:
        acc = []
    acc.append(item)
    return acc


def scaled(value, factor=1.0, label=""):
    return value * factor, label

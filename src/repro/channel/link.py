"""Link budgets: the dB arithmetic behind every range figure.

A backscatter link is the cascade

    P_rx = P_tx - PL(tx->tag) - L_tag - PL(tag->rx)

where ``L_tag`` bundles the RF switch insertion loss and the square-wave
mixing conversion loss (the 2/pi fundamental of the toggle waveform,
-3.9 dB per sideband — see ``repro.dsp.mixing``).  Because the loss is a
*product* of two path losses, range shrinks dramatically as the exciter
moves away from the tag — the effect Figure 14 maps out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.channel.geometry import Deployment
from repro.dsp.measure import noise_floor_dbm
from repro.dsp.mixing import SQUARE_WAVE_FUNDAMENTAL_LOSS_DB

__all__ = ["DirectLinkBudget", "BackscatterLinkBudget", "DEFAULT_TAG_LOSS_DB"]

# Square-wave conversion loss (3.9 dB) + RF switch insertion and
# impedance-mismatch losses (~4.5 dB for the ADG902-class switch).
DEFAULT_TAG_LOSS_DB = SQUARE_WAVE_FUNDAMENTAL_LOSS_DB + 4.5


@dataclass(frozen=True)
class DirectLinkBudget:
    """Ordinary one-hop radio link (the productive communication path)."""

    tx_power_dbm: float
    bandwidth_hz: float
    noise_figure_db: float = 5.0

    @property
    def noise_dbm(self) -> float:
        return noise_floor_dbm(self.bandwidth_hz, self.noise_figure_db)

    def rx_power_dbm(self, deployment: Deployment,
                     rng: Optional[np.random.Generator] = None) -> float:
        """Received power at the tag's position from the exciter."""
        loss = deployment.forward_path.loss_db(deployment.tx_to_tag_m, rng)
        return self.tx_power_dbm - loss

    def snr_db(self, deployment: Deployment,
               rng: Optional[np.random.Generator] = None) -> float:
        return self.rx_power_dbm(deployment, rng) - self.noise_dbm


@dataclass(frozen=True)
class BackscatterLinkBudget:
    """Two-hop exciter -> tag -> receiver budget.

    Parameters
    ----------
    tx_power_dbm:
        Exciter transmit power (15 dBm WiFi, 5 dBm ZigBee, 0 dBm
        Bluetooth in the paper).
    bandwidth_hz:
        Backscatter receiver bandwidth (20 MHz WiFi, 2 MHz ZigBee,
        1 MHz Bluetooth).
    tag_loss_db:
        Conversion + insertion loss at the tag.
    noise_figure_db:
        Receiver noise figure.
    """

    tx_power_dbm: float
    bandwidth_hz: float
    tag_loss_db: float = DEFAULT_TAG_LOSS_DB
    noise_figure_db: float = 5.0

    @property
    def noise_dbm(self) -> float:
        return noise_floor_dbm(self.bandwidth_hz, self.noise_figure_db)

    def tag_incident_dbm(self, deployment: Deployment,
                         rng: Optional[np.random.Generator] = None) -> float:
        """Power arriving at the tag antenna."""
        loss = deployment.forward_path.loss_db(deployment.tx_to_tag_m, rng)
        return self.tx_power_dbm - loss

    def rssi_dbm(self, deployment: Deployment,
                 rng: Optional[np.random.Generator] = None) -> float:
        """Backscattered signal strength at the receiver — the quantity
        plotted in Figures 10(c)-13(c)."""
        incident = self.tag_incident_dbm(deployment, rng)
        back_loss = deployment.backscatter_path.loss_db(deployment.tag_to_rx_m, rng)
        return incident - self.tag_loss_db - back_loss

    def snr_db(self, deployment: Deployment,
               rng: Optional[np.random.Generator] = None) -> float:
        """SNR of the backscattered signal at the receiver."""
        return self.rssi_dbm(deployment, rng) - self.noise_dbm

    def max_range_m(self, tx_to_tag_m: float, sensitivity_dbm: float,
                    forward_path=None, backscatter_path=None,
                    d_max: float = 200.0) -> float:
        """Largest tag->rx distance where RSSI stays above *sensitivity*.

        Solved by bisection over the monotone path-loss law; returns 0
        when even the closest distance fails (exciter too far — the
        regime boundary of Figure 14).
        """
        dep0 = Deployment(tx_to_tag_m, 0.1,
                          forward_path or Deployment.los(1.0).forward_path,
                          backscatter_path or Deployment.los(1.0).backscatter_path)
        if self.rssi_dbm(dep0) < sensitivity_dbm:
            return 0.0
        lo, hi = 0.1, d_max
        if self.rssi_dbm(dep0.with_rx_distance(hi)) >= sensitivity_dbm:
            return hi
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if self.rssi_dbm(dep0.with_rx_distance(mid)) >= sensitivity_dbm:
                lo = mid
            else:
                hi = mid
        return lo

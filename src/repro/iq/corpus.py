"""Impairment-grid corpus generator over every registered radio.

Each grid cell freezes one backscattered packet: a deterministic
excitation payload and tag payload, the channel at a fixed SNR with a
fixed noise seed, and an *impairment* applied to the post-channel
waveform (or to the excitation itself) to steer the decode into a
specific forensics stage — clean, low-SNR, truncated preamble/data,
corrupted header/CRC, and envelope-gated captures, per the GuardRider
motivation that tags must survive wild, bursty traffic.

Expectations are frozen by actually decoding the **stored** complex64
waveform through :meth:`decode_iq` at generation time (so the
complex64 rounding is inside the contract) and cross-checked against
the batched receiver path before anything is written.  A cell that
lands on a different stage than it was designed for fails generation
loudly — the grid cannot silently drift.

``SESSION_STAGES`` records which forensics stages each radio's
*session-level* decode can reach at all; the corpus-completeness
meta-test (``tests/iq/test_corpus_completeness.py``) parametrizes over
the registry × this map, so registering a new radio without corpus
coverage fails the suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.core.registry import create_session
from repro.core.session import Excitation, SessionResult
from repro.iq.format import IQCapture, write_capture
from repro.obs import forensics
from repro.obs.metrics import MetricsRegistry
from repro.utils.crc import CRC32
from repro.utils.rng import make_rng

__all__ = ["SESSION_STAGES", "RADIO_CONFIGS", "CORPUS_SEED",
           "default_corpus_dir", "generate_corpus", "grid_names",
           "observed_stage"]

#: Base seed for every deterministic draw in the corpus.
CORPUS_SEED = 20_240_811

#: Forensics stages each radio's session-level decode can reach.
#:
#: Not every radio exposes every stage: the session's tag link decides
#: which receiver verdicts it distinguishes.  BLE is a raw-bit link
#: (no CRC stage; sync + demod is ``ok``); DSSS reaches ``sync_fail``
#: only through the envelope-detector gate (its receiver starts at the
#: PLCP header); ZigBee folds header handling into SFD detection.
SESSION_STAGES: Dict[str, Tuple[str, ...]] = {
    "wifi": forensics.STAGES,
    "wifi-quaternary": forensics.STAGES,
    "zigbee": (forensics.SYNC_FAIL, forensics.CRC_FAIL, forensics.OK),
    "bluetooth": (forensics.SYNC_FAIL, forensics.OK),
    "dsss": (forensics.SYNC_FAIL, forensics.HEADER_FAIL, forensics.OK),
}

#: Session kwargs per radio — small payloads keep the committed corpus
#: tiny while exercising every receive stage.
RADIO_CONFIGS: Dict[str, Dict[str, Any]] = {
    "wifi": {"rate_mbps": 6.0, "repetition": 4, "payload_bytes": 64},
    "wifi-quaternary": {"rate_mbps": 12.0, "repetition": 4,
                        "payload_bytes": 64},
    "zigbee": {"repetition": 8, "payload_bytes": 12, "sps": 4},
    "bluetooth": {"repetition": 18, "payload_bytes": 16, "sps": 8},
    "dsss": {"repetition": 11, "payload_bytes": 24},
}

_Transform = Callable[[np.ndarray, Excitation], np.ndarray]


def default_corpus_dir() -> Path:
    """The committed corpus location, ``tests/phy/corpus``."""
    return Path(__file__).resolve().parents[3] / "tests" / "phy" / "corpus"


# -- waveform impairments -------------------------------------------------

def _identity(noisy: np.ndarray, exc: Excitation) -> np.ndarray:
    return noisy


def _keep(n: int) -> _Transform:
    def cut(noisy: np.ndarray, exc: Excitation) -> np.ndarray:
        return noisy[:n]
    return cut


def _keep_past_data(extra_units: int) -> _Transform:
    """Truncate shortly after the data field starts."""
    def cut(noisy: np.ndarray, exc: Excitation) -> np.ndarray:
        info = exc.info
        return noisy[:info.data_start_sample
                     + extra_units * info.unit_samples]
    return cut


def _invert(start: int, stop: int) -> _Transform:
    """Sign-flip one waveform region (hard symbol corruption)."""
    def flip(noisy: np.ndarray, exc: Excitation) -> np.ndarray:
        out = noisy.copy()
        out[start:stop] *= -1
        return out
    return flip


@dataclass(frozen=True)
class _Cell:
    """One corpus grid cell: impairment name, channel, and target."""

    impairment: str
    snr_db: float
    transform: _Transform
    expect_stage: Optional[str] = None   # assert at generation if set
    gated: bool = False                  # envelope miss: no waveform
    bad_fcs: bool = False                # WiFi: wrong FCS in the psdu
    quiet: bool = False                  # all-zero tag bits (no flips)


def _wifi_grid() -> List[_Cell]:
    # A modulating tag flips data-field symbols, so a tag-carrying WiFi
    # frame can never pass its FCS — that is *why* the paper's receiver
    # runs in monitor mode.  The ``ok`` stage therefore needs a quiet
    # tag (all-zero bits, no flips); ``tag_modulated`` freezes the
    # normal monitor-mode outcome (delivered, crc_fail).  The SIGNAL
    # symbol sits right after the 320-sample preamble; flipping it
    # breaks rate/parity so the PLCP header never parses.
    return [
        _Cell("clean", 25.0, _identity, forensics.OK, quiet=True),
        _Cell("tag_modulated", 25.0, _identity, forensics.CRC_FAIL),
        _Cell("low_snr", 6.0, _identity),
        _Cell("trunc_preamble", 25.0, _keep(300), forensics.SYNC_FAIL),
        _Cell("header_corrupt", 25.0, _invert(320, 400),
              forensics.HEADER_FAIL),
        _Cell("trunc_data", 25.0, _keep_past_data(1), forensics.FEC_FAIL),
        _Cell("crc_corrupt", 25.0, _identity, forensics.CRC_FAIL,
              bad_fcs=True, quiet=True),
        _Cell("envelope_gated", 25.0, _identity, forensics.SYNC_FAIL,
              gated=True),
    ]


_GRIDS: Dict[str, Callable[[], List[_Cell]]] = {
    "wifi": _wifi_grid,
    "wifi-quaternary": _wifi_grid,
    "zigbee": lambda: [
        # Same monitor-mode reality as WiFi: symbol flips from the tag
        # break the MAC FCS, so ``ok`` needs a quiet tag.
        _Cell("clean", 20.0, _identity, forensics.OK, quiet=True),
        _Cell("tag_modulated", 20.0, _identity, forensics.CRC_FAIL),
        _Cell("low_snr", -1.0, _identity),
        _Cell("trunc_preamble", 20.0, _keep(40), forensics.SYNC_FAIL),
        _Cell("crc_corrupt", 20.0, _invert(2000, 2200),
              forensics.CRC_FAIL, quiet=True),
        _Cell("trunc_data", 20.0, _keep_past_data(4)),
        _Cell("envelope_gated", 20.0, _identity, forensics.SYNC_FAIL,
              gated=True),
    ],
    "bluetooth": lambda: [
        _Cell("clean", 22.0, _identity, forensics.OK),
        _Cell("low_snr", 6.0, _identity),
        _Cell("trunc_preamble", 22.0, _keep(50), forensics.SYNC_FAIL),
        _Cell("trunc_data", 22.0, _keep_past_data(16)),
        _Cell("envelope_gated", 22.0, _identity, forensics.SYNC_FAIL,
              gated=True),
    ],
    "dsss": lambda: [
        _Cell("clean", 14.0, _identity, forensics.OK),
        _Cell("low_snr", 3.0, _identity),
        _Cell("trunc_preamble", 14.0, _keep(30), forensics.HEADER_FAIL),
        # The 48-bit PLCP header spans samples 1584..2112 (bits 144..192
        # at 11 samples/bit); a sign-flipped span there breaks the
        # header CRC-16 via the two differential-domain bit flips it
        # induces, while the SYNC/SFD region stays untouched.
        _Cell("header_corrupt", 14.0, _invert(1700, 1790),
              forensics.HEADER_FAIL),
        _Cell("trunc_data", 14.0, _keep_past_data(8)),
        _Cell("envelope_gated", 14.0, _identity, forensics.SYNC_FAIL,
              gated=True),
    ],
}


def grid_names(radio: str) -> List[str]:
    """The capture names the generator produces for *radio*."""
    return [f"{radio}_{cell.impairment}" for cell in _GRIDS[radio]()]


def observed_stage(reg: MetricsRegistry) -> Tuple[str, str]:
    """(obs_prefix, stage) of the single packet recorded into *reg*.

    The stage is read back from the ``phy.<radio>.stage.<stage>``
    counters the decode incremented, so replay checks the *accounting*,
    not a parallel code path.
    """
    counters = reg.snapshot()["counters"]
    hits = [(name, count) for name, count in sorted(counters.items())
            if ".stage." in name and count]
    if len(hits) != 1 or hits[0][1] != 1:
        raise ValueError(f"expected exactly one stage increment, got "
                         f"{hits!r}")
    prefix, stage = hits[0][0].rsplit(".stage.", 1)
    return prefix, stage


def _payload_for(radio: str, cell: _Cell,
                 gen: np.random.Generator, payload_bytes: int) -> bytes:
    """Deterministic excitation payload; WiFi psdus get a real FCS so
    the clean cells can reach the ``ok`` stage (a random psdu would
    always land on ``crc_fail``)."""
    if radio in ("wifi", "wifi-quaternary"):
        body = bytes(int(b) for b in gen.integers(
            0, 256, size=payload_bytes - 4))
        fcs = CRC32.compute(body)
        if cell.bad_fcs:
            fcs ^= 0xDEAD_BEEF
        return body + fcs.to_bytes(4, "little")
    return bytes(int(b) for b in gen.integers(0, 256, size=payload_bytes))


def _decode_both(session: Any, samples: np.ndarray, exc: Excitation,
                 bits: np.ndarray, noise_var: float, snr_db: float
                 ) -> Tuple[SessionResult, str, str]:
    """Decode through scalar and batched paths; they must agree."""
    with obs.collect() as reg:
        scalar = session.decode_iq(samples, exc, bits,
                                   noise_var=noise_var, snr_db=snr_db)
    prefix, stage = observed_stage(reg)
    with obs.collect() as reg_b:
        batched = session.decode_iq(samples, exc, bits,
                                    noise_var=noise_var, snr_db=snr_db,
                                    batched=True)
    _, stage_b = observed_stage(reg_b)
    if (stage, scalar.delivered, scalar.tag_bit_errors) != (
            stage_b, batched.delivered, batched.tag_bit_errors):
        raise RuntimeError(
            f"scalar/batched decode disagree at generation: "
            f"{stage}/{scalar} vs {stage_b}/{batched}")
    return scalar, prefix, stage


def _build_capture(radio: str, cell: _Cell, seed: int) -> IQCapture:
    cfg = RADIO_CONFIGS[radio]
    session = create_session(radio, seed=0, **cfg)
    gen = make_rng(seed)
    payload = _payload_for(radio, cell, gen, int(cfg["payload_bytes"]))
    scrambler_seed: Optional[int] = None
    if radio in ("wifi", "wifi-quaternary"):
        scrambler_seed = int(gen.integers(1, 128))
        exc = session.excitation_from_payload(
            payload, scrambler_seed=scrambler_seed)
    else:
        exc = session.excitation_from_payload(payload)
    capacity = int(session.tag.capacity_bits(exc.info))
    if radio == "wifi-quaternary":
        capacity -= capacity % 2
    if cell.quiet:
        bits = np.zeros(capacity, dtype=np.uint8)
    else:
        bits = gen.integers(0, 2, size=capacity).astype(np.uint8)

    if cell.gated:
        samples = np.empty(0, dtype=np.complex64)
        noise_var = 0.0
    else:
        draw = session.draw_packet(cell.snr_db, tag_bits=bits,
                                   rng=make_rng(seed + 1), excitation=exc)
        if draw.result is not None or draw.noisy is None:
            raise RuntimeError(
                f"{radio}/{cell.impairment}: sync gate fired at "
                f"{cell.snr_db} dB with seed {seed}; adjust the grid")
        samples = np.asarray(cell.transform(draw.noisy, exc),
                             dtype=np.complex64)
        noise_var = float(draw.noise_var)

    result, prefix, stage = _decode_both(session, samples, exc, bits,
                                         noise_var, cell.snr_db)
    if cell.expect_stage is not None and stage != cell.expect_stage:
        raise RuntimeError(
            f"{radio}/{cell.impairment}: designed for stage "
            f"{cell.expect_stage!r} but decoded as {stage!r}")
    meta: Dict[str, Any] = {
        "radio": radio,
        "session": dict(cfg),
        "payload_hex": payload.hex(),
        "scrambler_seed": scrambler_seed,
        "tag_bits": "".join("01"[int(b)] for b in bits),
        "snr_db": cell.snr_db,
        "noise_var": noise_var,
        "impairment": cell.impairment,
        "gated": cell.gated,
        "seed": seed,
        "obs_prefix": prefix,
        "expect": {
            "stage": stage,
            "delivered": bool(result.delivered),
            "bits_sent": int(result.tag_bits_sent),
            "bit_errors": int(result.tag_bit_errors),
        },
    }
    return IQCapture(name=f"{radio}_{cell.impairment}", samples=samples,
                     meta=meta)


def generate_corpus(directory: Path,
                    radios: Optional[List[str]] = None) -> List[str]:
    """Freeze the full impairment grid under *directory*.

    Returns the sorted capture names written.  Radios default to every
    grid entry (which covers every registered radio; the completeness
    meta-test enforces that invariant from the other side).
    """
    names: List[str] = []
    for radio in sorted(radios if radios is not None else _GRIDS):
        cells = _GRIDS[radio]()
        for index, cell in enumerate(cells):
            capture = _build_capture(
                radio, cell, CORPUS_SEED + 100 * index)
            write_capture(Path(directory), capture)
            obs.inc("iq.corpus.entries")
            names.append(capture.name)
    return sorted(names)

"""Tests for the ASCII chart renderer."""

import pytest

from repro.sim.charts import ascii_cdf, ascii_chart
from repro.sim.results import Series


def make_series(pairs, name="s"):
    s = Series(name, x_label="d", y_label="thr")
    for x, y in pairs:
        s.append(x, y)
    return s


class TestAsciiChart:
    def test_contains_all_points(self):
        s = make_series([(0, 0), (5, 50), (10, 100)])
        out = ascii_chart(s, width=40, height=10)
        assert out.count("*") >= 3

    def test_axis_labels(self):
        s = make_series([(1, 10), (42, 95)])
        out = ascii_chart(s, width=40, height=10, title="Fig X")
        assert out.splitlines()[0] == "Fig X"
        assert "42" in out and "95" in out and "10" in out

    def test_monotone_series_renders_monotone(self):
        s = make_series([(i, i * i) for i in range(8)])
        out = ascii_chart(s, width=30, height=8)
        lines = [l for l in out.splitlines() if "|" in l]
        first_star_rows = {}
        for r, line in enumerate(lines):
            body = line.split("|", 1)[1]
            for c, ch in enumerate(body):
                if ch == "*":
                    first_star_rows.setdefault(c, r)
        cols = sorted(first_star_rows)
        rows = [first_star_rows[c] for c in cols]
        assert rows == sorted(rows, reverse=True)  # up and to the right

    def test_flat_series_handled(self):
        s = make_series([(0, 5), (10, 5)])
        out = ascii_chart(s, width=20, height=6)
        assert "*" in out

    def test_single_point_degrades_gracefully(self):
        s = make_series([(1, 1)])
        assert "not enough points" in ascii_chart(s)

    def test_too_small_raises(self):
        s = make_series([(0, 0), (1, 1)])
        with pytest.raises(ValueError):
            ascii_chart(s, width=5, height=2)

    def test_nan_points_skipped_and_annotated(self):
        """Regression: one NaN point (no-measurement sentinel) used to
        poison the axis bounds and crash the grid placement."""
        s = make_series([(0, 0), (5, float("nan")), (10, 100)])
        out = ascii_chart(s, width=30, height=8)
        assert "*" in out
        assert "1 point(s) without data skipped" in out
        assert "nan" not in out

    def test_all_nan_degrades_gracefully(self):
        s = make_series([(0, float("nan")), (1, float("nan"))])
        assert "not enough points" in ascii_chart(s)


class TestAsciiCdf:
    def test_reaches_one(self):
        out = ascii_cdf([1.0, 2.0, 3.0, 4.0], width=30, height=8)
        assert "1" in out  # the top axis label

    def test_title(self):
        out = ascii_cdf([1, 2, 3], title="throughput CDF")
        assert out.splitlines()[0] == "throughput CDF"

"""Seeded mutation fuzzing of the decode seam.

The crash-free classification contract (documented next to the
forensics taxonomy in ``docs/observability.md``): for **any** finite
baseband waveform — truncated, extended, rescaled, sign-flipped,
zeroed, noise-blasted — and any tag ground truth, ``decode_iq`` must
classify the packet into exactly one forensics stage
(``sync_fail``/``header_fail``/``fec_fail``/``crc_fail``/``ok``) and
return a well-formed :class:`SessionResult`.  It must *never* raise.

Mutations are drawn from a generator seeded by
``(seed, radio index, iteration)``, so a violation's full recipe — the
base capture name, the mutation trace, and the exception — reproduces
from three integers.  Both scalar and batched receiver paths are
exercised on every iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.iq.corpus import observed_stage
from repro.iq.format import IQCapture, iter_captures
from repro.iq.replay import _excitation_for, _session_for
from repro.obs import forensics
from repro.utils.bits import as_bits

__all__ = ["FuzzViolation", "FuzzReport", "fuzz_corpus", "MUTATIONS"]


def _m_truncate(s: np.ndarray, gen: np.random.Generator) -> np.ndarray:
    return s[:int(gen.integers(0, s.size + 1))]


def _m_drop_head(s: np.ndarray, gen: np.random.Generator) -> np.ndarray:
    return s[int(gen.integers(0, s.size // 2 + 1)):]


def _m_extend(s: np.ndarray, gen: np.random.Generator) -> np.ndarray:
    n = int(gen.integers(1, s.size + 2))
    tail = (gen.standard_normal(n) + 1j * gen.standard_normal(n))
    return np.concatenate([s, tail.astype(np.complex64)])


def _m_scale(s: np.ndarray, gen: np.random.Generator) -> np.ndarray:
    return (s * np.float32(gen.uniform(0.0, 4.0))).astype(np.complex64)


def _span(size: int, gen: np.random.Generator) -> Tuple[int, int]:
    a = int(gen.integers(0, size))
    b = int(gen.integers(a, size + 1))
    return a, b


def _m_invert_span(s: np.ndarray, gen: np.random.Generator) -> np.ndarray:
    a, b = _span(s.size, gen)
    out = s.copy()
    out[a:b] *= -1
    return out


def _m_zero_span(s: np.ndarray, gen: np.random.Generator) -> np.ndarray:
    a, b = _span(s.size, gen)
    out = s.copy()
    out[a:b] = 0
    return out


def _m_noise_burst(s: np.ndarray, gen: np.random.Generator) -> np.ndarray:
    a, b = _span(s.size, gen)
    out = s.copy()
    burst = gen.standard_normal(b - a) + 1j * gen.standard_normal(b - a)
    out[a:b] += burst.astype(np.complex64) * np.float32(gen.uniform(0.5, 5))
    return out


#: Mutation operators by name; each maps (samples, rng) -> samples and
#: must keep the waveform finite (the contract covers finite inputs —
#: NaN/Inf are not physical capture states).
MUTATIONS: Dict[str, Callable[[np.ndarray, np.random.Generator],
                              np.ndarray]] = {
    "truncate": _m_truncate,
    "drop_head": _m_drop_head,
    "extend": _m_extend,
    "scale": _m_scale,
    "invert_span": _m_invert_span,
    "zero_span": _m_zero_span,
    "noise_burst": _m_noise_burst,
}


@dataclass
class FuzzViolation:
    """One contract breach with its full reproduction recipe."""

    radio: str
    base: str
    iteration: int
    mode: str
    mutations: List[str]
    error: str

    def to_dict(self) -> Dict[str, Any]:
        return {"radio": self.radio, "base": self.base,
                "iteration": self.iteration, "mode": self.mode,
                "mutations": self.mutations, "error": self.error}


@dataclass
class FuzzReport:
    """Outcome of one fuzz run."""

    seed: int = 0
    iterations: Dict[str, int] = field(default_factory=dict)
    violations: List[FuzzViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "iterations": dict(self.iterations),
                "ok": self.ok,
                "violations": [v.to_dict() for v in self.violations]}


def _check_one(session: Any, samples: np.ndarray, exc: Any,
               bits: np.ndarray, batched: bool) -> Optional[str]:
    """Run one decode; returns a violation description or None."""
    try:
        with obs.collect() as reg:
            result = session.decode_iq(samples, exc, bits,
                                       batched=batched)
        _, stage = observed_stage(reg)
    # The whole point of the harness: an exception from the decode seam
    # IS the finding — recorded as a violation with its reproduction
    # recipe, never swallowed.
    except Exception as exc_info:  # reprolint: disable=R006 - exception becomes the recorded violation
        return f"{type(exc_info).__name__}: {exc_info}"
    if stage not in forensics.STAGES:
        return f"unknown stage {stage!r}"
    if result.tag_bit_errors > result.tag_bits_sent:
        return (f"bit_errors {result.tag_bit_errors} > bits_sent "
                f"{result.tag_bits_sent}")
    if result.delivered not in (True, False):
        return f"non-boolean delivered {result.delivered!r}"
    return None


def fuzz_corpus(directory: Path, iterations: int = 200, seed: int = 0,
                radios: Optional[List[str]] = None) -> FuzzReport:
    """Run *iterations* seeded mutations per radio against the corpus.

    Base waveforms cycle through the radio's non-gated captures; each
    iteration applies 1–3 mutation operators and decodes through both
    the scalar and batched receiver paths.  Tag ground truth is
    occasionally perturbed too (truncated or over-long bit arrays).
    """
    report = FuzzReport(seed=seed)
    by_radio: Dict[str, List[IQCapture]] = {}
    for capture in iter_captures(Path(directory)):
        if capture.samples.size:
            by_radio.setdefault(capture.radio, []).append(capture)
    cache: Dict[Any, Any] = {}
    names = sorted(by_radio)
    for radio_index, radio in enumerate(names):
        if radios is not None and radio not in radios:
            continue
        bases = by_radio[radio]
        for i in range(iterations):
            gen = np.random.default_rng([seed, radio_index, i])
            base = bases[i % len(bases)]
            session = _session_for(base, cache)
            exc = _excitation_for(base, session)
            bits = as_bits(base.meta["tag_bits"])
            n_mut = int(gen.integers(1, 4))
            chosen = [str(k) for k in gen.choice(
                sorted(MUTATIONS), size=n_mut, replace=True)]
            samples = base.samples
            for name in chosen:
                samples = MUTATIONS[name](samples, gen)
            if gen.random() < 0.25:
                # Ground-truth perturbation: wrong-length tag bits.
                n_bits = int(gen.integers(0, 4 * max(bits.size, 1)))
                bits = gen.integers(0, 2, size=n_bits).astype(np.uint8)
                chosen.append(f"tag_bits[{n_bits}]")
            for mode in ("scalar", "batched"):
                obs.inc("iq.fuzz.iterations")
                error = _check_one(session, samples, exc, bits,
                                   batched=(mode == "batched"))
                if error is not None:
                    obs.inc("iq.fuzz.violations")
                    report.violations.append(FuzzViolation(
                        radio=radio, base=base.name, iteration=i,
                        mode=mode, mutations=chosen, error=error))
            report.iterations[radio] = i + 1
    return report

"""The HTTP front end + urllib client, over a real socket (port 0)."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import ServiceClient, ServiceClientError, ServiceHTTPServer
from repro.service.service import SweepService
from repro.sim.engine import spec_fingerprint
from repro.sim.spec import dump_spec


@pytest.fixture
def server(tmp_path):
    """A running service + HTTP server on an OS-assigned port."""
    service = SweepService(tmp_path / "svc")
    http_server = ServiceHTTPServer(service, port=0)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    service.start()
    try:
        yield http_server
    finally:
        http_server.shutdown()
        http_server.server_close()
        service.stop()
        thread.join(timeout=10)


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout_s=10.0)


class TestEndToEnd:
    def test_submit_poll_fetch_round_trip(self, client, link_spec):
        assert client.health()
        job = client.submit(link_spec)
        assert job["state"] in ("pending", "running", "done")
        status = client.wait(job["job_id"], timeout_s=60)
        assert status["state"] == "done"
        assert status["stage_counts"]  # forensics ride along
        result = client.fetch(job["job_id"])
        assert result.ok
        assert result.spec == link_spec
        assert len(result.points) == 2

    def test_submit_envelope_dict(self, client, link_spec):
        job = client.submit(dump_spec(link_spec))
        assert job["fingerprint"] == spec_fingerprint(link_spec)

    def test_duplicate_submission_served_from_cache(self, client,
                                                    server, link_spec):
        first = client.submit(link_spec)
        assert first["cache_hit"] is False
        client.wait(first["job_id"], timeout_s=60)
        second = client.submit(link_spec)
        assert second["state"] == "done" and second["cached"]
        assert second["cache_hit"] is True
        assert client.fetch_raw(first["job_id"]) \
            == client.fetch_raw(second["job_id"])
        assert server.service.counter("service.cache.hits") == 1

    def test_cache_hit_with_obs_request_carries_warning(self, client,
                                                        link_spec):
        payload = dict(dump_spec(link_spec))
        payload["obs"] = {"trace": True}
        first = client.submit(payload)
        assert "warning" not in first
        client.wait(first["job_id"], timeout_s=60)
        second = client.submit(payload)
        assert second["cache_hit"] is True
        assert "trace" in second["warning"]
        assert "not regenerated" in second["warning"]

    def test_jobs_listing(self, client, link_spec):
        job = client.submit(link_spec)
        listed = client.jobs()
        assert [j["job_id"] for j in listed] == [job["job_id"]]

    def test_metrics_endpoint(self, client, link_spec):
        job = client.submit(link_spec)
        client.wait(job["job_id"], timeout_s=60)
        text = client.metrics()
        assert "repro_service_jobs_submitted_total 1" in text
        assert "repro_service_http_requests_total" in text


class TestErrorMapping:
    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.status("job-999999")
        assert excinfo.value.status == 404

    def test_unfinished_result_is_409(self, server, client, link_spec):
        server.service.stop()  # freeze the workers: job stays pending
        job = client.submit(link_spec)
        with pytest.raises(ServiceClientError) as excinfo:
            client.fetch(job["job_id"])
        assert excinfo.value.status == 409

    def test_bad_spec_is_400(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit({"kind": "nope", "version": 1, "spec": {}})
        assert excinfo.value.status == 400
        assert "spec" in str(excinfo.value)

    def test_invalid_json_body_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/jobs", data=b"{nope",
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        assert "JSON" in json.loads(excinfo.value.read())["error"]

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(server.url + "/nope", timeout=10)
        assert excinfo.value.code == 404

    def test_health_never_requires_state(self, server):
        with urllib.request.urlopen(server.url + "/healthz",
                                    timeout=10) as response:
            payload = json.loads(response.read())
        assert payload["ok"] is True
        # Saturation counts are always present, zero-filled.
        assert payload["queue"] == {"depth": 0, "pending": 0, "running": 0,
                                    "done": 0, "failed": 0}


class TestEventsEndpoint:
    def test_events_round_trip(self, client, link_spec):
        job = client.submit(link_spec)
        client.wait(job["job_id"], timeout_s=60)
        page = client.events(job["job_id"])
        kinds = [r["kind"] for r in page["events"]]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        assert page["state"] == "done"
        assert page["cursor"] == page["events"][-1]["seq"]

    def test_stale_cursor_returns_empty_page(self, client, link_spec):
        job = client.submit(link_spec)
        client.wait(job["job_id"], timeout_s=60)
        page = client.events(job["job_id"], cursor=10_000)
        assert page["events"] == [] and page["cursor"] == 10_000

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.events("job-999999")
        assert excinfo.value.status == 404

    def test_non_integer_cursor_is_400(self, server, client, link_spec):
        job = client.submit(link_spec)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                server.url + f"/jobs/{job['job_id']}/events?cursor=nope",
                timeout=10)
        assert excinfo.value.code == 400
        assert "cursor" in json.loads(excinfo.value.read())["error"]

    def test_follow_streams_every_row_exactly_once(self, client, link_spec):
        job = client.submit(link_spec)
        rows = list(client.follow(job["job_id"], timeout_s=60))
        kinds = [r["kind"] for r in rows]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        seqs = [r["seq"] for r in rows]
        assert seqs == sorted(set(seqs))  # monotone, no duplicates
        tasks = [r for r in rows if r["kind"] == "task"]
        assert [r["tasks_done"] for r in tasks] == [1, 2]

    def test_follow_on_cached_job_terminates_immediately(self, client,
                                                         link_spec):
        first = client.submit(link_spec)
        client.wait(first["job_id"], timeout_s=60)
        dup = client.submit(link_spec)
        assert dup["cached"]
        assert list(client.follow(dup["job_id"], timeout_s=10)) == []


class TestLiveScrape:
    def test_metrics_scrape_passes_strict_parser(self, client, link_spec):
        from repro.obs import parse_prometheus_text

        job = client.submit(link_spec)
        client.wait(job["job_id"], timeout_s=60)
        exposition = parse_prometheus_text(client.metrics())
        assert exposition.value("repro_service_jobs_submitted_total") == 1.0
        hist = exposition.histogram("repro_service_job_seconds")
        assert hist.count == 1

    def test_healthz_counts_update(self, client, link_spec):
        job = client.submit(link_spec)
        client.wait(job["job_id"], timeout_s=60)
        queue = client.healthz()["queue"]
        assert queue["done"] == 1 and queue["depth"] == 0


class TestTopDashboard:
    def test_single_frame_renders_jobs_and_latency(self, client, link_spec):
        from repro.service.top import Dashboard

        job = client.submit(link_spec)
        client.wait(job["job_id"], timeout_s=60)
        frame = Dashboard(client).frame()
        assert "queue: depth=0" in frame
        assert job["job_id"] in frame
        assert "engine_task_seconds" in frame
        assert "p99" in frame
        assert "WARNING" not in frame  # exposition parsed cleanly

    def test_run_top_once_writes_one_frame(self, client, link_spec):
        import io

        from repro.service.top import run_top

        job = client.submit(link_spec)
        client.wait(job["job_id"], timeout_s=60)
        out = io.StringIO()
        assert run_top(client.base_url, once=True, out=out) == 0
        text = out.getvalue()
        assert text.count("repro top") == 1
        assert "\x1b[" not in text  # --once never clears the screen

    def test_progress_bar_for_tracked_job(self, client, link_spec):
        from repro.service.top import Dashboard

        dashboard = Dashboard(client)
        job = client.submit(link_spec)
        client.wait(job["job_id"], timeout_s=60)
        frame = dashboard.frame()  # cursors drained post-completion
        assert "2/2 tasks" in frame
        assert "[####################]" in frame


class TestRestartOverHTTP:
    def test_server_restart_resumes_queued_jobs(self, tmp_path, link_spec,
                                                other_link_spec):
        root = tmp_path / "svc"
        # First server accepts two jobs but is killed before its
        # workers start.
        service1 = SweepService(root)
        server1 = ServiceHTTPServer(service1, port=0)
        thread1 = threading.Thread(target=server1.serve_forever,
                                   daemon=True)
        thread1.start()
        client1 = ServiceClient(server1.url, timeout_s=10.0)
        a = client1.submit(link_spec)
        b = client1.submit(other_link_spec)
        server1.shutdown()
        server1.server_close()
        thread1.join(timeout=10)

        # Second server over the same root finishes them.
        service2 = SweepService(root)
        server2 = ServiceHTTPServer(service2, port=0)
        thread2 = threading.Thread(target=server2.serve_forever,
                                   daemon=True)
        thread2.start()
        service2.start()
        client2 = ServiceClient(server2.url, timeout_s=10.0)
        try:
            done_a = client2.wait(a["job_id"], timeout_s=60)
            done_b = client2.wait(b["job_id"], timeout_s=60)
            assert done_a["state"] == "done"
            assert done_b["state"] == "done"
            assert client2.fetch(a["job_id"]).ok
        finally:
            server2.shutdown()
            server2.server_close()
            service2.stop()
            thread2.join(timeout=10)

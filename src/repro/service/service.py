"""The sweep service: queue + store + engine workers in one process.

:class:`SweepService` glues the persistence layers together into the
"millions of users" shape the ROADMAP asks for — many submitters, one
warm, cache-aware compute tier:

* **Submission** validates the payload through the versioned spec serde
  (:mod:`repro.sim.spec`), computes the spec fingerprint, and either
  answers straight from the :class:`~repro.service.store.ResultStore`
  (``service.cache.hits``; the job is born ``done``/``cached`` and no
  engine task ever runs) or journals a pending job.  Dedup keys on the
  spec fingerprint *only*: observability options riding alongside the
  envelope never fork the cache, so a cache hit explicitly warns when
  it cannot regenerate requested run-scoped artifacts (see
  :meth:`SweepService.submit_record`).
* **Execution** happens on background worker threads that claim jobs
  FIFO and drive the engine through its reusable orchestration layer
  (:func:`repro.sim.engine.execute_run`) with a per-fingerprint
  checkpoint journal, so killing the server mid-job loses nothing: on
  restart the queue journal restores the job and the engine checkpoint
  restores its completed points, and the finished result is
  bit-identical to an uninterrupted run.  Duplicate specs that were
  *queued* together dedup at claim time — the second job finds the
  store already populated and becomes a cache hit without computing.
* **Observability** folds every run's engine metrics (task counters,
  PHY stage timers, latency histograms, forensics stage counts) into
  one service-wide :class:`~repro.obs.MetricsRegistry` next to the
  service's own counters (``service.jobs.*``, ``service.cache.*``),
  live queue gauges (``service.queue.<state>``, ``service.queue.depth``,
  ``service.jobs.running``, ``service.job.age_seconds``) and the
  ``service.job.seconds`` histogram, rendered by
  :meth:`SweepService.metrics_text` in Prometheus text exposition for
  the HTTP ``/metrics`` endpoint.  Each running job additionally
  narrates itself into a cursor-addressed progress journal under
  ``progress/`` (:meth:`SweepService.events` serves it) — telemetry
  keyed by job id, never part of result bytes or dedup.

Only completed, fully-ok runs are cached: a failed or degraded run
marks the job ``failed`` and leaves the store untouched, so a later
identical submission retries the computation instead of serving the
failure forever.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.obs import MetricsRegistry, TraceConfig, prometheus_text
from repro.obs.progress import monotonic_s, read_progress
from repro.service.queue import JobQueue, JobRecord
from repro.service.store import ResultStore
from repro.sim.engine import (
    EngineError,
    ExperimentSpec,
    FailurePolicy,
    MacExperimentSpec,
    RunOptions,
    RunResult,
    Spec,
    execute_run,
    spec_fingerprint,
)

__all__ = ["SweepService", "ServiceError", "UnknownJobError",
           "DEFAULT_POLL_S"]

#: How long an idle worker sleeps between queue polls, seconds.
DEFAULT_POLL_S = 0.05


class ServiceError(RuntimeError):
    """A request that cannot be served (wrong job state, bad payload)."""


class UnknownJobError(ServiceError, KeyError):
    """A job id that is not in the queue."""

    def __init__(self, job_id: str) -> None:
        self.job_id = job_id
        super().__init__(f"unknown job {job_id!r}")


class SweepService:
    """Persistent, restart-surviving sweep runner over one root directory.

    Parameters
    ----------
    root:
        Durable state directory: ``queue.jsonl`` (job journal),
        ``results/`` (content-addressed store), ``checkpoints/``
        (per-fingerprint engine journals).  Reusing a root resumes it.
    n_jobs:
        Engine worker *processes* per job (the engine's ``n_jobs``).
    n_workers:
        Concurrent job worker *threads* (each running one job at a
        time).  One by default: jobs queue, results stay FIFO.
    failure_policy:
        Engine failure policy for every job; ``None`` uses the engine
        default (fail-fast, no retries), which surfaces a failed point
        as a failed job.
    trace:
        Optional :class:`~repro.obs.TraceConfig`; when given, service
        spans (``service.job``) and engine trace events are recorded in
        the service registry.
    """

    def __init__(self, root: Union[str, os.PathLike], n_jobs: int = 1,
                 n_workers: int = 1,
                 failure_policy: Optional[FailurePolicy] = None,
                 trace: Optional[TraceConfig] = None,
                 poll_s: float = DEFAULT_POLL_S) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.store = ResultStore(self.root / "results")
        self.queue = JobQueue(self.root / "queue.jsonl")
        self.checkpoint_dir = self.root / "checkpoints"
        self.n_jobs = int(n_jobs)
        self.n_workers = int(n_workers)
        self.failure_policy = failure_policy
        self.poll_s = float(poll_s)
        self.metrics = MetricsRegistry(trace=trace)  # guarded-by: _metrics_lock
        self._metrics_lock = threading.Lock()
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self.progress_dir = self.root / "progress"
        # Monotonic first-seen stamps for active jobs, feeding the
        # service.job.age_seconds gauge.  In-memory only (never
        # persisted): after a restart, ages restart from recovery time.
        self._active_since: Dict[str, float] = {}  # guarded-by: _metrics_lock
        for _ in self.queue.recover():
            self._inc("service.jobs.recovered")
        for job in self.queue.jobs():
            if job.active:
                self._note_active(job.job_id)

    # -- metrics (thread-safe wrappers) ------------------------------------
    # MetricsRegistry is deliberately lock-free (process-local, single
    # writer); the service is the one multi-threaded writer in the
    # repo, so it serializes its own mutations here.

    def _inc(self, name: str, n: int = 1) -> None:
        with self._metrics_lock:
            self.metrics.inc(name, n)

    def counter(self, name: str) -> int:
        with self._metrics_lock:
            return self.metrics.counter(name)

    def _note_active(self, job_id: str) -> None:
        with self._metrics_lock:
            self._active_since.setdefault(job_id, monotonic_s())

    def _note_settled(self, job_id: str) -> None:
        with self._metrics_lock:
            self._active_since.pop(job_id, None)

    def _oldest_age_s(self) -> float:  # reprolint: holds(_metrics_lock)
        if not self._active_since:
            return 0.0
        return monotonic_s() - min(self._active_since.values())

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Service + folded engine metrics as a plain dict.

        Queue state rides in as gauges, synthesized fresh per snapshot:
        ``service.queue.<state>`` per-state counts, ``service.queue.depth``
        (pending jobs), ``service.jobs.running``, and
        ``service.job.age_seconds`` (age of the oldest still-active job,
        0 when idle).
        """
        with self._metrics_lock:
            snap = self.metrics.snapshot()
            age = self._oldest_age_s()
        counts = self.queue.counts()
        gauges = snap.setdefault("gauges", {})
        for state, n in sorted(counts.items()):
            gauges[f"service.queue.{state}"] = float(n)
        gauges["service.queue.depth"] = float(counts.get("pending", 0))
        gauges["service.jobs.running"] = float(counts.get("running", 0))
        gauges["service.job.age_seconds"] = age
        return snap

    def metrics_text(self) -> str:
        """Prometheus text exposition of :meth:`metrics_snapshot`."""
        return prometheus_text(self.metrics_snapshot())

    # -- submission --------------------------------------------------------

    def submit(self, payload: Union[Spec, Mapping[str, Any]]) -> JobRecord:
        """Accept a spec (object, envelope dict, or legacy bare dict).

        Returns the job record: ``done``/``cached`` immediately when the
        store already holds this fingerprint, else ``pending``.
        """
        from repro.sim.spec import dump_spec, load_spec

        if isinstance(payload, (ExperimentSpec, MacExperimentSpec)):
            spec = payload
        else:
            spec = load_spec(payload)
        envelope = dump_spec(spec)
        fingerprint = spec_fingerprint(spec)
        self._inc("service.jobs.submitted")
        job = self.queue.submit(envelope, fingerprint)
        if self.store.has(fingerprint):
            self._inc("service.cache.hits")
            return self.queue.set_state(job.job_id, "done", cached=True)
        self._inc("service.cache.misses")
        self._note_active(job.job_id)
        return job

    def submit_record(self, payload: Union[Spec, Mapping[str, Any]]
                      ) -> Dict[str, Any]:
        """:meth:`submit` plus the explicit cache-hit contract.

        Returns the job dict with a ``cache_hit`` marker.  Dedup keys
        on the spec fingerprint alone — any ``"obs"`` section riding
        alongside the envelope (``{"obs": {"trace": true}, ...}``) is
        *not* part of the cache key, so a cache hit serves the stored
        result without a new engine run and therefore without fresh
        run-scoped observability artifacts.  When that happens the
        response carries a ``warning`` naming the requested artifacts
        that were not regenerated (and ``service.cache.obs_warnings``
        counts it), instead of silently dropping the request.
        """
        requested: List[str] = []
        if isinstance(payload, Mapping):
            raw_obs = payload.get("obs")
            if isinstance(raw_obs, Mapping):
                requested = sorted(str(k) for k, v in raw_obs.items() if v)
        job = self.submit(payload)
        record = job.to_dict()
        record["cache_hit"] = bool(job.cached)
        if job.cached and requested:
            self._inc("service.cache.obs_warnings")
            record["warning"] = (
                "cache hit: the result was served from the store without "
                "a new engine run, so the requested observability "
                f"artifacts ({', '.join(requested)}) were not regenerated; "
                "the stored record still carries the original run's "
                "metrics and forensics")
        return record

    # -- execution ---------------------------------------------------------

    def checkpoint_path(self, fingerprint: str) -> Path:
        return self.checkpoint_dir / f"{fingerprint}.jsonl"

    def progress_path(self, job_id: str) -> Path:
        """Per-job progress journal.  Lives outside ``results/`` and is
        keyed by job id (not fingerprint), so it never participates in
        dedup or bit-identical result serving."""
        return self.progress_dir / f"{job_id}.jsonl"

    def step(self) -> bool:
        """Claim and run at most one pending job; True if one ran.

        The synchronous core of the worker loop, exposed so tests (and
        embedded users) can drive the service deterministically without
        background threads.
        """
        job = self.queue.claim_next()
        if job is None:
            return False
        self._run_job(job)
        return True

    def _run_job(self, job: JobRecord) -> None:
        from repro.sim.spec import load_spec

        if self.store.has(job.fingerprint):
            # A duplicate that was queued before the first copy
            # finished: serve it from the store, run nothing.
            self._inc("service.cache.hits")
            self.queue.set_state(job.job_id, "done", cached=True)
            self._note_settled(job.job_id)
            return
        try:
            spec = load_spec(job.envelope, warn_legacy=False)
            options = RunOptions(
                n_jobs=self.n_jobs, failure_policy=self.failure_policy,
                checkpoint=str(self.checkpoint_path(job.fingerprint)),
                expect_fingerprint=job.fingerprint,
                progress_path=str(self.progress_path(job.job_id)))
            result = execute_run(spec, options)
        except (EngineError, ValueError, OSError) as exc:
            # EngineError: the job's sweep failed (fail-fast task
            # failure, fingerprint mismatch); ValueError: a corrupt
            # journaled envelope; OSError: unwritable state dir.  The
            # failure is recorded on the job itself, never swallowed.
            self._inc("service.jobs.failed")
            self.queue.set_state(job.job_id, "failed",
                                 error=f"{type(exc).__name__}: {exc}")
            self._note_settled(job.job_id)
            return
        with self._metrics_lock:
            self.metrics.merge_snapshot(result.metrics)
            # The job-level timer and latency histogram ride the run's
            # own measured wall time (no ad-hoc clock reads; obs owns
            # the clock).
            self.metrics.observe("service.job", result.wall_time_s)
            self.metrics.observe_hist("service.job.seconds",
                                      result.wall_time_s)
            self.metrics.event("service.job", job=job.job_id,
                               spec=job.fingerprint,
                               dur_s=result.wall_time_s)
        if not result.ok:
            # Degraded run: points are missing, so the result is not
            # cacheable — a later identical submission should recompute.
            self._inc("service.jobs.failed")
            self.queue.set_state(
                job.job_id, "failed",
                error=f"{result.n_failed}/{result.n_tasks} tasks failed "
                      f"({result.failed_tasks[0].error})")
            self._note_settled(job.job_id)
            return
        self.store.put(result)
        self._inc("service.cache.stores")
        self._inc("service.jobs.completed")
        self.queue.set_state(job.job_id, "done")
        self._note_settled(job.job_id)

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            if not self.step():
                self._stop.wait(self.poll_s)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "SweepService":
        """Spawn the worker threads (idempotent)."""
        if self._threads:
            return self
        self._stop.clear()
        for i in range(self.n_workers):
            thread = threading.Thread(target=self._worker_loop,
                                      name=f"sweep-worker-{i}", daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, timeout_s: float = 30.0) -> None:
        """Stop claiming new jobs and join the workers.

        An in-flight job finishes its current engine run first (its
        points are checkpointed either way, so even a hard kill here
        only costs the tail of the sweep).
        """
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout_s)
        self._threads = []

    def __enter__(self) -> "SweepService":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- reading -----------------------------------------------------------

    def _job(self, job_id: str) -> JobRecord:
        job = self.queue.get(job_id)
        if job is None:
            raise UnknownJobError(job_id)
        return job

    def status(self, job_id: str) -> Dict[str, Any]:
        """One job's public status, including decode forensics once done.

        The ``stage_counts`` field aggregates the per-task forensic
        stage counters (sync/header/fec/crc/ok) of the stored result.
        """
        job = self._job(job_id)
        payload = job.to_dict()
        if job.state == "done":
            result = self.store.get(job.fingerprint)
            if result is not None:
                stage_counts: Dict[str, int] = {}
                for task in result.tasks:
                    for stage, count in task.stage_counts.items():
                        stage_counts[stage] = \
                            stage_counts.get(stage, 0) + int(count)
                payload["stage_counts"] = stage_counts
                payload["n_tasks"] = result.n_tasks
                payload["n_failed"] = result.n_failed
                payload["packets_simulated"] = result.packets_simulated
        return payload

    def jobs(self) -> List[Dict[str, Any]]:
        """Every job's bare record, oldest first."""
        return [job.to_dict() for job in self.queue.jobs()]

    def events(self, job_id: str, cursor: int = 0) -> Dict[str, Any]:
        """Progress rows for *job_id* with ``seq > cursor``, plus the
        next cursor to poll with.

        The job state is read *before* the journal, so a response
        saying ``done`` is guaranteed to already include the run's
        final rows — a follower can stop on it without losing the tail.
        Stale cursors (past the end) just return no events and echo the
        cursor back; cached jobs never ran, so they have no journal and
        stream nothing.
        """
        job = self._job(job_id)
        state = job.state
        rows = read_progress(str(self.progress_path(job_id)),
                             after=int(cursor))
        next_cursor = max([int(cursor)]
                          + [int(r.get("seq", 0)) for r in rows])
        return {"job_id": job_id, "state": state, "cached": job.cached,
                "cursor": next_cursor, "events": rows}

    def result(self, job_id: str) -> RunResult:
        """The completed result for *job_id*.

        Raises :class:`UnknownJobError` for unknown ids and
        :class:`ServiceError` when the job is not ``done`` yet (or
        failed).
        """
        job = self._job(job_id)
        if job.state != "done":
            raise ServiceError(
                f"job {job_id} is {job.state}"
                + (f": {job.error}" if job.error else ""))
        result = self.store.get(job.fingerprint)
        if result is None:
            raise ServiceError(
                f"job {job_id} is done but its result "
                f"({job.fingerprint}) is missing from the store")
        return result

    def raw_result(self, job_id: str) -> bytes:
        """The stored result record's exact bytes (bit-identical serving)."""
        job = self._job(job_id)
        if job.state != "done":
            raise ServiceError(
                f"job {job_id} is {job.state}"
                + (f": {job.error}" if job.error else ""))
        raw = self.store.raw(job.fingerprint)
        if raw is None:
            raise ServiceError(
                f"job {job_id} is done but its result "
                f"({job.fingerprint}) is missing from the store")
        return raw

    def wait(self, job_id: str, timeout_s: float = 60.0,
             poll_s: Optional[float] = None) -> JobRecord:
        """Block until *job_id* leaves the active states.

        Polling, not event-driven, on purpose: it works identically on
        a restarted service where the job predates this process.
        Raises :class:`TimeoutError` when the budget runs out.
        """
        interval = self.poll_s if poll_s is None else float(poll_s)
        attempts = max(1, int(timeout_s / interval) + 1)
        for _ in range(attempts):
            job = self._job(job_id)
            if not job.active:
                return job
            # Event.wait, not time.sleep: stop() wakes waiters early.
            if self._stop.wait(interval) and not self._threads:
                break
        job = self._job(job_id)
        if job.active:
            raise TimeoutError(
                f"job {job_id} still {job.state} after {timeout_s}s")
        return job

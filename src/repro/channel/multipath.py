"""Frequency-selective multipath: tapped-delay-line channel model.

Indoor backscatter paths are short but not single-ray; the hallway
deployments of Figure 9 see wall and floor reflections a few tens of
nanoseconds apart.  The classic exponential power-delay-profile TDL
captures this:

    h[k] ~ CN(0, p_k),   p_k ∝ exp(-k * Ts / tau_rms),  k = 0..L-1

OFDM shrugs this off (the cyclic prefix absorbs up to 800 ns and the
LTF equaliser inverts each subcarrier), which is precisely why the
802.11g/n excitation is such a robust carrier for backscatter; the
narrowband PHYs see it as mild flat-ish fading.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.rng import make_rng

__all__ = ["TappedDelayLine", "indoor_office_channel"]


@dataclass
class TappedDelayLine:
    """Random multipath channel with an exponential power-delay profile.

    Parameters
    ----------
    tau_rms_ns:
        RMS delay spread (indoor office: 30-70 ns; the CP absorbs up
        to 800 ns at 20 MS/s).
    sample_rate_hz:
        Simulation sample rate (sets the tap spacing).
    n_taps:
        Channel length; defaults to covering ~4 delay spreads.
    los_k_db:
        Rician K-factor of the first tap (line-of-sight strength);
        ``None`` makes all taps Rayleigh.
    """

    tau_rms_ns: float = 50.0
    sample_rate_hz: float = 20e6
    n_taps: Optional[int] = None
    los_k_db: Optional[float] = 6.0

    def __post_init__(self):
        if self.tau_rms_ns <= 0 or self.sample_rate_hz <= 0:
            raise ValueError("delay spread and sample rate must be positive")
        if self.n_taps is None:
            ts_ns = 1e9 / self.sample_rate_hz
            self.n_taps = max(1, int(np.ceil(4 * self.tau_rms_ns / ts_ns)))
        if self.n_taps < 1:
            raise ValueError("need at least one tap")

    def tap_powers(self) -> np.ndarray:
        """Normalised (unit-sum) exponential power-delay profile."""
        ts_ns = 1e9 / self.sample_rate_hz
        k = np.arange(self.n_taps)
        p = np.exp(-k * ts_ns / self.tau_rms_ns)
        return p / p.sum()

    def realize(self, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw one channel impulse response (unit mean energy)."""
        gen = make_rng(rng)
        p = self.tap_powers()
        h = np.sqrt(p / 2) * (gen.normal(size=self.n_taps)
                              + 1j * gen.normal(size=self.n_taps))
        if self.los_k_db is not None and self.n_taps >= 1:
            k_lin = 10 ** (self.los_k_db / 10)
            # Re-draw tap 0 as Rician with the same mean power.
            los = np.sqrt(p[0] * k_lin / (k_lin + 1))
            sigma = np.sqrt(p[0] / (2 * (k_lin + 1)))
            h[0] = los + sigma * (gen.normal() + 1j * gen.normal())
        return h

    def apply(self, signal: np.ndarray,
              rng: Optional[np.random.Generator] = None,
              h: Optional[np.ndarray] = None) -> np.ndarray:
        """Convolve *signal* with a (fresh or given) channel realisation.

        Output is truncated to the input length (trailing channel tail
        dropped), matching a receiver whose window starts at the first
        arriving ray.
        """
        if h is None:
            h = self.realize(rng)
        out = np.convolve(signal, h)
        return out[: len(signal)]

    def coherence_bandwidth_hz(self) -> float:
        """Approximate 50 %-correlation coherence bandwidth: 1/(5 tau)."""
        return 1.0 / (5 * self.tau_rms_ns * 1e-9)


def indoor_office_channel(sample_rate_hz: float = 20e6,
                          severity: str = "typical") -> TappedDelayLine:
    """Preset TDLs for the paper's office/hallway environment."""
    spreads = {"mild": 20.0, "typical": 50.0, "severe": 120.0}
    try:
        tau = spreads[severity]
    except KeyError:
        raise ValueError(f"severity must be one of {sorted(spreads)}") from None
    return TappedDelayLine(tau_rms_ns=tau, sample_rate_hz=sample_rate_hz)

"""Tests for the 802.11 scrambler (paper Figure 7 / equation 8)."""

import numpy as np
import pytest

from repro.phy.wifi.scrambler import (
    Scrambler,
    descramble,
    scramble,
    scrambler_sequence,
)
from repro.utils.bits import random_bits


class TestKeystream:
    def test_period_127(self):
        ks = scrambler_sequence(0b1011101, 254)
        assert np.array_equal(ks[:127], ks[127:])

    def test_all_ones_seed_reference(self):
        """IEEE 802.11 gives the first bits of the all-ones-seed sequence:
        0000111011110010 11001001..."""
        ks = scrambler_sequence(0x7F, 16)
        assert list(ks) == [0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 0, 1, 0]

    def test_nonzero_balance(self):
        # A maximal-length sequence has 64 ones and 63 zeros per period.
        ks = scrambler_sequence(1, 127)
        assert int(ks.sum()) == 64

    def test_no_seven_zero_run(self):
        # Needed by seed recovery: 7 consecutive keystream zeros never occur.
        ks = scrambler_sequence(45, 254)
        run = 0
        for b in ks:
            run = run + 1 if b == 0 else 0
            assert run < 7


class TestScrambleDescramble:
    def test_involution(self, rng):
        data = random_bits(500, rng)
        assert np.array_equal(descramble(scramble(data, 33), 33), data)

    def test_seed_matters(self, rng):
        data = random_bits(100, rng)
        assert not np.array_equal(scramble(data, 1), scramble(data, 2))

    def test_whitens_all_zeros(self):
        out = scramble(np.zeros(100, dtype=np.uint8), 91)
        assert 20 < out.sum() < 80  # no long constant runs

    def test_invalid_seed_raises(self):
        with pytest.raises(ValueError):
            Scrambler(0)
        with pytest.raises(ValueError):
            Scrambler(128)


class TestLinearity:
    def test_xor_linearity(self, rng):
        """scramble(a ^ b) == scramble(a) ^ keystream-free b — the property
        codeword translation relies on (section 3.2.1)."""
        a = random_bits(256, rng)
        b = random_bits(256, rng)
        lhs = scramble(np.bitwise_xor(a, b), 77)
        rhs = np.bitwise_xor(scramble(a, 77), b)
        assert np.array_equal(lhs, rhs)

    def test_complement_window_survives(self, rng):
        """Complementing a window of scrambled bits yields the complement
        of the descrambled window."""
        data = random_bits(300, rng)
        tx = scramble(data, 55)
        tx[100:200] ^= 1
        out = descramble(tx, 55)
        assert np.array_equal(out[:100], data[:100])
        assert np.array_equal(out[100:200], data[100:200] ^ 1)
        assert np.array_equal(out[200:], data[200:])


class TestState:
    def test_state_tracks_outputs(self):
        s = Scrambler(0b1011101)
        outputs = [s.next_bit() for _ in range(7)]
        # After 7 steps the state is exactly the last 7 outputs.
        expected = 0
        for b in outputs:
            expected = ((expected << 1) | b) & 0x7F
        assert s.state == expected

#!/usr/bin/env python3
"""Quickstart: one FreeRider tag riding a productive 802.11g/n packet.

A WiFi transmitter sends a normal 1500-byte frame; the tag embeds a
short message by codeword translation (180-degree phase flips spanning
four OFDM symbols each); a second commodity WiFi receiver on the
adjacent channel decodes the backscattered frame; XOR-ing the two
decoded bit streams recovers the tag message.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.channel.awgn import awgn_at_snr
from repro.core.decoder import XorTagDecoder
from repro.core.translation import PhaseTranslator
from repro.phy.wifi import WifiReceiver, WifiTransmitter
from repro.tag.tag import ExcitationInfo, FreeRiderTag
from repro.utils.bits import bits_to_bytes, bytes_to_bits


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. Productive WiFi traffic: a 6 Mb/s frame with a random payload.
    transmitter = WifiTransmitter(rate_mbps=6.0, seed=rng)
    psdu = transmitter.random_psdu(1500)
    frame = transmitter.build(psdu)
    print(f"excitation: 802.11g {frame.rate.mbps:.0f} Mb/s, "
          f"{len(psdu)} B payload, {frame.duration_us:.0f} us airtime")

    # 2. The tag embeds its message (here: the ASCII bytes "IoT!").
    message = b"IoT!"
    tag_bits = bytes_to_bits(message)
    tag = FreeRiderTag(PhaseTranslator(n_levels=2), repetition=4)
    info = ExcitationInfo(
        sample_rate_hz=20e6, unit_samples=80,
        data_start_sample=frame.data_start + 80,  # skip the SERVICE symbol
        total_samples=frame.n_samples)
    print(f"tag: capacity {tag.capacity_bits(info)} bits/packet, "
          f"sending {tag_bits.size} bits, "
          f"power {tag.power_budget(20e6).total_uw:.0f} uW")
    reflected = tag.backscatter(frame.samples, info, tag_bits)

    # 3. Channel to the backscatter receiver (20 dB SNR here).
    received = awgn_at_snr(reflected.samples, snr_db=20.0, rng=rng)

    # 4. A commodity receiver decodes the backscattered frame (its FCS
    #    fails -- monitor mode still delivers the bits).
    result = WifiReceiver().decode(received)
    assert result.header_ok, "backscattered header lost"
    print(f"receiver: header ok, FCS {'ok' if result.fcs_ok else 'bad '}"
          f"(expected bad: the tag re-wrote the payload)")

    # 5. XOR against the original stream, majority-vote each 4-symbol span.
    decoder = XorTagDecoder(bits_per_unit=frame.rate.n_dbps, repetition=4,
                            offset_bits=frame.rate.n_dbps, guard_bits=2)
    decoded = decoder.decode(frame.data_bits, result.data_field_bits,
                             n_tag_bits=tag_bits.size)
    recovered = bits_to_bytes(decoded.bits)
    print(f"tag message: sent {message!r}, recovered {recovered!r}, "
          f"bit errors {decoded.errors_against(tag_bits)}")


if __name__ == "__main__":
    main()

"""Tag-data extraction at the backhaul (paper Figure 1, right side).

Two commodity receivers deliver decoded bit/symbol streams: receiver 1
hears the original excitation packet, receiver 2 the backscattered copy
on the adjacent channel.  Tag data is the *difference* of the streams
(Table 1): XOR for bit-oriented PHYs (WiFi, Bluetooth), symbol
inequality for ZigBee's 16-ary codebook.  Majority voting over each tag
symbol's span undoes the repetition coding and absorbs the boundary
errors introduced by the scrambler / convolutional coder / OQPSK offset
(sections 3.2.1-3.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.utils.bits import as_bits, xor_bits

# Anything ``as_bits`` accepts: bit list/array or a '0101' string.
BitsLike = Union[Sequence[int], np.ndarray, str]

__all__ = ["TagDecodeResult", "XorTagDecoder", "SymbolDiffTagDecoder",
           "EnergyTagDecoder"]


@dataclass
class TagDecodeResult:
    """Recovered tag bits plus diagnostics."""

    bits: np.ndarray
    diff_stream: np.ndarray
    n_tag_symbols: int

    def errors_against(self, sent: BitsLike) -> int:
        """Bit errors w.r.t. the ground-truth *sent* bits (prefix
        comparison; missing bits count as errors)."""
        truth = as_bits(sent)
        n = min(truth.size, self.bits.size)
        errs = int(np.sum(truth[:n] != self.bits[:n]))
        return errs + (truth.size - n)

    def ber_against(self, sent: BitsLike) -> float:
        """BER w.r.t. ground truth."""
        truth = as_bits(sent)
        if truth.size == 0:
            return 0.0
        return self.errors_against(sent) / truth.size


class XorTagDecoder:
    """XOR + majority-vote decoder for bit-stream PHYs.

    Parameters
    ----------
    bits_per_unit:
        Decoded data bits carried by one PHY unit (N_DBPS for an OFDM
        symbol, 1 for a Bluetooth bit).
    repetition:
        PHY units per tag symbol; must match the tag's setting.
    offset_bits:
        Decoded-bit index where the tag's first symbol starts (0 when
        the tag begins at the first data unit).
    guard_bits:
        Bits ignored at both edges of each span before voting — the
        convolutional coder / discriminator smears span boundaries, so
        discounting them sharpens the vote.
    guard_front / guard_back:
        Asymmetric overrides of ``guard_bits``.  A self-synchronising
        descrambler (802.11b) smears only *forward* — 7 bits into each
        span — so its decoder wants a large front guard and none behind.
    """

    def __init__(self, bits_per_unit: int, repetition: int,
                 offset_bits: int = 0, guard_bits: int = 0,
                 guard_front: Optional[int] = None,
                 guard_back: Optional[int] = None) -> None:
        if bits_per_unit < 1 or repetition < 1:
            raise ValueError("bits_per_unit and repetition must be >= 1")
        if offset_bits < 0 or guard_bits < 0:
            raise ValueError("offsets must be non-negative")
        self.bits_per_unit = bits_per_unit
        self.repetition = repetition
        self.offset_bits = offset_bits
        self.guard_bits = guard_bits
        self.guard_front = guard_bits if guard_front is None else guard_front
        self.guard_back = guard_bits if guard_back is None else guard_back
        if self.guard_front < 0 or self.guard_back < 0:
            raise ValueError("guards must be non-negative")

    @property
    def span_bits(self) -> int:
        """Decoded bits covered by one tag symbol."""
        return self.bits_per_unit * self.repetition

    def capacity(self, stream_bits: int) -> int:
        """Tag symbols recoverable from a decoded stream of that size."""
        return max(0, (stream_bits - self.offset_bits) // self.span_bits)

    def decode(self, original: BitsLike, received: BitsLike,
               n_tag_bits: Optional[int] = None) -> TagDecodeResult:
        """Extract tag bits from the two decoded streams."""
        a, b = as_bits(original), as_bits(received)
        n = min(a.size, b.size)
        diff = xor_bits(a[:n], b[:n])
        n_syms = self.capacity(n)
        if n_tag_bits is not None:
            n_syms = min(n_syms, n_tag_bits)
        span = self.span_bits
        gf, gb = self.guard_front, self.guard_back
        if gf + gb >= span:  # keep at least one voting bit
            scale = (span - 1) / max(gf + gb, 1)
            gf, gb = int(gf * scale), int(gb * scale)
        # The spans tile the stream regularly, so every majority vote is
        # one integer row-sum of a reshaped view — exact, hence
        # interchangeable with the historical per-span loop.
        windows = diff[self.offset_bits:self.offset_bits + n_syms * span] \
            .reshape(n_syms, span)[:, gf:span - gb]
        votes = windows.sum(axis=1, dtype=np.int64)
        bits = (votes * 2 >= windows.shape[1]).astype(np.uint8)
        return TagDecodeResult(bits=bits, diff_stream=diff, n_tag_symbols=n_syms)


class SymbolDiffTagDecoder:
    """Symbol-inequality decoder for ZigBee's 16-ary codebook.

    A tag phase flip moves each PN codeword to a *different* valid
    codeword, so tag bit = [decoded symbol != original symbol], majority
    voted over each repetition group.
    """

    def __init__(self, repetition: int, offset_symbols: int = 0,
                 guard_symbols: int = 0) -> None:
        if repetition < 1:
            raise ValueError("repetition must be >= 1")
        if offset_symbols < 0 or guard_symbols < 0:
            raise ValueError("offsets must be non-negative")
        self.repetition = repetition
        self.offset_symbols = offset_symbols
        self.guard_symbols = guard_symbols

    def capacity(self, n_symbols: int) -> int:
        """Tag bits recoverable from *n_symbols* decoded symbols."""
        return max(0, (n_symbols - self.offset_symbols) // self.repetition)

    def decode(self, original_symbols: Union[Sequence[int], np.ndarray],
               received_symbols: Union[Sequence[int], np.ndarray],
               n_tag_bits: Optional[int] = None) -> TagDecodeResult:
        """Extract tag bits from two decoded 4-bit-symbol streams."""
        a = np.asarray(original_symbols, dtype=np.int64).ravel()
        b = np.asarray(received_symbols, dtype=np.int64).ravel()
        n = min(a.size, b.size)
        diff = (a[:n] != b[:n]).astype(np.uint8)
        n_bits = self.capacity(n)
        if n_tag_bits is not None:
            n_bits = min(n_bits, n_tag_bits)
        g = min(self.guard_symbols, (self.repetition - 1) // 2)
        rep = self.repetition
        # Regular spans -> one integer row-sum per vote (see XorTagDecoder).
        windows = diff[self.offset_symbols:self.offset_symbols
                       + n_bits * rep].reshape(n_bits, rep)[:, g:rep - g]
        votes = windows.sum(axis=1, dtype=np.int64)
        bits = (votes * 2 >= windows.shape[1]).astype(np.uint8)
        return TagDecodeResult(bits=bits, diff_stream=diff, n_tag_symbols=n_bits)


class EnergyTagDecoder:
    """Incoherent per-span energy detector — decodes the
    amplitude-modulation baseline (Wi-Fi Backscatter [15] style).

    Measures mean |x|^2 over each tag-symbol span of the *raw* received
    waveform and thresholds at the midpoint between the two observed
    level clusters.  Needs no second receiver, but pays for incoherence:
    the level separation must clear the noise, which costs ~10+ dB of
    SNR relative to FreeRider's coherent codeword translation.
    """

    def __init__(self, span_samples: int, start_sample: int = 0) -> None:
        if span_samples < 1:
            raise ValueError("span_samples must be >= 1")
        if start_sample < 0:
            raise ValueError("start_sample must be >= 0")
        self.span_samples = span_samples
        self.start_sample = start_sample

    def span_energies(self, waveform: np.ndarray,
                      n_tag_bits: Optional[int] = None) -> np.ndarray:
        """Mean power of each complete span."""
        wav = np.asarray(waveform)
        usable = (wav.size - self.start_sample) // self.span_samples
        if n_tag_bits is not None:
            usable = min(usable, n_tag_bits)
        energies = np.empty(max(usable, 0))
        for k in range(usable):
            a = self.start_sample + k * self.span_samples
            seg = wav[a:a + self.span_samples]
            energies[k] = float(np.mean(np.abs(seg) ** 2))
        return energies

    def decode(self, waveform: np.ndarray,
               n_tag_bits: Optional[int] = None) -> TagDecodeResult:
        """Threshold span energies into bits (1 = low reflection)."""
        energies = self.span_energies(waveform, n_tag_bits)
        if energies.size == 0:
            empty = np.zeros(0, dtype=np.uint8)
            return TagDecodeResult(empty, empty, 0)
        threshold = 0.5 * (energies.min() + energies.max())
        bits = (energies < threshold).astype(np.uint8)
        return TagDecodeResult(bits=bits, diff_stream=bits,
                               n_tag_symbols=int(bits.size))

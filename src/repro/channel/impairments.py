"""RF impairment models: CFO, phase noise, IQ imbalance, DC offset.

The paper's prototype numbers include real-front-end dirt that pure
AWGN simulation lacks (EXPERIMENTS.md "known deviations").  These
models let the ablation benches inject that dirt and quantify how much
of the paper's elevated ZigBee/Bluetooth tag BER it explains — and they
double as stress tests for the receivers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.rng import make_rng

__all__ = ["apply_cfo", "apply_phase_noise", "apply_iq_imbalance",
           "apply_dc_offset", "ImpairmentChain"]


def apply_cfo(signal: np.ndarray, cfo_hz: float, fs: float,
              phase0: float = 0.0) -> np.ndarray:
    """Carrier frequency offset: rotate at *cfo_hz*.

    Crystal tolerance of +/-20 ppm at 2.4 GHz is +/-48 kHz between two
    commodity radios; a FreeRider tag's ring oscillator adds its own
    (typically larger) offset to the shifted copy.
    """
    if fs <= 0:
        raise ValueError("sample rate must be positive")
    n = np.arange(len(signal))
    return signal * np.exp(1j * (2 * np.pi * cfo_hz * n / fs + phase0))


def apply_phase_noise(signal: np.ndarray, linewidth_hz: float, fs: float,
                      rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Wiener (random-walk) phase noise with the given 3 dB linewidth."""
    if linewidth_hz < 0:
        raise ValueError("linewidth must be non-negative")
    if fs <= 0:
        raise ValueError("sample rate must be positive")
    if linewidth_hz == 0:
        return signal.copy()
    gen = make_rng(rng)
    # Wiener process increment variance: 2*pi*linewidth / fs.
    sigma = np.sqrt(2 * np.pi * linewidth_hz / fs)
    phase = np.cumsum(gen.normal(0.0, sigma, len(signal)))
    return signal * np.exp(1j * phase)


def apply_iq_imbalance(signal: np.ndarray, gain_db: float = 0.5,
                       phase_deg: float = 2.0) -> np.ndarray:
    """Receiver IQ imbalance: gain mismatch and quadrature skew.

    Modelled as y = a*x + b*conj(x) with the standard image-rejection
    parameterisation.
    """
    g = 10 ** (gain_db / 20)
    phi = np.deg2rad(phase_deg)
    a = (1 + g * np.exp(-1j * phi)) / 2
    b = (1 - g * np.exp(1j * phi)) / 2
    return a * signal + b * np.conj(signal)


def apply_dc_offset(signal: np.ndarray, offset: complex) -> np.ndarray:
    """Additive DC (LO leakage at the receiver)."""
    return signal + offset


@dataclass
class ImpairmentChain:
    """A bundle of impairments applied in RF-realistic order.

    Parameters are per-packet constants; draw fresh chains for packet
    ensembles.  Zero values disable each stage.
    """

    cfo_hz: float = 0.0
    phase_noise_linewidth_hz: float = 0.0
    iq_gain_db: float = 0.0
    iq_phase_deg: float = 0.0
    dc_offset: complex = 0.0

    def apply(self, signal: np.ndarray, fs: float,
              rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Run the configured stages over *signal*."""
        out = signal
        if self.cfo_hz:
            out = apply_cfo(out, self.cfo_hz, fs)
        if self.phase_noise_linewidth_hz:
            out = apply_phase_noise(out, self.phase_noise_linewidth_hz,
                                    fs, rng)
        if self.iq_gain_db or self.iq_phase_deg:
            out = apply_iq_imbalance(out, self.iq_gain_db, self.iq_phase_deg)
        if self.dc_offset:
            out = apply_dc_offset(out, self.dc_offset)
        return out

    @classmethod
    def typical_commodity(cls, rng: Optional[np.random.Generator] = None,
                          max_cfo_hz: float = 30e3) -> "ImpairmentChain":
        """Draw a plausible commodity-radio impairment realisation."""
        gen = make_rng(rng)
        return cls(
            cfo_hz=float(gen.uniform(-max_cfo_hz, max_cfo_hz)),
            phase_noise_linewidth_hz=float(gen.uniform(50.0, 400.0)),
            iq_gain_db=float(gen.uniform(0.0, 0.5)),
            iq_phase_deg=float(gen.uniform(0.0, 2.0)),
        )

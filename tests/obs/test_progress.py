"""Progress journal: cursor-addressed JSONL, torn tails, resume."""

import json

from repro.obs import ProgressJournal, read_progress
from repro.obs.progress import last_seq


class TestProgressJournal:
    def test_rows_get_monotone_seq(self, tmp_path):
        path = str(tmp_path / "progress.jsonl")
        with ProgressJournal(path) as journal:
            assert journal.append({"kind": "run_start"}) == 1
            assert journal.append({"kind": "task"}) == 2
        rows = read_progress(path)
        assert [r["seq"] for r in rows] == [1, 2]
        assert rows[0]["kind"] == "run_start"
        assert rows[0]["elapsed_s"] >= 0.0

    def test_reopen_resumes_the_cursor_space(self, tmp_path):
        # A resumed job appends to the same journal; cursors held by
        # followers must stay valid, so seq keeps counting up.
        path = str(tmp_path / "progress.jsonl")
        with ProgressJournal(path) as journal:
            journal.append({"kind": "task"})
        with ProgressJournal(path) as journal:
            assert journal.append({"kind": "task"}) == 2
        assert last_seq(path) == 2

    def test_cursor_filters_already_seen_rows(self, tmp_path):
        path = str(tmp_path / "progress.jsonl")
        with ProgressJournal(path) as journal:
            for _ in range(4):
                journal.append({"kind": "task"})
        assert [r["seq"] for r in read_progress(path, after=2)] == [3, 4]

    def test_stale_cursor_yields_nothing(self, tmp_path):
        path = str(tmp_path / "progress.jsonl")
        with ProgressJournal(path) as journal:
            journal.append({"kind": "task"})
        assert read_progress(path, after=999) == []

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_progress(str(tmp_path / "nope.jsonl")) == []
        assert last_seq(str(tmp_path / "nope.jsonl")) == 0

    def test_torn_tail_is_skipped(self, tmp_path):
        path = str(tmp_path / "progress.jsonl")
        with ProgressJournal(path) as journal:
            journal.append({"kind": "task"})
            journal.append({"kind": "task"})
        with open(path, "a") as fh:
            fh.write('{"seq": 3, "kind": "tor')  # killed mid-write
        rows = read_progress(path)
        assert [r["seq"] for r in rows] == [1, 2]
        # And a journal reopened over the torn file keeps going safely.
        with ProgressJournal(path) as journal:
            assert journal.append({"kind": "run_end"}) == 3

    def test_foreign_lines_are_skipped(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        path.write_text("not json\n"
                        + json.dumps({"no_seq": True}) + "\n"
                        + json.dumps({"seq": 5, "kind": "task"}) + "\n"
                        + json.dumps([1, 2]) + "\n")
        rows = read_progress(str(path))
        assert [r["seq"] for r in rows] == [5]

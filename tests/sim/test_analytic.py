"""Cross-validation: the closed-form models agree with the simulators."""

import pytest

from repro.channel.geometry import Deployment
from repro.core.session import WifiBackscatterSession
from repro.mac.aloha import AlohaConfig, FramedSlottedAloha, TdmScheme
from repro.sim.analytic import (
    aloha_success_probability,
    aloha_throughput_kbps,
    backscatter_range_m,
    tag_goodput_kbps,
    tdm_throughput_kbps,
    wifi_tag_bits_per_packet,
)
from repro.sim.config import BLE_CONFIG, WIFI_CONFIG, ZIGBEE_CONFIG


class TestTagBitsFormula:
    @pytest.mark.parametrize("payload", [100, 512, 1000, 1500])
    def test_matches_session_capacity(self, payload):
        session = WifiBackscatterSession(seed=1, payload_bytes=payload)
        assert wifi_tag_bits_per_packet(payload) == session.capacity_bits()

    def test_goodput_formula(self):
        # 124 bits / (2024 + 50) us = 59.8 kb/s: the Figure 10 plateau.
        thr = tag_goodput_kbps(124, 2024.0, 50.0)
        assert thr == pytest.approx(59.8, abs=0.1)

    def test_goodput_validation(self):
        with pytest.raises(ValueError):
            tag_goodput_kbps(10, 0.0, 50.0)


class TestAlohaMath:
    def test_single_tag_always_succeeds(self):
        assert aloha_success_probability(1, 1) == 1.0

    def test_matched_frame_approaches_1_over_e(self):
        p = aloha_success_probability(100, 100)
        assert p * 100 / 100 == pytest.approx(1 / 2.718, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            aloha_success_probability(-1, 4)
        with pytest.raises(ValueError):
            aloha_success_probability(4, 0)

    def test_simulation_agrees_with_formula(self):
        cfg = AlohaConfig(min_slots=20, max_slots=20, initial_slots=20)
        sim = FramedSlottedAloha(cfg, seed=9).simulate(20, n_rounds=400)
        predicted = aloha_throughput_kbps(20, cfg, n_slots=20)
        assert sim.aggregate_throughput_kbps == pytest.approx(predicted,
                                                              rel=0.1)

    def test_tdm_simulation_agrees_with_formula(self):
        cfg = AlohaConfig()
        sim = TdmScheme(cfg, seed=10).simulate(16, n_rounds=100)
        predicted = tdm_throughput_kbps(16, cfg)
        assert sim.aggregate_throughput_kbps == pytest.approx(predicted,
                                                              rel=0.02)

    def test_tdm_asymptote_near_40(self):
        assert tdm_throughput_kbps(10_000) == pytest.approx(40.6, abs=1.0)


class TestRangeFormula:
    @pytest.mark.parametrize("config,expected", [
        (WIFI_CONFIG, 41.9), (ZIGBEE_CONFIG, 21.9), (BLE_CONFIG, 12.0)])
    def test_matches_bisection(self, config, expected):
        closed_form = backscatter_range_m(config)
        bisected = config.budget().max_range_m(1.0, config.sensitivity_dbm())
        assert closed_form == pytest.approx(bisected, rel=0.01)
        assert closed_form == pytest.approx(expected, abs=0.5)

    def test_zero_when_infeasible(self):
        assert backscatter_range_m(BLE_CONFIG, tx_to_tag_m=50.0) == 0.0

    def test_shrinks_with_exciter_distance(self):
        assert (backscatter_range_m(WIFI_CONFIG, 4.0)
                < backscatter_range_m(WIFI_CONFIG, 1.0) / 2)

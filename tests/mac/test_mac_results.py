"""Tests for MAC result containers and round bookkeeping."""

import pytest

from repro.mac.aloha import (
    AlohaConfig,
    FramedSlottedAloha,
    MacResult,
    MacRoundStats,
)


class TestMacRoundStats:
    def test_fields(self):
        r = MacRoundStats(n_slots=8, singles=3, collisions=2, empties=3,
                          duration_us=1e5)
        assert r.n_slots == r.singles + r.collisions + r.empties


class TestMacResult:
    def make(self):
        rounds = [MacRoundStats(8, 4, 2, 2, 1e5),
                  MacRoundStats(10, 5, 1, 4, 1.2e5)]
        return MacResult(n_tags=4, rounds=rounds,
                         per_tag_bits={0: 512, 1: 256, 2: 256, 3: 0})

    def test_totals(self):
        res = self.make()
        assert res.total_time_us == pytest.approx(2.2e5)
        assert res.delivered_bits == 1024

    def test_throughput(self):
        res = self.make()
        assert res.aggregate_throughput_kbps == pytest.approx(
            1024 / 2.2e5 * 1e3)

    def test_fairness_counts_silent_tags(self):
        res = self.make()
        # Tag 3 delivered nothing; fairness must reflect that.
        assert res.fairness < 1.0

    def test_collision_rate(self):
        res = self.make()
        assert res.collision_rate == pytest.approx(3 / 18)

    def test_empty_result(self):
        res = MacResult(n_tags=2, rounds=[], per_tag_bits={0: 0, 1: 0})
        assert res.aggregate_throughput_kbps == 0.0
        assert res.collision_rate == 0.0


class TestRoundBookkeeping:
    def test_counts_are_consistent(self):
        sim = FramedSlottedAloha(seed=42)
        res = sim.simulate(10, n_rounds=30)
        for r in res.rounds:
            assert r.singles + r.collisions + r.empties <= r.n_slots
            assert r.duration_us > 0

    def test_slots_track_controller(self):
        cfg = AlohaConfig(initial_slots=4, min_slots=2, max_slots=64)
        sim = FramedSlottedAloha(cfg, seed=43)
        res = sim.simulate(30, n_rounds=40)
        # Under heavy contention the frame must have grown.
        assert res.rounds[-1].n_slots > res.rounds[0].n_slots

    def test_delivered_bits_bounded_by_singles(self):
        sim = FramedSlottedAloha(seed=44)
        res = sim.simulate(6, n_rounds=25)
        max_bits = sum(r.singles for r in res.rounds) * 256
        assert res.delivered_bits <= max_bits

#!/usr/bin/env python3
"""Whole-system demo: the Figure 1 office, simulated end-to-end.

A WiFi exciter in the middle of an office floor, a backscatter receiver
by the window, and a dozen battery-free sensors scattered across desks.
The co-simulation runs PLM control, adaptive framed-slotted-Aloha, and
per-tag link budgets on one event timeline — then reports who got
heard, how fairly, and how fast, with an ASCII map of the coverage.

Run:  python examples/whole_system_demo.py
"""

import numpy as np

from repro.sim.config import WIFI_CONFIG
from repro.sim.netsim import NetworkSimulator, TagNode
from repro.tag.energy import EnergyBudget


def main() -> None:
    rng = np.random.default_rng(2026)

    # Scatter 12 tags: distances from the exciter (PLM + harvesting
    # range) and from the receiver (backscatter range).
    tags = []
    for i in range(12):
        tx_d = float(rng.uniform(0.5, 3.5))
        rx_d = float(rng.uniform(3.0, 50.0))
        tags.append(TagNode(i, tx_to_tag_m=tx_d, tag_to_rx_m=rx_d))

    sim = NetworkSimulator(WIFI_CONFIG, tags, ambient_load=0.25, seed=7)
    result = sim.run(n_rounds=60)

    print("deployment (exciter at *, receiver range in metres):\n")
    print(f"{'tag':>4s} {'tx->tag':>8s} {'tag->rx':>8s} "
          f"{'P(ctrl)':>8s} {'P(slot)':>8s} {'bits':>7s} "
          f"{'duty ok?':>9s}")
    energy = EnergyBudget()
    for t in tags:
        p_ctrl = sim.control_decode_prob(t)
        p_slot = sim.slot_delivery_prob(t)
        bits = result.per_tag_bits[t.tag_id]
        incident = sim.radio.tx_power_dbm - 30.0 \
            - 26.0 * np.log10(max(t.tx_to_tag_m, 0.1))
        duty = energy.sustainable_duty_cycle(incident)
        flag = "harvest" if duty >= 0.01 else "battery"
        print(f"{t.tag_id:4d} {t.tx_to_tag_m:8.1f} {t.tag_to_rx_m:8.1f} "
              f"{p_ctrl:8.2f} {p_slot:8.2f} {bits:7d} {flag:>9s}")

    print(f"\nrounds: {result.n_rounds}, wall time "
          f"{result.duration_us/1e6:.2f} s "
          f"(ambient load stretched the timeline 1.33x)")
    print(f"aggregate tag throughput: "
          f"{result.aggregate_throughput_kbps:.1f} kb/s")
    print(f"coverage: {100*result.coverage:.0f} % of tags heard")
    print(f"slot collisions: {result.collisions} "
          f"across {result.slots_used} slots")

    heard = [b for b in result.per_tag_bits.values() if b > 0]
    if heard:
        from repro.mac.fairness import jain_index

        print(f"Jain fairness among heard tags: "
              f"{jain_index(heard):.2f}")


if __name__ == "__main__":
    main()

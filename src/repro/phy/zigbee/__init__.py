"""802.15.4 (ZigBee) 2.4 GHz PHY: 4-bit symbols spread to 32-chip PN
sequences, half-sine-shaped OQPSK at 2 Mchip/s (250 kb/s).

The offset-quadrature structure is what makes naive tag phase flips
corrupt a symbol boundary (paper section 3.2.2), motivating FreeRider's
N=8 symbol repetition.
"""

from repro.phy.zigbee.chips import CHIP_SEQUENCES, symbols_to_chips, nearest_symbol
from repro.phy.zigbee.oqpsk import OqpskModem
from repro.phy.zigbee.frame import ZigbeeFrameBuilder, ZIGBEE_PREAMBLE, ZIGBEE_SFD
from repro.phy.zigbee.transmitter import ZigbeeTransmitter, ZigbeeFrame
from repro.phy.zigbee.receiver import ZigbeeReceiver, ZigbeeDecodeResult

__all__ = [
    "CHIP_SEQUENCES",
    "symbols_to_chips",
    "nearest_symbol",
    "OqpskModem",
    "ZigbeeFrameBuilder",
    "ZIGBEE_PREAMBLE",
    "ZIGBEE_SFD",
    "ZigbeeTransmitter",
    "ZigbeeFrame",
    "ZigbeeReceiver",
    "ZigbeeDecodeResult",
]

"""Bluetooth receive chain: channel filter -> discriminator -> bit
decisions -> de-whiten -> CRC check.

The channel filter runs *before* the discriminator, so any signal energy
outside +/-500 kHz — including the tag's undesired mirror sideband — is
suppressed exactly as the paper's equation (10) argument requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.obs import forensics
from repro.phy.ble.frame import BleFrameBuilder
from repro.phy.ble.gfsk import GfskModem

__all__ = ["BleReceiver", "BleDecodeResult"]


@dataclass
class BleDecodeResult:
    """Outcome of decoding one packet waveform."""

    payload: Optional[bytes]
    bits: Optional[np.ndarray]
    crc_ok: bool
    sync_ok: bool
    # First receive stage that failed (forensics taxonomy), "ok" if none.
    stage: str = forensics.OK

    @property
    def ok(self) -> bool:
        return self.sync_ok and self.crc_ok


class BleReceiver:
    """Decode GFSK packets from :class:`BleTransmitter` (optionally after
    tag modification and channel impairment).

    Parameters
    ----------
    sps:
        Samples per bit; must match the transmitter.
    channel_bandwidth_hz:
        Receiver channel selectivity (1 MHz for the CC2541).
    monitor_mode:
        Deliver packets whose CRC fails.
    """

    def __init__(self, sps: int = 8, channel: int = 37,
                 channel_bandwidth_hz: float = 1e6,
                 monitor_mode: bool = True):
        self._modem = GfskModem(sps=sps)
        self._builder = BleFrameBuilder(channel=channel)
        self.channel_bandwidth_hz = channel_bandwidth_hz
        self.monitor_mode = monitor_mode
        self.sps = sps

    def decode_bits(self, waveform: np.ndarray, n_bits: int) -> np.ndarray:
        """Raw hard bit decisions after channel filtering."""
        filtered = self._modem.channel_filter(waveform, self.channel_bandwidth_hz)
        return self._modem.demodulate(filtered, n_bits)

    def decode_bits_batch(self, waveforms: np.ndarray,
                          n_bits: int) -> np.ndarray:
        """Batched :meth:`decode_bits` over a (B, N) stack; returns
        (B, n_bits) hard bits, bit-identical per row.  The whole chain —
        FFT channel filter, discriminator, per-bit integration — runs
        over the stack at once."""
        wav = np.asarray(waveforms)
        if wav.ndim != 2:
            raise ValueError("decode_bits_batch expects a (B, N) array")
        filtered = self._modem.channel_filter_batch(
            wav, self.channel_bandwidth_hz)
        return self._modem.demodulate_batch(filtered, n_bits)

    def decode(self, waveform: np.ndarray, n_bits: int) -> BleDecodeResult:
        """Full decode of one packet aligned at sample 0."""
        bits = self.decode_bits(waveform, n_bits)
        payload, crc_ok = self._builder.parse_bits(bits)
        sync_ok = payload is not None
        if not sync_ok:
            return BleDecodeResult(None, bits, False, False,
                                   stage=forensics.SYNC_FAIL)
        if not crc_ok and not self.monitor_mode:
            return BleDecodeResult(None, bits, False, True,
                                   stage=forensics.CRC_FAIL)
        return BleDecodeResult(payload, bits, crc_ok, True,
                               stage=(forensics.OK if crc_ok
                                      else forensics.CRC_FAIL))

"""Tag-side codeword translation waveform builders.

A FreeRider tag never synthesises a carrier: it multiplies the passing
excitation signal by a slowly varying control waveform.  For OFDM WiFi
and ZigBee that waveform is a piecewise-constant phasor e^{j theta_k}
(equations 4 and 5 of the paper); for Bluetooth it is a square wave
toggled at delta_f during "1" units (equation 6).

:class:`TranslationPlan` captures the timing: which PHY unit (OFDM
symbol / ZigBee symbol / Bluetooth bit) each tag bit covers, and the
repetition factor that makes the translation survive the scrambler and
convolutional coder (section 3.2.1) or OQPSK offset structure (3.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.utils.bits import as_bits
from repro.dsp.mixing import square_wave

# Anything ``as_bits`` accepts: bit list/array or a '0101' string.
BitsLike = Union[Sequence[int], np.ndarray, str]

__all__ = ["TranslationPlan", "PhaseTranslator", "AlternatingPhaseTranslator",
           "AmplitudeTranslator", "FskShiftTranslator",
           "bits_per_symbol_for_phase_levels"]


def bits_per_symbol_for_phase_levels(n_levels: int) -> int:
    """Tag bits carried per phase step: 2 levels -> 1 bit (eq. 4),
    4 levels -> 2 bits (eq. 5)."""
    if n_levels not in (2, 4):
        raise ValueError("FreeRider uses 2 (binary) or 4 (quaternary) phases")
    return 1 if n_levels == 2 else 2


@dataclass(frozen=True)
class TranslationPlan:
    """Timing of a translation over an excitation packet.

    Parameters
    ----------
    unit_samples:
        Samples per PHY unit (80 for a 20 MS/s OFDM symbol, 32*sps for a
        ZigBee symbol, sps for a Bluetooth bit).
    repetition:
        PHY units covered by one tag symbol (4 OFDM symbols at 6 Mb/s,
        8 ZigBee symbols, ~large for Bluetooth).
    start_sample:
        Where modulation begins (after preamble + envelope latency).
    n_units:
        PHY units available from *start_sample* to packet end.
    """

    unit_samples: int
    repetition: int
    start_sample: int
    n_units: int

    def __post_init__(self) -> None:
        if self.unit_samples < 1 or self.repetition < 1:
            raise ValueError("unit_samples and repetition must be >= 1")
        if self.start_sample < 0 or self.n_units < 0:
            raise ValueError("start_sample and n_units must be >= 0")

    @property
    def symbols_capacity(self) -> int:
        """Tag symbols (phase steps) that fit in the packet."""
        return self.n_units // self.repetition

    def capacity_bits(self, bits_per_symbol: int = 1) -> int:
        """Tag bits that fit in the packet."""
        return self.symbols_capacity * bits_per_symbol

    def tag_symbol_span(self, k: int) -> slice:
        """Sample range covered by tag symbol *k*."""
        step = self.unit_samples * self.repetition
        a = self.start_sample + k * step
        return slice(a, a + step)


class PhaseTranslator:
    """Piecewise-constant phase modulation (WiFi and ZigBee).

    Parameters
    ----------
    n_levels:
        2 for the binary scheme (delta-theta = 180 deg), 4 for the
        quaternary scheme (90 deg steps).
    delta_theta:
        Phase step in radians; default pi for binary, pi/2 for
        quaternary.
    """

    def __init__(self, n_levels: int = 2,
                 delta_theta: Optional[float] = None) -> None:
        self.bits_per_symbol = bits_per_symbol_for_phase_levels(n_levels)
        self.n_levels = n_levels
        if delta_theta is None:
            delta_theta = np.pi if n_levels == 2 else np.pi / 2
        self.delta_theta = float(delta_theta)

    def symbols_from_bits(self, tag_bits: BitsLike) -> np.ndarray:
        """Group tag bits into phase-level indices (MSB first per pair)."""
        bits = as_bits(tag_bits)
        bps = self.bits_per_symbol
        n = bits.size // bps
        if n * bps != bits.size:
            raise ValueError(f"bit count must be a multiple of {bps}")
        if bps == 1:
            return bits.astype(np.int64)
        pairs = bits.reshape(n, 2)
        return (2 * pairs[:, 0] + pairs[:, 1]).astype(np.int64)

    def control_waveform(self, tag_bits: BitsLike, plan: TranslationPlan,
                         total_samples: int) -> np.ndarray:
        """Per-sample complex multiplier implementing equations (4)/(5).

        Samples outside the modulated region are 1 (pure reflection).
        Raises when the bits exceed the packet's capacity.
        """
        levels = self.symbols_from_bits(tag_bits)
        if levels.size > plan.symbols_capacity:
            raise ValueError(
                f"{levels.size} tag symbols exceed capacity "
                f"{plan.symbols_capacity}")
        ctrl = np.ones(total_samples, dtype=complex)
        for k, lvl in enumerate(levels):
            span = plan.tag_symbol_span(k)
            if span.stop > total_samples:
                raise ValueError("translation plan overruns the packet")
            ctrl[span] = np.exp(1j * self.delta_theta * lvl)
        return ctrl

    def control_waveform_batch(self, bit_rows: Sequence[BitsLike],
                               plan: TranslationPlan,
                               total_samples: int) -> np.ndarray:
        """Stacked :meth:`control_waveform` over same-length bit rows.

        Tag symbols cover contiguous, back-to-back sample spans, so the
        whole modulated region is one ``repeat`` of per-symbol phasors.
        The phasor for each level is ``np.exp`` of exactly the scalar
        builder's argument, making every row bit-identical to building
        it alone — which the batched channel relies on.
        """
        levels = np.stack([self.symbols_from_bits(b) for b in bit_rows])
        n_sym = levels.shape[1]
        if n_sym > plan.symbols_capacity:
            raise ValueError(
                f"{n_sym} tag symbols exceed capacity "
                f"{plan.symbols_capacity}")
        ctrl = np.ones((levels.shape[0], total_samples), dtype=complex)
        if n_sym:
            step = plan.unit_samples * plan.repetition
            stop = plan.start_sample + n_sym * step
            if stop > total_samples:
                raise ValueError("translation plan overruns the packet")
            phasors = np.exp(1j * self.delta_theta * np.arange(self.n_levels))
            ctrl[:, plan.start_sample:stop] = np.repeat(
                phasors[levels], step, axis=1)
        return ctrl


class AmplitudeTranslator:
    """Naive amplitude modulation — the Wi-Fi Backscatter [15] baseline
    FreeRider improves on, and the Figure 2 counter-example.

    The tag switches between two reflection magnitudes (two termination
    impedances).  On a multi-subcarrier OFDM signal this scales *every*
    subcarrier, pushing QAM points off their grid (invalid codewords),
    so the data cannot be recovered by codeword translation — only by
    incoherent per-span energy measurement, which needs far more SNR.
    """

    bits_per_symbol = 1

    def __init__(self, high: float = 1.0, low: float = 0.5) -> None:
        if not 0 <= low < high:
            raise ValueError("need 0 <= low < high reflection magnitudes")
        self.high = float(high)
        self.low = float(low)

    def control_waveform(self, tag_bits: BitsLike, plan: TranslationPlan,
                         total_samples: int) -> np.ndarray:
        """Per-sample real gain: *low* during 1-bits, *high* otherwise."""
        bits = as_bits(tag_bits)
        if bits.size > plan.symbols_capacity:
            raise ValueError(
                f"{bits.size} tag bits exceed capacity "
                f"{plan.symbols_capacity}")
        ctrl = np.full(total_samples, self.high, dtype=float)
        for k, b in enumerate(bits):
            span = plan.tag_symbol_span(k)
            if span.stop > total_samples:
                raise ValueError("translation plan overruns the packet")
            if b:
                ctrl[span] = self.low
        return ctrl


class AlternatingPhaseTranslator:
    """Differential-domain phase modulation for DBPSK excitation
    (802.11b — the HitchHike-style translation of [25]).

    On a differentially-encoded PHY, an *absolute* phase flip only
    disturbs the two symbols at its edges: the receiver decodes phase
    transitions, not phases.  To embed data the tag therefore modulates
    transitions: during a tag-bit-1 span it toggles its reflection
    phase at every PHY symbol boundary (each toggle flips one decoded
    bit); during a tag-bit-0 span it holds.  The received scrambled
    stream becomes c XOR d with d piecewise-constant per span, and the
    self-synchronising descrambler maps that to the plain-bit XOR with
    only 7-bit edge smear.
    """

    bits_per_symbol = 1

    def control_waveform(self, tag_bits: BitsLike, plan: TranslationPlan,
                         total_samples: int) -> np.ndarray:
        """Per-sample +/-1 multiplier; phase state is continuous across
        spans (a real tag cannot jump its switch state acausally)."""
        bits = as_bits(tag_bits)
        if bits.size > plan.symbols_capacity:
            raise ValueError(
                f"{bits.size} tag bits exceed capacity "
                f"{plan.symbols_capacity}")
        ctrl = np.ones(total_samples, dtype=float)
        state = 1.0
        unit = plan.unit_samples
        for k, b in enumerate(bits):
            span = plan.tag_symbol_span(k)
            if span.stop > total_samples:
                raise ValueError("translation plan overruns the packet")
            for u in range(plan.repetition):
                if b:
                    state = -state
                a = span.start + u * unit
                ctrl[a:a + unit] = state
        # Hold the final state to the end of the packet.
        if bits.size:
            tail = plan.tag_symbol_span(bits.size - 1).stop
            ctrl[tail:] = state
        return ctrl


class FskShiftTranslator:
    """Square-wave frequency-shift modulation (Bluetooth, equation 6).

    To send tag bit 1 the control waveform toggles at *delta_f*
    (swapping the FSK tones f1 <-> f0 after the receiver's channel
    filter discards the mirror sideband); for tag bit 0 it reflects
    unmodified.

    Parameters
    ----------
    delta_f:
        Toggle frequency; |f1 - f0| = 500 kHz swaps the Bluetooth tones.
    sample_rate_hz:
        Baseband sample rate of the excitation waveform.
    """

    bits_per_symbol = 1

    def __init__(self, delta_f: float = 500e3,
                 sample_rate_hz: float = 8e6) -> None:
        if delta_f <= 0 or sample_rate_hz <= 0:
            raise ValueError("frequencies must be positive")
        if delta_f >= sample_rate_hz / 2:
            raise ValueError("delta_f must respect Nyquist")
        self.delta_f = float(delta_f)
        self.sample_rate_hz = float(sample_rate_hz)

    @staticmethod
    def satisfies_sideband_condition(delta_f: float, modulation_index: float,
                                     bandwidth_hz: float) -> bool:
        """Equation (10): the undesired sideband must land outside the
        channel, i.e. delta_f > (1 - i) * w / 2."""
        return delta_f > (1 - modulation_index) * bandwidth_hz / 2

    def control_waveform(self, tag_bits: BitsLike, plan: TranslationPlan,
                         total_samples: int) -> np.ndarray:
        """Per-sample real multiplier implementing equation (6).

        The square wave runs phase-continuously across consecutive
        1-bits; 0-bits reflect with a constant +1.
        """
        bits = as_bits(tag_bits)
        if bits.size > plan.symbols_capacity:
            raise ValueError(
                f"{bits.size} tag bits exceed capacity {plan.symbols_capacity}")
        ctrl = np.ones(total_samples, dtype=float)
        n_total = total_samples
        # One long square wave evaluated on the global time axis keeps
        # the toggle phase-continuous between adjacent 1-bits.
        sq = square_wave(n_total, self.delta_f, self.sample_rate_hz)
        for k, b in enumerate(bits):
            if not b:
                continue
            span = plan.tag_symbol_span(k)
            if span.stop > total_samples:
                raise ValueError("translation plan overruns the packet")
            ctrl[span] = sq[span]
        return ctrl

    def control_waveform_batch(self, bit_rows: Sequence[BitsLike],
                               plan: TranslationPlan,
                               total_samples: int) -> np.ndarray:
        """Stacked :meth:`control_waveform` over same-length bit rows.

        The square wave is evaluated once on the global time axis (as
        the scalar builder does) and selected per 1-bit span with
        ``np.where``, so every row carries exactly the values the
        scalar builder would have written — bit rows only choose
        between ``sq[span]`` and the +1 rest state.
        """
        rows = np.stack([as_bits(b) for b in bit_rows])
        n_bits = rows.shape[1]
        if n_bits > plan.symbols_capacity:
            raise ValueError(
                f"{n_bits} tag bits exceed capacity {plan.symbols_capacity}")
        ctrl = np.ones((rows.shape[0], total_samples), dtype=float)
        if n_bits:
            step = plan.unit_samples * plan.repetition
            stop = plan.start_sample + n_bits * step
            if stop > total_samples:
                raise ValueError("translation plan overruns the packet")
            sq = square_wave(total_samples, self.delta_f, self.sample_rate_hz)
            mask = np.repeat(rows.astype(bool), step, axis=1)
            ctrl[:, plan.start_sample:stop] = np.where(
                mask, sq[plan.start_sample:stop], 1.0)
        return ctrl

"""Replay the committed corpus: frozen-expectation conformance plus the
batched-vs-scalar differential sweep over on-disk inputs (satellite 2,
extending the PR 7 bit-identity tests to frozen waveforms)."""

import numpy as np
import pytest

from repro import obs
from repro.iq.corpus import default_corpus_dir
from repro.iq.format import capture_names, iter_captures, read_capture
from repro.iq.replay import (
    MODES,
    _excitation_for,
    _session_for,
    replay_corpus,
)
from repro.utils.bits import as_bits

CORPUS = default_corpus_dir()
NAMES = capture_names(CORPUS)


def test_committed_corpus_exists():
    assert NAMES, (
        f"no committed corpus at {CORPUS}; regenerate with "
        f"`python -m repro corpus generate`")


@pytest.mark.parametrize("mode", MODES)
def test_full_corpus_replays_bit_identically(mode):
    report = replay_corpus(CORPUS, modes=(mode,))
    assert report.entries == len(NAMES)
    assert report.ok, "\n".join(
        f"{d.name} [{d.mode}] {d.field}: expected {d.expected!r}, "
        f"got {d.actual!r}" for d in report.diffs)


@pytest.mark.parametrize("name", NAMES)
def test_scalar_batched_differential(name):
    """Per-capture differential: identical result fields, identical
    stage/packets counters, identical generator state."""
    capture = read_capture(CORPUS, name)
    cache = {}
    session = _session_for(capture, cache)
    exc = _excitation_for(capture, session)
    bits = as_bits(capture.meta["tag_bits"])
    state0 = session._rng.bit_generator.state
    outcomes = {}
    for mode in MODES:
        with obs.collect() as reg:
            result = session.decode_iq(
                capture.samples, exc, bits,
                noise_var=float(capture.meta["noise_var"]),
                snr_db=float(capture.meta["snr_db"]),
                batched=(mode == "batched"))
        outcomes[mode] = (
            (result.delivered, result.tag_bits_sent,
             result.tag_bit_errors),
            reg.snapshot()["counters"],
        )
        assert session._rng.bit_generator.state == state0
    scalar_fields, scalar_counters = outcomes["scalar"]
    batched_fields, batched_counters = outcomes["batched"]
    assert scalar_fields == batched_fields
    assert scalar_counters == batched_counters


def test_replay_uses_frozen_rounding():
    """Expectations were frozen against the stored complex64 samples —
    replaying them must not need the original complex128 waveform."""
    for capture in iter_captures(CORPUS):
        assert capture.samples.dtype == np.complex64


def test_gated_captures_have_no_samples():
    gated = [c for c in iter_captures(CORPUS) if c.meta["gated"]]
    assert gated, "corpus must include envelope-gated captures"
    for capture in gated:
        assert capture.samples.size == 0
        assert capture.expect["stage"] == "sync_fail"


def test_expectations_carry_full_outcome():
    from repro.obs.forensics import STAGES

    for capture in iter_captures(CORPUS):
        expect = capture.expect
        assert set(expect) == {"stage", "delivered", "bits_sent",
                               "bit_errors"}
        assert 0 <= expect["bit_errors"] <= expect["bits_sent"]
        # Stage vocabulary is closed over the forensics taxonomy.
        assert expect["stage"] in STAGES

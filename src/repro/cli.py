"""Command-line interface: run FreeRider experiments without writing code.

    python -m repro run    --radio wifi --distances 1,10,20 --jobs 4
    python -m repro run    --spec-json spec.json --checkpoint sweep.jsonl
    python -m repro sweep  --radio wifi --deployment los --distances 1,10,20
    python -m repro mac    --tags 4,8,12,16,20 --rounds 100 --jobs 2
    python -m repro packet --radio zigbee --snr 15
    python -m repro regime
    python -m repro power
    python -m repro bench  # PHY micro-benchmarks -> BENCH_phy.json
    python -m repro lint   # project static analysis (reprolint)

    python -m repro corpus generate              # freeze IQ waveforms
    python -m repro corpus replay --report d.json  # diff vs frozen
    python -m repro corpus fuzz --iterations 200 --seed 7

    python -m repro serve  --root svc --port 8351        # sweep service
    python -m repro submit --radio zigbee --distances 2,6 --wait
    python -m repro status job-000001
    python -m repro fetch  job-000001

Spec-driven commands (``run``, ``submit``) accept either inline radio
flags or ``--spec-json`` — a versioned spec envelope
(:mod:`repro.sim.spec`): ``{"kind": "link"|"mac", "version": 1,
"spec": {...}}``.  ``sweep`` and ``mac`` remain as spec-builder
shorthands over the same execution path.

The flag surface is normalized across subcommands: ``--jobs``,
``--metrics-json``, ``--trace``, and ``--checkpoint`` are spelled and
behave identically everywhere they appear (``run``/``sweep``/``mac``
write them, ``report`` reads them back, ``bench`` writes
``--metrics-json``, ``submit --wait`` writes ``--metrics-json`` from
the fetched result).  Older spellings (``--n-jobs``, ``--metrics``,
``--trace-file``, ``--resume``) still parse as hidden deprecated
aliases and warn on stderr.

Robustness and observability flags (run/sweep/mac):

* ``--failure-policy degrade`` finishes the sweep even when points
  fail (flagged in the table/record instead of aborting), with
  ``--retries`` attempts per point and ``--task-timeout`` seconds per
  attempt;
* ``--checkpoint sweep.jsonl`` journals completed points so a killed
  run resumes bit-identically;
* ``--metrics-json PATH`` (or ``-`` for stdout) writes per-stage PHY
  timers, retry counters, and per-task records;
* ``--metrics-prom PATH`` writes the same aggregates in Prometheus
  text exposition format;
* ``--trace PATH`` writes a JSONL trace (spans, retry/requeue events,
  sampled per-packet decode forensics) keyed by the spec fingerprint,
  with ``--trace-every-n`` / ``--trace-failures-only`` sampling knobs;
* ``repro report`` renders a finished run (metrics record + trace +
  checkpoint journal) into a text or markdown report.

Service commands (``serve``/``submit``/``status``/``fetch``) talk to
the persistent sweep service (:mod:`repro.service`): submissions are
deduplicated by spec fingerprint against a content-addressed result
store, so an identical spec submitted twice returns the cached,
bit-identical result without running the engine.  ``--url`` defaults
to ``$REPRO_SERVICE_URL`` or ``http://127.0.0.1:8351``.

Radio choices come from the session registry
(:mod:`repro.core.registry`) and the calibrated config table, so a
newly registered radio appears here without touching this module.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, Dict, List, Optional

from repro.channel.geometry import Deployment
from repro.core.registry import create_session, registered_radios
from repro.sim.config import config_by_name, config_names
from repro.sim.results import format_table

__all__ = ["main", "build_parser"]


def _parse_floats(text: str) -> List[float]:
    try:
        values = [float(v) for v in text.split(",") if v.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad number list: {text!r}")
    if not values:
        raise argparse.ArgumentTypeError("empty list")
    return values


def _parse_ints(text: str) -> List[int]:
    return [int(v) for v in _parse_floats(text)]


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


# -- normalized shared flags ----------------------------------------------
# One definition per shared flag: every subcommand that offers --jobs,
# --metrics-json, --trace, or --checkpoint registers it from this table,
# so spelling, type, metavar, and the deprecated aliases cannot drift
# between subcommands.  Help text may be overridden where the flag is an
# input rather than an output (repro report), but never the rest.

class _DeprecatedAlias(argparse.Action):
    """Hidden alias that stores into the canonical dest and warns."""

    def __init__(self, option_strings: List[str], dest: str,
                 canonical: str = "", **kwargs: Any) -> None:
        self.canonical = canonical
        super().__init__(option_strings, dest, **kwargs)

    def __call__(self, parser: argparse.ArgumentParser,
                 namespace: argparse.Namespace, values: Any,
                 option_string: Optional[str] = None) -> None:
        print(f"warning: {option_string} is deprecated; "
              f"use {self.canonical}", file=sys.stderr)
        setattr(namespace, self.dest, values)


_SHARED_FLAGS: Dict[str, Dict[str, Any]] = {
    "jobs": {
        "flag": "--jobs",
        "aliases": ("--n-jobs",),
        "kwargs": {"type": _positive_int, "default": 1,
                   "help": "worker processes (results are identical "
                           "for any value)"},
    },
    "metrics-json": {
        "flag": "--metrics-json",
        "aliases": ("--metrics",),
        "kwargs": {"metavar": "PATH", "default": None,
                   "help": "write stage timers / retry counters / "
                           "task records as JSON ('-' for stdout)"},
    },
    "trace": {
        "flag": "--trace",
        "aliases": ("--trace-file",),
        "kwargs": {"metavar": "PATH", "default": None,
                   "help": "write a JSONL trace (spans, retry events, "
                           "sampled per-packet forensics) keyed by the "
                           "spec fingerprint"},
    },
    "checkpoint": {
        "flag": "--checkpoint",
        "aliases": ("--resume",),
        "kwargs": {"metavar": "PATH", "default": None,
                   "help": "JSONL journal of completed points; an "
                           "interrupted run resumes from it "
                           "bit-identically"},
    },
}


def _add_shared(parser: argparse.ArgumentParser, name: str,
                **overrides: Any) -> None:
    entry = _SHARED_FLAGS[name]
    kwargs = dict(entry["kwargs"])
    kwargs.update(overrides)
    parser.add_argument(entry["flag"], **kwargs)
    dest = entry["flag"].lstrip("-").replace("-", "_")
    alias_kwargs: Dict[str, Any] = {"action": _DeprecatedAlias,
                                    "canonical": entry["flag"],
                                    "dest": dest,
                                    "help": argparse.SUPPRESS}
    if "type" in kwargs:
        alias_kwargs["type"] = kwargs["type"]
    for alias in entry["aliases"]:
        parser.add_argument(alias, **alias_kwargs)


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    _add_shared(parser, "jobs")
    parser.add_argument("--json", action="store_true",
                        help="emit a JSON record (points + timing) "
                             "instead of a table")
    parser.add_argument("--failure-policy", choices=["fail-fast", "degrade"],
                        default="fail-fast",
                        help="abort on the first exhausted point, or "
                             "flag it and finish the sweep")
    parser.add_argument("--retries", type=_positive_int, default=1,
                        metavar="N",
                        help="attempts per point (retries reuse the "
                             "point's seed, so results are unchanged)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-attempt time limit")
    _add_shared(parser, "checkpoint")
    _add_shared(parser, "metrics-json")
    parser.add_argument("--metrics-prom", metavar="PATH", default=None,
                        help="write the same counters/timers/spans in "
                             "Prometheus text exposition format")
    _add_shared(parser, "trace")
    parser.add_argument("--trace-every-n", type=_positive_int, default=1,
                        metavar="N",
                        help="sample every Nth packet event (default: "
                             "all); stage counters stay exact")
    parser.add_argument("--trace-failures-only", action="store_true",
                        help="only record packet events for failed "
                             "decode stages")


def _add_link_spec_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--radio", default="wifi", choices=config_names())
    parser.add_argument("--deployment", default="los",
                        choices=["los", "nlos"])
    parser.add_argument("--distances", type=_parse_floats,
                        default=[1, 5, 10, 20, 30, 40])
    parser.add_argument("--packets", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--payload-bytes", type=int, default=None,
                        help="override the calibrated excitation payload")
    parser.add_argument("--repetition", type=int, default=None,
                        help="override the calibrated symbol repetition")


def _add_spec_source(parser: argparse.ArgumentParser) -> None:
    """Flags that select *what* to run: an enveloped spec file, or the
    inline link/MAC builder flags."""
    parser.add_argument("--spec-json", metavar="PATH", default=None,
                        help="read a versioned spec envelope "
                             '({"kind","version","spec"}) from PATH '
                             "('-' for stdin); overrides the inline "
                             "spec flags")
    _add_link_spec_options(parser)
    parser.add_argument("--mac", action="store_true",
                        help="build a MAC tag-count sweep instead of a "
                             "link distance sweep")
    parser.add_argument("--tags", type=_parse_ints,
                        default=[4, 8, 12, 16, 20],
                        help="tag counts for --mac")
    parser.add_argument("--rounds", type=int, default=100,
                        help="simulated rounds for --mac")


def _add_url_option(parser: argparse.ArgumentParser) -> None:
    from repro.service.client import DEFAULT_URL

    parser.add_argument("--url", metavar="URL",
                        default=os.environ.get("REPRO_SERVICE_URL",
                                               DEFAULT_URL),
                        help="sweep service base URL (default: "
                             "$REPRO_SERVICE_URL or %(default)s)")


# -- spec construction and execution (shared by run/sweep/mac/submit) -----

def _link_spec_from_args(args: argparse.Namespace):
    from repro.sim.engine import ExperimentSpec

    cfg = config_by_name(args.radio)
    overrides = {}
    if args.payload_bytes is not None:
        overrides["payload_bytes"] = args.payload_bytes
    if args.repetition is not None:
        overrides["repetition"] = args.repetition
    if overrides:
        cfg = cfg.replace(**overrides)
    dep = (Deployment.los(1.0) if args.deployment == "los"
           else Deployment.nlos(1.0))
    return ExperimentSpec(config=cfg, deployment=dep,
                          distances_m=tuple(args.distances),
                          packets_per_point=args.packets, seed=args.seed)


def _mac_spec_from_args(args: argparse.Namespace):
    from repro.sim.engine import MacExperimentSpec

    return MacExperimentSpec(tag_counts=tuple(args.tags),
                             measured_rounds=12,
                             simulated_rounds=args.rounds,
                             seed=args.seed)


def _spec_from_args(args: argparse.Namespace):
    """Build the spec a ``run``/``submit`` invocation describes."""
    if args.spec_json is not None:
        from repro.sim.spec import loads_spec

        text = (sys.stdin.read() if args.spec_json == "-"
                else open(args.spec_json).read())
        return loads_spec(text)
    if args.mac:
        return _mac_spec_from_args(args)
    return _link_spec_from_args(args)


def _run_options_from_args(args: argparse.Namespace):
    """The engine's :class:`~repro.sim.engine.RunOptions` for a
    run/sweep/mac invocation — the CLI half of the shared
    run-orchestration layer."""
    from repro.obs import TraceConfig
    from repro.sim.engine import FailurePolicy, RunOptions

    policy = FailurePolicy(mode=args.failure_policy.replace("-", "_"),
                           max_attempts=args.retries,
                           timeout_s=args.task_timeout)
    trace = None
    if (args.trace is not None or args.trace_every_n != 1
            or args.trace_failures_only):
        trace = TraceConfig(every_n=args.trace_every_n,
                            failures_only=args.trace_failures_only)
    return RunOptions(n_jobs=args.jobs, failure_policy=policy, trace=trace,
                      checkpoint=args.checkpoint, trace_path=args.trace)


def _emit_metrics(result, dest: Optional[str],
                  prom_dest: Optional[str] = None) -> None:
    """Write a run's metrics record to *dest* ('-' = stdout)."""
    if prom_dest is not None:
        from repro.obs import prometheus_text

        with open(prom_dest, "w") as fh:
            fh.write(prometheus_text(result.metrics))
    if dest is None:
        return
    import json

    payload = {
        "metrics": result.metrics,
        "tasks": [t.to_dict() for t in result.tasks],
        "timing": {
            "wall_time_s": result.wall_time_s,
            "n_jobs": result.n_jobs,
            "n_tasks": result.n_tasks,
            "n_failed": result.n_failed,
            "packets_simulated": result.packets_simulated,
            "packets_per_second": result.packets_per_second,
        },
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    if dest == "-":
        print(text)
    else:
        with open(dest, "w") as fh:
            fh.write(text + "\n")


def _print_result_table(result, title: str) -> None:
    """Render a finished RunResult as the classic results table."""
    from repro.sim.engine import MacExperimentSpec

    rows = []
    if isinstance(result.spec, MacExperimentSpec):
        for record, p in zip(result.tasks, result.points):
            if p is None:  # degraded point: flagged, not dropped
                rows.append([record.task, f"FAILED ({record.status})",
                             "n/a", "n/a", "n/a"])
                continue
            rows.append([p.n_tags, p.measured_kbps, p.simulated_kbps,
                         p.tdm_kbps, p.fairness])
        print(format_table(
            ["tags", "measured (kb/s)", "simulated (kb/s)", "TDM bound",
             "fairness"], rows, title=title))
        return
    for record, p in zip(result.tasks, result.points):
        if p is None:  # degraded point: flagged, not dropped
            rows.append([record.task, f"FAILED ({record.status})", "n/a",
                         "n/a", "n/a"])
            continue
        rows.append([p.distance_m, p.throughput_kbps,
                     p.ber if p.ber_valid else "n/a", p.rssi_dbm,
                     p.delivery_ratio])
    print(format_table(
        ["distance (m)", "throughput (kb/s)", "tag BER", "RSSI (dBm)",
         "delivery"], rows, title=title))


def _execute_spec(args: argparse.Namespace, spec, title: str) -> int:
    """Run one spec through the shared orchestration layer and report."""
    from repro.sim.engine import execute_run

    result = execute_run(spec, _run_options_from_args(args))
    _emit_metrics(result, args.metrics_json, args.metrics_prom)
    if args.json:
        print(result.to_json(indent=2))
        return 0 if result.ok else 2
    _print_result_table(result, title)
    return 0 if result.ok else 2


# -- parser ----------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FreeRider (CoNEXT'17) reproduction experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run one spec (inline flags or --spec-json envelope)")
    _add_spec_source(run)
    _add_engine_options(run)

    sweep = sub.add_parser("sweep", help="distance sweep (Figures 10-13)")
    _add_link_spec_options(sweep)
    _add_engine_options(sweep)

    packet = sub.add_parser("packet", help="one end-to-end packet")
    packet.add_argument("--radio", default="wifi",
                        choices=registered_radios())
    packet.add_argument("--snr", type=float, default=20.0)
    packet.add_argument("--seed", type=int, default=0)

    mac = sub.add_parser("mac", help="multi-tag MAC (Figure 17)")
    mac.add_argument("--tags", type=_parse_ints, default=[4, 8, 12, 16, 20])
    mac.add_argument("--rounds", type=int, default=100)
    mac.add_argument("--seed", type=int, default=0)
    _add_engine_options(mac)

    sub.add_parser("regime", help="operational regime (Figure 14)")
    sub.add_parser("power", help="tag power budget (section 3.3)")

    bench = sub.add_parser(
        "bench", help="PHY micro-benchmarks (scalar vs batched kernels)")
    bench.add_argument("--smoke", action="store_true",
                       help="reduced work sizes for CI (seconds, not "
                            "minutes; tracked separately in the history)")
    bench.add_argument("--repeats", type=_positive_int, default=None,
                       help="timed repeats per kernel (default 3; best "
                            "of N is reported)")
    bench.add_argument("--history", metavar="PATH", default="BENCH_phy.json",
                       help="perf-trajectory file to append to and "
                            "compare against (default: %(default)s)")
    bench.add_argument("--tolerance", type=float, default=0.20,
                       help="fractional slowdown vs the previous "
                            "comparable run that counts as a regression "
                            "(default: %(default)s)")
    bench.add_argument("--no-history", action="store_true",
                       help="measure and print only; skip the history "
                            "file entirely")
    bench.add_argument("--require-batch-wins", action="store_true",
                       help="exit 5 unless the batched packet loop is at "
                            "least as fast as the scalar loop on every "
                            "radio")
    _add_shared(bench, "metrics-json",
                help="write the kernel timings / speedups record as "
                     "JSON ('-' for stdout)")

    report = sub.add_parser(
        "report", help="render a finished run (metrics record, trace "
                       "file, checkpoint journal) as text or markdown")
    _add_shared(report, "metrics-json",
                help="record written by a run's --metrics-json")
    _add_shared(report, "trace",
                help="JSONL trace written by a run's --trace")
    _add_shared(report, "checkpoint",
                help="checkpoint journal for the per-point "
                     "stage breakdown")
    report.add_argument("--format", dest="format",
                        choices=["text", "markdown"], default="text")
    report.add_argument("--top", type=_positive_int, default=10,
                        help="spans shown in the slowest-spans table "
                             "(default: %(default)s)")
    report.add_argument("-o", "--output", metavar="PATH", default=None,
                        help="write the report here instead of stdout")

    serve = sub.add_parser(
        "serve", help="run the persistent sweep service (job queue + "
                      "result cache + HTTP API)")
    serve.add_argument("--root", metavar="DIR", default=".repro-service",
                       help="durable state directory: queue journal, "
                            "result store, checkpoints (default: "
                            "%(default)s)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8351)
    _add_shared(serve, "jobs",
                help="engine worker processes per job")
    serve.add_argument("--workers", type=_positive_int, default=1,
                       help="concurrent job worker threads")
    serve.add_argument("--failure-policy", choices=["fail-fast", "degrade"],
                       default="fail-fast")
    serve.add_argument("--retries", type=_positive_int, default=1,
                       metavar="N")
    serve.add_argument("--task-timeout", type=float, default=None,
                       metavar="SECONDS")
    serve.add_argument("--verbose", action="store_true",
                       help="log one line per HTTP request to stderr")

    submit = sub.add_parser(
        "submit", help="submit a spec to a running sweep service "
                       "(deduplicated by spec fingerprint)")
    _add_spec_source(submit)
    _add_url_option(submit)
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job finishes, then print "
                             "the result")
    submit.add_argument("--follow", action="store_true",
                        help="stream live progress rows while the job "
                             "runs, then print the result (implies "
                             "--wait)")
    submit.add_argument("--timeout", type=float, default=300.0,
                        metavar="SECONDS",
                        help="--wait budget (default: %(default)s)")
    submit.add_argument("--json", action="store_true",
                        help="emit the job record (and with --wait the "
                             "result record) as JSON")
    _add_shared(submit, "metrics-json",
                help="with --wait: write the fetched result's metrics "
                     "record as JSON ('-' for stdout), exactly like "
                     "run's --metrics-json")

    top = sub.add_parser(
        "top", help="live dashboard for a running sweep service "
                    "(queue, jobs, progress bars, latency percentiles)")
    _add_url_option(top)
    top.add_argument("--once", action="store_true",
                     help="render one frame and exit (no screen "
                          "clearing; what tests and CI capture)")
    top.add_argument("--interval", type=float, default=1.0,
                     metavar="SECONDS",
                     help="refresh period (default: %(default)s)")

    status = sub.add_parser(
        "status", help="show one job's state (or list all jobs)")
    status.add_argument("job_id", nargs="?", default=None,
                        help="job id from submit; omit to list every job")
    _add_url_option(status)
    status.add_argument("--json", action="store_true")

    fetch = sub.add_parser(
        "fetch", help="download a completed job's result")
    fetch.add_argument("job_id", help="job id from submit")
    _add_url_option(fetch)
    fetch.add_argument("--json", action="store_true",
                       help="emit the full stored record instead of the "
                            "results table")
    fetch.add_argument("-o", "--output", metavar="PATH", default=None,
                       help="write the stored record's exact bytes here")

    corpus = sub.add_parser(
        "corpus", help="frozen IQ capture corpus (generate/replay/fuzz)")
    corpus_sub = corpus.add_subparsers(dest="corpus_command", required=True)

    def _add_corpus_dir(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dir", dest="corpus_dir", metavar="PATH",
                       default=None,
                       help="corpus directory (default: the committed "
                            "tests/phy/corpus)")

    cgen = corpus_sub.add_parser(
        "generate", help="freeze the impairment-grid waveforms")
    _add_corpus_dir(cgen)
    cgen.add_argument("--radios", metavar="A,B", default=None,
                      help="comma-separated radios (default: all)")

    crep = corpus_sub.add_parser(
        "replay", help="decode every capture, diff against expectations")
    _add_corpus_dir(crep)
    crep.add_argument("--mode", choices=["scalar", "batched", "both"],
                      default="both",
                      help="receiver path(s) to exercise (default both)")
    crep.add_argument("--report", metavar="PATH", default=None,
                      help="write the JSON diff report here (CI artifact)")

    cfuzz = corpus_sub.add_parser(
        "fuzz", help="seeded mutation fuzz of the decode seam")
    _add_corpus_dir(cfuzz)
    cfuzz.add_argument("--iterations", type=_positive_int, default=200,
                       help="mutations per radio (default 200)")
    cfuzz.add_argument("--seed", type=int, default=0,
                       help="fuzz seed (default 0)")
    cfuzz.add_argument("--radios", metavar="A,B", default=None,
                       help="comma-separated radios (default: all)")
    cfuzz.add_argument("--report", metavar="PATH", default=None,
                       help="write the JSON fuzz report here")

    lint = sub.add_parser(
        "lint", help="project static analysis (reprolint rules R001-R012)")
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories "
                           "(default: src tests benchmarks examples)")
    lint.add_argument("--format", dest="format",
                      choices=["text", "json", "sarif"], default="text")
    lint.add_argument("--sarif", dest="sarif_path", metavar="PATH",
                      help="additionally write a SARIF 2.1.0 report")
    lint.add_argument("--show-suppressed", action="store_true",
                      help="also print suppressed findings")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue and exit")
    lint.add_argument("--no-cache", action="store_true",
                      help="disable the result cache")
    lint.add_argument("--changed", action="store_true",
                      help="only report findings in git-changed files")
    lint.add_argument("--stats", action="store_true",
                      help="print cache hit statistics")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite reprolint-baseline.json from "
                           "current findings")
    return parser


# -- one-shot commands -----------------------------------------------------

def _cmd_run(args) -> int:
    from repro.sim.engine import MacExperimentSpec

    spec = _spec_from_args(args)
    if isinstance(spec, MacExperimentSpec):
        title = "multi-tag MAC"
    else:
        title = (f"{spec.config.name} backscatter, "
                 f"{spec.deployment.name} deployment")
    return _execute_spec(args, spec, title)


def _cmd_sweep(args) -> int:
    spec = _link_spec_from_args(args)
    return _execute_spec(
        args, spec, f"{args.radio} backscatter, {args.deployment} deployment")


def _cmd_packet(args) -> int:
    session = create_session(args.radio, seed=args.seed)
    result = session.run_packet(snr_db=args.snr)
    print(f"radio={args.radio} snr={args.snr:.1f} dB: "
          f"delivered={result.delivered} "
          f"tag_bits={result.tag_bits_sent} "
          f"errors={result.tag_bit_errors} "
          f"ber={result.tag_ber:.2e} "
          f"airtime={result.duration_us:.0f} us")
    return 0 if result.delivered else 1


def _cmd_mac(args) -> int:
    spec = _mac_spec_from_args(args)
    return _execute_spec(args, spec, "multi-tag MAC")


def _cmd_regime(_args) -> int:
    configs = [config_by_name(r) for r in config_names()]
    rows = []
    for d_tx in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 4.5):
        rows.append([d_tx] + [c.budget().max_range_m(d_tx, c.sensitivity_dbm())
                              for c in configs])
    print(format_table(["tx-to-tag (m)"] + [c.name for c in configs], rows,
                       title="operational regime: max RX-to-tag distance (m)"))
    return 0


def _cmd_power(_args) -> int:
    from repro.tag.power import TagPowerModel

    model = TagPowerModel()
    rows = []
    for radio, shift in (("wifi", 20e6), ("zigbee", 5e6),
                         ("bluetooth", 2e6)):
        b = model.breakdown(radio, shift)
        rows.append([radio, shift / 1e6, b.clock_uw, b.rf_switch_uw,
                     b.control_uw, b.total_uw])
    print(format_table(
        ["radio", "shift (MHz)", "clock (uW)", "switch (uW)",
         "control (uW)", "total (uW)"], rows, title="tag power budget"))
    return 0


def _cmd_bench(args) -> int:
    from repro.bench import (
        compare_runs,
        format_report,
        load_history,
        require_batch_wins,
        run_benchmarks,
        update_history,
    )

    report = run_benchmarks(smoke=args.smoke, repeats=args.repeats)
    print(format_report(report))
    if args.metrics_json is not None:
        import json

        record = {"smoke": report.smoke,
                  "kernels": {r.name: r.to_dict() for r in report.results},
                  "speedups": report.speedups}
        text = json.dumps(record, indent=2, sort_keys=True)
        if args.metrics_json == "-":
            print(text)
        else:
            with open(args.metrics_json, "w") as fh:
                fh.write(text + "\n")
    violations = (require_batch_wins(report)
                  if args.require_batch_wins else [])
    if args.no_history:
        if violations:
            print("\nBATCH-WIN VIOLATION:", file=sys.stderr)
            for line in violations:
                print(f"  {line}", file=sys.stderr)
            return 5
        return 0
    history = load_history(args.history)
    notes: list = []
    regressions = compare_runs(history, report, tolerance=args.tolerance,
                               notes=notes)
    update_history(args.history, report)
    for line in notes:
        print(f"note: {line}")
    if regressions:
        print(f"\nPERF REGRESSION vs {args.history}:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 4
    print(f"\nhistory: appended run #{len(history['runs']) + 1} "
          f"to {args.history} (no regressions)")
    if violations:
        print("\nBATCH-WIN VIOLATION:", file=sys.stderr)
        for line in violations:
            print(f"  {line}", file=sys.stderr)
        return 5
    return 0


def _cmd_report(args) -> int:
    from repro.obs.report import (
        load_journal_rows,
        load_metrics_record,
        render_report,
    )
    from repro.obs.trace import read_trace

    if not (args.metrics_json or args.trace or args.checkpoint):
        print("error: report needs at least one of --metrics-json, "
              "--trace, --checkpoint", file=sys.stderr)
        return 2
    record = (load_metrics_record(args.metrics_json)
              if args.metrics_json else None)
    trace = read_trace(args.trace) if args.trace else None
    journal = (load_journal_rows(args.checkpoint)
               if args.checkpoint else None)
    text = render_report(record, trace, journal,
                         fmt=args.format, top=args.top)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
    else:
        print(text, end="")
    return 0


# -- service commands ------------------------------------------------------

def _cmd_serve(args) -> int:
    from repro.service import SweepService
    from repro.service.http import serve
    from repro.sim.engine import FailurePolicy

    policy = FailurePolicy(mode=args.failure_policy.replace("-", "_"),
                           max_attempts=args.retries,
                           timeout_s=args.task_timeout)
    service = SweepService(args.root, n_jobs=args.jobs,
                           n_workers=args.workers, failure_policy=policy)
    print(f"sweep service: root={args.root} "
          f"listening on http://{args.host}:{args.port} "
          f"(jobs={args.jobs}, workers={args.workers})", flush=True)
    serve(service, host=args.host, port=args.port, verbose=args.verbose)
    return 0


def _print_job(job: Dict[str, Any]) -> None:
    line = (f"{job['job_id']}  state={job['state']}"
            f"{' (cached)' if job.get('cached') else ''}  "
            f"spec={job['fingerprint']}")
    if job.get("error"):
        line += f"  error={job['error']}"
    if "stage_counts" in job:
        stages = ", ".join(f"{k}={v}" for k, v in
                           sorted(job["stage_counts"].items()))
        line += f"\n  forensics: {stages or 'none'}"
    print(line)


def _render_progress_row(row: Dict[str, Any]) -> str:
    """One human line per progress-journal row (submit --follow)."""
    kind = row.get("kind")
    if kind == "run_start":
        line = (f"run started: {row.get('n_tasks', '?')} tasks, "
                f"n_jobs={row.get('n_jobs', '?')}")
        if row.get("n_resumed"):
            line += f", {row['n_resumed']} resumed from checkpoint"
        return line
    if kind == "task":
        line = (f"  [{row.get('tasks_done', '?')}/{row.get('n_tasks', '?')}]"
                f" task {row.get('index', '?')}: {row.get('status', '?')}")
        duration = row.get("duration_s")
        if duration is not None:
            line += f" ({float(duration) * 1e3:.1f} ms)"
        if row.get("resumed"):
            line += " [resumed]"
        return line
    if kind == "run_end":
        return (f"run finished: {row.get('tasks_done', '?')}/"
                f"{row.get('n_tasks', '?')} tasks, "
                f"{'ok' if row.get('ok') else 'FAILED'}")
    return f"  {row}"


def _cmd_submit(args) -> int:
    import json

    from repro.service.client import ServiceClient

    spec = _spec_from_args(args)
    client = ServiceClient(args.url)
    job = client.submit(spec)
    if not (args.wait or args.follow):
        if args.json:
            print(json.dumps(job, indent=2, sort_keys=True))
        else:
            _print_job(job)
        return 0
    if args.follow:
        if job.get("cached"):
            print("cache hit: no progress stream (the job never ran)")
        else:
            for row in client.follow(job["job_id"], timeout_s=args.timeout):
                print(_render_progress_row(row), flush=True)
        status = client.status(job["job_id"])
    else:
        status = client.wait(job["job_id"], timeout_s=args.timeout)
    if status["state"] != "done":
        _print_job(status)
        return 2
    result = client.fetch(job["job_id"])
    _emit_metrics(result, args.metrics_json)
    if args.json:
        print(json.dumps(client.fetch_record(job["job_id"]),
                         indent=2, sort_keys=True))
        return 0
    _print_job(status)
    _print_result_table(result, f"job {job['job_id']} "
                                f"(spec {job['fingerprint']})")
    return 0


def _cmd_top(args) -> int:
    from repro.service.top import run_top

    return run_top(args.url, once=args.once, interval_s=args.interval)


def _cmd_status(args) -> int:
    import json

    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    if args.job_id is None:
        jobs = client.jobs()
        if args.json:
            print(json.dumps(jobs, indent=2, sort_keys=True))
        else:
            for job in jobs:
                _print_job(job)
        return 0
    status = client.status(args.job_id)
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        _print_job(status)
    return 0 if status.get("state") != "failed" else 2


def _cmd_fetch(args) -> int:
    import json

    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    if args.output is not None:
        raw = client.fetch_raw(args.job_id)
        with open(args.output, "wb") as fh:
            fh.write(raw)
        print(f"wrote {len(raw)} bytes to {args.output}")
        return 0
    if args.json:
        print(json.dumps(client.fetch_record(args.job_id),
                         indent=2, sort_keys=True))
        return 0
    status = client.status(args.job_id)
    result = client.fetch(args.job_id)
    _print_result_table(result, f"job {args.job_id} "
                                f"(spec {status['fingerprint']})")
    return 0


def _cmd_lint(args) -> int:
    from repro.tools.lint import main as lint_main

    argv: List[str] = []
    for flag in ("list_rules", "show_suppressed", "no_cache", "changed",
                 "stats", "update_baseline"):
        if getattr(args, flag):
            argv.append("--" + flag.replace("_", "-"))
    if args.sarif_path:
        argv += ["--sarif", args.sarif_path]
    argv += ["--format", args.format]
    argv += list(args.paths)
    return lint_main(argv)


def _cmd_corpus(args) -> int:
    import json as json_mod
    from pathlib import Path

    from repro.iq.corpus import default_corpus_dir, generate_corpus
    from repro.iq.format import IQFormatError

    directory = (Path(args.corpus_dir) if args.corpus_dir
                 else default_corpus_dir())
    try:
        if args.corpus_command == "generate":
            radios = (args.radios.split(",") if args.radios else None)
            names = generate_corpus(directory, radios=radios)
            print(f"wrote {len(names)} captures to {directory}")
            return 0
        if args.corpus_command == "replay":
            from repro.iq.replay import MODES, replay_corpus

            modes = MODES if args.mode == "both" else (args.mode,)
            report = replay_corpus(directory, modes=modes)
            if args.report:
                Path(args.report).write_text(
                    json_mod.dumps(report.to_dict(), indent=2) + "\n")
            print(f"replayed {report.entries} captures "
                  f"({report.decodes} decodes): "
                  f"{'ok' if report.ok else f'{len(report.diffs)} diffs'}")
            for diff in report.diffs:
                print(f"  {diff.name} [{diff.mode}] {diff.field}: "
                      f"expected {diff.expected!r}, got {diff.actual!r}",
                      file=sys.stderr)
            return 0 if report.ok else 6
        from repro.iq.fuzz import fuzz_corpus

        radios = (args.radios.split(",") if args.radios else None)
        report_f = fuzz_corpus(directory, iterations=args.iterations,
                               seed=args.seed, radios=radios)
        if args.report:
            Path(args.report).write_text(
                json_mod.dumps(report_f.to_dict(), indent=2) + "\n")
        total = sum(report_f.iterations.values())
        print(f"fuzzed {total} iterations over "
              f"{len(report_f.iterations)} radios (seed {args.seed}): "
              f"{'ok' if report_f.ok else f'{len(report_f.violations)} violations'}")
        for violation in report_f.violations:
            print(f"  {violation.radio}/{violation.base} "
                  f"i={violation.iteration} [{violation.mode}] "
                  f"{'+'.join(violation.mutations)}: {violation.error}",
                  file=sys.stderr)
        return 0 if report_f.ok else 6
    except IQFormatError as exc:
        print(f"error: corpus format: {exc}", file=sys.stderr)
        print("hint: regenerate the corpus with `repro corpus generate`",
              file=sys.stderr)
        return 2


_COMMANDS = {
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "packet": _cmd_packet,
    "mac": _cmd_mac,
    "regime": _cmd_regime,
    "power": _cmd_power,
    "bench": _cmd_bench,
    "report": _cmd_report,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "top": _cmd_top,
    "status": _cmd_status,
    "fetch": _cmd_fetch,
    "corpus": _cmd_corpus,
    "lint": _cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    import urllib.error

    from repro.sim.engine import TaskFailure

    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except TaskFailure as exc:
        # fail-fast policy: surface the failed point and a hint.
        print(f"error: {exc}", file=sys.stderr)
        print("hint: rerun with --failure-policy degrade to finish the "
              "sweep with failed points flagged, or --retries N to retry",
              file=sys.stderr)
        return 3
    except urllib.error.URLError as exc:
        print(f"error: cannot reach the sweep service: {exc}",
              file=sys.stderr)
        print("hint: start one with `repro serve`, or point --url / "
              "$REPRO_SERVICE_URL at a running instance", file=sys.stderr)
        return 5


if __name__ == "__main__":
    sys.exit(main())

"""Tag power budget (paper section 3.3).

The prototype, simulated in TSMC 65 nm, consumes ~30 uW total:
19 uW for the 20 MHz frequency-shifting clock, 12 uW for the RF switch,
and 1-3 uW for the control logic that selects the codeword translator.
This module reproduces that accounting and scales it with the clock
frequency so ablations (e.g. ZigBee's smaller shift) can be explored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["PowerBreakdown", "TagPowerModel"]


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-component power in microwatts."""

    clock_uw: float
    rf_switch_uw: float
    control_uw: float

    @property
    def total_uw(self) -> float:
        return self.clock_uw + self.rf_switch_uw + self.control_uw

    def as_dict(self) -> Dict[str, float]:
        return {
            "clock_uw": self.clock_uw,
            "rf_switch_uw": self.rf_switch_uw,
            "control_uw": self.control_uw,
            "total_uw": self.total_uw,
        }


@dataclass
class TagPowerModel:
    """Power model parameterised to the paper's 65 nm simulation numbers.

    Parameters
    ----------
    clock_uw_per_mhz:
        19 uW at 20 MHz -> 0.95 uW/MHz (dynamic power scales ~linearly
        with toggle frequency at fixed voltage).
    rf_switch_uw:
        Switch driver consumption.
    control_uw_by_radio:
        Control-logic cost of each codeword translator; WiFi's is the
        most complex (phase scheduling across OFDM symbols).
    """

    clock_uw_per_mhz: float = 0.95
    rf_switch_uw: float = 12.0
    control_uw_by_radio: Dict[str, float] = None

    def __post_init__(self):
        if self.control_uw_by_radio is None:
            self.control_uw_by_radio = {"wifi": 3.0, "zigbee": 2.0,
                                        "bluetooth": 1.0}

    def breakdown(self, radio: str, shift_hz: float = 20e6) -> PowerBreakdown:
        """Power budget when backscattering *radio* with a *shift_hz*
        frequency offset."""
        key = radio.lower()
        if key not in self.control_uw_by_radio:
            raise ValueError(f"unknown radio {radio!r}")
        return PowerBreakdown(
            clock_uw=self.clock_uw_per_mhz * shift_hz / 1e6,
            rf_switch_uw=self.rf_switch_uw,
            control_uw=self.control_uw_by_radio[key],
        )

    def battery_life_years(self, radio: str, shift_hz: float = 20e6,
                           battery_mah: float = 225.0,
                           voltage: float = 3.0,
                           duty_cycle: float = 1.0) -> float:
        """Runtime on a coin cell at the given backscatter duty cycle."""
        if not 0 < duty_cycle <= 1:
            raise ValueError("duty cycle must be in (0, 1]")
        energy_j = battery_mah * 1e-3 * 3600 * voltage
        power_w = self.breakdown(radio, shift_hz).total_uw * 1e-6 * duty_cycle
        seconds = energy_j / power_w
        return seconds / (365.25 * 24 * 3600)

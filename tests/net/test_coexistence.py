"""Tests for the coexistence models (Figures 15 and 16)."""

import numpy as np
import pytest

from repro.net.coexistence import (
    CoexistenceSimulator,
    WifiThroughputModel,
    adjacent_channel_rejection_db,
)


class TestRejection:
    def test_cochannel_no_rejection(self):
        assert adjacent_channel_rejection_db(0, 20e6) == 0.0

    def test_inside_passband_no_rejection(self):
        assert adjacent_channel_rejection_db(1, 20e6) == 0.0

    def test_narrowband_rejects_harder(self):
        wide = adjacent_channel_rejection_db(7, 20e6)
        narrow = adjacent_channel_rejection_db(7, 1e6)
        assert narrow > wide > 0

    def test_monotone_in_separation(self):
        vals = [adjacent_channel_rejection_db(s, 2e6) for s in range(1, 9)]
        assert vals == sorted(vals)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            adjacent_channel_rejection_db(-1, 2e6)


class TestWifiThroughputModel:
    def test_baseline_median(self, rng):
        model = WifiThroughputModel()
        s = model.sample(3000, rng=rng)
        assert float(np.median(s)) == pytest.approx(37.4, abs=0.3)

    def test_subfloor_interference_harmless(self, rng, rng2):
        model = WifiThroughputModel()
        clean = model.sample(3000, rng=rng)
        interfered = model.sample(3000, interference_dbm=-120.0, rng=rng2)
        assert float(np.median(interfered)) == pytest.approx(
            float(np.median(clean)), abs=0.5)

    def test_strong_interference_hurts(self, rng, rng2):
        model = WifiThroughputModel()
        clean = model.sample(2000, rng=rng)
        jammed = model.sample(2000, interference_dbm=-80.0, rng=rng2)
        assert float(np.median(jammed)) < float(np.median(clean)) * 0.7


class TestFigure15:
    """Does backscatter impact WiFi?  It must not (section 4.4.1)."""

    @pytest.mark.parametrize("radio", ["wifi", "zigbee", "bluetooth"])
    def test_tag_presence_invisible(self, radio):
        sim = CoexistenceSimulator(seed=10)
        absent = sim.wifi_throughput_samples(2000, tag_present=False)
        present = sim.wifi_throughput_samples(2000, tag_present=True,
                                              tag_radio=radio)
        assert float(np.median(present)) == pytest.approx(
            float(np.median(absent)), abs=0.5)


class TestFigure16:
    """Does WiFi impact backscatter?  Median no, tail yes (WiFi RX)."""

    def test_wifi_backscatter_median_stable_but_tail_degrades(self):
        sim = CoexistenceSimulator(seed=11)
        absent = sim.backscatter_throughput_samples(400, wifi_present=False)
        present = sim.backscatter_throughput_samples(400, wifi_present=True)
        med_a, med_p = float(np.median(absent)), float(np.median(present))
        assert med_p == pytest.approx(med_a, abs=3.0)
        p10_a = float(np.percentile(absent, 10))
        p10_p = float(np.percentile(present, 10))
        assert p10_p < p10_a - 5.0  # visible lower tail

    @pytest.mark.parametrize("base,bw", [(15.0, 2e6), (55.0, 1e6)])
    def test_narrowband_barely_affected(self, base, bw):
        """Figure 16(b)/(c): ZigBee and Bluetooth backscatter shift by
        only ~1-2 kb/s when WiFi traffic appears."""
        sim = CoexistenceSimulator(seed=12)
        absent = sim.backscatter_throughput_samples(
            300, base_kbps=base, receiver_bandwidth_hz=bw,
            wifi_present=False)
        present = sim.backscatter_throughput_samples(
            300, base_kbps=base, receiver_bandwidth_hz=bw,
            wifi_present=True)
        assert abs(float(np.median(present)) - float(np.median(absent))) < 2.0


class TestRtsCts:
    """Section 4.4.2: RTS-CTS reservation removes overlap losses at a
    small airtime cost."""

    def test_removes_lower_tail(self):
        sim = CoexistenceSimulator(seed=20)
        plain = sim.backscatter_throughput_samples(300, wifi_present=True)
        sim2 = CoexistenceSimulator(seed=20)
        reserved = sim2.backscatter_throughput_samples(300, wifi_present=True,
                                                       rts_cts=True)
        assert (float(np.percentile(reserved, 10))
                > float(np.percentile(plain, 10)))

    def test_costs_a_little_median(self):
        sim = CoexistenceSimulator(seed=21)
        free = sim.backscatter_throughput_samples(300, wifi_present=False)
        sim2 = CoexistenceSimulator(seed=21)
        reserved = sim2.backscatter_throughput_samples(300,
                                                       wifi_present=False,
                                                       rts_cts=True)
        cost = float(np.median(free)) - float(np.median(reserved))
        assert 0.5 < cost < 4.0  # ~3.5 % of 61.8 kb/s

"""Ring-oscillator clock model (the 20 MHz frequency-shifting clock).

FreeRider adopts the ring-oscillator design of FS-Backscatter [27]:
~20 uW at 20 MHz, but with the frequency inaccuracy and phase noise
inherent to an uncompensated ring.  The offset matters because a
mistuned shift leaves the backscattered packet off-centre in the
receiver channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.rng import make_rng

__all__ = ["RingOscillator"]


@dataclass
class RingOscillator:
    """A low-power clock with static inaccuracy and cycle jitter.

    Parameters
    ----------
    nominal_hz:
        Target toggle frequency (20 MHz for WiFi channel 6 -> 13).
    accuracy_ppm:
        1-sigma static frequency error drawn once per power-up.
    power_uw_per_mhz:
        Consumption scaling (19 uW at 20 MHz => 0.95 uW/MHz).
    """

    nominal_hz: float = 20e6
    accuracy_ppm: float = 200.0
    power_uw_per_mhz: float = 0.95

    def actual_hz(self, rng: Optional[np.random.Generator] = None) -> float:
        """Realised frequency after static error."""
        gen = make_rng(rng)
        return self.nominal_hz * (1 + gen.normal(0, self.accuracy_ppm) * 1e-6)

    @property
    def power_uw(self) -> float:
        """Active power at the nominal frequency."""
        return self.power_uw_per_mhz * self.nominal_hz / 1e6

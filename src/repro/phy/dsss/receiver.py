"""802.11b receive chain: Barker despread -> differential decode ->
self-sync descramble -> PPDU parse."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.obs import forensics
from repro.phy.dsss.barker import despread_symbols, despread_symbols_batch
from repro.phy.dsss.frame import DsssFrameBuilder
from repro.phy.dsss.scrambler import SelfSyncScrambler

__all__ = ["DsssDecodeResult", "DsssReceiver"]


@dataclass
class DsssDecodeResult:
    """Outcome of decoding one PPDU waveform."""

    psdu: Optional[bytes]
    bits: Optional[np.ndarray]   # descrambled PPDU bit stream
    header_ok: bool
    # First receive stage that failed (forensics taxonomy), "ok" if none.
    stage: str = forensics.OK

    @property
    def ok(self) -> bool:
        return self.header_ok and self.psdu is not None


class DsssReceiver:
    """Decode Barker/DBPSK waveforms from :class:`DsssTransmitter`."""

    def __init__(self, monitor_mode: bool = True):
        self._builder = DsssFrameBuilder()
        self.monitor_mode = monitor_mode

    def decode_bits(self, waveform: np.ndarray, n_bits: int) -> np.ndarray:
        """Despread, differentially decode and descramble *n_bits*."""
        symbols = despread_symbols(waveform, n_bits)
        prev = np.concatenate([[1.0 + 0j], symbols[:-1]])
        diffs = symbols * np.conj(prev)
        scrambled = (diffs.real < 0).astype(np.uint8)
        return SelfSyncScrambler(0).descramble(scrambled)

    def decode_bits_batch(self, waveforms: np.ndarray,
                          n_bits: int) -> np.ndarray:
        """Batched :meth:`decode_bits` over a (B, N) stack; returns
        (B, n_bits) descrambled bits, bit-identical per row.  The
        despread is one stacked correlation, the differential decode is
        elementwise, and the self-sync descrambler is a pure
        feed-forward XOR — all exact under stacking."""
        wav = np.asarray(waveforms)
        if wav.ndim != 2:
            raise ValueError("decode_bits_batch expects a (B, N) array")
        symbols = despread_symbols_batch(wav, n_bits)
        prev = np.concatenate(
            [np.ones((wav.shape[0], 1), dtype=complex), symbols[:, :-1]],
            axis=1)
        diffs = symbols * np.conj(prev)
        scrambled = (diffs.real < 0).astype(np.uint8)
        return np.stack([SelfSyncScrambler(0).descramble(row)
                         for row in scrambled])

    def decode(self, waveform: np.ndarray, n_bits: int) -> DsssDecodeResult:
        """Full decode of one frame aligned at sample 0."""
        return self._finish(self.decode_bits(waveform, n_bits))

    def decode_batch(self, waveforms: np.ndarray,
                     n_bits: int) -> List[DsssDecodeResult]:
        """Batched :meth:`decode` over a stack of equal-length frames."""
        bit_rows = self.decode_bits_batch(waveforms, n_bits)
        return [self._finish(row) for row in bit_rows]

    def _finish(self, bits: np.ndarray) -> DsssDecodeResult:
        psdu, ok = self._builder.parse_bits(bits)
        if not ok:
            return DsssDecodeResult(None, bits, False,
                                    stage=forensics.HEADER_FAIL)
        return DsssDecodeResult(psdu, bits, True)

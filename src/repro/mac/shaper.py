"""Traffic shaping for PLM: encode downlink bits in *productive* packets.

Paper section 2.4.2: "the transmitter could generate dummy packets, but
a better way is to buffer existing traffic before sending it to the
NIC, and then re-order or re-packetize to get the necessary sequence of
L0s and L1s.  This way, as long as the network is busy, the backscatter
messages impose negligible overhead on the rest of the channel."

The shaper drains a byte backlog into packets whose airtime equals L0
or L1 per message bit.  Overhead is only the padding needed when the
backlog runs dry mid-bit plus the mandatory inter-packet gaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.mac.plm import PlmConfig
from repro.utils.bits import as_bits

__all__ = ["ShapedPacket", "PlmTrafficShaper"]


@dataclass(frozen=True)
class ShapedPacket:
    """One NIC-bound packet: productive bytes plus any padding."""

    payload_bytes: int
    padding_bytes: int
    duration_us: float
    bit: int

    @property
    def total_bytes(self) -> int:
        return self.payload_bytes + self.padding_bytes


class PlmTrafficShaper:
    """Re-packetises a productive-traffic backlog into PLM durations.

    Parameters
    ----------
    config:
        PLM timing (L0/L1).
    phy_rate_mbps:
        The rate the shaped packets are sent at; with packet airtime =
        8 * bytes / rate, the byte count for each duration follows.
    """

    def __init__(self, config: Optional[PlmConfig] = None,
                 phy_rate_mbps: float = 6.0):
        if phy_rate_mbps <= 0:
            raise ValueError("PHY rate must be positive")
        self.config = config or PlmConfig()
        self.phy_rate_mbps = phy_rate_mbps

    def bytes_for_duration(self, duration_us: float) -> int:
        """Packet size whose airtime is *duration_us* at the PHY rate."""
        return int(round(duration_us * self.phy_rate_mbps / 8))

    def shape(self, message_bits, backlog_bytes: int) -> Tuple[List[ShapedPacket], int]:
        """Plan packets encoding *message_bits* from a byte backlog.

        Returns ``(packets, remaining_backlog)``.  When the backlog
        cannot fill a packet, the shortfall is padding (the only true
        overhead).
        """
        if backlog_bytes < 0:
            raise ValueError("backlog must be non-negative")
        packets: List[ShapedPacket] = []
        remaining = backlog_bytes
        for bit in as_bits(message_bits):
            duration = self.config.l1_us if bit else self.config.l0_us
            size = self.bytes_for_duration(duration)
            payload = min(size, remaining)
            packets.append(ShapedPacket(
                payload_bytes=payload,
                padding_bytes=size - payload,
                duration_us=duration,
                bit=int(bit),
            ))
            remaining -= payload
        return packets, remaining

    def overhead_fraction(self, message_bits, backlog_bytes: int) -> float:
        """Padding bytes as a fraction of all bytes sent.

        Zero whenever the network is busy enough to fill every shaped
        packet — the paper's "negligible overhead" claim.
        """
        packets, _ = self.shape(message_bits, backlog_bytes)
        total = sum(p.total_bytes for p in packets)
        if total == 0:
            return 0.0
        return sum(p.padding_bytes for p in packets) / total

    def airtime_us(self, message_bits) -> float:
        """Channel time used by the shaped message (incl. gaps)."""
        bits = as_bits(message_bits)
        durations = np.where(bits.astype(bool), self.config.l1_us,
                             self.config.l0_us)
        return float(durations.sum() + bits.size * self.config.gap_us)

"""Physical-layer implementations of the three commodity radios FreeRider
rides on: 802.11g/n OFDM WiFi, 802.15.4 ZigBee (OQPSK), and Bluetooth
(GFSK).  Each subpackage provides a bit-exact transmitter chain and a
matching receiver so codeword translation can be exercised end-to-end."""

"""Tests for the calibrated configs and result formatting."""

import pytest

from repro.sim.config import (
    BLE_CONFIG,
    WIFI_CONFIG,
    ZIGBEE_CONFIG,
    config_by_name,
)
from repro.sim.results import Series, cdf_points, format_table


class TestConfigs:
    def test_paper_tx_powers(self):
        assert WIFI_CONFIG.tx_power_dbm == 15.0
        assert ZIGBEE_CONFIG.tx_power_dbm == 5.0
        assert BLE_CONFIG.tx_power_dbm == 0.0

    def test_instantaneous_rates_match_paper(self):
        # WiFi: 1 bit per 4 x 4 us OFDM symbols = 62.5 kb/s.
        assert 1e3 / (WIFI_CONFIG.repetition * 4.0) == pytest.approx(62.5)
        # ZigBee: 1 bit per 4 x 16 us symbols = 15.6 kb/s.
        assert 1e3 / (ZIGBEE_CONFIG.repetition * 16.0) == pytest.approx(15.6,
                                                                        abs=0.1)
        # Bluetooth: 1 bit per 18 x 1 us bits = 55.6 kb/s.
        assert 1e3 / (BLE_CONFIG.repetition * 1.0) == pytest.approx(55.6,
                                                                    abs=0.1)

    def test_budget_construction(self):
        budget = WIFI_CONFIG.budget()
        assert budget.bandwidth_hz == 20e6

    def test_lookup(self):
        assert config_by_name("WiFi") is WIFI_CONFIG
        with pytest.raises(ValueError):
            config_by_name("lora")


class TestSeries:
    def test_append_and_interp(self):
        s = Series("thr")
        s.append(0.0, 0.0)
        s.append(10.0, 100.0)
        assert s.y_at(5.0) == pytest.approx(50.0)

    def test_empty_interp_raises(self):
        with pytest.raises(ValueError):
            Series("x").y_at(1.0)

    def test_summary(self):
        s = Series("thr")
        s.append(1, 2)
        assert "thr" in s.summary()
        assert "(empty)" in Series("e").summary()

    def test_interp_skips_nan_points(self):
        """Regression: one NaN-BER point (zero-delivery sentinel) used to
        turn every interpolated value into NaN."""
        s = Series("ber")
        s.append(0.0, 0.0)
        s.append(5.0, float("nan"))
        s.append(10.0, 100.0)
        assert s.y_at(5.0) == pytest.approx(50.0)

    def test_interp_all_nan_raises(self):
        s = Series("ber")
        s.append(1.0, float("nan"))
        with pytest.raises(ValueError):
            s.y_at(1.0)

    def test_finite_points_mask(self):
        s = Series("ber")
        s.append(1.0, 2.0)
        s.append(2.0, float("nan"))
        xs, ys = s.finite_points()
        assert list(xs) == [1.0] and list(ys) == [2.0]

    def test_summary_counts_nan_points(self):
        s = Series("ber")
        s.append(1.0, 2.0)
        s.append(2.0, float("nan"))
        assert "(1 n/a)" in s.summary()


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(["d", "thr"], [[1.0, 59.9], [42.0, 0.5]],
                           title="Fig 10a")
        lines = out.splitlines()
        assert lines[0] == "Fig 10a"
        assert len(lines) == 5  # title, header, rule, two rows

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_scientific_for_small(self):
        out = format_table(["ber"], [[1e-4]])
        assert "e-04" in out

    def test_nan_renders_as_na(self):
        # Regression: the zero-delivery BER sentinel used to print "nan".
        out = format_table(["ber"], [[float("nan")]])
        assert "n/a" in out and "nan" not in out


class TestCdf:
    def test_monotone_and_bounded(self):
        s = cdf_points([3.0, 1.0, 2.0])
        assert s.x == [1.0, 2.0, 3.0]
        assert s.y == [pytest.approx(1 / 3), pytest.approx(2 / 3), 1.0]

    def test_empty(self):
        assert cdf_points([]).x == []

    def test_nan_samples_dropped(self):
        # Regression: NaN sorted to the tail and claimed probability mass.
        s = cdf_points([1.0, float("nan"), 2.0])
        assert s.x == [1.0, 2.0]
        assert s.y == [pytest.approx(0.5), 1.0]

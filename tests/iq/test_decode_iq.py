"""The ``decode_iq`` seam: draw/channel bypass, RNG purity, stage
accounting, and scalar/batched bit-identity on raw waveforms."""

import numpy as np
import pytest

from repro import obs
from repro.core.registry import create_session
from repro.iq.corpus import RADIO_CONFIGS, observed_stage
from repro.obs import forensics

RADIOS = sorted(RADIO_CONFIGS)


def _session(radio):
    return create_session(radio, seed=7, **RADIO_CONFIGS[radio])


def _drawn_packet(session, radio, snr_db=20.0):
    gen = np.random.default_rng(0xC0FFEE)
    exc = session.make_excitation(rng=gen)
    capacity = session.tag.capacity_bits(exc.info)
    if radio == "wifi-quaternary":
        capacity -= capacity % 2
    bits = gen.integers(0, 2, size=capacity).astype(np.uint8)
    draw = session.draw_packet(snr_db, tag_bits=bits, rng=gen,
                               excitation=exc)
    assert draw.result is None, "sync gate fired; pick another seed"
    return exc, bits, draw


@pytest.mark.parametrize("radio", RADIOS)
def test_scalar_and_batched_agree(radio):
    session = _session(radio)
    exc, bits, draw = _drawn_packet(session, radio)
    scalar = session.decode_iq(draw.noisy, exc, bits,
                               noise_var=draw.noise_var, snr_db=20.0)
    batched = session.decode_iq(draw.noisy, exc, bits,
                                noise_var=draw.noise_var, snr_db=20.0,
                                batched=True)
    assert (scalar.delivered, scalar.tag_bits_sent,
            scalar.tag_bit_errors) == (batched.delivered,
                                       batched.tag_bits_sent,
                                       batched.tag_bit_errors)


@pytest.mark.parametrize("radio", RADIOS)
def test_no_rng_draws(radio):
    session = _session(radio)
    exc, bits, draw = _drawn_packet(session, radio)
    before = session._rng.bit_generator.state
    session.decode_iq(draw.noisy, exc, bits, noise_var=draw.noise_var)
    session.decode_iq(draw.noisy, exc, bits, noise_var=draw.noise_var,
                      batched=True)
    session.decode_iq(np.empty(0, np.complex64), exc, bits)
    assert session._rng.bit_generator.state == before


@pytest.mark.parametrize("radio", RADIOS)
def test_empty_samples_is_gated_sync_fail(radio):
    session = _session(radio)
    exc, bits, _ = _drawn_packet(session, radio)
    with obs.collect() as reg:
        result = session.decode_iq(np.empty(0, np.complex64), exc, bits)
    prefix, stage = observed_stage(reg)
    assert stage == forensics.SYNC_FAIL
    assert not result.delivered
    assert result.tag_bit_errors == result.tag_bits_sent == bits.size
    assert reg.counter(f"{prefix}.packets") == 1


@pytest.mark.parametrize("radio", RADIOS)
def test_packet_and_stage_accounting(radio):
    session = _session(radio)
    exc, bits, draw = _drawn_packet(session, radio)
    with obs.collect() as reg:
        session.decode_iq(draw.noisy, exc, bits,
                          noise_var=draw.noise_var)
    prefix, stage = observed_stage(reg)
    assert stage in forensics.STAGES
    assert reg.counter(f"{prefix}.packets") == 1
    total = sum(reg.counter(forensics.stage_counter(prefix, s))
                for s in forensics.STAGES)
    assert total == 1


@pytest.mark.parametrize("radio", RADIOS)
def test_overlong_tag_bits_truncated_to_capacity(radio):
    session = _session(radio)
    exc, bits, draw = _drawn_packet(session, radio)
    capacity = session.tag.capacity_bits(exc.info)
    overlong = np.concatenate([bits, np.ones(3 * capacity, np.uint8)])
    result = session.decode_iq(draw.noisy, exc, overlong,
                               noise_var=draw.noise_var)
    assert result.tag_bits_sent == capacity


@pytest.mark.parametrize("radio", RADIOS)
def test_excitation_from_payload_matches_make_excitation(radio):
    session = _session(radio)
    gen = np.random.default_rng(0xBEEF)
    exc = session.make_excitation(rng=gen)
    if radio in ("wifi", "wifi-quaternary"):
        # Recover the draw make_excitation performed.
        gen2 = np.random.default_rng(0xBEEF)
        payload = bytes(int(b) for b in gen2.integers(
            0, 256, size=session.payload_bytes))
        seed = int(gen2.integers(1, 128))
        rebuilt = session.excitation_from_payload(payload,
                                                  scrambler_seed=seed)
    else:
        gen2 = np.random.default_rng(0xBEEF)
        payload = bytes(int(b) for b in gen2.integers(
            0, 256, size=session.payload_bytes))
        rebuilt = session.excitation_from_payload(payload)
    assert np.array_equal(rebuilt.frame.samples, exc.frame.samples)
    assert rebuilt.info == exc.info


def test_scrambler_seed_rejected_off_wifi():
    session = _session("zigbee")
    with pytest.raises(ValueError):
        session.excitation_from_payload(b"\x00" * 12, scrambler_seed=5)

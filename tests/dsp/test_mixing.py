"""Unit tests for repro.dsp.mixing — the tag's physical operations."""

import numpy as np
import pytest

from repro.dsp.mixing import (
    SQUARE_WAVE_FUNDAMENTAL_LOSS_DB,
    frequency_shift,
    phase_offset,
    square_wave,
    square_wave_mix,
    time_delay,
)


def tone(freq, fs, n):
    return np.exp(2j * np.pi * freq * np.arange(n) / fs)


def dominant_freq(x, fs):
    spec = np.abs(np.fft.fft(x))
    k = int(np.argmax(spec))
    freqs = np.fft.fftfreq(len(x), 1 / fs)
    return freqs[k]


class TestFrequencyShift:
    def test_shifts_a_tone(self):
        fs = 8e6
        x = tone(250e3, fs, 4096)
        y = frequency_shift(x, 500e3, fs)
        assert dominant_freq(y, fs) == pytest.approx(750e3, abs=fs / 4096)

    def test_negative_shift(self):
        fs = 8e6
        x = tone(250e3, fs, 4096)
        y = frequency_shift(x, -500e3, fs)
        assert dominant_freq(y, fs) == pytest.approx(-250e3, abs=fs / 4096)

    def test_preserves_power(self):
        x = tone(1e5, 1e6, 1000)
        y = frequency_shift(x, 2e5, 1e6)
        assert np.mean(np.abs(y) ** 2) == pytest.approx(np.mean(np.abs(x) ** 2))

    def test_bad_fs_raises(self):
        with pytest.raises(ValueError):
            frequency_shift(np.ones(4, complex), 1.0, 0.0)


class TestPhaseOffset:
    def test_rotates(self):
        x = np.ones(8, dtype=complex)
        y = phase_offset(x, np.pi)
        assert np.allclose(y, -1.0)

    def test_pi_offset_is_sign_flip(self):
        # Equation (4): data 1 <-> 180 degree offset on the whole signal.
        x = tone(1e5, 1e6, 64)
        assert np.allclose(phase_offset(x, np.pi), -x)


class TestTimeDelay:
    def test_zero_delay_copies(self):
        x = np.arange(5, dtype=complex)
        y = time_delay(x, 0)
        assert np.array_equal(y, x)
        assert y is not x

    def test_shifts_content(self):
        x = np.array([1, 2, 3, 4], dtype=complex)
        assert np.array_equal(time_delay(x, 2), [0, 0, 1, 2])

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            time_delay(np.ones(3, complex), -1)


class TestSquareWave:
    def test_levels(self):
        sq = square_wave(1000, 1e5, 1e6)
        assert set(np.unique(sq)) == {-1.0, 1.0}

    def test_duty_cycle_half(self):
        sq = square_wave(10000, 1e5, 1e6)
        assert abs(sq.mean()) < 0.05

    def test_custom_levels(self):
        sq = square_wave(100, 1e5, 1e6, levels=(1.0, 0.0))
        assert set(np.unique(sq)) == {0.0, 1.0}

    def test_bad_freq_raises(self):
        with pytest.raises(ValueError):
            square_wave(10, 0.0, 1e6)


class TestSquareWaveMix:
    def test_double_sideband(self):
        """Toggling at df produces images at f+df AND f-df (Figure 8)."""
        fs, f, df, n = 8e6, 250e3, 500e3, 8192
        y = square_wave_mix(tone(f, fs, n), df, fs)
        spec = np.abs(np.fft.fft(y))
        freqs = np.fft.fftfreq(n, 1 / fs)

        def power_at(target):
            k = int(np.argmin(np.abs(freqs - target)))
            return spec[k]

        upper = power_at(f + df)
        lower = power_at(f - df)
        carrier = power_at(f)
        assert upper > 10 * carrier  # carrier suppressed
        assert lower == pytest.approx(upper, rel=0.05)  # symmetric sidebands

    def test_fundamental_loss_close_to_3_9_db(self):
        assert SQUARE_WAVE_FUNDAMENTAL_LOSS_DB == pytest.approx(3.92, abs=0.02)

    def test_sideband_amplitude_matches_two_over_pi(self):
        fs, f, df, n = 8e6, 0.0, 1e6, 8192
        x = np.ones(n, dtype=complex)
        y = square_wave_mix(x, df, fs)
        spec = np.fft.fft(y) / n
        freqs = np.fft.fftfreq(n, 1 / fs)
        k = int(np.argmin(np.abs(freqs - df)))
        assert abs(spec[k]) == pytest.approx(2 / np.pi, rel=0.02)

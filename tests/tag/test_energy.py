"""Tests for the RF energy-harvesting model."""

import pytest

from repro.tag.energy import EnergyBudget, RfHarvester


class TestHarvester:
    def test_dead_below_sensitivity(self):
        h = RfHarvester()
        assert h.efficiency(-40.0) < 0.01
        assert h.harvested_uw(-40.0) < 0.01

    def test_efficiency_monotone(self):
        h = RfHarvester()
        effs = [h.efficiency(p) for p in (-30, -20, -10, 0, 10)]
        assert effs == sorted(effs)

    def test_peak_efficiency_approached(self):
        h = RfHarvester(peak_efficiency=0.45)
        assert h.efficiency(10.0) == pytest.approx(0.45, abs=0.02)

    def test_strong_input_powers_the_tag(self):
        """0 dBm incident (tag right next to the exciter) harvests far
        more than the 34 uW the WiFi translator consumes."""
        h = RfHarvester()
        assert h.harvested_uw(0.0) > 100.0

    def test_bad_knee_raises(self):
        with pytest.raises(ValueError):
            RfHarvester(knee_db=0.0).efficiency(-10.0)


class TestEnergyBudget:
    def test_no_power_no_duty(self):
        budget = EnergyBudget()
        assert budget.sustainable_duty_cycle(-50.0) == 0.0

    def test_full_duty_when_flooded(self):
        budget = EnergyBudget()
        assert budget.sustainable_duty_cycle(5.0) == 1.0

    def test_duty_monotone_in_power(self):
        budget = EnergyBudget()
        duties = [budget.sustainable_duty_cycle(p)
                  for p in (-25, -18, -12, -6, 0)]
        assert duties == sorted(duties)

    def test_cheaper_radio_sustains_more_duty(self):
        """Bluetooth translation (15 uW) runs at higher duty than WiFi
        (34 uW) on the same harvest."""
        budget = EnergyBudget()
        p = -11.0
        assert (budget.sustainable_duty_cycle(p, "bluetooth", 2e6)
                >= budget.sustainable_duty_cycle(p, "wifi", 20e6))

    def test_bad_excitation_duty_raises(self):
        with pytest.raises(ValueError):
            EnergyBudget().sustainable_duty_cycle(0.0, excitation_duty=0.0)


class TestBatteryFreeRange:
    def test_range_is_short(self):
        """Battery-free operation needs the tag close to the exciter —
        the known limitation of RF harvesting (and why the paper's tag
        has a power source module, Figure 5)."""
        budget = EnergyBudget()
        r = budget.battery_free_range_m(tx_power_dbm=15.0)
        assert 0.3 < r < 10.0

    def test_range_grows_with_tx_power(self):
        budget = EnergyBudget()
        assert (budget.battery_free_range_m(30.0)
                > budget.battery_free_range_m(15.0))

    def test_zero_when_impossible(self):
        budget = EnergyBudget()
        assert budget.battery_free_range_m(-30.0) == 0.0

    def test_range_boundary_is_consistent(self):
        budget = EnergyBudget()
        r = budget.battery_free_range_m(20.0, min_duty=0.05)
        from repro.channel.pathloss import LOS_HALLWAY

        p_at_r = 20.0 - LOS_HALLWAY.loss_db(r)
        assert budget.sustainable_duty_cycle(p_at_r) == pytest.approx(
            0.05, abs=0.01)

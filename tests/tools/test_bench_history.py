"""Bench history bookkeeping: append, comparability, regression gate.

These tests exercise :mod:`repro.bench.runner`'s trajectory logic with
synthetic reports — no kernels are timed, so they are tier-1 fast.  The
kernels themselves are covered by the CI smoke run (``repro bench
--smoke``) and the differential tests.
"""

import json

import pytest

from repro.bench import (
    BenchReport,
    KernelResult,
    compare_runs,
    load_history,
    require_batch_wins,
    update_history,
)


def _kernel(name, best_s, work=16):
    return KernelResult(name=name, best_s=best_s, mean_s=best_s,
                        repeats=3, work=work)


def _report(best_s=0.5, smoke=False, name="wifi.packets.scalar", work=16):
    return BenchReport(results=[_kernel(name, best_s, work)],
                       speedups={}, smoke=smoke)


def test_load_history_missing_file(tmp_path):
    history = load_history(str(tmp_path / "none.json"))
    assert history == {"schema": 1, "runs": []}


def test_load_history_rejects_garbage(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps([1, 2, 3]))
    with pytest.raises(ValueError):
        load_history(str(path))


def test_update_history_appends_with_increasing_sequence(tmp_path):
    path = str(tmp_path / "BENCH_phy.json")
    update_history(path, _report(0.5))
    update_history(path, _report(0.4))
    history = load_history(path)
    assert [run["sequence"] for run in history["runs"]] == [1, 2]
    assert history["runs"][1]["kernels"]["wifi.packets.scalar"][
        "best_s"] == 0.4


def test_no_regression_within_tolerance(tmp_path):
    path = str(tmp_path / "BENCH_phy.json")
    update_history(path, _report(0.50))
    lines = compare_runs(load_history(path), _report(0.55), tolerance=0.20)
    assert lines == []


def test_regression_beyond_tolerance_reported(tmp_path):
    path = str(tmp_path / "BENCH_phy.json")
    update_history(path, _report(0.50))
    lines = compare_runs(load_history(path), _report(0.75), tolerance=0.20)
    assert len(lines) == 1
    assert "wifi.packets.scalar" in lines[0]
    assert "1.50x" in lines[0]


def test_smoke_and_full_runs_not_compared(tmp_path):
    # A smoke run must not be judged against a full run's timings.
    path = str(tmp_path / "BENCH_phy.json")
    update_history(path, _report(0.01, smoke=False))
    notes = []
    lines = compare_runs(load_history(path), _report(9.0, smoke=True),
                         notes=notes)
    assert lines == []
    assert len(notes) == 1 and "no prior smoke run" in notes[0]


def test_different_work_sizes_not_compared(tmp_path):
    path = str(tmp_path / "BENCH_phy.json")
    update_history(path, _report(0.01, work=4))
    notes = []
    lines = compare_runs(load_history(path), _report(9.0, work=16),
                         notes=notes)
    assert lines == []
    assert len(notes) == 1 and "work changed" in notes[0]
    assert "4 -> 16" in notes[0]


def test_new_kernel_skipped_with_note_others_still_gated(tmp_path):
    # A freshly added kernel has no baseline; a resized kernel has an
    # incomparable one.  Neither may mask a real regression in a third.
    path = str(tmp_path / "BENCH_phy.json")
    update_history(path, BenchReport(
        results=[_kernel("wifi.packets.scalar", 0.50),
                 _kernel("zigbee.packets.scalar", 0.10, work=4)],
        speedups={}, smoke=False))
    report = BenchReport(
        results=[_kernel("wifi.packets.scalar", 0.90),      # regressed
                 _kernel("zigbee.packets.scalar", 9.0, work=64),  # resized
                 _kernel("ble.sweep.batched", 1.0)],        # brand new
        speedups={}, smoke=False)
    notes = []
    lines = compare_runs(load_history(path), report, notes=notes)
    assert len(lines) == 1 and "wifi.packets.scalar" in lines[0]
    assert any("zigbee.packets.scalar" in n and "work changed" in n
               for n in notes)
    assert any("ble.sweep.batched" in n and "comparison skipped" in n
               for n in notes)


def test_comparison_uses_latest_comparable_baseline(tmp_path):
    path = str(tmp_path / "BENCH_phy.json")
    update_history(path, _report(0.10))           # run 1
    update_history(path, _report(0.50))           # run 2 (latest)
    # 0.55 is within 20% of run 2 even though it is 5.5x run 1.
    lines = compare_runs(load_history(path), _report(0.55))
    assert lines == []


def _pair_report(scalar_s, batched_s, radio="zigbee"):
    return BenchReport(
        results=[_kernel(f"{radio}.packets.scalar", scalar_s),
                 _kernel(f"{radio}.packets.batched", batched_s)],
        speedups={}, smoke=True)


def test_require_batch_wins_passes_when_batched_faster():
    assert require_batch_wins(_pair_report(1.0, 0.5)) == []


def test_require_batch_wins_flags_slower_batched():
    lines = require_batch_wins(_pair_report(1.0, 1.5))
    assert len(lines) == 1
    assert "zigbee.packets" in lines[0] and "slower" in lines[0]


def test_require_batch_wins_allows_noise_headroom():
    # A batched time inside the headroom margin is not a violation.
    assert require_batch_wins(_pair_report(1.00, 1.04)) == []
    assert require_batch_wins(_pair_report(1.00, 1.04, radio="ble")) == []


def test_require_batch_wins_ignores_missing_pairs():
    report = _report(name="wifi.viterbi.scalar")
    assert require_batch_wins(report) == []


def test_cli_parser_accepts_bench():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["bench", "--smoke", "--repeats", "2", "--tolerance", "0.5",
         "--history", "x.json", "--require-batch-wins"])
    assert args.command == "bench"
    assert args.smoke and args.repeats == 2
    assert args.tolerance == 0.5 and args.history == "x.json"
    assert args.require_batch_wins

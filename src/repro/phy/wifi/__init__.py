"""802.11g/n OFDM PHY (ERP-OFDM, 20 MHz, 64 subcarriers).

The chain follows IEEE 802.11-2012 clause 18 exactly where the paper's
decoding argument depends on it: scrambler x^7 + x^4 + 1 (Figure 7 /
equation 8), rate-1/2 K=7 convolutional coder with punctured variants
(equation 9), per-OFDM-symbol block interleaver, and BPSK/QPSK/16-QAM/
64-QAM subcarrier mapping.
"""

from repro.phy.wifi.scrambler import Scrambler, scramble, descramble
from repro.phy.wifi.convolutional import ConvolutionalCode, CODE_802_11
from repro.phy.wifi.interleaver import interleave, deinterleave
from repro.phy.wifi.constellation import Constellation, CONSTELLATIONS
from repro.phy.wifi.rates import WifiRate, WIFI_RATES, rate_by_mbps
from repro.phy.wifi.ofdm import OfdmModulator
from repro.phy.wifi.plcp import PlcpHeader, build_ppdu_bits, parse_signal_field
from repro.phy.wifi.transmitter import WifiTransmitter, WifiFrame
from repro.phy.wifi.receiver import WifiReceiver, WifiDecodeResult

__all__ = [
    "Scrambler",
    "scramble",
    "descramble",
    "ConvolutionalCode",
    "CODE_802_11",
    "interleave",
    "deinterleave",
    "Constellation",
    "CONSTELLATIONS",
    "WifiRate",
    "WIFI_RATES",
    "rate_by_mbps",
    "OfdmModulator",
    "PlcpHeader",
    "build_ppdu_bits",
    "parse_signal_field",
    "WifiTransmitter",
    "WifiFrame",
    "WifiReceiver",
    "WifiDecodeResult",
]

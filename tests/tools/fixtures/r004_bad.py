"""R004 violations: raw arithmetic/aggregation on NaN-sentinel fields."""

import numpy as np


def mean_ber(points):
    return np.mean([p.ber for p in points])


def sum_series(series):
    return sum(series.y)


def add_bers(a, b):
    return a.ber + b.ber


def accumulate(total, point):
    total += point.ber
    return total

"""The committed baseline / ratchet file.

``reprolint-baseline.json`` maps ``"path:rule"`` to the number of
findings a file is *allowed* to have — pre-existing debt that should
not fail CI but must never grow.  The tree currently carries zero debt
(the file ships empty); the machinery exists so a future rule can land
strict without a big-bang cleanup, then ratchet down as files are
fixed.  ``--update-baseline`` rewrites the file from the current
findings.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.tools.lint.model import Finding

__all__ = ["load_baseline", "apply_baseline", "write_baseline"]


def load_baseline(path: str) -> Dict[str, int]:
    """``{"path:rule": allowed count}``; a missing file means no debt."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            raw = json.load(fh)
    except OSError:
        return {}
    allowed = raw.get("allowed") if isinstance(raw, dict) else None
    if not isinstance(allowed, dict):
        return {}
    return {str(key): int(count) for key, count in allowed.items()
            if isinstance(count, int) and count > 0}


def apply_baseline(findings: List[Finding], baseline: Dict[str, int]
                   ) -> Tuple[List[Finding], List[Finding]]:
    """Split into (still-failing, absorbed-by-baseline).

    Findings are absorbed in (line, col) order, up to the allowed
    count per ``path:rule`` key — a file that *grows* new findings
    fails on the excess.
    """
    if not baseline:
        return list(findings), []
    remaining = dict(baseline)
    kept: List[Finding] = []
    absorbed: List[Finding] = []
    for finding in sorted(findings,
                          key=lambda f: (f.path, f.line, f.col)):
        key = f"{finding.path}:{finding.rule_id}"
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            finding.baselined = True
            absorbed.append(finding)
        else:
            kept.append(finding)
    return kept, absorbed


def write_baseline(path: str, findings: List[Finding]) -> None:
    counts: Dict[str, int] = {}
    for finding in findings:
        key = f"{finding.path}:{finding.rule_id}"
        counts[key] = counts.get(key, 0) + 1
    payload = {
        "comment": ("reprolint ratchet: allowed pre-existing findings "
                    "per path:rule; regenerate with --update-baseline, "
                    "only ever shrink it"),
        "allowed": {key: counts[key] for key in sorted(counts)},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")

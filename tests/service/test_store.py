"""The content-addressed result store."""

import json

import pytest

from repro.service.store import STORE_VERSION, ResultStore, StoreError
from repro.sim.engine import (
    ExperimentEngine,
    FingerprintMismatch,
    spec_fingerprint,
)
from repro.sim.spec import load_spec


@pytest.fixture
def result(link_spec):
    return ExperimentEngine().run(link_spec)


class TestPutGet:
    def test_put_returns_fingerprint_and_has(self, tmp_path, result,
                                             link_spec):
        store = ResultStore(tmp_path)
        key = store.put(result)
        assert key == spec_fingerprint(link_spec)
        assert store.has(key)
        assert store.fingerprints() == [key]

    def test_get_round_trips_points_exactly(self, tmp_path, result):
        store = ResultStore(tmp_path)
        key = store.put(result)
        loaded = store.get(key)
        assert loaded is not None
        assert loaded.spec == result.spec
        assert loaded.points == result.points  # exact float equality
        assert [t.to_dict() for t in loaded.tasks] \
            == [t.to_dict() for t in result.tasks]
        assert loaded.packets_simulated == result.packets_simulated

    def test_missing_fingerprint(self, tmp_path):
        store = ResultStore(tmp_path)
        assert not store.has("deadbeefdeadbeef")
        assert store.raw("deadbeefdeadbeef") is None
        assert store.get("deadbeefdeadbeef") is None
        with pytest.raises(KeyError):
            store.load_record("deadbeefdeadbeef")

    def test_record_is_self_describing(self, tmp_path, result, link_spec):
        store = ResultStore(tmp_path)
        key = store.put(result)
        record = store.load_record(key)
        assert record["version"] == STORE_VERSION
        assert record["fingerprint"] == key
        assert load_spec(record["envelope"]) == link_spec

    def test_raw_bytes_are_stable_across_reads(self, tmp_path, result):
        store = ResultStore(tmp_path)
        key = store.put(result)
        assert store.raw(key) == store.raw(key)
        assert store.raw(key) == store.path_for(key).read_bytes()

    def test_atomic_publication_leaves_no_tmp(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(result)
        assert not list(tmp_path.glob("*.tmp"))


class TestCorruption:
    def test_truncated_record_raises_store_error(self, tmp_path, result):
        store = ResultStore(tmp_path)
        key = store.put(result)
        store.path_for(key).write_text('{"version": 1, "fing')
        with pytest.raises(StoreError, match="not valid JSON"):
            store.load_record(key)

    def test_recordless_json_raises_store_error(self, tmp_path, result):
        store = ResultStore(tmp_path)
        key = store.put(result)
        store.path_for(key).write_text('{"version": 1}')
        with pytest.raises(StoreError, match="result"):
            store.load_record(key)

    def test_mislabeled_record_raises_fingerprint_mismatch(
            self, tmp_path, result):
        # A record renamed to the wrong key must refuse to serve.
        store = ResultStore(tmp_path)
        key = store.put(result)
        record = json.loads(store.path_for(key).read_text())
        wrong = "0" * 16
        store.path_for(wrong).write_text(json.dumps(record))
        with pytest.raises(FingerprintMismatch):
            store.load_record(wrong)

"""Tests for the 2 Mb/s DQPSK mode of 802.11b."""

import numpy as np
import pytest

from repro.channel.awgn import awgn_at_snr
from repro.phy.dsss.barker import despread_symbols, spread_symbols
from repro.phy.dsss.dqpsk import PAIR_TO_PHASE, dqpsk_decode, dqpsk_encode
from repro.utils.bits import random_bits


class TestMapping:
    def test_standard_phase_table(self):
        assert PAIR_TO_PHASE[(0, 0)] == 0.0
        assert PAIR_TO_PHASE[(1, 1)] == pytest.approx(np.pi)
        assert PAIR_TO_PHASE[(1, 0)] == pytest.approx(3 * np.pi / 2)


class TestRoundTrip:
    def test_clean(self, rng):
        bits = random_bits(200, rng)
        syms, _ = dqpsk_encode(bits)
        assert np.array_equal(dqpsk_decode(syms), bits)

    def test_unit_envelope(self, rng):
        syms, _ = dqpsk_encode(random_bits(64, rng))
        assert np.allclose(np.abs(syms), 1.0)

    def test_odd_bits_raise(self, rng):
        with pytest.raises(ValueError):
            dqpsk_encode(random_bits(7, rng))

    def test_phase_chaining(self, rng):
        bits = random_bits(80, rng)
        whole, _ = dqpsk_encode(bits)
        first, phi = dqpsk_encode(bits[:40])
        second, _ = dqpsk_encode(bits[40:], phase_ref=phi)
        assert np.allclose(np.concatenate([first, second]), whole)

    def test_static_rotation_invariant(self, rng):
        """Differential decoding ignores a constant channel phase."""
        bits = random_bits(100, rng)
        syms, _ = dqpsk_encode(bits)
        rotated = syms * np.exp(1j * 1.234)
        out = dqpsk_decode(rotated)
        # Only the first pair (referenced to phase_ref) can differ.
        assert np.array_equal(out[2:], bits[2:])


class TestWithBarkerSpreading:
    def test_2mbps_chain(self, rng):
        """DQPSK symbols through Barker-11: 2 bits per 1 us symbol."""
        bits = random_bits(400, rng)
        syms, _ = dqpsk_encode(bits)
        chips = spread_symbols(syms)
        noisy = awgn_at_snr(chips, 5.0, rng)
        rx_syms = despread_symbols(noisy, syms.size)
        out = dqpsk_decode(rx_syms)
        assert int(np.sum(out != bits)) == 0

    def test_tag_rotation_is_a_codeword_shift(self, rng):
        """A 90-degree tag rotation between two symbols decodes as a
        differential-alphabet shift — the eq. (5) quaternary scheme
        maps onto 802.11b's native DQPSK codebook."""
        bits = np.zeros(40, dtype=np.uint8)  # all (0,0): no phase steps
        syms, _ = dqpsk_encode(bits)
        rotated = syms.copy()
        rotated[10:] *= np.exp(1j * np.pi / 2)  # tag step at symbol 10
        out = dqpsk_decode(rotated)
        # Exactly one pair flips, to the +90deg codeword (0,1).
        assert tuple(out[20:22]) == (0, 1)
        assert np.array_equal(out[:20], bits[:20])
        assert np.array_equal(out[22:], bits[22:])

"""reprolint command line.

``python -m repro.tools.lint [paths...]`` — or ``python -m repro lint``
— checks ``src tests benchmarks examples`` by default.  Exit codes:
0 clean, 1 findings, 2 errors (missing paths, unreadable or
unparseable files).

The result cache (``.reprolint-cache.json``) is on by default so a
warm re-lint of an unchanged tree does no parsing at all; pass
``--no-cache`` for hermetic runs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, TextIO

from repro.tools.lint.emit import emit_text, to_json, to_sarif, write_json
from repro.tools.lint.rules import RULES
from repro.tools.lint.runner import lint_paths

__all__ = ["main"]

_DEFAULT_PATHS = ["src", "tests", "benchmarks", "examples"]
_DEFAULT_CACHE = ".reprolint-cache.json"
_DEFAULT_BASELINE = "reprolint-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="project-aware lint for the repro codebase")
    parser.add_argument("paths", nargs="*", default=None,
                        help=f"files or directories "
                             f"(default: {' '.join(_DEFAULT_PATHS)})")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="primary output format")
    parser.add_argument("-o", "--output", metavar="PATH",
                        help="write primary output to PATH instead of "
                             "stdout")
    parser.add_argument("--sarif", metavar="PATH", dest="sarif_path",
                        help="additionally write a SARIF 2.1.0 report "
                             "to PATH")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="include suppressed/baselined findings in "
                             "text output")
    parser.add_argument("--stats", action="store_true",
                        help="print cache hit statistics")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="analysis threads (default: executor "
                             "chooses)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache")
    parser.add_argument("--cache-path", default=_DEFAULT_CACHE,
                        metavar="PATH",
                        help=f"result cache file (default: "
                             f"{_DEFAULT_CACHE})")
    parser.add_argument("--changed", action="store_true",
                        help="only report findings in files changed vs "
                             "--base-ref (index stays whole-tree)")
    parser.add_argument("--base-ref", default="HEAD", metavar="REF",
                        help="git ref for --changed (default: HEAD)")
    parser.add_argument("--baseline", default=_DEFAULT_BASELINE,
                        metavar="PATH",
                        help=f"ratchet file of allowed findings "
                             f"(default: {_DEFAULT_BASELINE})")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current "
                             "findings, then apply it")
    return parser


def _list_rules(stream: TextIO) -> None:
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        stream.write(f"{rule.id}  {rule.name}: {rule.summary}\n")


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        _list_rules(sys.stdout)
        return 0

    paths: List[str] = args.paths or _DEFAULT_PATHS
    existing = [p for p in paths if Path(p).exists()]
    if not existing:
        print(f"error: no such paths: {' '.join(paths)}",
              file=sys.stderr)
        return 2

    report = lint_paths(
        existing,
        jobs=args.jobs,
        cache_path=None if args.no_cache else args.cache_path,
        changed_only=args.changed,
        base_ref=args.base_ref,
        baseline_path=args.baseline,
        update_baseline=args.update_baseline,
    )

    for err in report.errors:
        print(f"error: {err}", file=sys.stderr)

    out: TextIO = sys.stdout
    close_out = False
    if args.output:
        out = open(args.output, "w", encoding="utf-8")
        close_out = True
    try:
        if args.format == "json":
            write_json(to_json(report), out)
        elif args.format == "sarif":
            write_json(to_sarif(report), out)
        else:
            emit_text(report, out, show_suppressed=args.show_suppressed,
                      show_stats=args.stats)
    finally:
        if close_out:
            out.close()

    if args.sarif_path:
        with open(args.sarif_path, "w", encoding="utf-8") as fh:
            write_json(to_sarif(report), fh)

    return report.exit_code()


if __name__ == "__main__":
    raise SystemExit(main())

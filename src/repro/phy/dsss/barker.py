"""Barker-11 spreading for 802.11b (11 Mchip/s, 1 Msymbol/s).

Each PSK symbol is multiplied by the 11-chip Barker word, giving a
processing gain of ~10.4 dB and the sharp autocorrelation the receiver
uses for symbol timing.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BARKER_11", "spread_symbols", "despread_symbols",
           "despread_symbols_batch", "PROCESSING_GAIN_DB"]

# IEEE 802.11-2012 section 17.4.6.4 chip sequence (+1/-1 form).
BARKER_11 = np.array([1, -1, 1, 1, -1, 1, 1, 1, -1, -1, -1], dtype=float)
PROCESSING_GAIN_DB = float(10 * np.log10(BARKER_11.size))


def spread_symbols(symbols: np.ndarray) -> np.ndarray:
    """Multiply each complex PSK symbol by the Barker word.

    Output has 11 chips per symbol at one sample per chip.
    """
    syms = np.asarray(symbols, dtype=complex).ravel()
    return (syms[:, None] * BARKER_11[None, :]).ravel()


def despread_symbols(chips: np.ndarray, n_symbols: int) -> np.ndarray:
    """Correlate consecutive 11-chip blocks with the Barker word.

    Returns *n_symbols* complex symbol estimates, normalised so a clean
    unit-power input returns unit-magnitude symbols.
    """
    wav = np.asarray(chips, dtype=complex)
    needed = 11 * n_symbols
    if wav.size < needed:
        wav = np.concatenate([wav, np.zeros(needed - wav.size, dtype=complex)])
    blocks = wav[:needed].reshape(n_symbols, 11)
    return blocks @ BARKER_11 / BARKER_11.size


def despread_symbols_batch(chips: np.ndarray, n_symbols: int) -> np.ndarray:
    """Row-wise :func:`despread_symbols` of a (B, N) stack, returning
    (B, n_symbols) — bit-identical per row.  The correlation is the
    same matrix-vector product over 11-chip rows; stacking more rows
    does not change any row's accumulation order (the same invariance
    the OQPSK matched filter relies on)."""
    wav = np.asarray(chips, dtype=complex)
    if wav.ndim != 2:
        raise ValueError("despread_symbols_batch expects a (B, N) array")
    n_b = wav.shape[0]
    needed = 11 * n_symbols
    if wav.shape[1] < needed:
        wav = np.concatenate(
            [wav, np.zeros((n_b, needed - wav.shape[1]), dtype=complex)],
            axis=1)
    blocks = np.ascontiguousarray(wav[:, :needed]).reshape(
        n_b * n_symbols, 11)
    return (blocks @ BARKER_11 / BARKER_11.size).reshape(n_b, n_symbols)

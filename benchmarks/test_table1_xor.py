"""Table 1: the XOR decoding logic between backscattered codeword,
excitation codeword, and tag bits — exercised through the real
end-to-end WiFi chain rather than as a truth table."""

import numpy as np

from repro.core.session import WifiBackscatterSession
from repro.sim.results import format_table
from repro.utils.bits import xor_bits


def run_experiment():
    rows = []
    # The abstract logic table.
    for decoded, original in ((1, 0), (0, 1), (0, 0), (1, 1)):
        tag_bit = int(xor_bits([decoded], [original])[0])
        rows.append([f"C{decoded + 1}", f"C{original + 1}", tag_bit])
    # End-to-end confirmation: known tag bits recovered through the
    # full scramble/encode/interleave/OFDM chain.
    session = WifiBackscatterSession(seed=101, payload_bytes=256)
    tag_bits = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8)
    result = session.run_packet(snr_db=20.0, tag_bits=tag_bits)
    return rows, result


def test_table1(once, emit):
    rows, result = once(run_experiment)
    table = format_table(
        ["decoded codeword", "excitation codeword", "tag bit"], rows,
        title="Table 1: codeword-translation decoding logic (tag = XOR)")
    table += (f"\nend-to-end over 802.11g chain: {result.tag_bits_sent} tag "
              f"bits sent, {result.tag_bit_errors} errors")
    emit("table1_xor", table)
    assert [r[2] for r in rows] == [1, 1, 0, 0]
    assert result.delivered and result.tag_bit_errors == 0

"""Figure 15: WiFi throughput CDF with a backscatter tag present/absent.

Paper anchors: ~37.4 Mb/s median without backscatter; 37.0 / 37.9 /
36.8 Mb/s medians while the tag backscatters WiFi / ZigBee / Bluetooth
— i.e. no measurable impact, because the tag's microwatt reflection on
channel 13 is far below the channel-6 receiver's adjacent-channel floor.
"""

import numpy as np

from repro.net.coexistence import CoexistenceSimulator
from repro.sim.results import format_table


def run_experiment(n=2000, seed=150):
    sim = CoexistenceSimulator(seed=seed)
    out = {"no backscatter": sim.wifi_throughput_samples(n,
                                                         tag_present=False)}
    for radio in ("wifi", "zigbee", "bluetooth"):
        out[f"backscattering {radio}"] = sim.wifi_throughput_samples(
            n, tag_present=True, tag_radio=radio)
    return out


def test_fig15_wifi_impact(once, emit):
    samples = once(run_experiment)
    rows = []
    for name, s in samples.items():
        rows.append([name, float(np.median(s)),
                     float(np.percentile(s, 10)),
                     float(np.percentile(s, 90))])
    table = format_table(
        ["scenario", "median (Mb/s)", "p10", "p90"], rows,
        title="Figure 15: WiFi throughput with backscatter present/absent")
    emit("fig15_wifi_impact", table)

    base = float(np.median(samples["no backscatter"]))
    assert abs(base - 37.4) < 0.5
    for radio in ("wifi", "zigbee", "bluetooth"):
        med = float(np.median(samples[f"backscattering {radio}"]))
        # Paper: medians within ~0.6 Mb/s of the no-tag case.
        assert abs(med - base) < 0.8

"""Unit tests for repro.dsp.filters."""

import numpy as np
import pytest

from repro.dsp.filters import (
    gaussian_taps,
    half_sine_pulse,
    moving_average,
    rrc_taps,
)


class TestGaussianTaps:
    def test_unit_dc_gain(self):
        taps = gaussian_taps(bt=0.5, sps=8)
        assert taps.sum() == pytest.approx(1.0)

    def test_symmetric(self):
        taps = gaussian_taps(bt=0.5, sps=8)
        assert np.allclose(taps, taps[::-1])

    def test_narrower_bt_is_wider_pulse(self):
        wide = gaussian_taps(bt=0.3, sps=8)
        narrow = gaussian_taps(bt=1.0, sps=8)
        # A lower BT spreads energy further from the centre tap.
        assert wide.max() < narrow.max()

    def test_invalid_bt_raises(self):
        with pytest.raises(ValueError):
            gaussian_taps(bt=0.0, sps=8)

    def test_invalid_sps_raises(self):
        with pytest.raises(ValueError):
            gaussian_taps(bt=0.5, sps=0)


class TestHalfSine:
    def test_length(self):
        assert half_sine_pulse(8).size == 8

    def test_positive_and_peaked_in_middle(self):
        p = half_sine_pulse(16)
        assert np.all(p > 0)
        assert p.argmax() in (7, 8)

    def test_symmetric(self):
        p = half_sine_pulse(10)
        assert np.allclose(p, p[::-1])

    def test_invalid_sps_raises(self):
        with pytest.raises(ValueError):
            half_sine_pulse(0)


class TestRrc:
    def test_unit_energy(self):
        taps = rrc_taps(beta=0.35, sps=4)
        assert np.sum(taps**2) == pytest.approx(1.0)

    def test_symmetric(self):
        taps = rrc_taps(beta=0.5, sps=4)
        assert np.allclose(taps, taps[::-1])

    def test_invalid_beta_raises(self):
        with pytest.raises(ValueError):
            rrc_taps(beta=0.0, sps=4)
        with pytest.raises(ValueError):
            rrc_taps(beta=1.5, sps=4)

    def test_special_point_handled(self):
        # t = 1/(4 beta) hits the removable singularity.
        taps = rrc_taps(beta=0.25, sps=4)
        assert np.all(np.isfinite(taps))


class TestMovingAverage:
    def test_constant_input(self):
        out = moving_average(np.ones(10), 4)
        assert out[-1] == pytest.approx(1.0)

    def test_length_preserved(self):
        assert moving_average(np.arange(7.0), 3).size == 7

    def test_window_one_is_identity(self):
        x = np.arange(5.0)
        assert np.allclose(moving_average(x, 1), x)

    def test_invalid_window_raises(self):
        with pytest.raises(ValueError):
            moving_average(np.ones(3), 0)

"""Quaternary codeword translation (equation 5): 90-degree phase steps
carrying two tag bits per step — the paper's "higher data rate" option.

A 90-degree rotation is a valid translation only when every subcarrier
constellation is closed under it (QPSK and denser QAMs are; BPSK is
not — see ``tests/core/test_codebook.py``).  Unlike the binary scheme,
the rotated *coded* bits are a Gray-remap rather than a complement, so
the plain XOR-of-decoded-bits trick cannot recover the level.  The
FreeRider backhaul, which holds both receivers' outputs anyway
(Figure 1), instead estimates each span's rotation directly on the
equalised constellation:

    level_k = argmax_l  Re( sum_span rx2 * conj(rx1_ref) * e^{-j l pi/2} )

which is the maximum-likelihood detector for a common rotation over a
span and degrades gracefully with SNR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Union

import numpy as np

from repro.phy.wifi.convolutional import CODE_802_11
from repro.phy.wifi.interleaver import interleave
from repro.phy.wifi.scrambler import Scrambler
from repro.phy.wifi.plcp import TAIL_BITS
from repro.utils.bits import as_bits

if TYPE_CHECKING:
    from repro.phy.wifi.transmitter import WifiFrame

__all__ = ["reference_symbol_matrix", "RotationTagDecoder",
           "QuaternaryTagDecoder", "levels_to_bits", "bits_to_levels"]


def reference_symbol_matrix(frame: "WifiFrame") -> np.ndarray:
    """Re-derive the (n_symbols, 48) TX constellation matrix of a
    :class:`~repro.phy.wifi.transmitter.WifiFrame` from its ground
    truth (data bits + scrambler seed)."""
    rate = frame.rate
    scrambled = Scrambler(frame.scrambler_seed).process(frame.data_bits)
    tail_start = 16 + 8 * len(frame.psdu)
    scrambled[tail_start:tail_start + TAIL_BITS] = 0
    coded = CODE_802_11.encode(scrambled, rate.coding_rate)
    interleaved = interleave(coded, rate.n_cbps, rate.n_bpsc)
    symbols = rate.constellation.modulate(interleaved)
    return symbols.reshape(frame.n_data_symbols, -1)


def bits_to_levels(tag_bits: Union[Sequence[int], np.ndarray, str]
                   ) -> np.ndarray:
    """Pair tag bits MSB-first into phase levels 0..3 (equation 5)."""
    bits = as_bits(tag_bits)
    if bits.size % 2:
        raise ValueError("quaternary scheme needs an even bit count")
    pairs = bits.reshape(-1, 2)
    return (2 * pairs[:, 0] + pairs[:, 1]).astype(np.int64)


def levels_to_bits(levels: Union[Sequence[int], np.ndarray]) -> np.ndarray:
    """Inverse of :func:`bits_to_levels`."""
    lv = np.asarray(levels, dtype=np.int64).ravel()
    if lv.size and (lv.min() < 0 or lv.max() > 3):
        raise ValueError("levels must be 0..3")
    out = np.empty(2 * lv.size, dtype=np.uint8)
    out[0::2] = (lv >> 1) & 1
    out[1::2] = lv & 1
    return out


@dataclass
class RotationTagDecoder:
    """Span-rotation estimator over the equalised constellation.

    Works for any phase-step alphabet: ``n_levels=2`` decodes the
    binary 180-degree scheme (needed on 16/64-QAM excitations, where a
    flip is a valid translation but only complements the MSBs per axis,
    so the XOR-of-decoded-bits decoder cannot see it), ``n_levels=4``
    the quaternary scheme of equation (5).

    Parameters
    ----------
    repetition:
        OFDM symbols per tag symbol (phase step).
    offset_symbols:
        First OFDM symbol index the tag modulates (1 with the
        SERVICE-symbol deferral).
    n_levels:
        Phase alphabet size (2 or 4).
    """

    repetition: int = 4
    offset_symbols: int = 1
    n_levels: int = 4

    def __post_init__(self) -> None:
        if self.n_levels not in (2, 4):
            raise ValueError("n_levels must be 2 or 4")

    @property
    def bits_per_symbol(self) -> int:
        return 1 if self.n_levels == 2 else 2

    def decode_levels(self, reference: np.ndarray, received: np.ndarray,
                      n_tag_symbols: Optional[int] = None) -> np.ndarray:
        """Estimate the phase level of each tag symbol.

        *reference* and *received* are (n_symbols, 48) matrices; rows
        beyond either matrix are ignored.
        """
        n_rows = min(reference.shape[0], received.shape[0])
        usable = (n_rows - self.offset_symbols) // self.repetition
        if n_tag_symbols is not None:
            usable = min(usable, n_tag_symbols)
        step = 2 * np.pi / self.n_levels
        levels = np.zeros(max(usable, 0), dtype=np.int64)
        for k in range(usable):
            a = self.offset_symbols + k * self.repetition
            b = a + self.repetition
            corr = np.sum(received[a:b] * np.conj(reference[a:b]))
            levels[k] = int(np.round(np.angle(corr) / step)) % self.n_levels
        return levels

    def decode_bits(self, reference: np.ndarray, received: np.ndarray,
                    n_tag_bits: Optional[int] = None) -> np.ndarray:
        """Tag bits from the rotation estimates."""
        bps = self.bits_per_symbol
        n_syms = None if n_tag_bits is None else -(-n_tag_bits // bps)
        levels = self.decode_levels(reference, received, n_syms)
        if bps == 1:
            bits = levels.astype(np.uint8)
        else:
            bits = levels_to_bits(levels)
        if n_tag_bits is not None:
            bits = bits[:n_tag_bits]
        return bits


class QuaternaryTagDecoder(RotationTagDecoder):
    """Equation-(5) decoder: :class:`RotationTagDecoder` at 4 levels."""

    def __init__(self, repetition: int = 4, offset_symbols: int = 1) -> None:
        super().__init__(repetition=repetition,
                         offset_symbols=offset_symbols, n_levels=4)

"""R008 — time measurement goes through obs.timed, not ad-hoc clocks."""

from __future__ import annotations

import ast

from repro.tools.lint.model import Rule
from repro.tools.lint.rules.base import AstLintRule, dotted_name

_MONOTONIC_CLOCKS = {
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
}


class ObsClockRule(AstLintRule):
    rule = Rule(
        "R008", "obs-owns-the-clock",
        "time measurement goes through obs.timed, not ad-hoc clocks",
        "Hand-rolled perf_counter deltas bypass the metrics registry, "
        "so the timing never shows up in run reports.  Wrap the region "
        "in obs.timed(name) / reg.timer(name) instead.")
    # Only project modules must route timing through obs; tests and
    # benchmarks may hand-roll timers for their own assertions.
    path_only = ("repro/",)
    # obs implements the timers; the engine measures pool latencies it
    # feeds into obs itself.
    path_allow = ("repro/obs/", "repro/sim/engine.py")

    def visit_Call(self, node: ast.Call) -> None:
        canon = self.canonical(dotted_name(node.func))
        if canon in _MONOTONIC_CLOCKS:
            self.flag(node,
                      f"ad-hoc timing via {canon}(); wrap the region in "
                      f"obs.timed(name) so it lands in the metrics "
                      f"registry")
        self.generic_visit(node)

"""Frozen baseband IQ captures: export/import, corpus, replay, fuzz.

The package turns the receive chain's trust story into on-disk
artifacts (ROADMAP: "IQ capture/replay corpus and regression-at-scale").
A *capture* is one backscattered packet frozen as a compressed ``.npz``
of complex64 samples plus a JSON metadata sidecar carrying everything
needed to replay the decode bit-identically: the excitation payload,
the ground-truth tag bits, the channel impairment, and the expected
decode outcome (delivered flag, bit errors, and forensics stage).

- :mod:`repro.iq.format` — the ``repro.iq/1`` on-disk format and its
  fingerprint convention (typed errors, never silent garbage).
- :mod:`repro.iq.corpus` — the impairment-grid generator that freezes
  waveforms for every registered radio.
- :mod:`repro.iq.replay` — the deterministic replay harness diffing
  scalar and batched decodes against the frozen expectations.
- :mod:`repro.iq.fuzz` — the seeded mutation fuzzer asserting the
  crash-free classification contract.
"""

from repro.iq.format import (
    FORMAT_VERSION,
    IQCapture,
    IQFingerprintMismatch,
    IQFormatError,
    iq_fingerprint,
    iter_captures,
    read_capture,
    write_capture,
)

__all__ = [
    "FORMAT_VERSION",
    "IQCapture",
    "IQFingerprintMismatch",
    "IQFormatError",
    "iq_fingerprint",
    "iter_captures",
    "read_capture",
    "write_capture",
]

# lint-as: src/repro/mac/fixture_metrics.py
"""R011 violations: metric names absent from repro/obs/names.py."""

from repro import obs


def record(prefix):
    obs.inc("mac.slost.singles")  # typo'd literal counter
    obs.inc(f"{prefix}.stag.ok")  # template matches no declared pattern

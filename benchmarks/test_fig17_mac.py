"""Figure 17: multi-tag MAC — aggregate throughput (a, measured and
simulated) and Jain's fairness index (b) for 4/8/12/16/20 tags, plus
the section 4.5 asymptotes (~18 kb/s framed slotted Aloha vs ~40 kb/s
for the collision-free TDM extension).
"""

import numpy as np

from repro.sim.macsim import MacExperiment
from repro.sim.results import format_table

TAG_COUNTS = (4, 8, 12, 16, 20)


def run_experiment(seed=170, n_jobs=None):
    exp = MacExperiment(measured_rounds=12, simulated_rounds=300, seed=seed)
    points = exp.sweep(TAG_COUNTS, n_jobs=n_jobs)
    aloha_asym = exp.asymptote_kbps(n_tags=120, scheme="aloha")
    tdm_asym = exp.asymptote_kbps(n_tags=120, scheme="tdm")
    fairness_avg20 = float(np.mean([exp.run_point(20).fairness
                                    for _ in range(6)]))
    return points, aloha_asym, tdm_asym, fairness_avg20


def test_fig17_mac(once, emit, engine_jobs):
    points, aloha_asym, tdm_asym, fairness20 = once(run_experiment,
                                                    n_jobs=engine_jobs)
    rows = [[p.n_tags, p.measured_kbps, p.simulated_kbps, p.tdm_kbps,
             p.fairness] for p in points]
    table = format_table(
        ["tags", "measured (kb/s)", "simulated (kb/s)", "TDM bound",
         "Jain fairness"], rows,
        title="Figure 17: multi-tag MAC throughput and fairness")
    table += (f"\n>20-tag asymptotes: Aloha {aloha_asym:.1f} kb/s "
              f"(paper ~18), TDM {tdm_asym:.1f} kb/s (paper ~40)"
              f"\naveraged 20-tag fairness: {fairness20:.2f} (paper ~0.85)")
    from repro.sim.charts import ascii_chart
    from repro.sim.results import Series

    curve = Series("aloha", x_label="tags", y_label="kb/s")
    for p in points:
        curve.append(p.n_tags, p.simulated_kbps)
    table += "\n\n" + ascii_chart(curve, height=10,
                                  title="FSA throughput vs tag count")
    emit("fig17_mac", table)

    by_n = {p.n_tags: p for p in points}
    # (a) throughput grows with tag count toward the asymptote.
    assert by_n[20].simulated_kbps > by_n[4].simulated_kbps
    assert 12.0 < by_n[20].simulated_kbps < 18.0
    assert 14.0 < aloha_asym < 23.0
    assert 33.0 < tdm_asym < 46.0
    # (b) fairness stays high and roughly flat (paper: ~0.85 at 20 tags).
    for p in points:
        assert p.fairness > 0.6
    assert abs(fairness20 - 0.85) < 0.12
    # Measured (short window) and simulated (long run) agree in shape.
    for p in points:
        assert abs(p.measured_kbps - p.simulated_kbps) < 6.0

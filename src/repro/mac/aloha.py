"""Framed Slotted Aloha uplink with dynamic slot adjustment
(paper section 2.4.1) plus the TDM upper-bound baseline.

Communication proceeds in rounds.  Each round the transmitter
broadcasts a start message over PLM announcing the slot count; every
tag picks a uniform random slot and backscatters its data there.  Two
tags in one slot collide and deliver nothing.  After the round the
receiver infers collisions/empties and the controller resizes the
frame (section 2.4.1: "If the transmitter sees many collisions, it
adds slots. It decreases the number of slots if there are many
un-utilized").

Throughput accounting matches the paper's Figure 17: the asymptote of
the random-access scheme is the Aloha efficiency (1/e) of the raw
~62.5 kb/s tag rate less control overhead (~18 kb/s), while a TDM
frame of the same machinery tops out near 40 kb/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.mac.controller import SlotController
from repro.mac.fairness import jain_index
from repro.mac.plm import PlmConfig, PlmTransmitter
from repro.utils.rng import make_rng

__all__ = ["AlohaConfig", "MacRoundStats", "MacResult",
           "FramedSlottedAloha", "TdmScheme"]


@dataclass(frozen=True)
class AlohaConfig:
    """MAC-layer constants.

    ``slot_bits`` at ``tag_rate_kbps`` sets the slot airtime; the start
    message (slot count + round id) rides the ~500 b/s PLM downlink.
    ``inter_round_gap_us`` is the deliberate idle time that keeps the
    backscatter system from hogging the channel (section 2.4.1).
    """

    slot_bits: int = 256
    tag_rate_kbps: float = 62.5
    control_payload_bits: int = 16
    initial_slots: int = 8
    min_slots: int = 2
    max_slots: int = 64
    inter_round_gap_us: float = 2000.0
    slot_delivery_prob: float = 1.0  # per-slot PHY delivery (range effect)
    # TDM needs an explicit per-tag grant over the ~500 b/s PLM downlink
    # each round (random access avoids this — section 2.4.1); this is
    # what caps the paper's TDM asymptote near 40 kb/s instead of the
    # raw 62.5 kb/s tag rate.
    tdm_per_slot_overhead_us: float = 2200.0
    plm: PlmConfig = field(default_factory=PlmConfig)

    @property
    def slot_airtime_us(self) -> float:
        return self.slot_bits / self.tag_rate_kbps * 1e3

    def control_airtime_us(self) -> float:
        return PlmTransmitter(self.plm).message_airtime_us(
            self.control_payload_bits)


@dataclass
class MacRoundStats:
    """Outcome of one round."""

    n_slots: int
    singles: int
    collisions: int
    empties: int
    duration_us: float


@dataclass
class MacResult:
    """Aggregate outcome of a multi-round simulation."""

    n_tags: int
    rounds: List[MacRoundStats]
    per_tag_bits: Dict[int, int]

    @property
    def total_time_us(self) -> float:
        return sum(r.duration_us for r in self.rounds)

    @property
    def delivered_bits(self) -> int:
        return sum(self.per_tag_bits.values())

    @property
    def aggregate_throughput_kbps(self) -> float:
        t = self.total_time_us
        return self.delivered_bits / t * 1e3 if t else 0.0

    @property
    def fairness(self) -> float:
        return jain_index([self.per_tag_bits.get(i, 0)
                           for i in range(self.n_tags)])

    @property
    def collision_rate(self) -> float:
        slots = sum(r.n_slots for r in self.rounds)
        return sum(r.collisions for r in self.rounds) / slots if slots else 0.0


class FramedSlottedAloha:
    """Round-based FSA simulator with a dynamic slot controller."""

    def __init__(self, config: Optional[AlohaConfig] = None,
                 seed: Optional[int] = None):
        self.config = config or AlohaConfig()
        self._rng = make_rng(seed)

    def simulate(self, n_tags: int, n_rounds: int = 50,
                 controller: Optional[SlotController] = None) -> MacResult:
        """Run *n_rounds* rounds with *n_tags* always-backlogged tags."""
        if n_tags < 1:
            raise ValueError("need at least one tag")
        cfg = self.config
        ctrl = controller or SlotController(cfg.initial_slots,
                                            cfg.min_slots, cfg.max_slots)
        per_tag: Dict[int, int] = {i: 0 for i in range(n_tags)}
        rounds: List[MacRoundStats] = []
        for _ in range(n_rounds):
            n_slots = ctrl.n_slots
            choices = self._rng.integers(0, n_slots, size=n_tags)
            counts = np.bincount(choices, minlength=n_slots)
            singles = 0
            collisions = int(np.sum(counts >= 2))
            empties = int(np.sum(counts == 0))
            for slot in np.flatnonzero(counts == 1):
                tag = int(np.flatnonzero(choices == slot)[0])
                if self._rng.random() < cfg.slot_delivery_prob:
                    per_tag[tag] += cfg.slot_bits
                    singles += 1
            duration = (cfg.control_airtime_us()
                        + n_slots * cfg.slot_airtime_us
                        + cfg.inter_round_gap_us)
            rounds.append(MacRoundStats(n_slots, singles, collisions,
                                        empties, duration))
            ctrl.observe(singles=singles, collisions=collisions,
                         empties=empties)
        return MacResult(n_tags=n_tags, rounds=rounds, per_tag_bits=per_tag)


class TdmScheme:
    """Idealised time-division baseline: one dedicated slot per tag.

    This is the "no collisions" curve the paper reports asymptoting at
    ~40 kb/s — same control overhead and slot machinery, zero contention.
    """

    def __init__(self, config: Optional[AlohaConfig] = None,
                 seed: Optional[int] = None):
        self.config = config or AlohaConfig()
        self._rng = make_rng(seed)

    def simulate(self, n_tags: int, n_rounds: int = 50) -> MacResult:
        """Every tag transmits once per round in its own slot."""
        if n_tags < 1:
            raise ValueError("need at least one tag")
        cfg = self.config
        per_tag: Dict[int, int] = {i: 0 for i in range(n_tags)}
        rounds: List[MacRoundStats] = []
        for _ in range(n_rounds):
            singles = 0
            for tag in range(n_tags):
                if self._rng.random() < cfg.slot_delivery_prob:
                    per_tag[tag] += cfg.slot_bits
                    singles += 1
            duration = (cfg.control_airtime_us()
                        + n_tags * (cfg.slot_airtime_us
                                    + cfg.tdm_per_slot_overhead_us)
                        + cfg.inter_round_gap_us)
            rounds.append(MacRoundStats(n_tags, singles, 0,
                                        n_tags - singles, duration))
        return MacResult(n_tags=n_tags, rounds=rounds, per_tag_bits=per_tag)

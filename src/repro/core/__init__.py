"""FreeRider's primary contribution: codeword translation.

* :mod:`repro.core.codebook` — formal codeword/codebook abstractions
  (section 2.2.1 of the paper).
* :mod:`repro.core.translation` — the per-radio signal transformations a
  tag applies (phase offsets for OFDM/OQPSK, frequency shift for FSK).
* :mod:`repro.core.decoder` — XOR / symbol-difference extraction of tag
  bits from the two receivers' decoded streams (Table 1).
* :mod:`repro.core.session` — end-to-end single-tag backscatter links
  for each of the three radios.
* :mod:`repro.core.registry` — the unified session registry every
  driver (CLI, link simulator, experiment engine) builds sessions from.
"""

from repro.core.codebook import Codebook, Codeword, bluetooth_codebook, zigbee_codebook
from repro.core.registry import (
    BackscatterSession,
    create_session,
    register_session,
    registered_radios,
    session_from_config,
)
from repro.core.translation import (
    PhaseTranslator,
    FskShiftTranslator,
    TranslationPlan,
    bits_per_symbol_for_phase_levels,
)
from repro.core.decoder import (
    XorTagDecoder,
    SymbolDiffTagDecoder,
    TagDecodeResult,
)
from repro.core.tagframe import TagDeframer, TagFramer, TagMessage

_SESSION_EXPORTS = (
    "WifiBackscatterSession",
    "ZigbeeBackscatterSession",
    "BleBackscatterSession",
    "SessionResult",
)


def __getattr__(name: str) -> object:
    # Sessions import the tag package, which imports repro.core.translation;
    # resolving them lazily keeps that chain acyclic.
    if name in _SESSION_EXPORTS:
        from repro.core import session

        return getattr(session, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Codebook",
    "Codeword",
    "BackscatterSession",
    "create_session",
    "register_session",
    "registered_radios",
    "session_from_config",
    "bluetooth_codebook",
    "zigbee_codebook",
    "PhaseTranslator",
    "FskShiftTranslator",
    "TranslationPlan",
    "bits_per_symbol_for_phase_levels",
    "XorTagDecoder",
    "SymbolDiffTagDecoder",
    "TagDecodeResult",
    "TagFramer",
    "TagDeframer",
    "TagMessage",
    "WifiBackscatterSession",
    "ZigbeeBackscatterSession",
    "BleBackscatterSession",
    "SessionResult",
]

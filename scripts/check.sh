#!/usr/bin/env bash
# Local CI gate: tier-1 tests, reprolint, and (when installed) mypy.
# Mirrors .github/workflows/ci.yml; run from the repository root.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== golden-vector conformance =="
python -m pytest -x -q tests/phy/test_golden_vectors.py

echo "== batched/scalar differential =="
python -m pytest -x -q tests/sim/test_batch_differential.py

echo "== IQ corpus: replay + fuzz smoke =="
python -m pytest -x -q tests/iq
python -m repro corpus replay --mode both
python -m repro corpus fuzz --iterations 50 --seed 7

echo "== perf smoke =="
python -m repro bench --smoke --no-history

echo "== sweep service smoke =="
python -m pytest -x -q tests/service

echo "== reprolint =="
# The content-hash cache (.reprolint-cache.json, git-ignored) makes a
# re-run over an unchanged tree near-instant; --stats shows the hit rate.
python -m repro.tools.lint --stats src tests benchmarks examples

echo "== mypy =="
if python -c "import mypy" 2>/dev/null; then
    python -m mypy
else
    echo "mypy not installed (pip install -e '.[lint]'); skipping"
fi

echo "== all checks passed =="

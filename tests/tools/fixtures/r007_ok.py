"""R007-clean: module-level callables cross process boundaries."""


def _double(x):
    return x * 2


def build_spec(ExperimentSpec, config):
    return ExperimentSpec(config=config, transform=_double)


def dispatch(pool, value):
    return pool.submit(_double, value)

"""Persistent sweep service: many submitters, one cache-aware compute tier.

The paper's evaluation is a pile of parameter sweeps, and every spec is
content-addressable (:func:`repro.sim.engine.spec_fingerprint`), so the
natural server shape is a job queue in front of a result cache: accept
``ExperimentSpec`` / ``MacExperimentSpec`` submissions over HTTP or the
``repro submit`` CLI, run each *distinct* spec exactly once on the
existing engine (checkpointed, so a crashed job resumes mid-sweep), and
serve every later identical submission straight from the store —
bit-identical bytes, zero new compute.

Layers, smallest first:

* :mod:`~repro.service.store` — :class:`ResultStore`, a content-addressed
  on-disk map ``spec_fingerprint -> RunResult`` (atomic writes, raw-bytes
  reads so cached fetches are bit-identical).
* :mod:`~repro.service.queue` — :class:`JobQueue`, a JSONL-journaled job
  table (torn-line tolerant, like the trace sink); replaying the journal
  after a kill restores every queued and in-flight job.
* :mod:`~repro.service.service` — :class:`SweepService`, the worker tier:
  claims pending jobs, dedups against the store, executes through the
  engine's :func:`~repro.sim.engine.execute_run` orchestration layer with
  a per-fingerprint checkpoint, and folds run metrics into a service-wide
  registry.
* :mod:`~repro.service.http` — stdlib HTTP front end (``POST /jobs``,
  ``GET /jobs/<id>``, ``GET /jobs/<id>/result``, ``GET /metrics``).
* :mod:`~repro.service.client` — :class:`ServiceClient`, the urllib
  client behind ``repro submit`` / ``status`` / ``fetch``.

No dependencies beyond the standard library and the existing engine.
"""

from repro.service.client import ServiceClient, ServiceClientError
from repro.service.http import ServiceHTTPServer, serve
from repro.service.queue import JobQueue, JobRecord
from repro.service.service import ServiceError, SweepService, UnknownJobError
from repro.service.store import ResultStore, StoreError

__all__ = ["JobQueue", "JobRecord", "ResultStore", "ServiceClient",
           "ServiceClientError", "ServiceError", "ServiceHTTPServer",
           "StoreError", "SweepService", "UnknownJobError", "serve"]

"""Complementary Code Keying — the 5.5/11 Mb/s modes of 802.11b.

At 11 Mb/s each symbol carries 8 bits: (d0,d1) pick the DQPSK phase
phi1 of the whole codeword, and (d2,d3), (d4,d5), (d6,d7) pick phi2,
phi3, phi4 of the 8-chip complementary codeword

    c = ( e^{j(p1+p2+p3+p4)}, e^{j(p1+p3+p4)}, e^{j(p1+p2+p4)},
         -e^{j(p1+p4)},       e^{j(p1+p2+p3)}, e^{j(p1+p3)},
         -e^{j(p1+p2)},       e^{j(p1)} )

The 256 on-air codewords form a codebook **closed under 90-degree
rotation** (a rotation only shifts phi1), so FreeRider's quaternary
phase translation is valid on CCK excitations too — each 90-degree tag
step deterministically remaps the two DQPSK bits.  This module provides
the modem and that codebook; see ``tests/phy/test_cck.py`` for the
translation demonstration.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.bits import as_bits

__all__ = ["cck_codeword", "cck_modulate", "cck_demodulate",
           "cck_codebook_matrix", "CHIPS_PER_SYMBOL", "BITS_PER_SYMBOL"]

CHIPS_PER_SYMBOL = 8
BITS_PER_SYMBOL = 8

# QPSK mapping for the (d_even, d_odd) pairs of phi2..phi4
# (IEEE 802.11-2012 Table 17-10).
_PAIR_PHASE = {(0, 0): 0.0, (0, 1): np.pi / 2,
               (1, 0): np.pi, (1, 1): 3 * np.pi / 2}


def _pair(bits, i) -> Tuple[int, int]:
    return int(bits[i]), int(bits[i + 1])


def cck_codeword(phi1: float, phi2: float, phi3: float,
                 phi4: float) -> np.ndarray:
    """The 8-chip CCK codeword for the four phases."""
    p1, p2, p3, p4 = phi1, phi2, phi3, phi4
    return np.array([
        np.exp(1j * (p1 + p2 + p3 + p4)),
        np.exp(1j * (p1 + p3 + p4)),
        np.exp(1j * (p1 + p2 + p4)),
        -np.exp(1j * (p1 + p4)),
        np.exp(1j * (p1 + p2 + p3)),
        np.exp(1j * (p1 + p3)),
        -np.exp(1j * (p1 + p2)),
        np.exp(1j * p1),
    ])


def cck_codebook_matrix() -> np.ndarray:
    """All 64 base codewords (phi1 = 0) as a (64, 8) matrix.

    Row index encodes (phi2, phi3, phi4) as base-4 digits (two bits
    each, matching the (d2,d3)(d4,d5)(d6,d7) pairs).
    """
    phases = [0.0, np.pi / 2, np.pi, 3 * np.pi / 2]
    rows = np.empty((64, CHIPS_PER_SYMBOL), dtype=complex)
    for i2, p2 in enumerate(phases):
        for i3, p3 in enumerate(phases):
            for i4, p4 in enumerate(phases):
                rows[16 * i2 + 4 * i3 + i4] = cck_codeword(0.0, p2, p3, p4)
    return rows


_CODEBOOK = cck_codebook_matrix()
_PHASES = np.array([0.0, np.pi / 2, np.pi, 3 * np.pi / 2])


def cck_modulate(bits, phi_ref: float = 0.0) -> Tuple[np.ndarray, float]:
    """Modulate a bit array (multiple of 8) into CCK chips.

    phi1 is differentially encoded from *phi_ref*; returns
    ``(chips, final_phi1)`` so streams can be chained.  (The standard's
    extra pi offset on odd symbols is omitted — it cancels in any
    differential decoder and keeps this module self-contained.)
    """
    arr = as_bits(bits)
    if arr.size % BITS_PER_SYMBOL:
        raise ValueError("CCK needs a multiple of 8 bits")
    chips = np.empty((arr.size // 8) * CHIPS_PER_SYMBOL, dtype=complex)
    phi1 = phi_ref
    for s in range(arr.size // 8):
        b = arr[8 * s: 8 * s + 8]
        dphi = _PAIR_PHASE[_pair(b, 0)]
        phi1 = (phi1 + dphi) % (2 * np.pi)
        p2 = _PAIR_PHASE[_pair(b, 2)]
        p3 = _PAIR_PHASE[_pair(b, 4)]
        p4 = _PAIR_PHASE[_pair(b, 6)]
        chips[8 * s: 8 * s + 8] = cck_codeword(phi1, p2, p3, p4)
    return chips, phi1


def cck_demodulate(chips: np.ndarray, phi_ref: float = 0.0) -> np.ndarray:
    """Maximum-likelihood CCK demodulation.

    For each 8-chip block, correlate against the 64 base codewords; the
    best row gives (d2..d7) and the correlation's phase, quantised to
    90 degrees and differentially decoded, gives (d0,d1).
    """
    wav = np.asarray(chips, dtype=complex)
    if wav.size % CHIPS_PER_SYMBOL:
        raise ValueError("chip count must be a multiple of 8")
    n_sym = wav.size // CHIPS_PER_SYMBOL
    out = np.empty(n_sym * BITS_PER_SYMBOL, dtype=np.uint8)
    prev_phi1 = phi_ref
    inv_pair = {v: k for k, v in _PAIR_PHASE.items()}
    for s in range(n_sym):
        block = wav[8 * s: 8 * s + 8]
        corr = _CODEBOOK.conj() @ block  # (64,)
        row = int(np.argmax(np.abs(corr)))
        phi1 = np.angle(corr[row])
        level = int(np.round(phi1 / (np.pi / 2))) % 4
        phi1_q = _PHASES[level]
        dphi = (phi1_q - prev_phi1) % (2 * np.pi)
        d01 = inv_pair[min(_PAIR_PHASE.values(),
                           key=lambda p: abs((dphi - p + np.pi)
                                             % (2 * np.pi) - np.pi))]
        prev_phi1 = phi1_q
        i2, i3, i4 = row // 16, (row // 4) % 4, row % 4
        bits = list(d01)
        for idx in (i2, i3, i4):
            bits.extend(inv_pair[_PHASES[idx]])
        out[8 * s: 8 * s + 8] = bits
    return out

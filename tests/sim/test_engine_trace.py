"""Engine tracing tests: worker-count-invariant span aggregation,
trace-file output, retry/requeue events, per-task stage counts in
checkpoint journals, and bit-identity of results with tracing on."""

import json

import pytest

from repro.channel.geometry import Deployment
from repro.obs import TraceConfig, forensics, read_trace
from repro.sim.config import BLE_CONFIG, ZIGBEE_CONFIG
from repro.sim.engine import (
    ExperimentEngine,
    ExperimentSpec,
    FailurePolicy,
    FaultInjector,
    spec_fingerprint,
)


def _small_spec(config, payload_bytes, distances=(2.0, 30.0), packets=2,
                seed=7):
    return ExperimentSpec(config=config.replace(payload_bytes=payload_bytes),
                          deployment=Deployment.los(1.0),
                          distances_m=distances,
                          packets_per_point=packets, seed=seed)


def _span_counts(metrics):
    return {path: stat["count"]
            for path, stat in metrics.get("spans", {}).items()}


class TestWorkerInvariance:
    def test_span_tree_and_counters_match_across_worker_counts(self):
        spec = _small_spec(ZIGBEE_CONFIG, 24)
        trace = TraceConfig()
        serial = ExperimentEngine(n_jobs=1, trace=trace).run(spec)
        parallel = ExperimentEngine(n_jobs=4, trace=trace).run(spec)
        assert serial.points == parallel.points
        assert _span_counts(serial.metrics) == _span_counts(parallel.metrics)

        def result_counters(metrics):
            # Cache-hit counters depend on process layout (a reused
            # worker keeps its frame LRU warm); results never do.
            return {k: v for k, v in metrics["counters"].items()
                    if not k.endswith("_cached")}

        assert result_counters(serial.metrics) \
            == result_counters(parallel.metrics)

    def test_span_paths_are_rerooted_under_engine_run(self):
        spec = _small_spec(ZIGBEE_CONFIG, 24)
        result = ExperimentEngine(n_jobs=2, trace=TraceConfig()).run(spec)
        counts = _span_counts(result.metrics)
        assert counts["engine.run"] == 1
        assert counts["engine.run/engine.task"] == 2
        assert counts["engine.run/engine.task/sim.point"] == 2

    def test_packet_events_match_across_worker_counts(self):
        spec = _small_spec(ZIGBEE_CONFIG, 24)
        trace = TraceConfig()

        def packet_events(result):
            events = [e for e in result.metrics.get("events", [])
                      if e["kind"] == "packet"]
            # Arrival order differs between worker counts; content
            # (task, seq within task, stage) must not.
            return sorted((e["task"], e["seq"], e["stage"], e["snr_db"])
                          for e in events)

        serial = ExperimentEngine(n_jobs=1, trace=trace).run(spec)
        parallel = ExperimentEngine(n_jobs=4, trace=trace).run(spec)
        assert packet_events(serial) == packet_events(parallel)
        assert len(packet_events(serial)) == 4  # 2 points x 2 packets

    def test_tracing_does_not_change_points(self):
        spec = _small_spec(BLE_CONFIG, 40)
        plain = ExperimentEngine(n_jobs=1).run(spec)
        traced = ExperimentEngine(n_jobs=1, trace=TraceConfig()).run(spec)
        assert plain.points == traced.points

    def test_untraced_run_has_no_span_or_event_keys(self):
        spec = _small_spec(ZIGBEE_CONFIG, 24)
        result = ExperimentEngine(n_jobs=1).run(spec)
        assert "spans" not in result.metrics
        assert "events" not in result.metrics


class TestTraceFile:
    def test_trace_path_writes_fingerprinted_jsonl(self, tmp_path):
        spec = _small_spec(ZIGBEE_CONFIG, 24)
        path = tmp_path / "trace.jsonl"
        result = ExperimentEngine(n_jobs=2, trace=TraceConfig()).run(
            spec, trace_path=str(path))
        records = read_trace(str(path))
        assert records, "trace file is empty"
        fingerprint = spec_fingerprint(spec)
        assert all(r["spec"] == fingerprint for r in records)
        kinds = {r["kind"] for r in records}
        assert {"span", "packet"} <= kinds
        # The file carries exactly what the merged registry holds.
        assert len(records) == len(result.metrics["events"])

    def test_trace_path_alone_enables_tracing(self, tmp_path):
        spec = _small_spec(ZIGBEE_CONFIG, 24)
        path = tmp_path / "trace.jsonl"
        ExperimentEngine(n_jobs=1).run(spec, trace_path=str(path))
        assert read_trace(str(path))


class TestRetryEvents:
    def test_inline_retry_recorded_as_event(self):
        spec = _small_spec(ZIGBEE_CONFIG, 24, distances=(2.0,))
        engine = ExperimentEngine(
            n_jobs=1,
            failure_policy=FailurePolicy(mode="degrade", max_attempts=2),
            fault_injector=FaultInjector(fail={0: 1}),
            trace=TraceConfig())
        result = engine.run(spec)
        assert result.metrics["counters"]["engine.retries"] == 1
        retries = [e for e in result.metrics["events"]
                   if e["kind"] == "engine.retry"]
        assert len(retries) == 1
        assert retries[0]["task"] == 0
        assert retries[0]["attempt"] == 1
        assert "injected fault" in retries[0]["error"]

    def test_pool_retry_recorded_as_event(self):
        spec = _small_spec(ZIGBEE_CONFIG, 24, distances=(2.0, 30.0))
        engine = ExperimentEngine(
            n_jobs=2,
            failure_policy=FailurePolicy(mode="degrade", max_attempts=2),
            fault_injector=FaultInjector(fail={1: 1}),
            trace=TraceConfig())
        result = engine.run(spec)
        retries = [e for e in result.metrics["events"]
                   if e["kind"] == "engine.retry"]
        assert [e["task"] for e in retries] == [1]
        assert result.points[1] is not None  # retry recovered the point


class TestStageCountsInJournal:
    def test_task_records_carry_stage_counts(self):
        spec = _small_spec(ZIGBEE_CONFIG, 24)
        result = ExperimentEngine(n_jobs=1).run(spec)
        for record, n in zip(result.tasks, (2, 2)):
            assert sum(record.stage_counts.values()) == n
            assert set(record.stage_counts) <= set(forensics.STAGES)

    def test_journal_rows_carry_stage_counts(self, tmp_path):
        spec = _small_spec(ZIGBEE_CONFIG, 24)
        path = tmp_path / "ck.jsonl"
        ExperimentEngine(n_jobs=1).run(spec, checkpoint=str(path))
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        header, rows = rows[0], rows[1:]
        assert header["kind"] == "header"
        assert header["envelope"]["kind"] == "link"
        assert len(rows) == 2
        for row in rows:
            assert sum(row["stage_counts"].values()) == 2

    def test_resume_restores_stage_counts(self, tmp_path):
        spec = _small_spec(ZIGBEE_CONFIG, 24)
        path = tmp_path / "ck.jsonl"
        cold = ExperimentEngine(n_jobs=1).run(spec, checkpoint=str(path))
        warm = ExperimentEngine(n_jobs=1).run(spec, checkpoint=str(path))
        assert warm.points == cold.points
        assert all(t.resumed for t in warm.tasks)
        assert [t.stage_counts for t in warm.tasks] == \
            [t.stage_counts for t in cold.tasks]

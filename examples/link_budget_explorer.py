#!/usr/bin/env python3
"""Link-budget explorer: where can you deploy a FreeRider tag?

Prints the operational regime (Figure 14 style) for each radio — the
maximum receiver distance as a function of exciter-to-tag distance —
plus a waterfall of the dB budget for one example deployment.  Useful
for answering "will a tag work on this shelf?" before placing hardware.

Run:  python examples/link_budget_explorer.py
"""

import numpy as np

from repro.channel.geometry import Deployment
from repro.channel.pathloss import LOS_HALLWAY
from repro.sim.config import BLE_CONFIG, WIFI_CONFIG, ZIGBEE_CONFIG




def main() -> None:
    tx_distances = (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 4.5)

    print("operational regime: max RX-to-tag distance (m) vs TX-to-tag")
    print(f"{'tx->tag (m)':>12s}", end="")
    for cfg in (WIFI_CONFIG, ZIGBEE_CONFIG, BLE_CONFIG):
        print(f"{cfg.name:>12s}", end="")
    print()
    for d_tx in tx_distances:
        print(f"{d_tx:12.1f}", end="")
        for cfg in (WIFI_CONFIG, ZIGBEE_CONFIG, BLE_CONFIG):
            r = cfg.budget().max_range_m(d_tx, cfg.sensitivity_dbm())
            print(f"{r:12.1f}", end="")
        print()

    # dB waterfall for the paper's standard WiFi deployment.
    cfg = WIFI_CONFIG
    budget = cfg.budget()
    dep = Deployment.los(tag_to_rx_m=18.0)
    print("\nbudget waterfall (WiFi, tag 1 m from TX, RX 18 m away):")
    incident = budget.tag_incident_dbm(dep)
    print(f"  TX power                 {cfg.tx_power_dbm:+7.1f} dBm")
    print(f"  path loss TX->tag (1 m)  {-LOS_HALLWAY.loss_db(1.0):+7.1f} dB")
    print(f"  incident at tag          {incident:+7.1f} dBm")
    print(f"  tag conversion loss      {-budget.tag_loss_db:+7.1f} dB")
    print(f"  path loss tag->RX (18 m) {-LOS_HALLWAY.loss_db(18.0):+7.1f} dB")
    print(f"  RSSI at receiver         {budget.rssi_dbm(dep):+7.1f} dBm")
    print(f"  noise floor (20 MHz)     {budget.noise_dbm:+7.1f} dBm")
    print(f"  SNR                      {budget.snr_db(dep):+7.1f} dB")


if __name__ == "__main__":
    main()

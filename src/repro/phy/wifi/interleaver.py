"""802.11 OFDM block interleaver (IEEE 802.11-2012 section 18.3.5.7).

Interleaving operates on one OFDM symbol's worth of coded bits at a time
(N_CBPS bits) and never crosses symbol boundaries — the property the
FreeRider paper leans on in section 3.2.1: as long as one tag bit spans
at least one whole OFDM symbol, the interleaver cannot smear a tag bit's
edits across two tag bits.

Two permutations are applied:
    first:  i = (N_CBPS/16) * (k mod 16) + floor(k/16)
    second: j = s * floor(i/s) + (i + N_CBPS - floor(16*i/N_CBPS)) mod s
with s = max(N_BPSC/2, 1).
"""

from __future__ import annotations

import numpy as np

from repro.utils.bits import as_bits

__all__ = ["interleave", "deinterleave", "interleave_permutation",
           "deinterleave_soft", "deinterleave_soft_batch"]


def interleave_permutation(n_cbps: int, n_bpsc: int) -> np.ndarray:
    """Return the permutation ``perm`` such that output[perm[k]] = input[k].

    *n_cbps* is coded bits per OFDM symbol, *n_bpsc* bits per subcarrier.
    """
    if n_cbps % 16:
        raise ValueError("N_CBPS must be a multiple of 16")
    if n_bpsc not in (1, 2, 4, 6):
        raise ValueError("N_BPSC must be 1, 2, 4 or 6")
    s = max(n_bpsc // 2, 1)
    k = np.arange(n_cbps)
    i = (n_cbps // 16) * (k % 16) + k // 16
    j = s * (i // s) + (i + n_cbps - (16 * i // n_cbps)) % s
    return j


def _apply_blockwise(bits: np.ndarray, perm: np.ndarray, inverse: bool) -> np.ndarray:
    n_cbps = perm.size
    if bits.size % n_cbps:
        raise ValueError(
            f"bit count {bits.size} is not a multiple of N_CBPS={n_cbps}")
    blocks = bits.reshape(-1, n_cbps)
    out = np.empty_like(blocks)
    if inverse:
        out = blocks[:, perm]
    else:
        out[:, perm] = blocks
    return out.ravel()


def interleave(bits, n_cbps: int, n_bpsc: int) -> np.ndarray:
    """Interleave coded bits, one N_CBPS block per OFDM symbol."""
    return _apply_blockwise(as_bits(bits), interleave_permutation(n_cbps, n_bpsc), False)


def deinterleave(bits, n_cbps: int, n_bpsc: int) -> np.ndarray:
    """Invert :func:`interleave`."""
    return _apply_blockwise(as_bits(bits), interleave_permutation(n_cbps, n_bpsc), True)


def deinterleave_soft(llrs: np.ndarray, n_cbps: int, n_bpsc: int) -> np.ndarray:
    """De-interleave a soft-value (float) stream block-by-block."""
    arr = np.asarray(llrs, dtype=float)
    perm = interleave_permutation(n_cbps, n_bpsc)
    if arr.size % n_cbps:
        raise ValueError(
            f"LLR count {arr.size} is not a multiple of N_CBPS={n_cbps}")
    return arr.reshape(-1, n_cbps)[:, perm].ravel()


def deinterleave_soft_batch(llrs: np.ndarray, n_cbps: int,
                            n_bpsc: int) -> np.ndarray:
    """De-interleave a (B, L) stack of soft streams; row *i* equals
    ``deinterleave_soft(llrs[i], ...)`` (a pure gather, so stacking rows
    is exact)."""
    arr = np.asarray(llrs, dtype=float)
    if arr.ndim != 2:
        raise ValueError("deinterleave_soft_batch expects a (B, L) array")
    perm = interleave_permutation(n_cbps, n_bpsc)
    if arr.shape[1] % n_cbps:
        raise ValueError(
            f"LLR count {arr.shape[1]} is not a multiple of N_CBPS={n_cbps}")
    n_b = arr.shape[0]
    return arr.reshape(-1, n_cbps)[:, perm].reshape(n_b, arr.shape[1])

"""R009 — batch decode phases must be RNG-free (phase purity).

The two-phase batch contract (see docs/batching.md): every random draw
a packet needs happens up front in ``predraw_packet`` in scalar order,
so the batched path consumes the generator identically to the scalar
path.  A draw anywhere in ``channel_packets`` / ``finish_packets`` /
``decode_batch`` — or anything they call, transitively — reorders the
stream and silently breaks batch-equals-scalar equivalence.

This rule walks the project call graph from each pure-phase method and
flags every reachable RNG draw.  Resolution is best-effort
(under-approximating, except subclass dispatch for ``self.`` calls), so
a clean pass is necessary-but-not-sufficient — which is the right
polarity for a gate.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.tools.lint.index import FuncInfo
from repro.tools.lint.model import Finding, Rule
from repro.tools.lint.rules.base import FileContext, LintRule

#: Methods bound by the RNG-free contract.  ``predraw_packet`` /
#: ``draw_packet`` own the randomness and are deliberately absent.
PURE_PHASES = frozenset({
    "channel_packets", "finish_packets", "decode_batch",
    "decode_packets", "finish_packet", "_decode_batch", "_finish_packet",
})

#: Traversal depth cap; the real call chains are ~4 deep, the cap only
#: bounds pathological cycles the visited-set already breaks.
_MAX_DEPTH = 12


class PhasePurityRule(LintRule):
    rule = Rule(
        "R009", "phase-purity",
        "no RNG draws in batch channel/finish/decode phases",
        "All randomness belongs to predraw_packet (scalar draw order); "
        "a draw inside channel_packets/finish_packets/decode_batch or "
        "any transitive callee desynchronises the generator between the "
        "scalar and batched paths.")
    path_only = ("repro/",)

    def check(self, ctx: FileContext) -> List[Finding]:
        if not self.applies_to(ctx.path):
            return []
        findings: List[Finding] = []
        roots: List[FuncInfo] = []
        for finfo in ctx.module.functions.values():
            if finfo.name in PURE_PHASES:
                roots.append(finfo)
        for cinfo in ctx.module.classes.values():
            for name, method in cinfo.methods.items():
                if name in PURE_PHASES:
                    roots.append(method)
        for root in roots:
            findings.extend(self._check_root(ctx, root))
        return findings

    def _check_root(self, ctx: FileContext,
                    root: FuncInfo) -> List[Finding]:
        findings: List[Finding] = []
        reported: Set[Tuple[str, int]] = set()
        visited: Set[Tuple[str, str]] = set()
        stack: List[Tuple[FuncInfo, int]] = [(root, 0)]
        while stack:
            func, depth = stack.pop()
            key = (func.path, func.qualname)
            if key in visited or depth > _MAX_DEPTH:
                continue
            visited.add(key)
            for draw in func.draws:
                site = (func.path, draw.line)
                if site in reported:
                    continue
                reported.add(site)
                if func.path == ctx.path:
                    findings.append(Finding(
                        path=ctx.path, line=draw.line, col=draw.col,
                        rule_id=self.rule.id,
                        message=(f"RNG draw {draw.desc} inside pure "
                                 f"phase {root.name}(); move it to "
                                 f"predraw_packet")))
                else:
                    findings.append(Finding(
                        path=ctx.path, line=root.line, col=0,
                        rule_id=self.rule.id,
                        message=(f"pure phase {root.name}() transitively "
                                 f"draws RNG via {func.qualname} "
                                 f"({func.path}:{draw.line}: "
                                 f"{draw.desc}); move the draw to "
                                 f"predraw_packet")))
            owner_mod = ctx.index.by_path.get(func.path)
            if owner_mod is None:
                continue
            for site_ref in func.calls:
                for callee in ctx.index.resolve_call(site_ref, func,
                                                     owner_mod):
                    stack.append((callee, depth + 1))
        return findings

"""802.15.4 symbol-to-chip spreading (IEEE 802.15.4-2011 Table 73).

Sixteen quasi-orthogonal 32-chip PN sequences.  Symbols 1..7 are 4-chip
right-rotations of symbol 0; symbols 8..15 invert the odd-indexed chips
(the "conjugated" half of the codebook).  These sequences are the ZigBee
*codebook* in FreeRider's terminology: any tag modification must land
the received chips close to one of these 16 codewords.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["CHIP_SEQUENCES", "symbols_to_chips", "chips_to_symbols",
           "nearest_symbol", "nearest_symbols_soft", "correlation_table"]

_SYMBOL0 = np.array([1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1,
                     0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0],
                    dtype=np.uint8)


def _build_sequences() -> np.ndarray:
    table = np.zeros((16, 32), dtype=np.uint8)
    for s in range(8):
        table[s] = np.roll(_SYMBOL0, 4 * s)
    conj_mask = np.zeros(32, dtype=np.uint8)
    conj_mask[1::2] = 1  # invert odd-indexed chips
    for s in range(8):
        table[s + 8] = np.bitwise_xor(table[s], conj_mask)
    return table


CHIP_SEQUENCES: np.ndarray = _build_sequences()
CHIP_SEQUENCES.setflags(write=False)

# +/-1 form used for correlation decoding (chip 1 -> +1, chip 0 -> -1,
# matching the OQPSK modulator's amplitude map).
_BIPOLAR = (2.0 * CHIP_SEQUENCES.astype(float) - 1.0)


def symbols_to_chips(symbols) -> np.ndarray:
    """Spread a sequence of 4-bit symbols (ints 0..15) to chips."""
    arr = np.asarray(symbols, dtype=np.int64).ravel()
    if arr.size and (arr.min() < 0 or arr.max() > 15):
        raise ValueError("802.15.4 symbols are 0..15")
    return CHIP_SEQUENCES[arr].ravel().copy()


def chips_to_symbols(chips) -> np.ndarray:
    """Hard-decision despread: nearest codeword per 32-chip group.

    Trailing chips that do not fill a group are dropped.
    """
    arr = np.asarray(chips, dtype=np.uint8).ravel()
    n = arr.size // 32
    out = np.empty(n, dtype=np.int64)
    for i in range(n):
        out[i] = nearest_symbol(arr[i * 32:(i + 1) * 32])
    return out


def nearest_symbol(chips: np.ndarray) -> int:
    """The symbol whose PN sequence has minimum Hamming distance to
    *chips* (32 hard chips)."""
    arr = np.asarray(chips, dtype=np.uint8).ravel()
    if arr.size != 32:
        raise ValueError("need exactly 32 chips")
    distances = np.bitwise_xor(CHIP_SEQUENCES, arr[None, :]).sum(axis=1)
    return int(np.argmin(distances))


def nearest_symbol_soft(chip_metrics: np.ndarray) -> int:
    """Soft despread: argmax correlation of +/-1 metrics (positive means
    chip 1) against the bipolar codebook."""
    m = np.asarray(chip_metrics, dtype=float).ravel()
    if m.size != 32:
        raise ValueError("need exactly 32 chip metrics")
    return int(np.argmax(_BIPOLAR @ m))


# Forward-error bound for one 32-term dot product against the +/-1
# codebook: any summation order stays within gamma_32 * ||m||_1 of the
# exact value (Higham, Accuracy and Stability, ch. 3), so two different
# orders — BLAS gemm vs gemv — differ by at most twice that.  The
# safety factor keeps the recompute trigger conservative.
_DOT_ERR_UNIT = 8 * 32 * np.finfo(float).eps


def nearest_symbols_soft(chip_metrics: np.ndarray) -> np.ndarray:
    """Soft despread of a (n_symbols, 32) metric stack, bit-identical
    to :func:`nearest_symbol_soft` per row.

    One matrix-matrix correlation scores all rows at once, but a gemm
    rounds differently from the scalar ``_BIPOLAR @ m``, so its argmax
    is only trusted where the top-two margin exceeds the worst-case
    rounding gap between the two summation orders
    (``_DOT_ERR_UNIT * ||m||_1`` per row).  Ambiguous rows — near-ties,
    including exact ties whose first-index argmax must be preserved —
    are recomputed with the scalar matrix-vector oracle.
    """
    m = np.asarray(chip_metrics, dtype=float)
    if m.ndim != 2 or m.shape[1] != 32:
        raise ValueError("need a (n_symbols, 32) metric array")
    if m.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    scores = m @ _BIPOLAR.T                       # (n_symbols, 16) gemm
    out = np.argmax(scores, axis=1).astype(np.int64)
    top = scores[np.arange(scores.shape[0]), out]
    runner_up = np.partition(scores, -2, axis=1)[:, -2]
    margin = top - runner_up
    tolerance = _DOT_ERR_UNIT * np.abs(m).sum(axis=1)
    ambiguous = ~(margin > tolerance)             # catches NaN too
    for i in np.nonzero(ambiguous)[0]:
        out[i] = int(np.argmax(_BIPOLAR @ m[i]))
    return out


def correlation_table() -> np.ndarray:
    """16x16 normalised cross-correlations of the bipolar codebook —
    useful for reasoning about which symbol an inverted (tag-flipped)
    codeword decodes to."""
    c = _BIPOLAR @ _BIPOLAR.T / 32.0
    return c

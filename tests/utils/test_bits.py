"""Unit tests for repro.utils.bits."""

import numpy as np
import pytest

from repro.utils.bits import (
    as_bits,
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    hamming_distance,
    int_to_bits,
    majority_vote,
    random_bits,
    repeat_bits,
    xor_bits,
)


class TestAsBits:
    def test_accepts_string(self):
        assert list(as_bits("0110")) == [0, 1, 1, 0]

    def test_accepts_list(self):
        assert list(as_bits([1, 0, 1])) == [1, 0, 1]

    def test_accepts_ndarray(self):
        arr = np.array([0, 1], dtype=np.int64)
        out = as_bits(arr)
        assert out.dtype == np.uint8

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            as_bits([0, 2, 1])

    def test_empty(self):
        assert as_bits([]).size == 0

    def test_empty_string(self):
        out = as_bits("")
        assert out.size == 0 and out.dtype == np.uint8

    def test_rejects_non_binary_string(self):
        # Regression: '2' - '0' = 2 used to slip past as a uint8 value
        # until a later max() check; now the string itself is validated.
        with pytest.raises(ValueError):
            as_bits("0120")

    def test_rejects_whitespace_string(self):
        with pytest.raises(ValueError):
            as_bits("01 10")

    def test_rejects_non_ascii_string(self):
        # Used to surface as UnicodeEncodeError, not the documented
        # ValueError.
        with pytest.raises(ValueError):
            as_bits("01²")


class TestByteConversion:
    def test_lsb_first_default(self):
        # 0x01 -> LSB-first bit order: 1,0,0,0,0,0,0,0
        assert list(bytes_to_bits(b"\x01")) == [1, 0, 0, 0, 0, 0, 0, 0]

    def test_msb_first(self):
        assert list(bytes_to_bits(b"\x01", msb_first=True)) == [0] * 7 + [1]

    def test_round_trip(self):
        data = bytes(range(256))
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_round_trip_msb(self):
        data = b"\xa7\x00\xff\x13"
        assert bits_to_bytes(bytes_to_bits(data, msb_first=True),
                             msb_first=True) == data

    def test_partial_byte_padded(self):
        assert bits_to_bytes([1, 1, 1]) == b"\x07"  # LSB-first pad


class TestIntConversion:
    def test_round_trip(self):
        for v in (0, 1, 5, 127, 4095):
            assert bits_to_int(int_to_bits(v, 12)) == v

    def test_lsb_first(self):
        assert list(int_to_bits(1, 3, msb_first=False)) == [1, 0, 0]
        assert bits_to_int([1, 0, 0], msb_first=False) == 1

    def test_overflow_raises(self):
        with pytest.raises(ValueError):
            int_to_bits(8, 3)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)


class TestXor:
    def test_table_1_of_paper(self):
        # Table 1: tag bit = decoded codeword XOR excitation codeword.
        decoded = [1, 0, 0, 1]   # C2 C1 C1 C2
        original = [0, 1, 0, 1]  # C1 C2 C1 C2
        assert list(xor_bits(decoded, original)) == [1, 1, 0, 0]

    def test_self_inverse(self, rng):
        a = random_bits(100, rng)
        b = random_bits(100, rng)
        assert np.array_equal(xor_bits(xor_bits(a, b), b), a)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            xor_bits([1, 0], [1])


class TestHamming:
    def test_zero_for_identical(self):
        assert hamming_distance([1, 0, 1], [1, 0, 1]) == 0

    def test_counts_differences(self):
        assert hamming_distance([1, 1, 1, 1], [0, 1, 0, 1]) == 2


class TestRepetition:
    def test_repeat(self):
        assert list(repeat_bits([1, 0], 3)) == [1, 1, 1, 0, 0, 0]

    def test_majority_inverts_repeat(self, rng):
        bits = random_bits(64, rng)
        assert np.array_equal(majority_vote(repeat_bits(bits, 5), 5), bits)

    def test_majority_survives_errors(self):
        coded = np.array([1, 1, 0, 1, 1], dtype=np.uint8)  # one flip
        assert majority_vote(coded, 5)[0] == 1

    def test_tie_decodes_one(self):
        assert majority_vote([1, 0, 1, 0], 4)[0] == 1

    def test_trailing_bits_dropped(self):
        assert majority_vote([1, 1, 1, 0, 0], 3).size == 1

    def test_bad_factor_raises(self):
        with pytest.raises(ValueError):
            repeat_bits([1], 0)
        with pytest.raises(ValueError):
            majority_vote([1], 0)


class TestRandomBits:
    def test_length_and_alphabet(self, rng):
        bits = random_bits(1000, rng)
        assert bits.size == 1000
        assert set(np.unique(bits)) <= {0, 1}

    def test_negative_raises(self, rng):
        with pytest.raises(ValueError):
            random_bits(-1, rng)

"""Developer tooling for the FreeRider reproduction.

* :mod:`repro.tools.lint` — "reprolint", the project-specific static
  analysis pass enforcing the determinism / NaN-discipline / shape
  invariants the experiment engine's bit-identical-results guarantee
  rests on.  Run it with ``python -m repro.tools.lint`` or
  ``python -m repro lint``; the rule catalogue lives in
  ``docs/static_analysis.md``.
"""

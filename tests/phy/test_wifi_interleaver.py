"""Tests for the 802.11 block interleaver."""

import numpy as np
import pytest

from repro.phy.wifi.interleaver import (
    deinterleave,
    deinterleave_soft,
    interleave,
    interleave_permutation,
)
from repro.utils.bits import random_bits


class TestPermutation:
    @pytest.mark.parametrize("n_cbps,n_bpsc", [(48, 1), (96, 2), (192, 4),
                                               (288, 6)])
    def test_is_a_permutation(self, n_cbps, n_bpsc):
        perm = interleave_permutation(n_cbps, n_bpsc)
        assert sorted(perm) == list(range(n_cbps))

    def test_bpsk_spec_example(self):
        """For N_CBPS=48/BPSK, adjacent coded bits map 16 subcarriers
        apart (first permutation only, since s=1)."""
        perm = interleave_permutation(48, 1)
        assert perm[0] == 0
        assert perm[1] == 3  # k=1 -> i = 3*1 = 3
        assert perm[16] == 1  # k=16 -> i = 3*0 + 1

    def test_bad_cbps_raises(self):
        with pytest.raises(ValueError):
            interleave_permutation(50, 1)

    def test_bad_bpsc_raises(self):
        with pytest.raises(ValueError):
            interleave_permutation(48, 3)


class TestRoundTrip:
    @pytest.mark.parametrize("n_cbps,n_bpsc", [(48, 1), (96, 2), (192, 4),
                                               (288, 6)])
    def test_inverse(self, rng, n_cbps, n_bpsc):
        bits = random_bits(n_cbps * 3, rng)
        out = deinterleave(interleave(bits, n_cbps, n_bpsc), n_cbps, n_bpsc)
        assert np.array_equal(out, bits)

    def test_blockwise_containment(self, rng):
        """Interleaving never moves a bit across an OFDM-symbol boundary —
        the property section 3.2.1 depends on."""
        n_cbps = 48
        bits = np.zeros(n_cbps * 2, dtype=np.uint8)
        bits[:n_cbps] = 1  # first symbol all ones
        out = interleave(bits, n_cbps, 1)
        assert np.all(out[:n_cbps] == 1)
        assert np.all(out[n_cbps:] == 0)

    def test_partial_block_raises(self, rng):
        with pytest.raises(ValueError):
            interleave(random_bits(47, rng), 48, 1)


class TestSoft:
    def test_matches_hard_path(self, rng):
        bits = random_bits(96, rng)
        inter = interleave(bits, 96, 2)
        llrs = 1.0 - 2.0 * inter.astype(float)
        soft = deinterleave_soft(llrs, 96, 2)
        assert np.array_equal((soft < 0).astype(np.uint8), bits)

    def test_partial_block_raises(self):
        with pytest.raises(ValueError):
            deinterleave_soft(np.zeros(40), 48, 1)

"""Tests for the assembled FreeRider tag."""

import numpy as np
import pytest

from repro.core.translation import PhaseTranslator
from repro.tag.tag import ExcitationInfo, FreeRiderTag


def make_info(total=8000, unit=80, start=480):
    return ExcitationInfo(sample_rate_hz=20e6, unit_samples=unit,
                          data_start_sample=start, total_samples=total)


class TestExcitationInfo:
    def test_units_available(self):
        info = make_info(total=1280, unit=80, start=480)
        assert info.units_available(480) == 10
        assert info.units_available(481) == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            ExcitationInfo(0.0, 80, 0, 100)
        with pytest.raises(ValueError):
            ExcitationInfo(1e6, 80, 200, 100)
        with pytest.raises(ValueError):
            ExcitationInfo(1e6, 0, 0, 100)


class TestPlanning:
    def test_plan_starts_after_latency(self):
        tag = FreeRiderTag(PhaseTranslator(2), repetition=4)
        info = make_info()
        plan = tag.plan_for(info)
        # 0.35 us at 20 MS/s = 7 samples.
        assert plan.start_sample == info.data_start_sample + 7

    def test_capacity(self):
        tag = FreeRiderTag(PhaseTranslator(2), repetition=4)
        info = make_info(total=480 + 7 + 80 * 16)
        assert tag.capacity_bits(info) == 4

    def test_bad_repetition_raises(self):
        with pytest.raises(ValueError):
            FreeRiderTag(PhaseTranslator(2), repetition=0)


class TestBackscatter:
    def test_phase_modulation_applied(self):
        tag = FreeRiderTag(PhaseTranslator(2), repetition=1)
        info = make_info(total=480 + 7 + 160 + 73)
        x = np.ones(info.total_samples, dtype=complex)
        out = tag.backscatter(x, info, [1, 0])
        assert out.detected and out.bits_sent == 2
        span0 = out.plan.tag_symbol_span(0)
        span1 = out.plan.tag_symbol_span(1)
        assert np.allclose(out.samples[span0], -1.0)   # 180 deg flip
        assert np.allclose(out.samples[span1], 1.0)
        # Preamble region untouched.
        assert np.allclose(out.samples[:480], 1.0)

    def test_excess_bits_truncated_to_capacity(self):
        tag = FreeRiderTag(PhaseTranslator(2), repetition=4)
        info = make_info(total=480 + 7 + 80 * 8)
        x = np.ones(info.total_samples, dtype=complex)
        out = tag.backscatter(x, info, [1] * 100)
        assert out.bits_sent == 2

    def test_envelope_gates_operation(self, rng):
        tag = FreeRiderTag(PhaseTranslator(2), repetition=4)
        info = make_info()
        x = np.ones(info.total_samples, dtype=complex)
        out = tag.backscatter(x, info, [1, 0], incident_power_dbm=-90.0,
                              rng=rng)
        assert not out.detected and out.samples is None

    def test_strong_incident_power_detected(self, rng):
        tag = FreeRiderTag(PhaseTranslator(2), repetition=4)
        info = make_info()
        x = np.ones(info.total_samples, dtype=complex)
        out = tag.backscatter(x, info, [1, 0], incident_power_dbm=-25.0,
                              rng=rng)
        assert out.detected

    def test_length_mismatch_raises(self):
        tag = FreeRiderTag(PhaseTranslator(2), repetition=1)
        info = make_info()
        with pytest.raises(ValueError):
            tag.backscatter(np.ones(10, complex), info, [1])


class TestPowerIntegration:
    def test_power_budget_exposed(self):
        tag = FreeRiderTag(PhaseTranslator(2), repetition=4)
        assert 30.0 <= tag.power_budget(20e6, "wifi").total_uw <= 35.0

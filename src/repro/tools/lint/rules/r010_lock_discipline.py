"""R010 — guarded-by annotated attributes are only touched under lock.

Convention: annotate the attribute's assignment (normally in
``__init__``) with ``# guarded-by: <lock>``.  Every later ``self.<attr>``
access must then sit lexically inside ``with self.<lock>:``, or belong
to a method whose ``def`` line carries ``# reprolint: holds(<lock>)``
— the caller-holds-the-lock assertion for private helpers.

``__init__`` itself is exempt: construction happens before the object
is shared, so assignments there need no lock.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from repro.tools.lint.model import Rule
from repro.tools.lint.rules.base import AstLintRule, FileContext


class LockDisciplineRule(AstLintRule):
    rule = Rule(
        "R010", "lock-discipline",
        "guarded-by annotated attributes only touched under their lock",
        "The service mutates job/metrics state from HTTP threads and "
        "the worker loop; an unlocked read of a guarded attribute is a "
        "data race that only shows up under load.  Either take the "
        "lock, or assert the caller holds it with # reprolint: "
        "holds(<lock>).")
    # Lock discipline only applies where threads share state.
    path_only = ("repro/service/", "repro/sim/engine.py")

    def begin(self, ctx: FileContext) -> None:
        self._guarded = self._collect_guarded(ctx)
        self._held: List[str] = []
        self._in_init = False

    # -- annotation collection --------------------------------------------

    @staticmethod
    def _collect_guarded(ctx: FileContext) -> Dict[str, str]:
        """Map attr name -> lock name from # guarded-by comments that
        sit on a ``self.<attr> = ...`` (or annotated) assignment line."""
        guarded: Dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            else:
                continue
            lock = ctx.guarded_by.get(node.lineno)
            if lock is None:
                continue
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    guarded[target.attr] = lock
        return guarded

    # -- traversal ---------------------------------------------------------

    def _function(self, node: ast.AST, name: str, lineno: int) -> None:
        assert self.ctx is not None
        saved_held, saved_init = self._held, self._in_init
        self._held = list(saved_held)
        self._held.extend(self.ctx.holds_locks.get(lineno, ()))
        self._in_init = name == "__init__"
        try:
            for stmt in getattr(node, "body", []):
                self.visit(stmt)
        finally:
            self._held, self._in_init = saved_held, saved_init

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function(node, node.name, node.lineno)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._function(node, node.name, node.lineno)

    def visit_With(self, node: ast.With) -> None:
        pushed = 0
        for item in node.items:
            expr = item.context_expr
            if (isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"):
                self._held.append(expr.attr)
                pushed += 1
        try:
            for stmt in node.body:
                self.visit(stmt)
        finally:
            for _ in range(pushed):
                self._held.pop()

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (isinstance(node.value, ast.Name) and node.value.id == "self"
                and not self._in_init):
            lock = self._guarded.get(node.attr)
            if lock is not None and lock not in self._held:
                self.flag(node,
                          f"self.{node.attr} is # guarded-by: {lock} "
                          f"but accessed outside `with self.{lock}:`; "
                          f"take the lock or annotate the method with "
                          f"# reprolint: holds({lock})")
        self.generic_visit(node)

"""``python -m repro.tools.lint`` entry point."""

from repro.tools.lint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())

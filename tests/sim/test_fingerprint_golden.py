"""The spec-fingerprint stability contract.

``spec_fingerprint`` is a *persistent* content address: checkpoint
journals, trace files, and the sweep service's result store are all
keyed by it, so a fingerprint computed by an old version of this repo
must match one computed today for the same spec.  These tests freeze
the contract from both ends:

* a frozen canonical JSON string hashes to a frozen fingerprint
  (catches changes to the hash recipe: algorithm, truncation,
  canonicalization flags);
* a spec *constructed today* still produces that frozen fingerprint
  (catches drift in ``to_dict`` — a renamed or reordered field would
  silently orphan every stored artifact).

If one of these fails, you have changed the on-disk key format:
either revert, or version the artifacts and migrate.
"""

import hashlib
import json

import pytest

from repro.channel.geometry import Deployment
from repro.sim.config import config_by_name
from repro.sim.engine import (
    EngineError,
    ExperimentEngine,
    ExperimentSpec,
    FingerprintMismatch,
    spec_fingerprint,
)

# The frozen canonical form of GOLDEN_SPEC below: exactly
# json.dumps(spec.to_dict(), sort_keys=True) as of the freeze.
GOLDEN_CANONICAL_JSON = (
    '{"config": {"backscatter_shift_hz": 5000000.0, "bandwidth_hz": '
    '2000000.0, "decode_threshold_snr_db": 7.5, "fading_sigma_db": 2.5, '
    '"implementation_loss_db": 14.0, "interpacket_gap_us": 192.0, '
    '"name": "zigbee", "noise_figure_db": 5.0, "payload_bytes": 100, '
    '"repetition": 4, "tx_power_dbm": 5.0}, "deployment": '
    '{"backscatter_path": {"exponent": 2.6, "name": "los-hallway", '
    '"pl_d0_db": 30.0, "shadowing_sigma_db": 0.0, "walls": []}, '
    '"forward_path": {"exponent": 2.6, "name": "los-hallway", '
    '"pl_d0_db": 30.0, "shadowing_sigma_db": 0.0, "walls": []}, '
    '"name": "los-hallway", "tag_to_rx_m": 1.0, "tx_to_tag_m": 1.0}, '
    '"distances_m": [2.0, 6.0], "kind": "link_sweep", "label": "", '
    '"packets_per_point": 2, "seed": 3}'
)
GOLDEN_FINGERPRINT = "ac49b0532fdbccd8"


def golden_spec() -> ExperimentSpec:
    return ExperimentSpec(config=config_by_name("zigbee"),
                          deployment=Deployment.los(1.0),
                          distances_m=(2.0, 6.0),
                          packets_per_point=2, seed=3)


class TestGoldenFingerprint:
    def test_frozen_json_hashes_to_frozen_fingerprint(self):
        # The hash recipe itself: sha256 of the canonical JSON,
        # truncated to 16 hex chars.
        digest = hashlib.sha256(
            GOLDEN_CANONICAL_JSON.encode("utf-8")).hexdigest()[:16]
        assert digest == GOLDEN_FINGERPRINT

    def test_todays_spec_matches_frozen_fingerprint(self):
        assert spec_fingerprint(golden_spec()) == GOLDEN_FINGERPRINT

    def test_todays_canonical_json_matches_frozen_json(self):
        # Stronger than the fingerprint check: pinpoints *which* field
        # drifted when it fails.
        canon = json.dumps(golden_spec().to_dict(), sort_keys=True)
        assert canon == GOLDEN_CANONICAL_JSON

    def test_fingerprint_ignores_key_order(self):
        scrambled = json.loads(GOLDEN_CANONICAL_JSON)
        spec = ExperimentSpec.from_dict(scrambled)
        assert spec_fingerprint(spec) == GOLDEN_FINGERPRINT


class TestFingerprintMismatchType:
    def test_engine_run_rejects_wrong_fingerprint(self):
        with pytest.raises(FingerprintMismatch) as excinfo:
            ExperimentEngine().run(golden_spec(),
                                   expect_fingerprint="0" * 16)
        assert excinfo.value.expected == "0" * 16
        assert excinfo.value.actual == GOLDEN_FINGERPRINT

    def test_mismatch_is_engine_error_and_value_error(self):
        # Typed for new callers, ValueError for pre-existing handlers.
        exc = FingerprintMismatch("aaaa", "bbbb")
        assert isinstance(exc, EngineError)
        assert isinstance(exc, ValueError)
        assert "aaaa" in str(exc) and "bbbb" in str(exc)

    def test_checkpoint_load_rejects_wrong_fingerprint(self, tmp_path):
        from repro.sim.engine import CheckpointJournal

        spec = golden_spec()
        path = tmp_path / "ck.jsonl"
        CheckpointJournal(path, spec).ensure_header()
        with pytest.raises(FingerprintMismatch):
            CheckpointJournal(path, spec, expect_fingerprint="f" * 16)

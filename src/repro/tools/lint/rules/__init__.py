"""The rule registry: one module per rule, ordered by id.

Adding a rule: create ``rXXX_<slug>.py`` defining a ``LintRule``
subclass, list the class in ``ALL_CHECKERS`` here, add bad/ok fixtures
under ``tests/tools/fixtures/`` and a catalogue entry in
``docs/static_analysis.md`` — the meta-test in
``tests/tools/test_reprolint.py`` enforces the last two.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Tuple, Type

from repro.tools.lint.model import Rule
from repro.tools.lint.rules.base import AstLintRule, FileContext, LintRule
from repro.tools.lint.rules.r001_global_rng import GlobalRngRule
from repro.tools.lint.rules.r002_wall_clock import WallClockRule
from repro.tools.lint.rules.r003_float_equality import FloatEqualityRule
from repro.tools.lint.rules.r004_nan_discipline import NanDisciplineRule
from repro.tools.lint.rules.r005_mutable_default import MutableDefaultRule
from repro.tools.lint.rules.r006_silent_except import SilentExceptRule
from repro.tools.lint.rules.r007_picklable_specs import PicklableSpecsRule
from repro.tools.lint.rules.r008_obs_clock import ObsClockRule
from repro.tools.lint.rules.r009_phase_purity import PhasePurityRule
from repro.tools.lint.rules.r010_lock_discipline import LockDisciplineRule
from repro.tools.lint.rules.r011_counter_registry import CounterRegistryRule
from repro.tools.lint.rules.r012_suppression_hygiene import (
    SuppressionHygieneRule,
)

__all__ = ["ALL_CHECKERS", "RULES", "ruleset_signature", "make_checkers",
           "LintRule", "AstLintRule", "FileContext"]

ALL_CHECKERS: Tuple[Type[LintRule], ...] = (
    GlobalRngRule,
    WallClockRule,
    FloatEqualityRule,
    NanDisciplineRule,
    MutableDefaultRule,
    SilentExceptRule,
    PicklableSpecsRule,
    ObsClockRule,
    PhasePurityRule,
    LockDisciplineRule,
    CounterRegistryRule,
    SuppressionHygieneRule,
)

#: id -> rule metadata, in registry order.
RULES: Dict[str, Rule] = {
    checker.rule.id: checker.rule for checker in ALL_CHECKERS
}


def ruleset_signature() -> str:
    """Hash over rule ids + per-rule versions; part of the cache key,
    so adding a rule or bumping a version invalidates cached results."""
    digest = hashlib.sha256()
    for checker in ALL_CHECKERS:
        digest.update(f"{checker.rule.id}:{checker.version};".encode())
    return digest.hexdigest()


def make_checkers() -> List[LintRule]:
    """One fresh instance of every rule (rules keep per-file state)."""
    return [checker() for checker in ALL_CHECKERS]

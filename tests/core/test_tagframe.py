"""Tests for the tag-data link layer (framing + reassembly)."""

import numpy as np
import pytest

from repro.core.tagframe import (
    MAX_PAYLOAD_BYTES,
    PREAMBLE,
    TagDeframer,
    TagFramer,
)


class TestFramer:
    def test_frame_structure(self):
        frame = TagFramer().frame_bits(b"\x42")
        assert list(frame[:8]) == list(PREAMBLE)
        assert frame.size == 8 + 8 + 8 + 8  # pre + len + 1 byte + crc

    def test_payload_bounds(self):
        with pytest.raises(ValueError):
            TagFramer().frame_bits(b"")
        with pytest.raises(ValueError):
            TagFramer().frame_bits(bytes(MAX_PAYLOAD_BYTES + 1))

    def test_chunking_respects_capacities(self):
        framer = TagFramer()
        frame = framer.frame_bits(b"hello world")
        chunks = framer.chunk(frame, [40, 40, 40, 40])
        assert sum(c.size for c in chunks) == frame.size
        assert all(c.size <= 40 for c in chunks)
        assert np.array_equal(np.concatenate(chunks), frame)

    def test_insufficient_capacity_raises(self):
        framer = TagFramer()
        frame = framer.frame_bits(b"hello")
        with pytest.raises(ValueError):
            framer.chunk(frame, [10, 10])

    def test_negative_capacity_raises(self):
        framer = TagFramer()
        with pytest.raises(ValueError):
            framer.chunk(framer.frame_bits(b"x"), [-1, 100])


class TestDeframer:
    def test_single_push_round_trip(self):
        framer, deframer = TagFramer(), TagDeframer()
        msgs = deframer.push(framer.frame_bits(b"sensor-07:21.4C"))
        assert len(msgs) == 1
        assert msgs[0].crc_ok and msgs[0].payload == b"sensor-07:21.4C"

    def test_reassembly_across_chunks(self):
        framer, deframer = TagFramer(), TagDeframer()
        frame = framer.frame_bits(b"split across packets")
        collected = []
        for chunk in framer.chunk(frame, [30] * 10):
            collected.extend(deframer.push(chunk))
        assert len(collected) == 1
        assert collected[0].payload == b"split across packets"

    def test_leading_garbage_skipped(self, rng):
        framer, deframer = TagFramer(), TagDeframer()
        garbage = rng.integers(0, 2, 100).astype(np.uint8)
        deframer.push(garbage)
        msgs = deframer.push(framer.frame_bits(b"ok"))
        assert any(m.crc_ok and m.payload == b"ok" for m in msgs)

    def test_corrupted_payload_flagged(self):
        framer, deframer = TagFramer(), TagDeframer()
        frame = framer.frame_bits(b"integrity")
        frame[30] ^= 1  # flip a payload bit
        msgs = deframer.push(frame)
        assert len(msgs) == 1 and not msgs[0].crc_ok

    def test_back_to_back_messages(self):
        framer, deframer = TagFramer(), TagDeframer()
        stream = np.concatenate([framer.frame_bits(b"one"),
                                 framer.frame_bits(b"two"),
                                 framer.frame_bits(b"three")])
        msgs = deframer.push(stream)
        assert [m.payload for m in msgs] == [b"one", b"two", b"three"]
        assert all(m.crc_ok for m in msgs)

    def test_start_bit_positions_monotone(self):
        framer, deframer = TagFramer(), TagDeframer()
        stream = np.concatenate([framer.frame_bits(b"aa"),
                                 framer.frame_bits(b"bb")])
        msgs = deframer.push(stream)
        assert msgs[0].start_bit < msgs[1].start_bit

    def test_reset(self):
        framer, deframer = TagFramer(), TagDeframer()
        deframer.push(framer.frame_bits(b"pending")[:20])
        deframer.reset()
        assert deframer.push(framer.frame_bits(b"fresh"))[0].payload \
            == b"fresh"


class TestEndToEndOverBackscatter:
    def test_message_over_wifi_session(self):
        """A framed tag message rides real excitation packets and
        reassembles at the decoder."""
        from repro.core.session import WifiBackscatterSession

        session = WifiBackscatterSession(seed=80, payload_bytes=512)
        framer, deframer = TagFramer(), TagDeframer()
        frame = framer.frame_bits(b"temperature=23.7C")
        cap = session.capacity_bits()
        chunks = framer.chunk(frame, [cap] * 8)

        messages = []
        for chunk in chunks:
            # Pad each packet's tag bits to capacity (idle bits are 0).
            bits = np.zeros(cap, dtype=np.uint8)
            bits[:chunk.size] = chunk
            result = session.run_packet(snr_db=18.0, tag_bits=bits)
            assert result.delivered and result.tag_bit_errors == 0
            messages.extend(deframer.push(bits[:chunk.size]))
        assert any(m.crc_ok and m.payload == b"temperature=23.7C"
                   for m in messages)


class TestFlush:
    def test_flush_recovers_buried_frame(self, rng):
        """A bogus garbage preamble with a huge length field must not
        permanently bury a real frame (found by hypothesis)."""
        framer, deframer = TagFramer(), TagDeframer()
        garbage = np.random.default_rng(0).integers(0, 2, 33).astype(np.uint8)
        deframer.push(garbage)
        msgs = deframer.push(framer.frame_bits(b"\x00"))
        msgs.extend(deframer.flush())
        assert any(m.crc_ok and m.payload == b"\x00" for m in msgs)

    def test_flush_on_empty_buffer(self):
        assert TagDeframer().flush() == []

    def test_flush_idempotent(self):
        framer, deframer = TagFramer(), TagDeframer()
        deframer.push(framer.frame_bits(b"done"))
        deframer.flush()
        assert deframer.flush() == []

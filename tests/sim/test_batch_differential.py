"""Seeded differential proofs: the batched fast path IS the scalar path.

Every test here runs the same seeded experiment twice — once through
the scalar per-packet loop, once through ``run_packets`` /
``LinkSimulator(batch=True)`` — and requires *exact* equality of the
results (via ``SessionResult`` dataclass equality and
``LinkPoint.__eq__``, which treats two NaN BERs as equal).  Any
tolerance would defeat the point: the batch path must consume the RNG
in the same order and produce bit-identical floats.
"""

import numpy as np
import pytest

from repro.channel.geometry import Deployment
from repro.core.session import (
    BleBackscatterSession,
    WifiBackscatterSession,
    ZigbeeBackscatterSession,
)
from repro.sim.config import BLE_CONFIG, WIFI_CONFIG, ZIGBEE_CONFIG
from repro.sim.linksim import LinkSimulator

SESSIONS = {
    "wifi": lambda: WifiBackscatterSession(seed=0, payload_bytes=128),
    "wifi-16qam": lambda: WifiBackscatterSession(rate_mbps=24.0, seed=0,
                                                 payload_bytes=128),
    "zigbee": lambda: ZigbeeBackscatterSession(seed=0, payload_bytes=24),
    "ble": lambda: BleBackscatterSession(seed=0, payload_bytes=40),
}

# SNRs straddling each radio's delivery cliff so the batch must agree on
# sync misses, header failures, and clean decodes alike.
SNR_RANGES = {
    "wifi": (-1.0, 15.0),
    "wifi-16qam": (2.0, 18.0),
    "zigbee": (-6.0, 6.0),
    "ble": (2.0, 14.0),
}


@pytest.mark.parametrize("radio", sorted(SESSIONS))
def test_run_packets_equals_scalar_loop(radio):
    snr_lo, snr_hi = SNR_RANGES[radio]
    snrs = list(np.linspace(snr_lo, snr_hi, 10))

    scalar_session = SESSIONS[radio]()
    batch_session = SESSIONS[radio]()
    ex_scalar = scalar_session.make_excitation(rng=np.random.default_rng(7))
    ex_batch = batch_session.make_excitation(rng=np.random.default_rng(7))

    gen_scalar = np.random.default_rng(0xBA7C)
    gen_batch = np.random.default_rng(0xBA7C)
    scalar = [scalar_session.run_packet(float(snr), rng=gen_scalar,
                                        excitation=ex_scalar)
              for snr in snrs]
    batched = batch_session.run_packets(snrs, rng=gen_batch,
                                        excitation=ex_batch)

    assert batched == scalar
    # Both paths must leave the generator in the same state.
    assert gen_scalar.random() == gen_batch.random()


def test_run_packets_with_envelope_gate_equals_scalar():
    # incident_power_dbm adds the envelope-detector draw before the sync
    # gate; the batch path must replicate that draw order too.
    snrs = list(np.linspace(0.0, 12.0, 8))
    s1 = WifiBackscatterSession(seed=0, payload_bytes=128)
    s2 = WifiBackscatterSession(seed=0, payload_bytes=128)
    e1 = s1.make_excitation(rng=np.random.default_rng(3))
    e2 = s2.make_excitation(rng=np.random.default_rng(3))
    g1 = np.random.default_rng(0xDE7)
    g2 = np.random.default_rng(0xDE7)
    scalar = [s1.run_packet(float(snr), incident_power_dbm=-18.0,
                            rng=g1, excitation=e1) for snr in snrs]
    batched = s2.run_packets(snrs, incident_power_dbm=-18.0,
                             rng=g2, excitation=e2)
    assert batched == scalar


def test_run_packets_explicit_tag_bits():
    s1 = WifiBackscatterSession(seed=0, payload_bytes=128)
    s2 = WifiBackscatterSession(seed=0, payload_bytes=128)
    e1 = s1.make_excitation(rng=np.random.default_rng(3))
    e2 = s2.make_excitation(rng=np.random.default_rng(3))
    cap = s1.tag.capacity_bits(e1.info)
    bits = [np.random.default_rng(i).integers(0, 2, cap).astype(np.uint8)
            for i in range(4)]
    snrs = [12.0, 9.0, 10.5, 8.0]
    g1 = np.random.default_rng(5)
    g2 = np.random.default_rng(5)
    scalar = [s1.run_packet(snr, tag_bits=b, rng=g1, excitation=e1)
              for snr, b in zip(snrs, bits)]
    batched = s2.run_packets(snrs, tag_bits=bits, rng=g2, excitation=e2)
    assert batched == scalar


CONFIGS = {"wifi": WIFI_CONFIG, "zigbee": ZIGBEE_CONFIG, "ble": BLE_CONFIG}
# Distances per radio: one comfortable, one near the range cliff.
DISTANCES = {"wifi": (10.0, 40.0), "zigbee": (5.0, 25.0),
             "ble": (2.0, 9.0)}


@pytest.mark.parametrize("radio", sorted(CONFIGS))
def test_linksim_batch_point_equals_scalar(radio):
    dep = Deployment.los(1.0)
    sim_scalar = LinkSimulator(CONFIGS[radio], dep, packets_per_point=6,
                               seed=42, batch=False)
    sim_batch = LinkSimulator(CONFIGS[radio], dep, packets_per_point=6,
                              seed=42, batch=True)
    for distance in DISTANCES[radio]:
        p_scalar = sim_scalar.simulate_point(distance,
                                             share_excitation=True)
        p_batch = sim_batch.simulate_point(distance,
                                           share_excitation=True)
        assert p_batch == p_scalar  # LinkPoint.__eq__: exact, NaN-aware


def test_linksim_no_delivery_nan_ber_identical():
    # Far out of range: nothing delivers, BER is the NaN sentinel, and
    # the two paths must still compare equal (NaN-aware __eq__).
    dep = Deployment.los(1.0)
    points = []
    for batch in (False, True):
        sim = LinkSimulator(WIFI_CONFIG, dep, packets_per_point=3,
                            seed=11, batch=batch)
        points.append(sim.simulate_point(500.0, share_excitation=True))
    scalar_point, batch_point = points
    assert np.isnan(scalar_point.ber) and np.isnan(batch_point.ber)
    assert not scalar_point.ber_valid
    assert batch_point == scalar_point
    assert "n/a" in batch_point.row()


@pytest.mark.parametrize("radio", ["wifi", "zigbee", "ble"])
def test_run_packets_large_batch_equals_scalar(radio):
    # >=256 packets: spans many internal chunks (``_chunk_packets``),
    # so chunk boundaries, the batched control-waveform builders, and
    # the stacked noise path all have to preserve the scalar stream.
    snr_lo, snr_hi = SNR_RANGES[radio]
    snrs = list(np.linspace(snr_lo, snr_hi, 256))
    scalar_session = SESSIONS[radio]()
    batch_session = SESSIONS[radio]()
    ex_scalar = scalar_session.make_excitation(rng=np.random.default_rng(7))
    ex_batch = batch_session.make_excitation(rng=np.random.default_rng(7))
    g1 = np.random.default_rng(0xFEED)
    g2 = np.random.default_rng(0xFEED)
    scalar = [scalar_session.run_packet(float(snr), rng=g1,
                                        excitation=ex_scalar)
              for snr in snrs]
    batched = batch_session.run_packets(snrs, rng=g2, excitation=ex_batch)
    assert batched == scalar
    assert g1.random() == g2.random()


@pytest.mark.parametrize("radio", ["wifi", "zigbee", "ble"])
def test_mixed_excitation_lengths_equal_scalar(radio):
    # Two excitations with different payload sizes alternate across the
    # batch: channel_packets must group by excitation, stack the two
    # sample lengths separately, and the decode must split into
    # distinct ``_batch_key`` groups — all without disturbing results.
    def sessions_with_two_lengths(make):
        s = make()
        exc_a = s.make_excitation(rng=np.random.default_rng(21))
        s.payload_bytes *= 2
        exc_b = s.make_excitation(rng=np.random.default_rng(22))
        return s, exc_a, exc_b

    s1, a1, b1 = sessions_with_two_lengths(SESSIONS[radio])
    s2, a2, b2 = sessions_with_two_lengths(SESSIONS[radio])
    assert a1.info.total_samples != b1.info.total_samples

    snr_lo, snr_hi = SNR_RANGES[radio]
    snrs = list(np.linspace(snr_lo, snr_hi, 24))
    g1 = np.random.default_rng(0xABCD)
    g2 = np.random.default_rng(0xABCD)
    scalar = [s1.run_packet(float(snr), rng=g1,
                            excitation=(a1 if i % 2 == 0 else b1))
              for i, snr in enumerate(snrs)]
    draws = [s2.predraw_packet(float(snr), rng=g2,
                               excitation=(a2 if i % 2 == 0 else b2))
             for i, snr in enumerate(snrs)]
    s2.channel_packets(draws)
    batched = list(s2.finish_packets(draws))
    assert batched == scalar
    assert g1.random() == g2.random()


def test_linksim_cross_point_equals_per_point_loop():
    # simulate_points stacks the channel and decode across distance
    # points; with per-point generators it must equal the per-point
    # simulate_point loop exactly, point for point.
    for radio in sorted(CONFIGS):
        dep = Deployment.los(1.0)
        sim_a = LinkSimulator(CONFIGS[radio], dep, packets_per_point=5,
                              seed=7, batch=True)
        sim_b = LinkSimulator(CONFIGS[radio], dep, packets_per_point=5,
                              seed=7, batch=True)
        distances = list(DISTANCES[radio]) + [15.0]
        per_point = [sim_a.simulate_point(
            d, rng=np.random.default_rng(300 + i), share_excitation=True)
            for i, d in enumerate(distances)]
        crossed = sim_b.simulate_points(
            distances,
            rngs=[np.random.default_rng(300 + i)
                  for i in range(len(distances))],
            share_excitation=True)
        assert crossed == per_point


def test_sweep_bench_pair_is_bit_identical():
    # The two sweep bench kernels (scalar vs cross-point batched) are a
    # differential test in disguise: same seeds, same work, and the
    # LinkPoints must agree exactly.
    from repro.bench.runner import _sweep_kernels

    (_, _, scalar_fn), (_, _, batched_fn) = _sweep_kernels("zigbee", 3, 6)
    assert batched_fn() == scalar_fn()

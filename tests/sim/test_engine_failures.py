"""Tests for the engine's fault-handling layer: failure policies,
retries, timeouts, deterministic fault injection, and checkpoint/resume
bit-identity."""

import json

import pytest

from repro.channel.geometry import Deployment
from repro.sim.engine import (
    CheckpointJournal,
    ExperimentEngine,
    ExperimentSpec,
    FailurePolicy,
    FaultInjector,
    MacExperimentSpec,
    TaskFailure,
    spec_fingerprint,
)
from repro.sim.config import ZIGBEE_CONFIG


def _spec(distances=(2.0, 30.0), packets=2, seed=7):
    return ExperimentSpec(config=ZIGBEE_CONFIG.replace(payload_bytes=24),
                          deployment=Deployment.los(1.0),
                          distances_m=distances,
                          packets_per_point=packets, seed=seed)


class TestFailurePolicy:
    def test_defaults_are_fail_fast_no_retry(self):
        policy = FailurePolicy()
        assert policy.fail_fast
        assert policy.max_attempts == 1

    def test_mode_validated(self):
        with pytest.raises(ValueError):
            FailurePolicy(mode="panic")

    def test_attempts_validated(self):
        with pytest.raises(ValueError):
            FailurePolicy(max_attempts=0)

    def test_timeout_validated(self):
        with pytest.raises(ValueError):
            FailurePolicy(timeout_s=0.0)

    def test_backoff_schedule(self):
        policy = FailurePolicy(max_attempts=5, backoff_base_s=0.5,
                               backoff_factor=2.0, backoff_max_s=1.5)
        assert policy.backoff_s(1) == pytest.approx(0.5)
        assert policy.backoff_s(2) == pytest.approx(1.0)
        assert policy.backoff_s(3) == pytest.approx(1.5)  # capped
        assert policy.backoff_s(9) == pytest.approx(1.5)

    def test_zero_base_disables_backoff(self):
        assert FailurePolicy(max_attempts=3).backoff_s(2) == 0.0

    def test_degrade_policy_helper(self):
        policy = FailurePolicy.degrade_policy(max_attempts=2)
        assert not policy.fail_fast
        assert policy.max_attempts == 2


class TestFaultInjection:
    def test_fail_fast_raises_task_failure(self):
        engine = ExperimentEngine(n_jobs=1,
                                  fault_injector=FaultInjector(fail={0: 1}))
        with pytest.raises(TaskFailure):
            engine.run(_spec())

    def test_degrade_flags_failed_point_keeps_others(self):
        spec = _spec()
        clean = ExperimentEngine(n_jobs=1).run(spec)
        engine = ExperimentEngine(
            n_jobs=1,
            failure_policy=FailurePolicy.degrade_policy(max_attempts=1),
            fault_injector=FaultInjector(fail={0: 99}))
        result = engine.run(spec)
        assert result.points[0] is None
        assert result.tasks[0].status == "failed"
        assert "injected fault" in result.tasks[0].error
        assert not result.ok and result.n_failed == 1
        # The surviving point is untouched by its neighbour's failure.
        assert result.points[1] == clean.points[1]
        assert result.tasks[1].ok

    def test_retry_then_succeed_is_bit_identical(self):
        spec = _spec()
        clean = ExperimentEngine(n_jobs=1).run(spec)
        engine = ExperimentEngine(
            n_jobs=1,
            failure_policy=FailurePolicy.degrade_policy(max_attempts=3),
            fault_injector=FaultInjector(fail={0: 2}))
        result = engine.run(spec)
        assert result.points == clean.points  # seed reuse across attempts
        assert result.tasks[0].attempts == 3
        assert result.tasks[1].attempts == 1
        assert result.metrics["counters"]["engine.retries"] == 2

    def test_pool_retry_then_succeed_is_bit_identical(self):
        spec = _spec()
        clean = ExperimentEngine(n_jobs=1).run(spec)
        engine = ExperimentEngine(
            n_jobs=2,
            failure_policy=FailurePolicy.degrade_policy(max_attempts=2),
            fault_injector=FaultInjector(fail={1: 1}))
        result = engine.run(spec)
        assert result.points == clean.points
        assert result.ok

    def test_injection_keyed_by_task_and_attempt(self):
        injector = FaultInjector(fail={3: 2})
        with pytest.raises(Exception):
            injector.apply(3, 1)
        with pytest.raises(Exception):
            injector.apply(3, 2)
        injector.apply(3, 3)  # attempts beyond the budget pass
        injector.apply(0, 1)  # other tasks untouched


class TestTimeouts:
    def test_inline_soft_timeout_classified(self):
        engine = ExperimentEngine(
            n_jobs=1,
            failure_policy=FailurePolicy.degrade_policy(
                max_attempts=1, timeout_s=0.05),
            fault_injector=FaultInjector(hang_s={0: 0.25}))
        result = engine.run(_spec())
        assert result.tasks[0].status == "timeout"
        assert result.points[0] is None
        assert result.tasks[1].ok

    def test_pool_timeout_abandons_worker(self):
        engine = ExperimentEngine(
            n_jobs=2,
            failure_policy=FailurePolicy.degrade_policy(
                max_attempts=1, timeout_s=0.1),
            fault_injector=FaultInjector(hang_s={0: 0.6}))
        result = engine.run(_spec())
        assert result.tasks[0].status == "timeout"
        assert "worker abandoned" in result.tasks[0].error
        assert result.points[0] is None
        assert result.tasks[1].ok

    def test_pool_timeout_clock_excludes_queue_wait(self):
        # Regression: with more tasks than workers, the deadline used to
        # run from submit time, so tasks queued behind slow-but-healthy
        # ones were cancelled as "timeout" without ever executing.  Each
        # attempt hangs 0.2s against a 0.5s deadline: any task charged
        # for its ~0.2s queue wait would still pass, but under the old
        # submit-time clock the last tasks accumulate >0.5s and fail.
        spec = _spec(distances=(2.0, 5.0, 10.0, 30.0))
        engine = ExperimentEngine(
            n_jobs=2,
            failure_policy=FailurePolicy.degrade_policy(
                max_attempts=1, timeout_s=0.5),
            fault_injector=FaultInjector(
                hang_s={i: 0.2 for i in range(4)}))
        result = engine.run(spec)
        assert [t.status for t in result.tasks] == ["ok"] * 4
        assert result.ok

    def test_pool_timeout_retry_replaces_hung_worker(self):
        # Only the first attempt of task 0 hangs; the retry must run on
        # a fresh worker slot (the hung one is abandoned) and reproduce
        # the clean point bit-identically.
        spec = _spec()
        clean = ExperimentEngine(n_jobs=1).run(spec)
        engine = ExperimentEngine(
            n_jobs=2,
            failure_policy=FailurePolicy.degrade_policy(
                max_attempts=2, timeout_s=0.15),
            fault_injector=FaultInjector(hang_s={0: 1.0}))
        result = engine.run(spec)
        assert result.ok
        assert result.points == clean.points
        assert result.tasks[0].attempts == 2
        assert result.metrics["counters"]["engine.retries"] == 1

    def test_inline_timeout_not_retried_without_injector(self):
        # An inline rerun repeats the identical deterministic
        # computation, so retrying a timed-out attempt is pure waste —
        # the engine must record the timeout after the first attempt.
        engine = ExperimentEngine(
            n_jobs=1,
            failure_policy=FailurePolicy.degrade_policy(
                max_attempts=3, timeout_s=1e-6))
        result = engine.run(_spec())
        assert [t.status for t in result.tasks] == ["timeout", "timeout"]
        assert [t.attempts for t in result.tasks] == [1, 1]
        assert "engine.retries" not in result.metrics["counters"]

    def test_inline_timeout_retries_with_injector(self):
        # With a FaultInjector the slowness is attempt-dependent, so the
        # retry path stays live: attempt 1 hangs past the deadline,
        # attempt 2 runs clean.
        spec = _spec()
        clean = ExperimentEngine(n_jobs=1).run(spec)
        engine = ExperimentEngine(
            n_jobs=1,
            failure_policy=FailurePolicy.degrade_policy(
                max_attempts=2, timeout_s=0.1),
            fault_injector=FaultInjector(hang_s={0: 0.3}))
        result = engine.run(spec)
        assert result.ok
        assert result.points == clean.points
        assert result.tasks[0].attempts == 2


class TestCheckpointResume:
    def test_resume_is_bit_identical(self, tmp_path):
        spec = _spec(distances=(2.0, 10.0, 30.0))
        path = tmp_path / "sweep.jsonl"
        clean = ExperimentEngine(n_jobs=1).run(spec)

        # First pass: the last point fails, the first two are journaled.
        first = ExperimentEngine(
            n_jobs=1,
            failure_policy=FailurePolicy.degrade_policy(max_attempts=1),
            fault_injector=FaultInjector(fail={2: 99})).run(
                spec, checkpoint=path)
        assert [t.status for t in first.tasks] == ["ok", "ok", "failed"]

        # Second pass (no injector): only the missing point recomputes.
        resumed = ExperimentEngine(n_jobs=1).run(spec, checkpoint=path)
        assert resumed.points == clean.points
        assert [t.resumed for t in resumed.tasks] == [True, True, False]
        assert [t.attempts for t in resumed.tasks] == [0, 0, 1]
        assert resumed.metrics["counters"]["engine.tasks.resumed"] == 2

    def test_journal_keyed_by_spec_fingerprint(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        spec_a = _spec(seed=7)
        spec_b = _spec(seed=8)
        ExperimentEngine(n_jobs=1).run(spec_a, checkpoint=path)
        # A different spec must not be satisfied by spec_a's journal.
        journal = CheckpointJournal(path, spec_b)
        assert journal.load() == {}
        assert spec_fingerprint(spec_a) != spec_fingerprint(spec_b)

    def test_torn_tail_line_tolerated(self, tmp_path):
        spec = _spec()
        path = tmp_path / "sweep.jsonl"
        ExperimentEngine(n_jobs=1).run(spec, checkpoint=path)
        with open(path, "a") as fh:
            fh.write('{"index": 99, "truncated')  # simulated crash mid-write
        done = CheckpointJournal(path, spec).load()
        assert sorted(done) == [0, 1]

    def test_failed_points_not_journaled(self, tmp_path):
        spec = _spec()
        path = tmp_path / "sweep.jsonl"
        ExperimentEngine(
            n_jobs=1,
            failure_policy=FailurePolicy.degrade_policy(max_attempts=1),
            fault_injector=FaultInjector(fail={0: 99})).run(
                spec, checkpoint=path)
        done = CheckpointJournal(path, spec).load()
        assert sorted(done) == [1]  # the failed slot stays recomputable

    def test_mac_sweep_resumes(self, tmp_path):
        spec = MacExperimentSpec(tag_counts=(4, 8), measured_rounds=4,
                                 simulated_rounds=30, seed=5)
        path = tmp_path / "mac.jsonl"
        clean = ExperimentEngine(n_jobs=1).run(spec)
        ExperimentEngine(n_jobs=1).run(spec, checkpoint=path)
        resumed = ExperimentEngine(n_jobs=1).run(spec, checkpoint=path)
        assert resumed.points == clean.points
        assert all(t.resumed for t in resumed.tasks)


class TestRunMetrics:
    def test_stage_timers_and_counters_exported(self):
        result = ExperimentEngine(n_jobs=1).run(_spec())
        counters = result.metrics["counters"]
        timers = result.metrics["timers"]
        assert counters["engine.tasks.ok"] == 2
        assert counters["phy.zigbee.packets"] == 4
        for stage in ("engine.task", "phy.zigbee.channel",
                      "phy.zigbee.decode"):
            assert timers[stage]["count"] > 0
            assert timers[stage]["total_s"] >= timers[stage]["max_s"] > 0

    def test_task_records_serializable(self):
        result = ExperimentEngine(n_jobs=1).run(_spec())
        payload = json.dumps([t.to_dict() for t in result.tasks])
        records = json.loads(payload)
        assert records[0]["status"] == "ok"
        assert records[0]["spawn_key"] == [0]

"""R002-clean: monotonic timers for measuring, no wall-clock values."""

import time


def measure(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start

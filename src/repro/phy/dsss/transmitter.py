"""802.11b transmit chain: PPDU bits -> self-sync scramble ->
differential BPSK -> Barker-11 spreading."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.phy.dsss.barker import spread_symbols
from repro.phy.dsss.frame import DsssFrameBuilder
from repro.phy.dsss.scrambler import SelfSyncScrambler
from repro.utils.rng import make_rng

__all__ = ["DsssFrame", "DsssTransmitter", "SAMPLE_RATE_HZ",
           "SYMBOL_SAMPLES"]

SAMPLE_RATE_HZ = 11e6
SYMBOL_SAMPLES = 11  # one Barker word per 1 us DBPSK symbol


@dataclass
class DsssFrame:
    """A transmitted 802.11b PPDU with its ground truth."""

    samples: np.ndarray
    psdu: bytes
    bits: np.ndarray          # unscrambled PPDU bits
    scrambled: np.ndarray     # on-air (scrambled) bit stream

    @property
    def n_bits(self) -> int:
        return int(self.bits.size)

    @property
    def sample_rate_hz(self) -> float:
        return SAMPLE_RATE_HZ

    @property
    def duration_us(self) -> float:
        return self.samples.size / SAMPLE_RATE_HZ * 1e6

    @property
    def payload_offset_bits(self) -> int:
        return DsssFrameBuilder().payload_offset_bits


def differential_encode(bits: np.ndarray) -> np.ndarray:
    """DBPSK: phase toggles by pi for a 1-bit; reference symbol +1."""
    phase = np.cumsum(bits.astype(int)) % 2
    return np.exp(1j * np.pi * phase)


class DsssTransmitter:
    """Generates 1 Mb/s DBPSK/Barker 802.11b PPDUs."""

    def __init__(self, seed: Optional[int] = None, scrambler_seed: int = 0x1B):
        self._builder = DsssFrameBuilder()
        self._rng = make_rng(seed)
        self.scrambler_seed = scrambler_seed

    def build(self, psdu: bytes) -> DsssFrame:
        """Construct the waveform of one PPDU carrying *psdu*."""
        bits = self._builder.build_bits(psdu)
        scrambled = SelfSyncScrambler(self.scrambler_seed).scramble(bits)
        symbols = differential_encode(scrambled)
        samples = spread_symbols(symbols)
        return DsssFrame(samples=samples, psdu=psdu, bits=bits,
                         scrambled=scrambled)

    def random_psdu(self, n_bytes: int) -> bytes:
        """Random payload (models productive 802.11b traffic)."""
        if n_bytes < 1:
            raise ValueError("payload must be at least 1 byte")
        return bytes(int(b) for b in self._rng.integers(0, 256, size=n_bytes))

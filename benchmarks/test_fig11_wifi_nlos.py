"""Figure 11: WiFi NLOS deployment — throughput/BER/RSSI vs distance.

The transmitter and tag sit in a room; the receiver moves down a
hallway.  The backscattered signal crosses one wall, and a second wall
appears past 22 m — which is what ends the link there even though the
RSSI (-84 dBm) would otherwise still be workable (paper section 4.2.1).
"""

from repro.channel.geometry import Deployment
from repro.sim.config import WIFI_CONFIG
from repro.sim.linksim import LinkSimulator
from repro.sim.results import format_table

DISTANCES = (1, 4, 8, 12, 14, 18, 22, 25)


def run_experiment(packets_per_point=10, seed=110, n_jobs=None):
    sim = LinkSimulator(WIFI_CONFIG, Deployment.nlos(1.0),
                        packets_per_point=packets_per_point, seed=seed)
    return sim.sweep(DISTANCES, n_jobs=n_jobs)


def test_fig11_wifi_nlos(once, emit, engine_jobs):
    points = once(run_experiment, n_jobs=engine_jobs)
    rows = [[p.distance_m, p.throughput_kbps, p.ber, p.rssi_dbm,
             p.delivery_ratio] for p in points]
    table = format_table(
        ["distance (m)", "throughput (kb/s)", "tag BER", "RSSI (dBm)",
         "delivery"], rows,
        title="Figure 11: WiFi NLOS backscatter vs distance "
              "(TX+tag in room, RX in hallway through walls)")
    from repro.sim.charts import ascii_chart
    from repro.sim.results import Series
    curve = Series("throughput", x_label="distance (m)",
                   y_label="kb/s")
    for p in points:
        curve.append(p.distance_m, p.throughput_kbps)
    table += "\n\n" + ascii_chart(curve, title="WiFi NLOS throughput vs distance")
    emit("fig11_wifi_nlos", table)

    by_d = {p.distance_m: p for p in points}
    # ~60 kb/s inside 14 m (paper), far weaker past the second wall.
    assert by_d[8].throughput_kbps > 50.0
    assert by_d[14].throughput_kbps > 40.0
    assert by_d[25].delivery_ratio <= 0.3
    # NLOS dies sooner than LOS at the same distance budget.
    los = LinkSimulator(WIFI_CONFIG, Deployment.los(1.0),
                        packets_per_point=6, seed=111)
    assert los.simulate_point(25.0).delivery_ratio > by_d[25].delivery_ratio

"""Tests for the 802.11 subcarrier constellations."""

import numpy as np
import pytest

from repro.phy.wifi.constellation import CONSTELLATIONS
from repro.utils.bits import random_bits


@pytest.mark.parametrize("name", ["BPSK", "QPSK", "16-QAM", "64-QAM"])
class TestAllConstellations:
    def test_unit_average_power(self, name):
        c = CONSTELLATIONS[name]
        assert np.mean(np.abs(c.points) ** 2) == pytest.approx(1.0)

    def test_round_trip(self, name, rng):
        c = CONSTELLATIONS[name]
        bits = random_bits(c.bits_per_symbol * 100, rng)
        assert np.array_equal(c.demodulate(c.modulate(bits)), bits)

    def test_soft_round_trip(self, name, rng):
        c = CONSTELLATIONS[name]
        bits = random_bits(c.bits_per_symbol * 50, rng)
        llrs = c.demodulate_soft(c.modulate(bits))
        assert np.array_equal((llrs < 0).astype(np.uint8), bits)

    def test_gray_mapping(self, name):
        """Nearest neighbours differ in exactly one bit (Gray property)."""
        c = CONSTELLATIONS[name]
        pts = c.points
        dmin = c.min_distance()
        n = c.bits_per_symbol
        for i in range(len(pts)):
            for j in range(len(pts)):
                if i == j:
                    continue
                if abs(pts[i] - pts[j]) < dmin * 1.01:
                    assert bin(i ^ j).count("1") == 1


class TestSpecifics:
    def test_bpsk_points(self):
        c = CONSTELLATIONS["BPSK"]
        assert c.points[0] == -1.0 and c.points[1] == 1.0

    def test_qpsk_normalisation(self):
        c = CONSTELLATIONS["QPSK"]
        assert abs(c.points[0]) == pytest.approx(1.0)
        assert abs(c.points[0].real) == pytest.approx(1 / np.sqrt(2))

    def test_16qam_levels(self):
        c = CONSTELLATIONS["16-QAM"]
        levels = sorted(set(np.round(p.real, 6) for p in c.points))
        expect = [x / np.sqrt(10) for x in (-3, -1, 1, 3)]
        assert np.allclose(levels, expect)

    def test_modulate_rejects_partial_group(self, rng):
        with pytest.raises(ValueError):
            CONSTELLATIONS["64-QAM"].modulate(random_bits(5, rng))

    def test_phase_flip_maps_within_codebook(self):
        """A 180-degree rotation maps every constellation point onto
        another valid point — why phase translation is safe for OFDM
        (section 2.3.1)."""
        for name in ("BPSK", "QPSK", "16-QAM", "64-QAM"):
            c = CONSTELLATIONS[name]
            rotated = -c.points
            for p in rotated:
                assert np.min(np.abs(c.points - p)) < 1e-9

    def test_amplitude_scale_leaves_codebook(self):
        """Scaling 64-QAM points lands between valid points — the
        Figure 2 invalid-codeword problem."""
        c = CONSTELLATIONS["64-QAM"]
        scaled = 0.7 * c.points
        dmin = c.min_distance()
        off = [np.min(np.abs(c.points - p)) for p in scaled]
        assert max(off) > dmin / 2

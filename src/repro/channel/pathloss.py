"""Log-distance path-loss models for the paper's two deployments.

Figure 9 shows the two floor plans: a long hallway (LOS) and a
room-to-hallway NLOS layout where the backscattered signal crosses one
wall — and a second wall beyond 22 m, which is what kills the NLOS link
(paper section 4.2.1).  We model both with a log-distance law plus
distance-dependent wall crossings:

    PL(d) = PL(d0) + 10 n log10(d/d0) + sum(wall losses up to d) + X_sigma

Shadowing X_sigma is optional log-normal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["PathLossModel", "LOS_HALLWAY", "NLOS_OFFICE",
           "free_space_path_loss_db", "FREQ_2_4_GHZ"]

FREQ_2_4_GHZ = 2.44e9
SPEED_OF_LIGHT = 2.998e8


def free_space_path_loss_db(distance_m: float,
                            freq_hz: float = FREQ_2_4_GHZ) -> float:
    """Friis free-space loss; ~40 dB at 1 m / 2.44 GHz."""
    if distance_m <= 0:
        raise ValueError("distance must be positive")
    wavelength = SPEED_OF_LIGHT / freq_hz
    return float(20 * np.log10(4 * np.pi * distance_m / wavelength))


@dataclass(frozen=True)
class PathLossModel:
    """Log-distance path loss with wall crossings.

    Parameters
    ----------
    exponent:
        Path-loss exponent n (hallways guide energy: n < 2 possible;
        cluttered offices: 2.5-3.5).
    pl_d0_db:
        Loss at the 1 m reference distance, with antenna gains already
        absorbed (see DESIGN.md calibration policy).
    walls:
        Sequence of ``(distance_m, loss_db)``: a wall is crossed once the
        path exceeds *distance_m*.  The paper's NLOS deployment has a
        first wall near the room boundary and a second near 22 m.
    shadowing_sigma_db:
        Standard deviation of optional log-normal shadowing.
    """

    exponent: float
    pl_d0_db: float = 40.0
    walls: Tuple[Tuple[float, float], ...] = ()
    shadowing_sigma_db: float = 0.0
    name: str = "log-distance"

    def loss_db(self, distance_m: float,
                rng: Optional[np.random.Generator] = None) -> float:
        """Total path loss in dB at *distance_m* (>= 0.1 m enforced)."""
        d = max(float(distance_m), 0.1)
        loss = self.pl_d0_db + 10 * self.exponent * np.log10(d)
        for wall_at, wall_loss in self.walls:
            if d >= wall_at:
                loss += wall_loss
        if self.shadowing_sigma_db > 0 and rng is not None:
            loss += rng.normal(0.0, self.shadowing_sigma_db)
        return float(loss)

    def received_power_dbm(self, tx_power_dbm: float, distance_m: float,
                           rng: Optional[np.random.Generator] = None) -> float:
        """RX power after this path."""
        return tx_power_dbm - self.loss_db(distance_m, rng)


# Calibrated instances (see DESIGN.md section 5).  The hallway guides
# energy, giving a sub-free-space reference loss once the 3 x 3 dBi
# VERT2450 antenna gains are absorbed; the NLOS model adds the two walls
# of Figure 9(b).
LOS_HALLWAY = PathLossModel(exponent=2.6, pl_d0_db=30.0, name="los-hallway")
NLOS_OFFICE = PathLossModel(exponent=2.6, pl_d0_db=30.0,
                            walls=((3.0, 5.0), (22.0, 12.0)),
                            name="nlos-office")

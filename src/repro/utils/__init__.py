"""Shared low-level utilities: bit manipulation, CRCs, deterministic RNG."""

from repro.utils.bits import (
    bits_to_bytes,
    bytes_to_bits,
    bits_to_int,
    int_to_bits,
    xor_bits,
    hamming_distance,
    repeat_bits,
    majority_vote,
)
from repro.utils.crc import Crc, CRC32, CRC16_CCITT, CRC24_BLE
from repro.utils.rng import make_rng

__all__ = [
    "bits_to_bytes",
    "bytes_to_bits",
    "bits_to_int",
    "int_to_bits",
    "xor_bits",
    "hamming_distance",
    "repeat_bits",
    "majority_vote",
    "Crc",
    "CRC32",
    "CRC16_CCITT",
    "CRC24_BLE",
    "make_rng",
]

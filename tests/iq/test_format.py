"""Property-based round-trip and typed-error tests for ``repro.iq/1``.

Satellite 1 of the IQ-corpus issue: seeded random waveforms plus
metadata survive export → import bit-exactly, and every way a capture
pair can be torn, truncated, or edited raises a *typed* error — never
silent garbage samples.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iq.format import (
    FORMAT_VERSION,
    IQCapture,
    IQFingerprintMismatch,
    IQFormatError,
    capture_names,
    iq_fingerprint,
    iter_captures,
    read_capture,
    write_capture,
)

meta_values = st.one_of(
    st.integers(-2**31, 2**31), st.booleans(), st.none(),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20))
meta_dicts = st.dictionaries(
    st.text(st.characters(categories=("Ll",)), min_size=1, max_size=12),
    meta_values, max_size=6)


def _samples(seed: int, n: int) -> np.ndarray:
    gen = np.random.default_rng(seed)
    return (gen.standard_normal(n)
            + 1j * gen.standard_normal(n)).astype(np.complex64)


def _write_one(tmp_path, name="cap", seed=0, n=64, meta=None):
    meta = dict(meta or {})
    meta.setdefault("radio", "wifi")
    meta.setdefault("expect", {"stage": "ok"})
    capture = IQCapture(name=name, samples=_samples(seed, n), meta=meta)
    return write_capture(tmp_path, capture)


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(0, 512),
           meta=meta_dicts)
    def test_export_import_bit_exact(self, tmp_path_factory, seed, n,
                                     meta):
        tmp_path = tmp_path_factory.mktemp("iq")
        meta = dict(meta)
        meta["radio"] = "wifi"
        samples = _samples(seed, n)
        write_capture(tmp_path, IQCapture("cap", samples, meta))
        loaded = read_capture(tmp_path, "cap")
        assert loaded.samples.dtype == np.complex64
        assert loaded.samples.tobytes() == samples.tobytes()
        for key, value in meta.items():
            got = loaded.meta[key]
            if isinstance(value, float):
                assert got == pytest.approx(value, nan_ok=False)
            else:
                assert got == value
        assert loaded.meta["format"] == FORMAT_VERSION
        assert loaded.meta["n_samples"] == n

    def test_fingerprint_covers_meta_and_samples(self):
        meta = {"radio": "wifi", "x": 1}
        samples = _samples(3, 32)
        stamp = iq_fingerprint(meta, samples)
        assert stamp != iq_fingerprint({"radio": "wifi", "x": 2}, samples)
        assert stamp != iq_fingerprint(meta, _samples(4, 32))
        # The stamp key itself is excluded, so stamping is stable.
        assert stamp == iq_fingerprint({**meta, "fingerprint": "zz"},
                                       samples)

    def test_iteration_order_is_sorted(self, tmp_path):
        for name in ("b_cap", "a_cap", "c_cap"):
            _write_one(tmp_path, name=name, seed=1)
        assert [c.name for c in iter_captures(tmp_path)] == \
            ["a_cap", "b_cap", "c_cap"]
        assert capture_names(tmp_path) == ["a_cap", "b_cap", "c_cap"]


class TestTypedErrors:
    def test_missing_directory_lists_nothing(self, tmp_path):
        assert capture_names(tmp_path / "absent") == []

    def test_missing_sidecar(self, tmp_path):
        npz, sidecar = _write_one(tmp_path)
        sidecar.unlink()
        with pytest.raises(IQFormatError):
            read_capture(tmp_path, "cap")
        # ...and the torn pair is still *listed*, not skipped.
        assert capture_names(tmp_path) == ["cap"]

    def test_missing_npz(self, tmp_path):
        npz, _ = _write_one(tmp_path)
        npz.unlink()
        with pytest.raises(IQFormatError):
            read_capture(tmp_path, "cap")

    @pytest.mark.parametrize("keep", [0, 10, 60])
    def test_truncated_npz(self, tmp_path, keep):
        npz, _ = _write_one(tmp_path, n=256)
        npz.write_bytes(npz.read_bytes()[:keep])
        with pytest.raises(IQFormatError):
            read_capture(tmp_path, "cap")

    def test_corrupt_sidecar_json(self, tmp_path):
        _, sidecar = _write_one(tmp_path)
        sidecar.write_text("{not json")
        with pytest.raises(IQFormatError):
            read_capture(tmp_path, "cap")

    def test_wrong_format_tag(self, tmp_path):
        _, sidecar = _write_one(tmp_path)
        meta = json.loads(sidecar.read_text())
        meta["format"] = "repro.iq/999"
        sidecar.write_text(json.dumps(meta))
        with pytest.raises(IQFormatError):
            read_capture(tmp_path, "cap")

    def test_edited_sidecar_mismatches_fingerprint(self, tmp_path):
        _, sidecar = _write_one(tmp_path)
        meta = json.loads(sidecar.read_text())
        meta["expect"] = {"stage": "crc_fail"}
        sidecar.write_text(json.dumps(meta))
        with pytest.raises(IQFingerprintMismatch):
            read_capture(tmp_path, "cap")

    def test_swapped_samples_mismatch_fingerprint(self, tmp_path):
        npz, _ = _write_one(tmp_path, seed=0, n=64)
        np.savez_compressed(npz, samples=_samples(9, 64))
        with pytest.raises(IQFingerprintMismatch):
            read_capture(tmp_path, "cap")

    def test_wrong_dtype_rejected(self, tmp_path):
        npz, sidecar = _write_one(tmp_path, n=16)
        np.savez_compressed(npz, samples=np.zeros(16, dtype=complex))
        with pytest.raises(IQFormatError) as excinfo:
            read_capture(tmp_path, "cap")
        assert not isinstance(excinfo.value, IQFingerprintMismatch)

    def test_sample_count_mismatch(self, tmp_path):
        npz, sidecar = _write_one(tmp_path, n=64)
        meta = json.loads(sidecar.read_text())
        samples = _samples(0, 32)
        meta["n_samples"] = 64
        meta["fingerprint"] = iq_fingerprint(meta, samples)
        np.savez_compressed(npz, samples=samples)
        sidecar.write_text(json.dumps(meta))
        with pytest.raises(IQFormatError):
            read_capture(tmp_path, "cap")

    def test_non_object_sidecar(self, tmp_path):
        _, sidecar = _write_one(tmp_path)
        sidecar.write_text("[1, 2, 3]")
        with pytest.raises(IQFormatError):
            read_capture(tmp_path, "cap")

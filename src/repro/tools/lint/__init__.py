"""reprolint — project-aware static analysis for the repro codebase.

A purpose-built linter enforcing the determinism, observability, and
concurrency contracts generic linters cannot see: explicit seeded RNG
flow (R001), no wall clocks in results (R002), float/NaN discipline
(R003/R004), picklable specs (R007), obs-owned timing (R008), RNG-free
batch decode phases via cross-module call-graph analysis (R009),
guarded-by lock discipline (R010), a closed metric-name registry
(R011), and suppression hygiene (R012).

Package layout: ``model`` (datatypes), ``resolve``/``index`` (imports
+ project symbol/call graph), ``suppress`` (comment directives),
``rules/`` (one module per rule + registry), ``cache`` (content-hash
result cache), ``baseline`` (ratchet), ``emit`` (text/JSON/SARIF),
``runner`` (walk/parse/analyse pipeline), ``cli``.

See ``docs/static_analysis.md`` for the catalogue and authoring guide.
"""

from repro.tools.lint.cli import main
from repro.tools.lint.model import (LINT_VERSION, Finding, LintReport,
                                    Rule)
from repro.tools.lint.rules import ALL_CHECKERS, RULES
from repro.tools.lint.runner import (iter_python_files, lint_paths,
                                     lint_source)

__all__ = [
    "LINT_VERSION", "Rule", "Finding", "LintReport",
    "ALL_CHECKERS", "RULES",
    "iter_python_files", "lint_source", "lint_paths", "main",
]

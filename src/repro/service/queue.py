"""JSONL-journaled job queue: submissions and state changes as a log.

The queue's durable form is an append-only journal, one JSON object per
line, in the same torn-line-tolerant discipline as the engine's
checkpoint journal and the trace sink: a process killed mid-write
leaves at most one unparseable tail line, which replay skips.  Two row
kinds:

* ``{"kind": "job", "job_id", "seq", "fingerprint", "envelope"}`` — a
  submission, carrying the full enveloped spec so a restarted server
  can rebuild the spec without any other state.
* ``{"kind": "state", "job_id", "state", "cached", "error"}`` — a
  transition; the last state row per job wins.

Replaying the journal therefore reconstructs the exact job table, and
:meth:`JobQueue.recover` demotes jobs that were ``running`` at the kill
back to ``pending`` so the worker tier picks them up again (their
engine checkpoints make the re-run resume, not restart).

No wall-clock timestamps anywhere — ordering is the journal's line
order plus the monotonic ``seq``, matching the repo-wide rule that
persisted artifacts never depend on when a run happened.

All mutating methods are serialized by an internal lock: HTTP handler
threads submit while a worker thread claims.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = ["JobQueue", "JobRecord", "JOB_STATES"]

#: Legal job states, in lifecycle order.  ``done`` with ``cached=True``
#: means the result came from the store without running the engine.
JOB_STATES = ("pending", "running", "done", "failed")


@dataclass
class JobRecord:
    """One submission: identity, content key, and current state."""

    job_id: str
    seq: int
    fingerprint: str
    envelope: Dict[str, Any] = field(default_factory=dict)
    state: str = "pending"
    cached: bool = False
    error: Optional[str] = None

    @property
    def active(self) -> bool:
        return self.state in ("pending", "running")

    def to_dict(self) -> Dict[str, Any]:
        """Public JSON view (HTTP status payloads, CLI output)."""
        return {
            "job_id": self.job_id,
            "seq": self.seq,
            "fingerprint": self.fingerprint,
            "state": self.state,
            "cached": self.cached,
            "error": self.error,
        }


class JobQueue:
    """Journal-backed, thread-safe job table with FIFO claiming."""

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._jobs: Dict[str, JobRecord] = {}  # guarded-by: _lock
        self._next_seq = 1  # guarded-by: _lock
        self._replay()

    # -- journal ----------------------------------------------------------

    # Runs from __init__, before the queue is visible to any other
    # thread, so the job table is safe to touch without the lock.
    def _replay(self) -> None:  # reprolint: holds(_lock)
        if not self.path.exists():
            return
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail write from a killed server
            if not isinstance(row, dict):
                continue
            kind = row.get("kind")
            if kind == "job":
                try:
                    record = JobRecord(
                        job_id=str(row["job_id"]), seq=int(row["seq"]),
                        fingerprint=str(row["fingerprint"]),
                        envelope=dict(row.get("envelope") or {}))
                except (KeyError, TypeError, ValueError):
                    continue  # malformed row: skip, like a torn line
                self._jobs[record.job_id] = record
                self._next_seq = max(self._next_seq, record.seq + 1)
            elif kind == "state":
                record_or_none = self._jobs.get(str(row.get("job_id")))
                if record_or_none is None:
                    continue  # state row for a job whose row was torn
                state = row.get("state")
                if state not in JOB_STATES:
                    continue
                record_or_none.state = str(state)
                record_or_none.cached = bool(row.get("cached", False))
                error = row.get("error")
                record_or_none.error = None if error is None else str(error)

    def _append(self, row: Dict[str, Any]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as fh:
            fh.write(json.dumps(row, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    # -- lifecycle ---------------------------------------------------------

    def submit(self, envelope: Dict[str, Any], fingerprint: str) -> JobRecord:
        """Journal a new pending job and return its record."""
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            record = JobRecord(job_id=f"job-{seq:06d}", seq=seq,
                               fingerprint=fingerprint,
                               envelope=dict(envelope))
            self._jobs[record.job_id] = record
            self._append({"kind": "job", "job_id": record.job_id,
                          "seq": seq, "fingerprint": fingerprint,
                          "envelope": record.envelope})
            return record

    def set_state(self, job_id: str, state: str, *, cached: bool = False,
                  error: Optional[str] = None) -> JobRecord:
        """Transition one job, journaling the new state."""
        if state not in JOB_STATES:
            raise ValueError(f"unknown job state {state!r}")
        with self._lock:
            record = self._jobs[job_id]  # KeyError on unknown id
            record.state = state
            record.cached = cached
            record.error = error
            self._append({"kind": "state", "job_id": job_id, "state": state,
                          "cached": cached, "error": error})
            return record

    def claim_next(self) -> Optional[JobRecord]:
        """Atomically take the oldest pending job (marking it running)."""
        with self._lock:
            for record in sorted(self._jobs.values(), key=lambda r: r.seq):
                if record.state == "pending":
                    record.state = "running"
                    self._append({"kind": "state", "job_id": record.job_id,
                                  "state": "running", "cached": False,
                                  "error": None})
                    return record
            return None

    def recover(self) -> List[JobRecord]:
        """Demote killed-while-running jobs back to pending.

        Call once on server start, before any worker claims: a job that
        was in flight when the previous process died resumes from its
        engine checkpoint instead of being lost.
        """
        requeued: List[JobRecord] = []
        with self._lock:
            for record in sorted(self._jobs.values(), key=lambda r: r.seq):
                if record.state == "running":
                    record.state = "pending"
                    self._append({"kind": "state", "job_id": record.job_id,
                                  "state": "pending", "cached": False,
                                  "error": None})
                    requeued.append(record)
        return requeued

    # -- reading -----------------------------------------------------------

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[JobRecord]:
        """Every job, oldest first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda r: r.seq)

    def counts(self) -> Dict[str, int]:
        """``{state: count}`` over the current table."""
        with self._lock:
            out: Dict[str, int] = {}
            for record in self._jobs.values():
                out[record.state] = out.get(record.state, 0) + 1
            return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

# lint-as: src/repro/service/fixture_queue.py
"""R010 violations: guarded attribute touched without its lock."""

import threading


class Queue:
    def __init__(self):
        self._lock = threading.Lock()
        self._jobs = {}  # guarded-by: _lock

    def add(self, job_id, record):
        self._jobs[job_id] = record  # mutated outside the lock

    def count(self):
        return len(self._jobs)  # read outside the lock

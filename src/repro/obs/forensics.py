"""Decode-forensics taxonomy: where a packet died.

Every PHY receiver classifies each packet outcome into exactly one of
the stages below — the first receive stage that failed, or ``OK``.  The
stages form a pipeline ordered like the receive chain itself:

========== =========================================================
stage      meaning
========== =========================================================
sync_fail  preamble/SFD/access-address never detected (or an
           envelope-detector miss / sync-probability gate in the
           session before the receiver even ran)
header_fail sync found but the PLCP SIGNAL / PHR header did not
           decode (bad rate field, parity, length)
fec_fail   header decoded but the data field could not be recovered
           (truncated DATA symbols, de-interleave/Viterbi failure)
crc_fail   bits recovered but the frame check sequence mismatched
ok         frame delivered with a valid CRC (or, for raw-bit tag
           links without a CRC, sync + demod succeeded)
========== =========================================================

Plain string constants — not an Enum — so the values format and
serialize identically on every supported Python version and compare
cheaply in hot paths.  ``STAGES`` is the stable, ordered vocabulary
used by counters (``phy.<radio>.stage.<stage>``), trace events, and
report renderers.
"""

from __future__ import annotations

from typing import Tuple

__all__ = ["OK", "SYNC_FAIL", "HEADER_FAIL", "FEC_FAIL", "CRC_FAIL",
           "STAGES", "stage_counter"]

SYNC_FAIL = "sync_fail"
HEADER_FAIL = "header_fail"
FEC_FAIL = "fec_fail"
CRC_FAIL = "crc_fail"
OK = "ok"

#: All stages in receive-chain order; ``ok`` last.
STAGES: Tuple[str, ...] = (SYNC_FAIL, HEADER_FAIL, FEC_FAIL, CRC_FAIL, OK)


def stage_counter(obs_prefix: str, stage: str) -> str:
    """Counter name for one (radio, stage) cell, e.g.
    ``phy.wifi.stage.crc_fail``."""
    if stage not in STAGES:
        raise ValueError(f"unknown decode stage {stage!r}")
    return f"{obs_prefix}.stage.{stage}"

"""Shared fixtures for the sweep-service tests.

Small specs on purpose: every test here runs the real engine, so the
canonical spec is two distances x two packets (~100 ms).
"""

import pytest

from repro.channel.geometry import Deployment
from repro.sim.config import config_by_name
from repro.sim.engine import ExperimentSpec, MacExperimentSpec


@pytest.fixture
def link_spec():
    return ExperimentSpec(config=config_by_name("zigbee"),
                          deployment=Deployment.los(1.0),
                          distances_m=(2.0, 6.0),
                          packets_per_point=2, seed=3)


@pytest.fixture
def other_link_spec():
    return ExperimentSpec(config=config_by_name("zigbee"),
                          deployment=Deployment.los(1.0),
                          distances_m=(2.0, 6.0),
                          packets_per_point=2, seed=4)


@pytest.fixture
def mac_spec():
    return MacExperimentSpec(tag_counts=(4,), measured_rounds=12,
                             simulated_rounds=10, seed=1)

"""Tests for path-loss models and deployment geometry."""

import numpy as np
import pytest

from repro.channel.geometry import Deployment
from repro.channel.pathloss import (
    LOS_HALLWAY,
    NLOS_OFFICE,
    PathLossModel,
    free_space_path_loss_db,
)


class TestFreeSpace:
    def test_one_meter_2_4ghz(self):
        assert free_space_path_loss_db(1.0) == pytest.approx(40.2, abs=0.3)

    def test_doubling_distance_adds_6db(self):
        assert (free_space_path_loss_db(20.0) - free_space_path_loss_db(10.0)
                == pytest.approx(6.02, abs=0.01))

    def test_bad_distance_raises(self):
        with pytest.raises(ValueError):
            free_space_path_loss_db(0.0)


class TestLogDistance:
    def test_reference_loss(self):
        model = PathLossModel(exponent=2.0, pl_d0_db=40.0)
        assert model.loss_db(1.0) == pytest.approx(40.0)

    def test_exponent_slope(self):
        model = PathLossModel(exponent=3.0, pl_d0_db=40.0)
        assert model.loss_db(10.0) - model.loss_db(1.0) == pytest.approx(30.0)

    def test_minimum_distance_clamped(self):
        model = PathLossModel(exponent=2.0, pl_d0_db=40.0)
        assert model.loss_db(0.0) == model.loss_db(0.1)

    def test_walls_add_once_crossed(self):
        model = PathLossModel(exponent=2.0, pl_d0_db=40.0,
                              walls=((5.0, 7.0),))
        below = model.loss_db(4.9)
        above = model.loss_db(5.1)
        assert above - below > 6.5

    def test_shadowing_is_random_but_seeded(self):
        model = PathLossModel(exponent=2.0, pl_d0_db=40.0,
                              shadowing_sigma_db=4.0)
        a = model.loss_db(10.0, np.random.default_rng(1))
        b = model.loss_db(10.0, np.random.default_rng(1))
        c = model.loss_db(10.0, np.random.default_rng(2))
        assert a == b and a != c

    def test_received_power(self):
        model = PathLossModel(exponent=2.0, pl_d0_db=40.0)
        assert model.received_power_dbm(15.0, 1.0) == pytest.approx(-25.0)


class TestCalibratedModels:
    def test_nlos_has_two_walls(self):
        assert len(NLOS_OFFICE.walls) == 2

    def test_nlos_lossier_beyond_wall(self):
        assert NLOS_OFFICE.loss_db(25.0) > LOS_HALLWAY.loss_db(25.0) + 15

    def test_los_rssi_span_matches_figure_10c(self):
        """RSSI from ~-70 dBm near the tag to ~-95 dBm at 42 m (15 dBm
        TX 1 m from the tag)."""
        from repro.channel.link import BackscatterLinkBudget

        budget = BackscatterLinkBudget(tx_power_dbm=15.0, bandwidth_hz=20e6)
        near = budget.rssi_dbm(Deployment.los(5.0))
        far = budget.rssi_dbm(Deployment.los(42.0))
        assert -76 < near < -66
        assert -99 < far < -91


class TestDeployment:
    def test_los_factory(self):
        dep = Deployment.los(10.0)
        assert dep.forward_path is LOS_HALLWAY
        assert dep.backscatter_path is LOS_HALLWAY

    def test_nlos_factory_walls_only_backward(self):
        dep = Deployment.nlos(10.0)
        assert dep.forward_path is LOS_HALLWAY
        assert dep.backscatter_path is NLOS_OFFICE

    def test_with_rx_distance(self):
        dep = Deployment.los(10.0).with_rx_distance(20.0)
        assert dep.tag_to_rx_m == 20.0 and dep.tx_to_tag_m == 1.0

    def test_with_tx_distance(self):
        dep = Deployment.los(10.0).with_tx_distance(3.0)
        assert dep.tx_to_tag_m == 3.0

    def test_invalid_distances_raise(self):
        with pytest.raises(ValueError):
            Deployment(0.0, 5.0)
        with pytest.raises(ValueError):
            Deployment(1.0, -2.0)

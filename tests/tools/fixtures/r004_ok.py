"""R004-clean: NaN-sentinel fields go through the safe helpers."""

import math

import numpy as np


def mean_ber(points):
    return np.nanmean([p.ber for p in points])


def mean_series(series):
    xs, ys = series.finite_points()
    return float(np.mean(ys))


def valid_bers(points):
    # Guard first, aggregate the guarded copy.
    values = [p.ber for p in points if not math.isnan(p.ber)]
    return sum(values)

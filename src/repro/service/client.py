"""urllib client for the sweep service: what ``repro submit`` speaks.

A deliberately small wrapper over :mod:`urllib.request` — no sessions,
no retries beyond polling — returning the server's JSON payloads as
plain dicts so the CLI can print them directly.  Server-side rejections
(4xx/5xx) surface as :class:`ServiceClientError` carrying the HTTP
status and the server's ``error`` message; connection failures raise
the underlying :class:`urllib.error.URLError` untouched, so "server
not running" stays distinguishable from "server said no".
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

from repro.sim.engine import (
    ExperimentSpec,
    MacExperimentSpec,
    RunResult,
    Spec,
)

__all__ = ["DEFAULT_URL", "ServiceClient", "ServiceClientError"]

#: Where ``repro serve`` listens by default.
DEFAULT_URL = "http://127.0.0.1:8351"


class ServiceClientError(RuntimeError):
    """The server answered with an error status."""

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        super().__init__(f"HTTP {status}: {message}")


class ServiceClient:
    """Typed access to one running sweep service."""

    def __init__(self, base_url: str = DEFAULT_URL,
                 timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)

    # -- transport ---------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> bytes:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(self.base_url + path, data=data,
                                         headers=headers, method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as response:
                return bytes(response.read())
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                message = str(json.loads(raw).get("error", raw.decode()))
            except (json.JSONDecodeError, UnicodeDecodeError, AttributeError):
                message = raw.decode("utf-8", "replace")
            raise ServiceClientError(exc.code, message) from exc

    def _request_json(self, method: str, path: str,
                      body: Optional[Dict[str, Any]] = None
                      ) -> Dict[str, Any]:
        payload = json.loads(self._request(method, path, body))
        if not isinstance(payload, dict):
            raise ServiceClientError(502, f"non-object response from {path}")
        return payload

    # -- API ---------------------------------------------------------------

    def submit(self, payload: Union[Spec, Mapping[str, Any]]
               ) -> Dict[str, Any]:
        """Submit a spec (object or envelope dict); returns the job dict.

        The returned dict is the server's job record: look at
        ``state``/``cached``/``cache_hit`` to see whether the
        submission was answered from the result cache.  A cache hit
        serves the stored result without a new engine run; if the
        payload carried an ``"obs"`` section requesting run-scoped
        observability artifacts, the record's ``warning`` field says
        they were not regenerated.
        """
        if isinstance(payload, (ExperimentSpec, MacExperimentSpec)):
            from repro.sim.spec import dump_spec

            body = dump_spec(payload)
        else:
            body = dict(payload)
        return dict(self._request_json("POST", "/jobs", body)["job"])

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request_json("GET", f"/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        return list(self._request_json("GET", "/jobs")["jobs"])

    def fetch_record(self, job_id: str) -> Dict[str, Any]:
        """The stored result record (version/fingerprint/envelope/result)."""
        return dict(json.loads(self._request(
            "GET", f"/jobs/{job_id}/result")))

    def fetch_raw(self, job_id: str) -> bytes:
        """The stored result record's exact bytes (bit-identical)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def fetch(self, job_id: str) -> RunResult:
        """The completed :class:`RunResult` for *job_id*."""
        return RunResult.from_dict(self.fetch_record(job_id)["result"])

    def metrics(self) -> str:
        """The ``/metrics`` endpoint's Prometheus text."""
        return self._request("GET", "/metrics").decode("utf-8")

    def healthz(self) -> Dict[str, Any]:
        """The ``/healthz`` payload: ``ok`` plus queue saturation
        (``depth`` and jobs-by-state counts)."""
        return self._request_json("GET", "/healthz")

    def health(self) -> bool:
        try:
            return bool(self.healthz().get("ok"))
        except (ServiceClientError, urllib.error.URLError, OSError):
            return False

    def events(self, job_id: str, cursor: int = 0) -> Dict[str, Any]:
        """One page of the job's progress stream, after *cursor*.

        Returns the server payload: ``events`` (journal rows with
        ``seq`` > *cursor*), ``cursor`` (pass it back to resume),
        ``state`` and ``cached``.  A stale cursor yields no events and
        echoes itself; a cached job has no stream (it never ran).
        """
        return self._request_json(
            "GET", f"/jobs/{job_id}/events?cursor={int(cursor)}")

    def follow(self, job_id: str, timeout_s: float = 120.0,
               poll_s: float = 0.2) -> Iterator[Dict[str, Any]]:
        """Yield progress rows until the job leaves pending/running.

        The server reads job state *before* the journal, so a page
        reporting a settled state provably carries the final rows —
        the generator drains that page, then stops.  Bounded by
        attempt count like :meth:`wait`; raises :class:`TimeoutError`
        if the job is still live when the budget runs out.
        """
        attempts = max(1, int(timeout_s / poll_s) + 1)
        cursor = 0
        state = ""
        for attempt in range(attempts):
            page = self.events(job_id, cursor=cursor)
            cursor = int(page.get("cursor", cursor))
            state = str(page.get("state", ""))
            for row in page.get("events", []):
                yield dict(row)
            if state not in ("pending", "running"):
                return
            if attempt + 1 < attempts:
                time.sleep(poll_s)
        raise TimeoutError(
            f"job {job_id} still {state} after ~{timeout_s}s")

    def wait(self, job_id: str, timeout_s: float = 120.0,
             poll_s: float = 0.2) -> Dict[str, Any]:
        """Poll :meth:`status` until the job leaves pending/running.

        Raises :class:`TimeoutError` when the budget runs out.  Bounded
        by attempt count rather than a clock read: ``timeout_s`` is a
        budget, not a deadline, in keeping with the repo's
        no-wall-clock discipline.
        """
        attempts = max(1, int(timeout_s / poll_s) + 1)
        status: Dict[str, Any] = {}
        for attempt in range(attempts):
            status = self.status(job_id)
            if status.get("state") not in ("pending", "running"):
                return status
            if attempt + 1 < attempts:
                time.sleep(poll_s)
        raise TimeoutError(
            f"job {job_id} still {status.get('state')} after ~{timeout_s}s")

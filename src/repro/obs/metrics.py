"""Process-local counters and timers for experiment observability.

The simulator's hot paths (PHY encode/channel/decode, engine task
dispatch) record where time and retries go through a tiny metrics
registry.  Design constraints, in order:

* **Near-zero overhead.**  A counter increment is a dict lookup plus an
  integer add; a timer is two ``perf_counter`` calls.  The PHY chain is
  numpy-bound, so this is noise.
* **Process-local.**  Engine workers are separate processes; each one
  accumulates into its own registry and ships a plain-dict
  :meth:`MetricsRegistry.snapshot` back with the task result, which the
  engine merges (:meth:`MetricsRegistry.merge_snapshot`).  Nothing here
  is thread- or process-shared, so there are no locks.
* **Scoped collection.**  Instrumented code records into whatever
  registry is *active*.  By default that is one module-global registry;
  :func:`collect` pushes a fresh registry for the duration of a block so
  callers (the engine's per-task wrapper, tests) get an isolated view
  without touching the instrumentation sites.

Typical use::

    from repro import obs

    with obs.timed("phy.wifi.decode"):
        receiver.decode(...)
    obs.inc("phy.wifi.packets")

    with obs.collect() as reg:       # isolate one task's metrics
        run_task()
    snapshot = reg.snapshot()        # {"counters": ..., "timers": ...}

Tracing (spans + events) is opt-in per registry: pass a
:class:`TraceConfig` to :func:`collect` (or the registry constructor)
and :func:`span` / :func:`packet_event` start recording; with no trace
config they are a dict lookup plus a ``None`` check — near-zero
overhead, and no RNG or numerical state is touched either way.  Span
durations aggregate by *path* ("parent/child"), so snapshots merge
across worker processes exactly like counters and timers.
"""

from __future__ import annotations

import math
import time
from bisect import bisect_left
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs import forensics

__all__ = ["TimerStat", "Gauge", "Histogram", "DEFAULT_LATENCY_BUCKETS",
           "TraceConfig", "MetricsRegistry", "registry",
           "global_registry", "collect", "collect_into", "tracing_active",
           "timed", "inc", "observe", "observe_hist", "set_gauge",
           "add_gauge", "span", "event", "packet_event"]


@dataclass
class TimerStat:
    """Aggregate of one named timer: count / total / min / max seconds."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = math.inf
    max_s: float = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        self.min_s = min(self.min_s, seconds)
        self.max_s = max(self.max_s, seconds)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def merge(self, other: "TimerStat") -> None:
        self.count += other.count
        self.total_s += other.total_s
        self.min_s = min(self.min_s, other.min_s)
        self.max_s = max(self.max_s, other.max_s)

    def to_dict(self) -> Dict[str, Optional[float]]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            # min is inf until the first observation; JSON has no inf,
            # so an empty timer serializes min as null.
            "min_s": self.min_s if self.count else None,
            "max_s": self.max_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TimerStat":
        stat = cls(count=int(data.get("count", 0)),
                   total_s=float(data.get("total_s", 0.0)),
                   max_s=float(data.get("max_s", 0.0)))
        raw_min = data.get("min_s")
        if stat.count and raw_min is not None:
            stat.min_s = float(raw_min)
        else:
            stat.min_s = math.inf
        return stat


class Gauge:
    """A point-in-time value: ``set`` to the latest reading, ``add`` a
    delta.  Unlike counters, merging is last-write-wins — a gauge is a
    *local* observation (queue depth, oldest-job age), so whichever
    snapshot merged last is the freshest view, not a sum."""

    __slots__ = ("value",)

    value: float

    def __init__(self, value: float = 0.0) -> None:
        self.value = float(value)

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += float(delta)

    def merge(self, other: "Gauge") -> None:
        self.value = other.value


#: Default latency buckets: a 1/2.5/5 log grid from 100 µs to 60 s.
#: Every histogram shares these bounds unless constructed otherwise, so
#: snapshots from any worker split merge bucket-for-bucket.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)


class Histogram:
    """Fixed-bucket latency histogram with exact ``sum`` / ``count``.

    ``buckets`` holds ascending upper bounds (``le`` semantics: an
    observation lands in the first bucket whose bound is >= the value);
    ``counts`` has one extra overflow slot for values past the last
    bound.  Because the bounds are fixed at construction, merging
    worker snapshots is invariant to how observations were partitioned:
    any grouping of the same observations produces identical buckets,
    ``sum`` and ``count``.  ``quantile`` interpolates linearly inside
    the containing bucket, which is the standard Prometheus estimate.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    buckets: Tuple[float, ...]
    counts: List[int]
    sum: float
    count: int

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
                 ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError(f"bucket bounds must be finite: {bounds}")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must ascend: {bounds}")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.buckets} != {other.buckets}")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.sum += other.sum
        self.count += other.count

    def quantile(self, q: float) -> Optional[float]:
        """Estimated value at quantile *q* (0..1); ``None`` when empty.

        Interpolates within the containing bucket; observations in the
        overflow bucket clamp to the last finite bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return None
        target = q * self.count
        cumulative = 0
        lower = 0.0
        for i, bound in enumerate(self.buckets):
            previous = cumulative
            cumulative += self.counts[i]
            if cumulative >= target and self.counts[i]:
                frac = (target - previous) / self.counts[i]
                return lower + (bound - lower) * min(max(frac, 0.0), 1.0)
            lower = bound
        return self.buckets[-1]

    def to_dict(self) -> Dict[str, Any]:
        return {"buckets": list(self.buckets), "counts": list(self.counts),
                "sum": self.sum, "count": self.count}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Histogram":
        hist = cls(tuple(float(b) for b in data["buckets"]))
        counts = [int(n) for n in data["counts"]]
        if len(counts) != len(hist.buckets) + 1:
            raise ValueError(
                f"expected {len(hist.buckets) + 1} bucket counts, "
                f"got {len(counts)}")
        hist.counts = counts
        hist.sum = float(data.get("sum", 0.0))
        hist.count = int(data.get("count", 0))
        return hist


@dataclass(frozen=True)
class TraceConfig:
    """Sampling knobs for trace events (spans and per-packet records).

    A registry with a ``TraceConfig`` records spans and events; a
    registry without one (the default) skips all trace work.  The
    config is immutable and picklable so the engine can ship it to
    worker processes alongside the task.

    ``every_n`` keeps every N-th packet event (1 = all);
    ``failures_only`` drops ``ok``-stage packet events entirely;
    ``max_events`` caps the in-memory event buffer — past it events are
    dropped and counted under ``trace.events.dropped``.  Stage
    *counters* are unaffected by any of these knobs: sampling only
    thins the per-packet JSONL stream.
    """

    every_n: int = 1
    failures_only: bool = False
    max_events: int = 100_000

    def __post_init__(self) -> None:
        if self.every_n < 1:
            raise ValueError(f"every_n must be >= 1, got {self.every_n}")
        if self.max_events < 0:
            raise ValueError(
                f"max_events must be >= 0, got {self.max_events}")


class _SpanBase:
    """Common no-op context-manager shape for spans."""

    __slots__ = ()

    def __enter__(self) -> "_SpanBase":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


class _NoopSpan(_SpanBase):
    """Returned when tracing is disabled; a shared, stateless singleton."""

    __slots__ = ()


_NOOP_SPAN = _NoopSpan()


class _Span(_SpanBase):
    """A live span: times a block and links to its parent via the
    registry's span stack (path = "parent/child")."""

    __slots__ = ("_registry", "_name", "_attrs", "_start", "_path")

    _registry: "MetricsRegistry"
    _name: str
    _attrs: Dict[str, Any]
    _start: float
    _path: str

    def __init__(self, registry: "MetricsRegistry", name: str,
                 attrs: Dict[str, Any]) -> None:
        self._registry = registry
        self._name = name
        self._attrs = attrs
        self._start = 0.0
        self._path = ""

    def __enter__(self) -> "_Span":
        reg = self._registry
        reg._span_stack.append(self._name)
        self._path = "/".join(reg._span_stack)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        dur = time.perf_counter() - self._start
        reg = self._registry
        if reg._span_stack and reg._span_stack[-1] == self._name:
            reg._span_stack.pop()
        stat = reg._spans.get(self._path)
        if stat is None:
            stat = reg._spans[self._path] = TimerStat()
        stat.observe(dur)
        payload: Dict[str, Any] = {"path": self._path, "dur_s": dur}
        if self._attrs:
            payload["attrs"] = dict(self._attrs)
        reg._record_event("span", payload)


class MetricsRegistry:
    """A named bag of counters, timers, and (when tracing) spans/events."""

    def __init__(self, trace: Optional[TraceConfig] = None) -> None:
        self._counters: Dict[str, int] = {}
        self._timers: Dict[str, TimerStat] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._trace = trace
        self._spans: Dict[str, TimerStat] = {}
        self._span_stack: List[str] = []
        self._events: List[Dict[str, Any]] = []
        self._packet_seq = 0

    @property
    def trace(self) -> Optional[TraceConfig]:
        """The trace config, or ``None`` when tracing is disabled."""
        return self._trace

    # -- recording --------------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + n

    def observe(self, name: str, seconds: float) -> None:
        stat = self._timers.get(name)
        if stat is None:
            stat = self._timers[name] = TimerStat()
        stat.observe(seconds)

    def set_gauge(self, name: str, value: float) -> None:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        gauge.set(value)

    def add_gauge(self, name: str, delta: float) -> None:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        gauge.add(delta)

    def observe_hist(self, name: str, value: float,
                     buckets: Optional[Sequence[float]] = None) -> None:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(
                buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS)
        hist.observe(value)

    @contextmanager
    def timed(self, name: str,
              hist: Optional[str] = None) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            dur = time.perf_counter() - start
            self.observe(name, dur)
            if hist is not None:
                self.observe_hist(hist, dur)

    def span(self, name: str, **attrs: Any) -> _SpanBase:
        """Open a hierarchical span; a shared no-op when not tracing."""
        if self._trace is None:
            return _NOOP_SPAN
        return _Span(self, name, attrs)

    def event(self, kind: str, **fields: Any) -> None:
        """Append one structured trace event (no-op when not tracing)."""
        if self._trace is None:
            return
        self._record_event(kind, dict(fields))

    def packet_event(self, radio: str, stage: str, **fields: Any) -> None:
        """Append a per-packet forensic event, honouring the sampling
        knobs (``every_n`` / ``failures_only``).  No-op when not
        tracing; never touches counters, RNG, or decode state."""
        cfg = self._trace
        if cfg is None:
            return
        self._packet_seq += 1
        if cfg.failures_only and stage == forensics.OK:
            return
        if cfg.every_n > 1 and (self._packet_seq - 1) % cfg.every_n:
            return
        payload: Dict[str, Any] = {"radio": radio, "stage": stage,
                                   "seq": self._packet_seq}
        payload.update(fields)
        self._record_event("packet", payload)

    def _record_event(self, kind: str, fields: Dict[str, Any]) -> None:
        cfg = self._trace
        if cfg is not None and len(self._events) >= cfg.max_events:
            self.inc("trace.events.dropped")
            return
        record: Dict[str, Any] = {"kind": kind}
        record.update(fields)
        self._events.append(record)

    # -- reading ----------------------------------------------------------

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def timer(self, name: str) -> Optional[TimerStat]:
        return self._timers.get(name)

    def gauge(self, name: str) -> Optional[Gauge]:
        return self._gauges.get(name)

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        gauge = self._gauges.get(name)
        return gauge.value if gauge is not None else default

    def histogram(self, name: str) -> Optional[Histogram]:
        return self._histograms.get(name)

    def span_stat(self, path: str) -> Optional[TimerStat]:
        """Aggregated stats for one span path ("parent/child")."""
        return self._spans.get(path)

    def span_paths(self) -> List[str]:
        """All recorded span paths, sorted."""
        return sorted(self._spans)

    @property
    def events(self) -> List[Dict[str, Any]]:
        """A copy of the buffered trace events, in recording order."""
        return [dict(e) for e in self._events]

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict view (JSON-serializable, picklable).

        ``gauges`` / ``histograms`` / ``spans`` / ``events`` keys appear
        only when non-empty, so plain counter/timer snapshots keep the
        historical two-key shape.
        """
        snap: Dict[str, Any] = {
            "counters": dict(self._counters),
            "timers": {k: v.to_dict() for k, v in self._timers.items()},
        }
        if self._gauges:
            snap["gauges"] = {k: v.value for k, v in self._gauges.items()}
        if self._histograms:
            snap["histograms"] = {
                k: v.to_dict() for k, v in self._histograms.items()}
        if self._spans:
            snap["spans"] = {k: v.to_dict() for k, v in self._spans.items()}
        if self._events:
            snap["events"] = [dict(e) for e in self._events]
        return snap

    # -- combining --------------------------------------------------------

    def merge_snapshot(self, snapshot: Optional[Dict[str, Any]],
                       span_prefix: Optional[str] = None) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        *span_prefix*, when given, re-roots the incoming span tree under
        an existing local path (the engine merges each worker's
        ``engine.task`` spans under its own ``engine.run`` root, so the
        aggregated tree is identical for any worker count).
        """
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, int(value))
        for name, data in snapshot.get("timers", {}).items():
            stat = self._timers.get(name)
            if stat is None:
                self._timers[name] = TimerStat.from_dict(data)
            else:
                stat.merge(TimerStat.from_dict(data))
        # Gauges are last-write-wins: the incoming snapshot is the
        # fresher local observation.
        for name, value in snapshot.get("gauges", {}).items():
            self.set_gauge(name, float(value))
        for name, data in snapshot.get("histograms", {}).items():
            hist = self._histograms.get(name)
            if hist is None:
                self._histograms[name] = Histogram.from_dict(data)
            else:
                hist.merge(Histogram.from_dict(data))
        for name, data in snapshot.get("spans", {}).items():
            path = f"{span_prefix}/{name}" if span_prefix else name
            stat = self._spans.get(path)
            if stat is None:
                self._spans[path] = TimerStat.from_dict(data)
            else:
                stat.merge(TimerStat.from_dict(data))
        for record in snapshot.get("events", []):
            merged = dict(record)
            if span_prefix and merged.get("kind") == "span":
                merged["path"] = f"{span_prefix}/{merged['path']}"
            self._events.append(merged)

    def reset(self) -> None:
        self._counters.clear()
        self._timers.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._spans.clear()
        self._span_stack.clear()
        self._events.clear()
        self._packet_seq = 0


# -- the active-registry stack --------------------------------------------
# Bottom entry is the always-present global registry; ``collect`` pushes
# a scratch registry on top for the duration of a block.

_STACK: List[MetricsRegistry] = [MetricsRegistry()]


def registry() -> MetricsRegistry:
    """The registry instrumentation currently records into."""
    return _STACK[-1]


def global_registry() -> MetricsRegistry:
    """The process-wide default registry (bottom of the stack)."""
    return _STACK[0]


@contextmanager
def collect(trace: Optional[TraceConfig] = None
            ) -> Iterator[MetricsRegistry]:
    """Route all recording inside the block into a fresh registry.

    Pass a :class:`TraceConfig` to also capture spans and per-packet
    trace events for the duration of the block.
    """
    reg = MetricsRegistry(trace=trace)
    _STACK.append(reg)
    try:
        yield reg
    finally:
        _STACK.remove(reg)


@contextmanager
def collect_into(reg: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Route all recording inside the block into an *existing* registry.

    Re-entrant counterpart of :func:`collect`: a caller that interleaves
    several logical collection scopes (the engine's cross-task batch
    path attributing per-task stage counters while sharing one decode
    pass) can push the same registry repeatedly without losing what it
    already holds.
    """
    _STACK.append(reg)
    try:
        yield reg
    finally:
        # remove() drops the first (bottom-most) occurrence, which keeps
        # nested re-entries of the same registry balanced.
        _STACK.remove(reg)


def tracing_active() -> bool:
    """Whether the active registry records spans/events — callers use
    this to keep trace-faithful per-point code paths when tracing."""
    return registry().trace is not None


def timed(name: str, hist: Optional[str] = None) -> "_ActiveTimer":
    """Context manager timing a block into the active registry.

    The registry is resolved when the block *exits*, so a ``timed``
    entered just before a :func:`collect` block still records into the
    registry active at completion time.  *hist*, when given, also feeds
    the same duration into a latency histogram of that name — one clock
    read pair serves both aggregates.
    """
    return _ActiveTimer(name, hist)


class _ActiveTimer:
    __slots__ = ("_name", "_hist", "_start")

    _name: str
    _hist: Optional[str]
    _start: float

    def __init__(self, name: str, hist: Optional[str] = None) -> None:
        self._name = name
        self._hist = hist

    def __enter__(self) -> "_ActiveTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        dur = time.perf_counter() - self._start
        reg = registry()
        reg.observe(self._name, dur)
        if self._hist is not None:
            reg.observe_hist(self._hist, dur)


def inc(name: str, n: int = 1) -> None:
    """Increment a counter on the active registry."""
    registry().inc(name, n)


def observe(name: str, seconds: float) -> None:
    """Record one timer observation on the active registry."""
    registry().observe(name, seconds)


def observe_hist(name: str, value: float,
                 buckets: Optional[Sequence[float]] = None) -> None:
    """Record one histogram observation on the active registry."""
    registry().observe_hist(name, value, buckets)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the active registry to *value*."""
    registry().set_gauge(name, value)


def add_gauge(name: str, delta: float) -> None:
    """Add *delta* to a gauge on the active registry."""
    registry().add_gauge(name, delta)


def span(name: str, **attrs: Any) -> _SpanBase:
    """Open a span on the active registry (shared no-op when untraced)."""
    return registry().span(name, **attrs)


def event(kind: str, **fields: Any) -> None:
    """Append one trace event to the active registry (no-op untraced)."""
    registry().event(kind, **fields)


def packet_event(radio: str, stage: str, **fields: Any) -> None:
    """Append a sampled per-packet forensic event (no-op untraced)."""
    registry().packet_event(radio, stage, **fields)

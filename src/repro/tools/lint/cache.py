"""Content-hash result cache: warm re-lints re-parse nothing.

The cache is **all-or-nothing** on purpose: cross-module rules (R009
walks the project call graph) mean editing one file can change the
findings in another, so per-file reuse after any edit would be
unsound.  The key is therefore a *project signature* — a hash over
every checked file's (path, content-hash) pair — plus the analyzer
version and the ruleset signature (rule ids + per-rule versions).  An
unchanged tree hits 100%; any edit, rule change, or version bump
re-runs the full analysis and rewrites the cache atomically.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, List, Optional

from repro.tools.lint.model import LINT_VERSION, Finding

__all__ = ["content_hash", "project_signature", "ResultCache"]


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8", "replace")).hexdigest()


def project_signature(file_hashes: Dict[str, str]) -> str:
    """Hash over every checked file's (path, content-hash) pair."""
    digest = hashlib.sha256()
    for path in sorted(file_hashes):
        digest.update(f"{path}\x00{file_hashes[path]}\n".encode())
    return digest.hexdigest()


def _finding_from_dict(raw: Dict[str, Any]) -> Finding:
    return Finding(path=str(raw["path"]), line=int(raw["line"]),
                   col=int(raw["col"]),
                   rule_id=str(raw["rule"]), message=str(raw["message"]),
                   suppressed=bool(raw["suppressed"]))


class ResultCache:
    """One cache file's worth of per-file findings."""

    def __init__(self, ruleset_sig: str) -> None:
        self.ruleset_sig = ruleset_sig
        self.project_sig: Optional[str] = None
        self.files: Dict[str, List[Finding]] = {}

    @classmethod
    def load(cls, path: str, ruleset_sig: str) -> "ResultCache":
        """Read *path*; mismatched version/ruleset yields an empty
        (always-miss) cache rather than an error."""
        cache = cls(ruleset_sig)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                raw = json.load(fh)
        except (OSError, ValueError):
            return cache
        if not isinstance(raw, dict):
            return cache
        if raw.get("lint_version") != LINT_VERSION:
            return cache
        if raw.get("ruleset") != ruleset_sig:
            return cache
        project_sig = raw.get("project_sig")
        files = raw.get("files")
        if not isinstance(project_sig, str) or not isinstance(files, dict):
            return cache
        try:
            cache.files = {
                str(file_path): [_finding_from_dict(f) for f in entries]
                for file_path, entries in files.items()
            }
        except (KeyError, TypeError, ValueError):
            cache.files = {}
            return cache
        cache.project_sig = project_sig
        return cache

    def lookup(self, project_sig: str
               ) -> Optional[Dict[str, List[Finding]]]:
        """The whole tree's findings, iff the signature matches."""
        if self.project_sig == project_sig:
            return self.files
        return None

    def store(self, project_sig: str,
              files: Dict[str, List[Finding]]) -> None:
        self.project_sig = project_sig
        self.files = files

    def save(self, path: str) -> None:
        """Atomic write (temp + rename) so concurrent lints never see a
        torn cache."""
        payload = {
            "lint_version": LINT_VERSION,
            "ruleset": self.ruleset_sig,
            "project_sig": self.project_sig,
            "files": {
                file_path: [f.to_dict() for f in findings]
                for file_path, findings in self.files.items()
            },
        }
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp = tempfile.mkstemp(dir=directory,
                                   prefix=".reprolint-cache.",
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

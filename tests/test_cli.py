"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.radio == "wifi"
        assert args.deployment == "los"

    def test_distance_list_parsing(self):
        args = build_parser().parse_args(["sweep", "--distances", "1,5,10"])
        assert args.distances == [1.0, 5.0, 10.0]

    def test_bad_distance_list_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--distances", "a,b"])

    def test_unknown_radio_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--radio", "lora"])


class TestCommands:
    def test_packet_wifi(self, capsys):
        code = main(["packet", "--radio", "wifi", "--snr", "20",
                     "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "delivered=True" in out

    def test_packet_exit_code_on_loss(self, capsys):
        code = main(["packet", "--radio", "bluetooth", "--snr", "-15",
                     "--seed", "1"])
        assert code == 1

    def test_power(self, capsys):
        assert main(["power"]) == 0
        out = capsys.readouterr().out
        assert "19.00" in out and "12.00" in out

    def test_regime(self, capsys):
        assert main(["regime"]) == 0
        out = capsys.readouterr().out
        assert "wifi" in out and "bluetooth" in out

    def test_mac(self, capsys):
        assert main(["mac", "--tags", "4", "--rounds", "20",
                     "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "fairness" in out

    def test_sweep_zigbee(self, capsys):
        assert main(["sweep", "--radio", "zigbee", "--distances", "2,6",
                     "--packets", "2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "zigbee backscatter" in out


class TestEngineOptions:
    def test_packet_radio_choices_come_from_registry(self):
        from repro.core.registry import registered_radios

        parser = build_parser()
        for radio in registered_radios():
            args = parser.parse_args(["packet", "--radio", radio])
            assert args.radio == radio

    def test_sweep_jobs_output_is_worker_count_invariant(self, capsys):
        argv = ["sweep", "--radio", "zigbee", "--distances", "2,6",
                "--packets", "2", "--seed", "3"]
        assert main(argv + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_sweep_json_record(self, capsys):
        import json

        assert main(["sweep", "--radio", "zigbee", "--distances", "2",
                     "--packets", "2", "--seed", "3", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["spec"]["kind"] == "link_sweep"
        assert record["timing"]["n_jobs"] == 1
        assert record["timing"]["packets_simulated"] == 2
        assert record["timing"]["packets_per_second"] > 0
        assert len(record["points"]) == 1

    def test_mac_json_record(self, capsys):
        import json

        assert main(["mac", "--tags", "4", "--rounds", "10", "--seed", "2",
                     "--jobs", "2", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["spec"]["kind"] == "mac_sweep"
        assert record["timing"]["n_jobs"] == 2
        assert len(record["points"]) == 1

    def test_sweep_payload_override(self, capsys):
        assert main(["sweep", "--radio", "bluetooth", "--distances", "2",
                     "--packets", "1", "--seed", "1",
                     "--payload-bytes", "60", "--repetition", "18"]) == 0
        assert "bluetooth backscatter" in capsys.readouterr().out


class TestRobustnessOptions:
    def test_failure_policy_flags_parse(self):
        args = build_parser().parse_args(
            ["sweep", "--failure-policy", "degrade", "--retries", "3",
             "--task-timeout", "2.5", "--checkpoint", "ckpt.jsonl",
             "--metrics-json", "-"])
        assert args.failure_policy == "degrade"
        assert args.retries == 3
        assert args.task_timeout == 2.5
        assert args.checkpoint == "ckpt.jsonl"
        assert args.metrics_json == "-"

    def test_zero_retries_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--retries", "0"])

    @pytest.mark.parametrize("radio,extra", [
        ("zigbee", []),
        ("wifi", ["--payload-bytes", "24"]),  # shrunk PSDU keeps it fast
    ])
    def test_metrics_json_emits_stage_timers(self, tmp_path, capsys,
                                             radio, extra):
        path = tmp_path / "metrics.json"
        assert main(["sweep", "--radio", radio, "--distances", "2",
                     "--packets", "1", "--seed", "3",
                     "--metrics-json", str(path)] + extra) == 0
        import json

        record = json.loads(path.read_text())
        counters = record["metrics"]["counters"]
        timers = record["metrics"]["timers"]
        assert counters[f"phy.{radio}.packets"] == 1
        assert counters["engine.tasks.ok"] == 1
        for stage in ("engine.task", f"phy.{radio}.encode",
                      f"phy.{radio}.channel", f"phy.{radio}.decode"):
            assert timers[stage]["count"] > 0
        assert record["timing"]["n_failed"] == 0
        assert record["tasks"][0]["status"] == "ok"

    def test_metrics_json_to_stdout(self, capsys):
        assert main(["sweep", "--radio", "zigbee", "--distances", "2",
                     "--packets", "1", "--seed", "3",
                     "--metrics-json", "-"]) == 0
        out = capsys.readouterr().out
        assert '"engine.tasks.ok"' in out

    def test_mac_metrics_json(self, tmp_path):
        path = tmp_path / "metrics.json"
        assert main(["mac", "--tags", "4", "--rounds", "10", "--seed", "2",
                     "--metrics-json", str(path)]) == 0
        import json

        record = json.loads(path.read_text())
        assert record["metrics"]["counters"]["engine.tasks.ok"] == 1

    def test_checkpoint_resume_reproduces_table(self, tmp_path, capsys):
        path = tmp_path / "sweep.jsonl"
        argv = ["sweep", "--radio", "zigbee", "--distances", "2,6",
                "--packets", "2", "--seed", "3",
                "--checkpoint", str(path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0  # all points come from the journal
        assert capsys.readouterr().out == cold


class TestTracingOptions:
    def test_trace_flags_parse(self):
        args = build_parser().parse_args(
            ["sweep", "--trace", "t.jsonl", "--trace-every-n", "4",
             "--trace-failures-only", "--metrics-prom", "m.prom"])
        assert args.trace == "t.jsonl"
        assert args.trace_every_n == 4
        assert args.trace_failures_only
        assert args.metrics_prom == "m.prom"

    def test_trace_file_written(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.jsonl"
        assert main(["sweep", "--radio", "zigbee", "--distances", "2",
                     "--packets", "2", "--seed", "3",
                     "--trace", str(path)]) == 0
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        kinds = {r["kind"] for r in records}
        assert {"span", "packet"} <= kinds
        assert all("spec" in r for r in records)

    def test_tracing_does_not_change_table(self, tmp_path, capsys):
        argv = ["sweep", "--radio", "zigbee", "--distances", "2,6",
                "--packets", "2", "--seed", "3"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--trace", str(tmp_path / "t.jsonl")]) == 0
        assert capsys.readouterr().out == plain

    def test_metrics_prom_written(self, tmp_path, capsys):
        path = tmp_path / "metrics.prom"
        assert main(["sweep", "--radio", "zigbee", "--distances", "2",
                     "--packets", "1", "--seed", "3",
                     "--metrics-prom", str(path)]) == 0
        text = path.read_text()
        assert "repro_engine_tasks_ok_total 1" in text
        assert "repro_phy_zigbee_packets_total 1" in text


class TestReportCommand:
    def test_report_without_inputs_exits_2(self, capsys):
        assert main(["report"]) == 2
        assert "at least one" in capsys.readouterr().err

    def _run_sweep(self, tmp_path, capsys, packets=3):
        paths = {name: tmp_path / name
                 for name in ("m.json", "trace.jsonl", "ck.jsonl")}
        assert main(["sweep", "--radio", "zigbee", "--distances", "2,30",
                     "--packets", str(packets), "--seed", "3",
                     "--metrics-json", str(paths["m.json"]),
                     "--trace", str(paths["trace.jsonl"]),
                     "--checkpoint", str(paths["ck.jsonl"])]) == 0
        capsys.readouterr()
        return paths

    def test_report_per_point_stages_sum_to_packet_count(self, tmp_path,
                                                         capsys):
        packets = 3
        paths = self._run_sweep(tmp_path, capsys, packets=packets)
        assert main(["report", "--metrics-json", str(paths["m.json"]),
                     "--trace", str(paths["trace.jsonl"]),
                     "--checkpoint", str(paths["ck.jsonl"])]) == 0
        out = capsys.readouterr().out
        assert "Per-point breakdown (checkpoint journal)" in out
        # Every point row's stage counts sum to packets_per_point,
        # shown in the trailing "total" column.
        section = out.split("Per-point breakdown")[1]
        rows = [line.split() for line in section.splitlines()
                if line and line[0].isdigit()]
        assert len(rows) == 2
        for row in rows:
            assert int(row[-1]) == packets

    def test_report_markdown_to_file(self, tmp_path, capsys):
        paths = self._run_sweep(tmp_path, capsys)
        out_path = tmp_path / "report.md"
        assert main(["report", "--metrics-json", str(paths["m.json"]),
                     "--format", "markdown", "-o", str(out_path)]) == 0
        text = out_path.read_text()
        assert text.startswith("# Run report")
        assert "| radio" in text

    def test_report_from_trace_only(self, tmp_path, capsys):
        paths = self._run_sweep(tmp_path, capsys)
        assert main(["report", "--trace", str(paths["trace.jsonl"]),
                     "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "Slowest spans" in out
        assert "Traced packets" in out

"""Comment directives: suppressions, lock assertions, annotations.

Comments are extracted with :mod:`tokenize`, not a per-line regex, so
directive-shaped text inside string literals (lint tests quoting
``# reprolint: disable=...`` in source snippets, docstrings describing
the syntax) is never mistaken for a live directive.  Three directive
forms live here:

``# reprolint: disable=R003[,R005|all] [— why]``
    Line-scoped suppression.  R012 (suppression-hygiene) audits these:
    a disable that suppresses nothing, or that carries no why-comment
    (same line after the ids, or a comment line directly above), is
    itself a finding.

``# reprolint: holds(<lock>) [— why]``
    On a ``def`` line: asserts the method runs with ``self.<lock>``
    held — or before any concurrency exists (``JobQueue._replay`` runs
    from ``__init__``) — so R010 treats guarded attributes as safely
    reachable inside it.

``# guarded-by: <lock>``
    On an attribute assignment: declares the attribute as protected by
    ``self.<lock>`` (R010 lock-discipline).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Set

from repro.tools.lint.model import Finding

__all__ = ["Suppression", "comments_by_line", "suppressions_by_line",
           "holds_locks_by_line", "guarded_by_line", "mark_suppressed"]

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable="
    r"([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")
_HOLDS_RE = re.compile(r"#\s*reprolint:\s*holds\((\w+)\)")
_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*(\w+)")


@dataclass
class Suppression:
    """One ``# reprolint: disable=`` comment."""

    line: int
    col: int
    rule_ids: Set[str]          # upper-cased; {"ALL"} for disable=all
    has_why: bool               # justification present (see module doc)

    def matches(self, rule_id: str) -> bool:
        return "ALL" in self.rule_ids or rule_id in self.rule_ids


def comments_by_line(source: str) -> Dict[int, str]:
    """``{line: comment text}`` via tokenize; regex fallback for files
    tokenize rejects (the AST parser is slightly more lenient)."""
    table: Dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                table[tok.start[0]] = tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for lineno, line in enumerate(source.splitlines(), start=1):
            pos = line.find("#")
            if pos >= 0:
                table[lineno] = line[pos:]
    return table


def _why_present(comment: str, match: "re.Match[str]",
                 comments: Dict[int, str], line: int) -> bool:
    """A justification is either trailing text after the rule ids or a
    comment on the line directly above the suppression."""
    tail = comment[match.end():]
    if len(re.sub(r"[^A-Za-z]", "", tail)) >= 3:
        return True
    prev = comments.get(line - 1, "")
    return bool(prev) and _SUPPRESS_RE.search(prev) is None


def suppressions_by_line(
        comments: Dict[int, str]) -> Dict[int, Suppression]:
    """Parsed ``disable=`` directives keyed by line number."""
    table: Dict[int, Suppression] = {}
    for line, comment in comments.items():
        match = _SUPPRESS_RE.search(comment)
        if match is None:
            continue
        ids = {part.strip().upper() for part in match.group(1).split(",")
               if part.strip()}
        table[line] = Suppression(
            line=line, col=0, rule_ids=ids,
            has_why=_why_present(comment, match, comments, line))
    return table


def holds_locks_by_line(comments: Dict[int, str]) -> Dict[int, Set[str]]:
    """``{line: {lock names}}`` for ``# reprolint: holds(...)``."""
    table: Dict[int, Set[str]] = {}
    for line, comment in comments.items():
        locks = set(_HOLDS_RE.findall(comment))
        if locks:
            table[line] = locks
    return table


def guarded_by_line(comments: Dict[int, str]) -> Dict[int, str]:
    """``{line: lock name}`` for ``# guarded-by: <lock>`` comments."""
    table: Dict[int, str] = {}
    for line, comment in comments.items():
        match = _GUARDED_RE.search(comment)
        if match is not None:
            table[line] = match.group(1)
    return table


def mark_suppressed(findings: List[Finding],
                    table: Dict[int, Suppression]) -> None:
    """Set ``finding.suppressed`` per the file's disable directives.

    R012 findings are exempt on purpose: a suppression cannot vouch for
    itself, so suppression-hygiene findings always surface.
    """
    for finding in findings:
        if finding.rule_id == "R012":
            continue
        supp = table.get(finding.line)
        finding.suppressed = (supp is not None
                              and supp.matches(finding.rule_id))

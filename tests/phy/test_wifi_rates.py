"""Tests for the 802.11g rate table and airtime arithmetic."""

import pytest

from repro.phy.wifi.rates import (
    SIGNAL_RATE_BITS,
    WIFI_RATES,
    WifiRate,
    rate_by_mbps,
)


class TestRateTable:
    def test_eight_rates(self):
        assert sorted(WIFI_RATES) == [6.0, 9.0, 12.0, 18.0, 24.0, 36.0,
                                      48.0, 54.0]

    def test_signal_field_codes_unique(self):
        assert len(SIGNAL_RATE_BITS) == 8

    @pytest.mark.parametrize("mbps,mod,code", [
        (6.0, "BPSK", (1, 2)), (9.0, "BPSK", (3, 4)),
        (12.0, "QPSK", (1, 2)), (18.0, "QPSK", (3, 4)),
        (24.0, "16-QAM", (1, 2)), (36.0, "16-QAM", (3, 4)),
        (48.0, "64-QAM", (2, 3)), (54.0, "64-QAM", (3, 4))])
    def test_modulation_and_coding(self, mbps, mod, code):
        r = rate_by_mbps(mbps)
        assert r.modulation == mod
        assert r.coding_rate == code

    @pytest.mark.parametrize("mbps,n_dbps", [
        (6.0, 24), (9.0, 36), (12.0, 48), (18.0, 72),
        (24.0, 96), (36.0, 144), (48.0, 192), (54.0, 216)])
    def test_data_bits_per_symbol(self, mbps, n_dbps):
        """Table 18-4: N_DBPS values; the Mb/s figure is exactly
        N_DBPS / 4 us."""
        r = rate_by_mbps(mbps)
        assert r.n_dbps == n_dbps
        assert r.n_dbps / 4.0 == pytest.approx(mbps)

    def test_n_cbps_is_48_times_bpsc(self):
        for r in WIFI_RATES.values():
            assert r.n_cbps == 48 * r.n_bpsc

    def test_unknown_rate_raises(self):
        with pytest.raises(ValueError):
            rate_by_mbps(11.0)


class TestAirtime:
    def test_symbols_for_bits_ceiling(self):
        r = rate_by_mbps(6.0)
        assert r.symbols_for_bits(24) == 1
        assert r.symbols_for_bits(25) == 2

    def test_duration_scales_inverse_with_rate(self):
        slow = rate_by_mbps(6.0).duration_us(9600)
        fast = rate_by_mbps(54.0).duration_us(9600)
        assert slow == pytest.approx(9 * fast, rel=0.05)

    def test_1500_byte_frame_at_6mbps(self):
        # (16 + 12000 + 6) / 24 = 500.9 -> 501 symbols -> 2004 us DATA.
        r = rate_by_mbps(6.0)
        assert r.symbols_for_bits(16 + 12000 + 6) == 501
        assert r.duration_us(16 + 12000 + 6) == pytest.approx(2004.0)

    def test_constellation_accessor(self):
        assert rate_by_mbps(24.0).constellation.bits_per_symbol == 4

"""The ``repro.iq/1`` on-disk capture format.

One capture is two files sharing a stem:

``<name>.npz``
    ``np.savez_compressed`` archive with a single ``samples`` array —
    the post-channel baseband waveform as 1-D complex64.  complex64
    (not the simulator's native complex128) halves the committed corpus
    size; expectations are always frozen against the *stored* rounded
    waveform, so the rounding is part of the contract, not a hazard.

``<name>.json``
    Metadata sidecar: format tag, radio + session kwargs, excitation
    payload, ground-truth tag bits, channel impairment, and the frozen
    ``expect`` block (stage / delivered / bit errors).  Stamped with a
    ``fingerprint`` binding the sidecar to the waveform — the same
    first-16-hex-of-SHA-256 convention :class:`repro.obs.trace.TraceSink`
    uses to stamp trace lines with their sweep spec, extended to cover
    the raw sample bytes so neither file can drift behind the other.

Every malformed input raises a **typed** error (:class:`IQFormatError`
or its :class:`IQFingerprintMismatch` subclass) — a torn npz, a
truncated sidecar, or a stale fingerprint is a loud failure, never
silently-garbage samples.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Tuple

import numpy as np

__all__ = ["FORMAT_VERSION", "SAMPLES_KEY", "IQFormatError",
           "IQFingerprintMismatch", "IQCapture", "iq_fingerprint",
           "write_capture", "read_capture", "iter_captures",
           "capture_names"]

#: Format tag written into (and required of) every sidecar.
FORMAT_VERSION = "repro.iq/1"

#: The one array key inside the ``.npz``.
SAMPLES_KEY = "samples"


class IQFormatError(Exception):
    """A capture file pair is unreadable, malformed, or inconsistent."""


class IQFingerprintMismatch(IQFormatError):
    """Sidecar fingerprint does not match the metadata + samples.

    Either file was edited (or corrupted) after the pair was written;
    the capture cannot be trusted and must be regenerated.
    """


@dataclass
class IQCapture:
    """One frozen capture: waveform plus its full sidecar metadata."""

    name: str
    samples: np.ndarray        # 1-D complex64
    meta: Dict[str, Any]

    @property
    def radio(self) -> str:
        return str(self.meta["radio"])

    @property
    def expect(self) -> Dict[str, Any]:
        """The frozen decode expectation (stage/delivered/bit errors)."""
        out = self.meta["expect"]
        assert isinstance(out, dict)
        return out


def _canonical_samples(samples: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(np.asarray(samples).ravel(),
                                dtype=np.complex64)


def iq_fingerprint(meta: Dict[str, Any], samples: np.ndarray) -> str:
    """First 16 hex of SHA-256 over the canonical sidecar + raw samples.

    The ``fingerprint`` key itself is excluded, so the stamp can live
    inside the dict it covers (mirroring the TraceSink ``spec`` stamp:
    sort-keyed JSON, first 16 hex digits).
    """
    scrubbed = {k: v for k, v in meta.items() if k != "fingerprint"}
    digest = hashlib.sha256()
    digest.update(json.dumps(scrubbed, sort_keys=True).encode())
    digest.update(_canonical_samples(samples).tobytes())
    return digest.hexdigest()[:16]


def write_capture(directory: Path, capture: IQCapture
                  ) -> Tuple[Path, Path]:
    """Write one capture pair under *directory*; returns (npz, json).

    The sidecar is normalised (format tag, name, sample count) and
    fingerprinted here, so callers only supply the semantic metadata.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    samples = _canonical_samples(capture.samples)
    meta = dict(capture.meta)
    meta["format"] = FORMAT_VERSION
    meta["name"] = capture.name
    meta["n_samples"] = int(samples.size)
    meta["fingerprint"] = iq_fingerprint(meta, samples)
    npz_path = directory / f"{capture.name}.npz"
    json_path = directory / f"{capture.name}.json"
    np.savez_compressed(npz_path, **{SAMPLES_KEY: samples})
    json_path.write_text(json.dumps(meta, sort_keys=True, indent=1) + "\n")
    return npz_path, json_path


def _load_sidecar(json_path: Path) -> Dict[str, Any]:
    try:
        raw = json_path.read_text()
    except OSError as exc:
        raise IQFormatError(f"unreadable sidecar {json_path}: {exc}") from exc
    try:
        meta = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise IQFormatError(
            f"sidecar {json_path.name} is not valid JSON: {exc}") from exc
    if not isinstance(meta, dict):
        raise IQFormatError(f"sidecar {json_path.name} is not an object")
    if meta.get("format") != FORMAT_VERSION:
        raise IQFormatError(
            f"sidecar {json_path.name} declares format "
            f"{meta.get('format')!r}, expected {FORMAT_VERSION!r}")
    return meta


def _load_samples(npz_path: Path) -> np.ndarray:
    try:
        with np.load(npz_path) as archive:
            if SAMPLES_KEY not in archive.files:
                raise IQFormatError(
                    f"{npz_path.name} has no {SAMPLES_KEY!r} array")
            samples = archive[SAMPLES_KEY]
    except IQFormatError:
        raise
    except Exception as exc:
        # np.load raises zipfile/pickle/OS errors of many concrete types
        # for torn or truncated archives; all of them mean the same
        # thing here and are re-raised typed, never swallowed.
        raise IQFormatError(
            f"unreadable npz {npz_path.name}: {exc}") from exc
    if samples.ndim != 1 or samples.dtype != np.complex64:
        raise IQFormatError(
            f"{npz_path.name}: samples must be 1-D complex64, got "
            f"{samples.ndim}-D {samples.dtype}")
    return samples


def read_capture(directory: Path, name: str) -> IQCapture:
    """Load and validate one capture pair; raises typed errors.

    Checks, in order: sidecar readable + right format tag, npz readable
    with a 1-D complex64 ``samples`` array, sample count matching the
    sidecar, and the fingerprint binding both files together.
    """
    directory = Path(directory)
    meta = _load_sidecar(directory / f"{name}.json")
    samples = _load_samples(directory / f"{name}.npz")
    declared = meta.get("n_samples")
    if declared != int(samples.size):
        raise IQFormatError(
            f"{name}: sidecar declares {declared} samples, npz holds "
            f"{samples.size}")
    expected = meta.get("fingerprint")
    actual = iq_fingerprint(meta, samples)
    if expected != actual:
        raise IQFingerprintMismatch(
            f"{name}: fingerprint {actual} != sidecar stamp {expected}; "
            f"the pair was edited after writing — regenerate the corpus")
    return IQCapture(name=name, samples=samples, meta=meta)


def capture_names(directory: Path) -> List[str]:
    """Sorted stems of every capture pair under *directory*.

    The union of ``.npz`` and ``.json`` stems, so a torn pair (either
    half deleted) still surfaces — :func:`read_capture` then raises the
    typed error instead of the orphan being silently skipped.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    stems = {p.stem for p in directory.glob("*.json")}
    stems.update(p.stem for p in directory.glob("*.npz"))
    return sorted(stems)


def iter_captures(directory: Path) -> Iterator[IQCapture]:
    """Yield every capture under *directory* in sorted name order."""
    for name in capture_names(directory):
        yield read_capture(directory, name)

"""Shared helpers for the per-figure benchmark harness.

Every benchmark regenerates one table/figure of the paper: it runs the
experiment once under pytest-benchmark (``rounds=1`` — these are
simulations, not microbenchmarks), prints the same rows/series the
paper plots, and writes them to ``benchmarks/results/<name>.txt`` so the
artifacts survive pytest's output capture.
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_collection_modifyitems(items):
    """Every benchmark here is a full figure/MAC sweep: minutes, not
    milliseconds.  Mark them ``slow`` so the tier-1 run (``pytest`` with
    the default ``-m 'not slow'``) skips them; select them explicitly
    with ``pytest benchmarks -m slow`` (or ``-m ""`` for everything)."""
    this_dir = pathlib.Path(__file__).parent
    for item in items:
        if pathlib.Path(str(item.fspath)).parent == this_dir:
            item.add_marker(pytest.mark.slow)


@pytest.fixture
def engine_jobs():
    """Worker-process count for sweep benchmarks.

    ``None`` (the default) keeps the historical serial path.  Set
    ``REPRO_BENCH_JOBS=4`` to fan the figure sweeps out over the
    experiment engine; results stay deterministic for any value.
    """
    value = os.environ.get("REPRO_BENCH_JOBS")
    return int(value) if value else None


@pytest.fixture
def emit():
    """Print an experiment's table and persist it under results/."""

    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _emit


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def _once(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _once

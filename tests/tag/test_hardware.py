"""Tests for RF switch, ring oscillator and the power model."""

import numpy as np
import pytest

from repro.tag.oscillator import RingOscillator
from repro.tag.power import PowerBreakdown, TagPowerModel
from repro.tag.rf_switch import RfSwitch, reflection_coefficient


class TestReflectionCoefficient:
    def test_matched_load_absorbs(self):
        assert abs(reflection_coefficient(50 + 0j)) == pytest.approx(0.0)

    def test_short_reflects_fully(self):
        assert abs(reflection_coefficient(0 + 0j)) == pytest.approx(1.0)

    def test_open_reflects_fully(self):
        assert abs(reflection_coefficient(1e9 + 0j)) == pytest.approx(1.0,
                                                                      abs=1e-6)

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            reflection_coefficient(-50 + 0j)


class TestRfSwitch:
    def test_classic_two_state_amplitudes(self):
        sw = RfSwitch(insertion_loss_db=0.0)
        amps = sw.amplitude_levels()
        assert amps[0] == pytest.approx(1.0)   # short
        assert amps[1] == pytest.approx(0.0)   # matched

    def test_insertion_loss_scales(self):
        sw = RfSwitch(insertion_loss_db=3.0)
        assert sw.amplitude_levels()[0] == pytest.approx(10 ** (-3 / 20))

    def test_multi_impedance_bank(self):
        sw = RfSwitch(impedances=(0j, 10 + 0j, 25 + 0j, 50 + 0j),
                      insertion_loss_db=0.0)
        amps = sw.amplitude_levels()
        assert len(set(np.round(amps, 3))) == 4  # four distinct levels

    def test_reflect_applies_states(self):
        sw = RfSwitch(insertion_loss_db=0.0)
        x = np.ones(4, dtype=complex)
        out = sw.reflect(x, [0, 1, 0, 1])
        assert abs(out[0]) == pytest.approx(1.0)
        assert abs(out[1]) == pytest.approx(0.0)

    def test_bad_state_raises(self):
        sw = RfSwitch()
        with pytest.raises(ValueError):
            sw.reflect(np.ones(2, complex), [0, 5])
        with pytest.raises(ValueError):
            sw.reflect(np.ones(2, complex), [0])

    def test_needs_two_states(self):
        with pytest.raises(ValueError):
            RfSwitch(impedances=(50 + 0j,))


class TestRingOscillator:
    def test_power_at_20mhz(self):
        osc = RingOscillator()
        assert osc.power_uw == pytest.approx(19.0)

    def test_frequency_inaccuracy_bounded(self, rng):
        osc = RingOscillator(accuracy_ppm=200.0)
        f = osc.actual_hz(rng)
        assert abs(f - 20e6) / 20e6 < 2e-3


class TestPowerModel:
    def test_paper_budget_30uw(self):
        """Section 3.3: ~30 uW total; 19 uW clock, 12 uW switch,
        1-3 uW control."""
        model = TagPowerModel()
        b = model.breakdown("wifi", shift_hz=20e6)
        assert b.clock_uw == pytest.approx(19.0)
        assert b.rf_switch_uw == pytest.approx(12.0)
        assert 1.0 <= b.control_uw <= 3.0
        assert 30.0 <= b.total_uw <= 35.0

    def test_clock_scales_with_shift(self):
        model = TagPowerModel()
        small = model.breakdown("zigbee", shift_hz=5e6)
        large = model.breakdown("zigbee", shift_hz=20e6)
        assert large.clock_uw == pytest.approx(4 * small.clock_uw)

    def test_unknown_radio_raises(self):
        with pytest.raises(ValueError):
            TagPowerModel().breakdown("lora")

    def test_battery_life_years(self):
        model = TagPowerModel()
        years = model.battery_life_years("bluetooth", shift_hz=2e6,
                                         duty_cycle=0.01)
        assert years > 10  # microwatt duty-cycled tag lasts decades

    def test_bad_duty_cycle_raises(self):
        with pytest.raises(ValueError):
            TagPowerModel().battery_life_years("wifi", duty_cycle=0.0)

    def test_breakdown_as_dict(self):
        d = PowerBreakdown(19.0, 12.0, 2.0).as_dict()
        assert d["total_uw"] == pytest.approx(33.0)

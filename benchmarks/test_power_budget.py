"""E13 — section 3.3's power budget: ~30 uW total while backscattering;
19 uW for the 20 MHz shifting clock, 12 uW for the RF switch, 1-3 uW of
control logic, and the scaling with the shift frequency that makes
ZigBee/Bluetooth translation cheaper."""

from repro.sim.config import BLE_CONFIG, WIFI_CONFIG, ZIGBEE_CONFIG
from repro.sim.results import format_table
from repro.tag.power import TagPowerModel


def run_experiment():
    model = TagPowerModel()
    rows = []
    for cfg in (WIFI_CONFIG, ZIGBEE_CONFIG, BLE_CONFIG):
        b = model.breakdown(cfg.name, cfg.backscatter_shift_hz)
        rows.append([cfg.name, cfg.backscatter_shift_hz / 1e6,
                     b.clock_uw, b.rf_switch_uw, b.control_uw, b.total_uw])
    life = model.battery_life_years("wifi", 20e6, duty_cycle=0.05)
    return rows, life


def test_power_budget(once, emit):
    rows, life = once(run_experiment)
    table = format_table(
        ["radio", "shift (MHz)", "clock (uW)", "switch (uW)",
         "control (uW)", "total (uW)"], rows,
        title="Section 3.3: FreeRider tag power budget (TSMC 65 nm model)")
    table += (f"\ncoin-cell life at 5 % backscatter duty cycle "
              f"(WiFi translator): {life:.0f} years")
    emit("power_budget", table)

    by_radio = {r[0]: r for r in rows}
    # Paper: ~30 uW total for the WiFi translator; 19 uW of it is clock.
    assert abs(by_radio["wifi"][5] - 34.0) < 5.0
    assert abs(by_radio["wifi"][2] - 19.0) < 1.0
    # Smaller shifts for ZigBee/Bluetooth cost proportionally less.
    assert by_radio["zigbee"][5] < by_radio["wifi"][5]
    assert by_radio["bluetooth"][5] < by_radio["zigbee"][5]
    assert life > 5.0

"""Flat small-scale fading: Rayleigh (NLOS) and Rician (LOS).

Applied as a single complex gain per packet — appropriate because one
FreeRider packet (hundreds of microseconds) is far shorter than the
coherence time of a static indoor deployment.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.rng import make_rng

__all__ = ["RayleighFading", "RicianFading"]


class RayleighFading:
    """Unit-mean-power Rayleigh block fading."""

    def __init__(self, rng: Optional[np.random.Generator] = None):
        self._rng = make_rng(rng)

    def gain(self) -> complex:
        """Draw one complex channel gain (E[|h|^2] = 1)."""
        return complex(self._rng.normal(0, np.sqrt(0.5))
                       + 1j * self._rng.normal(0, np.sqrt(0.5)))

    def apply(self, signal: np.ndarray) -> np.ndarray:
        """Scale the whole packet by one fading realisation."""
        return signal * self.gain()


class RicianFading:
    """Unit-mean-power Rician block fading with K-factor (dB)."""

    def __init__(self, k_db: float = 6.0,
                 rng: Optional[np.random.Generator] = None):
        self.k = 10 ** (k_db / 10)
        self._rng = make_rng(rng)

    def gain(self) -> complex:
        los = np.sqrt(self.k / (self.k + 1))
        scatter_sigma = np.sqrt(1 / (2 * (self.k + 1)))
        return complex(los
                       + self._rng.normal(0, scatter_sigma)
                       + 1j * self._rng.normal(0, scatter_sigma))

    def apply(self, signal: np.ndarray) -> np.ndarray:
        """Scale the whole packet by one fading realisation."""
        return signal * self.gain()

"""Failure-injection tests: receivers must degrade cleanly, never
crash, on garbage, truncated, silent or saturated inputs."""

import numpy as np
import pytest

from repro.phy.ble import BleReceiver, BleTransmitter
from repro.phy.dsss import DsssReceiver, DsssTransmitter
from repro.phy.wifi import WifiReceiver, WifiTransmitter
from repro.phy.zigbee import ZigbeeReceiver, ZigbeeTransmitter


class TestWifiReceiverRobustness:
    def test_all_zero_input(self):
        res = WifiReceiver().decode(np.zeros(4000, dtype=complex))
        assert not res.ok

    def test_pure_noise(self, rng):
        noise = rng.normal(size=4000) + 1j * rng.normal(size=4000)
        res = WifiReceiver().decode(noise)
        assert not res.ok

    def test_saturated_input(self):
        res = WifiReceiver().decode(1e6 * np.ones(4000, dtype=complex))
        assert res.psdu is None or not res.fcs_ok

    def test_one_sample_offset_degrades_not_crashes(self, rng):
        """A misaligned decode must fail cleanly (real receivers handle
        alignment via detect_start)."""
        tx = WifiTransmitter(6.0, seed=30)
        frame = tx.build(tx.random_psdu(60))
        shifted = np.concatenate([[0j] * 3, frame.samples])[:frame.n_samples]
        WifiReceiver().decode(shifted)  # must not raise

    def test_header_length_beyond_buffer(self):
        tx = WifiTransmitter(6.0, seed=31)
        frame = tx.build(tx.random_psdu(500))
        res = WifiReceiver().decode(frame.samples[:2000])
        assert res.header_ok and res.psdu is None


class TestZigbeeReceiverRobustness:
    def test_pure_noise(self, rng):
        noise = rng.normal(size=5000) + 1j * rng.normal(size=5000)
        res = ZigbeeReceiver().decode(noise, 30)
        assert not res.ok

    def test_short_waveform_padded(self):
        tx = ZigbeeTransmitter(seed=32)
        frame = tx.build(b"abcdef")
        res = ZigbeeReceiver().decode(frame.samples[:200], frame.n_symbols)
        assert not res.ok  # truncation loses the payload

    def test_zero_input(self):
        res = ZigbeeReceiver().decode(np.zeros(5000, dtype=complex), 20)
        assert res.payload is None


class TestBleReceiverRobustness:
    def test_pure_noise(self, rng):
        noise = rng.normal(size=4000) + 1j * rng.normal(size=4000)
        res = BleReceiver().decode(noise, 300)
        assert not res.ok

    def test_truncated_packet(self):
        tx = BleTransmitter(seed=33)
        frame = tx.build(b"0123456789")
        res = BleReceiver().decode(frame.samples[:100], frame.n_bits)
        assert not res.crc_ok

    def test_constant_envelope_dc(self):
        res = BleReceiver().decode(np.ones(4000, dtype=complex), 200)
        assert not res.ok


class TestDsssReceiverRobustness:
    def test_pure_noise(self, rng):
        noise = rng.normal(size=4000) + 1j * rng.normal(size=4000)
        res = DsssReceiver().decode(noise, 300)
        assert not res.ok

    def test_zero_input(self):
        res = DsssReceiver().decode(np.zeros(4000, dtype=complex), 300)
        assert not res.ok

    def test_truncated_input_padded(self):
        tx = DsssTransmitter(seed=34)
        frame = tx.build(tx.random_psdu(40))
        res = DsssReceiver().decode(frame.samples[:500], frame.n_bits)
        assert res.psdu is None or res.psdu != frame.psdu


class TestSessionRobustness:
    def test_extreme_snrs_never_crash(self):
        from repro.core.session import (
            BleBackscatterSession,
            WifiBackscatterSession,
            ZigbeeBackscatterSession,
        )

        for cls in (WifiBackscatterSession, ZigbeeBackscatterSession,
                    BleBackscatterSession):
            session = cls(seed=35)
            for snr in (-40.0, 60.0):
                result = session.run_packet(snr_db=snr)
                assert result.tag_bits_sent >= 0

    def test_single_byte_payloads(self):
        from repro.core.session import WifiBackscatterSession

        session = WifiBackscatterSession(seed=36, payload_bytes=1)
        result = session.run_packet(snr_db=25.0)
        # One-byte PSDU has room for zero tag bits — must not crash.
        assert result.tag_bits_sent == 0

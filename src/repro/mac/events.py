"""A minimal discrete-event scheduler.

Used by the coexistence simulator to interleave excitation packets,
ambient WiFi bursts and backscatter rounds on a common timeline.
Events fire in (time, insertion-order) order; callbacks may schedule
further events.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

__all__ = ["EventScheduler"]


class EventScheduler:
    """Time-ordered callback executor.

    >>> sched = EventScheduler()
    >>> hits = []
    >>> sched.schedule(2.0, lambda: hits.append("b"))
    >>> sched.schedule(1.0, lambda: hits.append("a"))
    >>> sched.run()
    >>> hits
    ['a', 'b']
    """

    def __init__(self):
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def schedule(self, at: float, callback: Callable[[], None]) -> None:
        """Schedule *callback* at absolute time *at* (>= now)."""
        if at < self._now:
            raise ValueError(f"cannot schedule in the past ({at} < {self._now})")
        heapq.heappush(self._heap, (at, next(self._counter), callback))

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule *callback* after *delay* time units."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.schedule(self._now + delay, callback)

    def run(self, until: Optional[float] = None) -> None:
        """Drain the event queue, optionally stopping at time *until*."""
        self._running = True
        while self._heap and self._running:
            at, _, cb = self._heap[0]
            if until is not None and at > until:
                break
            heapq.heappop(self._heap)
            self._now = at
            cb()
        if until is not None and self._now < until:
            self._now = until
        self._running = False

    def stop(self) -> None:
        """Halt a running :meth:`run` after the current event."""
        self._running = False

    def __len__(self) -> int:
        return len(self._heap)

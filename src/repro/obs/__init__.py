"""Observability: metrics, tracing, and decode forensics.

See :mod:`repro.obs.metrics` for the design.  The common entry points
are re-exported here so instrumentation sites can just::

    from repro import obs
    with obs.timed("phy.wifi.decode"): ...
    obs.inc("phy.wifi.packets")
    with obs.span("engine.task", task=3): ...      # traced registries
    obs.packet_event("phy.wifi", forensics.CRC_FAIL, snr_db=4.0)

Submodules: :mod:`~repro.obs.forensics` (decode-stage taxonomy),
:mod:`~repro.obs.trace` (JSONL trace sink), :mod:`~repro.obs.export`
(Prometheus text exposition), :mod:`~repro.obs.report` (run reports).

Registries are process-local and deliberately lock-free; the one
multi-threaded writer in the repo — the sweep service
(:mod:`repro.service`) — serializes its own mutations and renders its
``/metrics`` endpoint through :func:`prometheus_text`.
"""

from repro.obs import forensics
from repro.obs.export import parse_prometheus_text, prometheus_text
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimerStat,
    TraceConfig,
    add_gauge,
    collect,
    collect_into,
    event,
    global_registry,
    inc,
    observe,
    observe_hist,
    packet_event,
    registry,
    set_gauge,
    span,
    timed,
    tracing_active,
)
from repro.obs.progress import ProgressJournal, monotonic_s, read_progress
from repro.obs.report import render_report
from repro.obs.trace import TraceSink, read_trace

__all__ = ["DEFAULT_LATENCY_BUCKETS", "Gauge", "Histogram",
           "MetricsRegistry", "ProgressJournal", "TimerStat",
           "TraceConfig", "TraceSink", "add_gauge", "collect",
           "collect_into", "event", "forensics", "global_registry",
           "inc", "monotonic_s", "observe", "observe_hist",
           "packet_event", "parse_prometheus_text", "prometheus_text",
           "read_progress", "read_trace", "registry", "render_report",
           "set_gauge", "span", "timed", "tracing_active"]

"""CLI surface of the corpus tools: exit-code mapping and artifacts.

Exit codes: 0 clean, 2 corpus format error (typed ``IQFormatError``),
6 decode drift (replay diffs) or fuzz contract violations.
"""

import json

import pytest

from repro.cli import main
from repro.iq.format import iq_fingerprint, read_capture

RADIOS = "bluetooth,dsss"


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli-corpus")
    assert main(["corpus", "generate", "--dir", str(directory),
                 "--radios", RADIOS]) == 0
    return directory


def test_generate_writes_pairs(corpus_dir):
    names = {p.stem for p in corpus_dir.glob("*.json")}
    assert names == {p.stem for p in corpus_dir.glob("*.npz")}
    assert any(n.startswith("bluetooth_") for n in names)
    assert any(n.startswith("dsss_") for n in names)


def test_replay_clean_exit_zero(corpus_dir, tmp_path):
    report_path = tmp_path / "diff.json"
    assert main(["corpus", "replay", "--dir", str(corpus_dir),
                 "--report", str(report_path)]) == 0
    report = json.loads(report_path.read_text())
    assert report["ok"] and report["diffs"] == []
    assert report["entries"] > 0
    assert report["decodes"] == 2 * report["entries"]


@pytest.mark.parametrize("mode", ["scalar", "batched", "both"])
def test_replay_modes(corpus_dir, mode):
    assert main(["corpus", "replay", "--dir", str(corpus_dir),
                 "--mode", mode]) == 0


def test_fuzz_clean_exit_zero(corpus_dir, tmp_path):
    report_path = tmp_path / "fuzz.json"
    assert main(["corpus", "fuzz", "--dir", str(corpus_dir),
                 "--iterations", "5", "--seed", "2",
                 "--report", str(report_path)]) == 0
    report = json.loads(report_path.read_text())
    assert report["ok"] and report["seed"] == 2


def test_format_error_maps_to_exit_2(corpus_dir, tmp_path):
    broken = tmp_path / "broken"
    broken.mkdir()
    name = next(p.stem for p in corpus_dir.glob("*.json"))
    (broken / f"{name}.json").write_text(
        (corpus_dir / f"{name}.json").read_text())
    # npz missing entirely: a torn pair.
    assert main(["corpus", "replay", "--dir", str(broken)]) == 2
    assert main(["corpus", "fuzz", "--dir", str(broken),
                 "--iterations", "1"]) == 2


def test_tampered_expectation_maps_to_exit_6(corpus_dir, tmp_path,
                                             capsys):
    tampered = tmp_path / "tampered"
    tampered.mkdir()
    for src in list(corpus_dir.glob("*.npz")) + list(
            corpus_dir.glob("*.json")):
        (tampered / src.name).write_bytes(src.read_bytes())
    # Flip one frozen expectation and restamp the fingerprint, so the
    # pair is format-valid but the decode must now disagree with it.
    name = "bluetooth_clean"
    capture = read_capture(tampered, name)
    meta = dict(capture.meta)
    meta["expect"] = dict(meta["expect"],
                          bit_errors=meta["expect"]["bit_errors"] + 1)
    meta["fingerprint"] = iq_fingerprint(meta, capture.samples)
    (tampered / f"{name}.json").write_text(json.dumps(meta))
    report_path = tmp_path / "diff.json"
    assert main(["corpus", "replay", "--dir", str(tampered),
                 "--report", str(report_path)]) == 6
    report = json.loads(report_path.read_text())
    assert not report["ok"]
    assert any(d["name"] == name and d["field"] == "bit_errors"
               for d in report["diffs"])

"""Tests for the PLM traffic shaper (section 2.4.2's re-packetisation)."""

import numpy as np
import pytest

from repro.mac.plm import PlmConfig
from repro.mac.shaper import PlmTrafficShaper


class TestByteSizing:
    def test_duration_to_bytes_at_6mbps(self):
        shaper = PlmTrafficShaper(phy_rate_mbps=6.0)
        # 700 us at 6 Mb/s = 525 bytes.
        assert shaper.bytes_for_duration(700.0) == 525

    def test_rate_scales_size(self):
        slow = PlmTrafficShaper(phy_rate_mbps=6.0)
        fast = PlmTrafficShaper(phy_rate_mbps=54.0)
        assert fast.bytes_for_duration(700.0) == 9 * slow.bytes_for_duration(700.0)

    def test_bad_rate_raises(self):
        with pytest.raises(ValueError):
            PlmTrafficShaper(phy_rate_mbps=0.0)


class TestShaping:
    def test_busy_network_zero_overhead(self):
        """The headline claim: with enough backlog, PLM costs nothing."""
        shaper = PlmTrafficShaper()
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        assert shaper.overhead_fraction(bits, backlog_bytes=100_000) == 0.0

    def test_idle_network_pays_padding(self):
        shaper = PlmTrafficShaper()
        frac = shaper.overhead_fraction([1, 0, 1, 1], backlog_bytes=0)
        assert frac == 1.0

    def test_partial_backlog(self):
        shaper = PlmTrafficShaper()
        packets, remaining = shaper.shape([0, 1], backlog_bytes=600)
        assert remaining == 0
        assert packets[0].payload_bytes == 525  # first packet filled
        assert packets[1].padding_bytes > 0     # second partly padded

    def test_durations_encode_bits(self):
        cfg = PlmConfig()
        shaper = PlmTrafficShaper(cfg)
        packets, _ = shaper.shape([1, 0], backlog_bytes=10_000)
        assert packets[0].duration_us == cfg.l1_us
        assert packets[1].duration_us == cfg.l0_us

    def test_backlog_conservation(self):
        shaper = PlmTrafficShaper()
        backlog = 1500
        packets, remaining = shaper.shape([1, 1, 1], backlog)
        consumed = sum(p.payload_bytes for p in packets)
        assert consumed + remaining == backlog

    def test_negative_backlog_raises(self):
        with pytest.raises(ValueError):
            PlmTrafficShaper().shape([1], -1)


class TestAirtime:
    def test_matches_plm_config(self):
        cfg = PlmConfig()
        shaper = PlmTrafficShaper(cfg)
        t = shaper.airtime_us([1, 0])
        assert t == pytest.approx(cfg.l1_us + cfg.l0_us + 2 * cfg.gap_us)

    def test_scales_linearly(self):
        shaper = PlmTrafficShaper()
        assert shaper.airtime_us([1] * 10) == pytest.approx(
            10 * shaper.airtime_us([1]))

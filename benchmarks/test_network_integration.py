"""Extension: whole-system co-simulation (the Figure 1 deployment).

No single paper figure covers the *interaction* of the mechanisms —
PLM reachability, Aloha contention, and per-tag link budgets on one
timeline.  This bench sweeps the receiver's coverage radius and reports
aggregate throughput, coverage and fairness of a 12-tag office floor,
validating that the integrated system behaves like the sum of its
calibrated parts.
"""

import numpy as np

from repro.mac.fairness import jain_index
from repro.sim.config import WIFI_CONFIG
from repro.sim.netsim import NetworkSimulator, TagNode
from repro.sim.results import format_table

RADII = (10.0, 20.0, 30.0, 45.0, 60.0)
N_TAGS = 12


def make_tags(radius_m, seed):
    rng = np.random.default_rng(seed)
    return [TagNode(i, tx_to_tag_m=float(rng.uniform(0.5, 2.5)),
                    tag_to_rx_m=float(rng.uniform(2.0, radius_m)))
            for i in range(N_TAGS)]


def run_experiment():
    rows = []
    for radius in RADII:
        sim = NetworkSimulator(WIFI_CONFIG, make_tags(radius, seed=77),
                               ambient_load=0.25, seed=int(radius))
        res = sim.run(n_rounds=50)
        heard = [b for b in res.per_tag_bits.values() if b > 0]
        fairness = jain_index(heard) if heard else 0.0
        rows.append([radius, res.aggregate_throughput_kbps,
                     res.coverage, fairness,
                     res.collisions / max(res.slots_used, 1)])
    return rows


def test_network_integration(once, emit):
    rows = once(run_experiment)
    table = format_table(
        ["deployment radius (m)", "throughput (kb/s)", "coverage",
         "fairness (heard)", "collision rate"], rows,
        title="Whole-system co-simulation: 12-tag office, saturating "
              "WiFi exciter, 25 % ambient load")
    emit("network_integration", table)

    by_r = {r[0]: r for r in rows}
    # Compact deployments hear everyone.
    assert by_r[10.0][2] == 1.0
    # Coverage falls once tags sit past the ~42 m backscatter range.
    assert by_r[60.0][2] < by_r[10.0][2]
    # Throughput within the deployment stays in the multi-tag band of
    # Figure 17 (scaled by link losses and the ambient stretch).
    assert 2.0 < by_r[10.0][1] < 16.0
    # Among tags that are heard, access stays fair.
    for r in rows:
        if r[2] > 0.5:
            assert r[3] > 0.6

"""Shared fixtures for the FreeRider reproduction test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(0xF4EE)


@pytest.fixture
def rng2():
    """A second, independent generator."""
    return np.random.default_rng(0x51DE)

"""Deployment geometry: where the exciter, tag and receiver sit.

The paper's standard setup (section 4.1) fixes the tag 1 m from the
exciting transmitter and sweeps the receiver away from the tag, in
either the hallway (LOS) or room-to-hallway (NLOS) floor plan of
Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.channel.pathloss import PathLossModel, LOS_HALLWAY, NLOS_OFFICE

__all__ = ["Deployment"]


@dataclass(frozen=True)
class Deployment:
    """One physical arrangement of exciter, tag and backscatter receiver."""

    tx_to_tag_m: float
    tag_to_rx_m: float
    forward_path: PathLossModel = LOS_HALLWAY
    backscatter_path: PathLossModel = LOS_HALLWAY
    name: str = "deployment"

    def __post_init__(self):
        if self.tx_to_tag_m <= 0 or self.tag_to_rx_m <= 0:
            raise ValueError("distances must be positive")

    @classmethod
    def los(cls, tag_to_rx_m: float, tx_to_tag_m: float = 1.0) -> "Deployment":
        """The hallway deployment of Figure 9(a)."""
        return cls(tx_to_tag_m, tag_to_rx_m, LOS_HALLWAY, LOS_HALLWAY,
                   name="los-hallway")

    @classmethod
    def nlos(cls, tag_to_rx_m: float, tx_to_tag_m: float = 1.0) -> "Deployment":
        """The room-to-hallway deployment of Figure 9(b): forward path is
        in-room LOS, the backscatter path crosses walls."""
        return cls(tx_to_tag_m, tag_to_rx_m, LOS_HALLWAY, NLOS_OFFICE,
                   name="nlos-office")

    def with_rx_distance(self, tag_to_rx_m: float) -> "Deployment":
        """Copy with a new receiver distance (for sweep loops)."""
        return replace(self, tag_to_rx_m=tag_to_rx_m)

    def with_tx_distance(self, tx_to_tag_m: float) -> "Deployment":
        """Copy with a new exciter distance (Figure 14 sweeps)."""
        return replace(self, tx_to_tag_m=tx_to_tag_m)

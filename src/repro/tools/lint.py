"""reprolint — project-specific static analysis for the FreeRider repro.

The experiment engine's headline guarantee (worker-count-invariant,
bit-identical resumable sweeps) rests on invariants that generic linters
cannot see: every random draw must flow through spawned seeds or
:mod:`repro.utils.rng`, the NaN no-measurement sentinel must never reach
arithmetic unguarded, and engine specs must stay pickleable.  This pass
walks the AST of every checked file and enforces those contracts as
numbered rules:

=====  ==================================================================
R001   no global RNG (``np.random.*`` module calls, stdlib ``random.*``,
       seedless ``np.random.default_rng()``) outside ``utils/rng.py``
R002   no wall-clock reads (``time.time``, ``datetime.now``, ...) in
       result-affecting code (``repro/obs`` and the engine's timing
       plumbing are allowlisted)
R003   no float ``==``/``!=`` against float literals, NaN, or watched
       measurement fields (``.ber``) — use ``np.isclose``/``math.isnan``
       (``assert`` statements are exempt: a test oracle states an exact
       expected value on purpose; NaN comparisons are flagged even there)
R004   NaN discipline: no direct arithmetic/aggregation on watched
       NaN-sentinel fields (``.ber``, ``Series.y``) — go through the
       NaN-safe helpers (``finite_points``, ``np.nan*``, ``isnan`` guards)
R005   no mutable default arguments
R006   no bare ``except:``; a broad ``except Exception`` must re-raise,
       log, or record the failure (silent swallowing hides broken runs)
R007   engine specs and worker payloads stay pickleable: no lambdas in
       ``ExperimentSpec``/``MacExperimentSpec`` construction, executor
       ``submit(...)`` calls, or ``*Spec`` class field defaults
R008   no direct monotonic-clock reads (``time.perf_counter``, ...) in
       instrumented modules (files under a ``repro/`` tree) — time
       through :mod:`repro.obs` (``obs.timed`` / ``obs.span``) so every
       measurement lands in the registry; ``repro/obs`` itself and the
       engine's pool-timeout plumbing are allowlisted
=====  ==================================================================

Suppression: append ``# reprolint: disable=R00X`` (comma-separate for
several rules, ``disable=all`` for every rule) to the flagged line, with
a comment justifying the exception.  Suppressed findings are counted and
visible via ``--show-suppressed`` but do not fail the gate.

Usage::

    python -m repro.tools.lint src tests benchmarks examples
    python -m repro.tools.lint --format json src
    python -m repro.tools.lint --list-rules
    python -m repro lint                      # CLI subcommand, same flags

Exit codes: 0 clean, 1 unsuppressed findings, 2 parse/usage errors.

Directory walks skip directories named ``fixtures`` (deliberately
violating lint-test corpora) and ``__pycache__``; explicitly named files
are always checked, which is how the fixture tests exercise the rules.

Adding a rule: give it the next ``R`` number in :data:`RULES`, implement
the check in :class:`_Checker`, add one violating and one clean fixture
under ``tests/tools/fixtures/``, and document it in
``docs/static_analysis.md``.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = ["Rule", "RULES", "Finding", "LintReport", "lint_source",
           "lint_paths", "iter_python_files", "main"]


# -- rule catalogue --------------------------------------------------------

@dataclass(frozen=True)
class Rule:
    """One reprolint rule: identifier, name, and why it exists."""

    id: str
    name: str
    summary: str
    rationale: str


RULES: Dict[str, Rule] = {r.id: r for r in (
    Rule("R001", "no-global-rng",
         "randomness must flow through an explicit, seeded Generator",
         "Module-level RNG (np.random.rand, random.random, seedless "
         "default_rng) draws from hidden global state, breaking the "
         "engine's worker-count-invariant determinism contract.  Mint "
         "generators via utils.rng / spawned SeedSequences instead."),
    Rule("R002", "no-wall-clock",
         "no wall-clock reads in result-affecting code",
         "time.time() / datetime.now() make results depend on when the "
         "run happened, so a resumed sweep cannot be bit-identical.  "
         "Monotonic timers (time.perf_counter) for *measuring* are fine; "
         "repro/obs and the engine's timing plumbing are allowlisted."),
    Rule("R003", "no-float-equality",
         "no ==/!= against float literals, NaN, or measurement fields",
         "Exact float comparison is representation-dependent and NaN "
         "never compares equal, silently disabling the branch.  Use "
         "np.isclose / math.isnan.  assert statements are exempt (an "
         "exact test oracle is deliberate), except NaN comparisons."),
    Rule("R004", "nan-discipline",
         "no raw arithmetic/aggregation on NaN-sentinel fields",
         "LinkPoint.ber and Series.y carry NaN as the 'no measurement' "
         "sentinel (zero-delivery points).  Summing or averaging them "
         "directly poisons the aggregate; use Series.finite_points, "
         "np.nan* aggregations, or an explicit isnan guard."),
    Rule("R005", "no-mutable-default",
         "no mutable default arguments",
         "A mutable default is created once and shared by every call, "
         "so state leaks across calls (and across engine tasks)."),
    Rule("R006", "no-silent-except",
         "no bare except; broad excepts must re-raise, log, or record",
         "A silently swallowed exception turns a broken sweep into "
         "plausible-looking numbers.  Catch something narrower, or "
         "record the failure (TaskRecord, metrics, logging) before "
         "continuing."),
    Rule("R007", "picklable-specs",
         "engine specs and worker payloads must stay pickleable",
         "ExperimentSpec fields and executor submissions cross process "
         "boundaries.  Lambdas, closures, and local classes do not "
         "pickle, so they fail only when n_jobs > 1 — long after the "
         "code looked correct inline."),
    Rule("R008", "obs-owns-the-clock",
         "no direct monotonic-clock reads in instrumented modules",
         "Ad-hoc time.perf_counter() timing in repro/ modules bypasses "
         "the metrics registry: the measurement is invisible to "
         "snapshots, traces, and reports, and cannot be merged across "
         "workers.  Time through obs.timed()/obs.span() instead; "
         "repro/obs (the implementation) and the engine's pool-timeout "
         "bookkeeping are allowlisted."),
)}


# -- findings --------------------------------------------------------------

@dataclass
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    suppressed: bool = False

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.rule_id} {self.message}")

    def to_dict(self) -> Dict[str, object]:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule_id, "message": self.message,
                "suppressed": self.suppressed}


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    n_files: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors

    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 0 if not self.findings else 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "files": self.n_files,
            "errors": list(self.errors),
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
        }


# -- suppressions ----------------------------------------------------------

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")


def _suppressions_by_line(source: str) -> Dict[int, Set[str]]:
    """``{line number: {rule ids}}`` from ``# reprolint: disable=...``."""
    table: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        ids = {part.strip().upper() for part in match.group(1).split(",")
               if part.strip()}
        table[lineno] = ids
    return table


# -- per-rule configuration ------------------------------------------------

# Construction helpers of numpy.random that are deterministic plumbing,
# not hidden-global-state draws.
_NUMPY_RNG_ALLOWED = {
    "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
}

# Wall-clock reads (canonical dotted names after import resolution).
_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.ctime", "time.localtime",
    "time.gmtime", "time.strftime", "time.asctime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

# Fields that carry the NaN no-measurement sentinel.
_WATCHED_NAN_FIELDS = {"ber", "y"}

# Aggregations that propagate NaN (builtin and numpy spellings).
_AGGREGATORS = {
    "sum", "mean", "average", "median", "min", "max", "std", "var",
    "ptp", "interp", "sort", "argsort", "cumsum", "cumprod", "prod",
    "trapz", "dot", "percentile", "quantile",
}

# Calls that sanitise NaN, under which a watched field is fine.
_NAN_SAFE_CALLS = {
    "isnan", "isfinite", "isclose", "nan_to_num", "finite_points",
    "allclose", "array_equal",
}

# Substrings that mark an exception handler as recording its failure.
_HANDLED_HINTS = ("log", "warn", "error", "exception", "critical",
                  "print", "inc", "observe", "record", "fail",
                  "debug", "info")

# Monotonic-clock reads that bypass the metrics registry (R008).
_MONOTONIC_CLOCKS = {
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
}

# Per-rule path allowlists.  Entries ending in "/" match directories
# anywhere on the path; other entries match path suffixes.
_PATH_ALLOW: Dict[str, Tuple[str, ...]] = {
    # The one module allowed to mint generators from raw seeds.
    "R001": ("repro/utils/rng.py",),
    # Observability and the engine's timing plumbing measure wall time
    # by design; results never depend on the values.
    "R002": ("repro/obs/", "repro/sim/engine.py"),
    # repro/obs implements the timers; the engine's pool deadlines and
    # retry backoff need raw monotonic arithmetic, not a TimerStat.
    "R008": ("repro/obs/", "repro/sim/engine.py"),
}

# Rules that only apply inside certain trees (opt-in scope).  Entries
# are directory components: "repro/" scopes a rule to project modules,
# leaving scripts, benchmarks, and scratch code alone.
_PATH_ONLY: Dict[str, Tuple[str, ...]] = {
    "R008": ("repro/",),
}


def _path_allowed(path: str, rule_id: str) -> bool:
    patterns = _PATH_ALLOW.get(rule_id, ())
    haystack = "/" + path.replace("\\", "/")
    for pat in patterns:
        if pat.endswith("/"):
            if "/" + pat in haystack + "/":
                return True
        elif haystack.endswith("/" + pat) or haystack.endswith(pat):
            return True
    return False


def _path_in_scope(path: str, rule_id: str) -> bool:
    patterns = _PATH_ONLY.get(rule_id)
    if patterns is None:  # most rules apply everywhere
        return True
    haystack = "/" + path.replace("\\", "/") + "/"
    return any("/" + pat in haystack for pat in patterns)


# -- the AST checker -------------------------------------------------------

def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Checker(ast.NodeVisitor):
    """Single-file rule evaluator."""

    def __init__(self, path: str):
        self.path = path
        self.findings: List[Finding] = []
        # alias -> canonical module ("np" -> "numpy")
        self._modules: Dict[str, str] = {}
        # imported name -> canonical dotted ("default_rng" ->
        # "numpy.random.default_rng")
        self._names: Dict[str, str] = {}
        self._assert_depth = 0

    # -- plumbing ---------------------------------------------------------

    def _flag(self, rule_id: str, node: ast.AST, message: str) -> None:
        if not _path_in_scope(self.path, rule_id):
            return
        if _path_allowed(self.path, rule_id):
            return
        self.findings.append(Finding(
            path=self.path, line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=rule_id, message=message))

    def _canonical(self, dotted: Optional[str]) -> Optional[str]:
        if not dotted:
            return None
        head, _, rest = dotted.partition(".")
        if head in self._names:
            base = self._names[head]
        elif head in self._modules:
            base = self._modules[head]
        else:
            return dotted
        return base + "." + rest if rest else base

    # -- imports ----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self._modules[alias.asname] = alias.name
            else:
                head = alias.name.partition(".")[0]
                self._modules[head] = head
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                self._names[alias.asname or alias.name] = \
                    node.module + "." + alias.name
        self.generic_visit(node)

    # -- R001 / R002 / R004 / R007: calls ---------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        canon = self._canonical(_dotted_name(node.func))
        if canon:
            self._check_rng_call(node, canon)
            if canon in _WALL_CLOCK:
                self._flag("R002", node,
                           f"wall-clock read {canon}() in result-affecting "
                           f"code; use time.perf_counter for measuring, or "
                           f"pass timestamps in explicitly")
            if canon in _MONOTONIC_CLOCKS:
                self._flag("R008", node,
                           f"direct {canon}() in an instrumented module "
                           f"bypasses the metrics registry; time through "
                           f"obs.timed() / obs.span()")
        self._check_nan_aggregation(node)
        self._check_pickle_call(node)
        self.generic_visit(node)

    def _check_rng_call(self, node: ast.Call, canon: str) -> None:
        if canon.startswith("numpy.random."):
            tail = canon[len("numpy.random."):]
            head = tail.partition(".")[0]
            if tail == "default_rng":
                if not node.args and not node.keywords:
                    self._flag("R001", node,
                               "seedless np.random.default_rng() — seed it "
                               "from a spawned SeedSequence or "
                               "utils.rng.derive_seed")
            elif head not in _NUMPY_RNG_ALLOWED:
                self._flag("R001", node,
                           f"module-level numpy RNG call "
                           f"numpy.random.{tail}() draws hidden global "
                           f"state; use an explicit Generator")
        elif canon.startswith("random.") and self._is_stdlib_random(canon):
            self._flag("R001", node,
                       f"stdlib global RNG call {canon}(); use an explicit "
                       f"numpy Generator from utils.rng")

    def _is_stdlib_random(self, canon: str) -> bool:
        # Only flag when the name resolves to the stdlib module: either
        # ``import random`` is in scope, or the call came from
        # ``from random import <fn>`` (already canonicalised).
        head = canon.partition(".")[0]
        return (self._modules.get(head) == "random"
                or canon in self._names.values())

    def _check_nan_aggregation(self, node: ast.Call) -> None:
        func_name = _dotted_name(node.func)
        last = func_name.rpartition(".")[2] if func_name else ""
        if last not in _AGGREGATORS or last.startswith("nan"):
            return
        # Arguments (positional and keyword) ...
        candidates: List[ast.AST] = list(node.args)
        candidates += [kw.value for kw in node.keywords]
        # ... plus the receiver of method-style aggregation (x.y.mean()).
        if isinstance(node.func, ast.Attribute):
            candidates.append(node.func.value)
        for sub in candidates:
            watched = self._find_watched_field(sub)
            if watched is not None:
                self._flag("R004", watched,
                           f"aggregation {last}() over NaN-sentinel field "
                           f".{watched.attr}; use finite_points()/np.nan* "
                           f"or guard with isnan")
                return

    def _find_watched_field(self, root: ast.AST) -> Optional[ast.Attribute]:
        """First watched-field Attribute in *root*, skipping subtrees
        already wrapped in a NaN-sanitising call."""
        if isinstance(root, ast.Call):
            name = _dotted_name(root.func)
            last = name.rpartition(".")[2] if name else ""
            if last in _NAN_SAFE_CALLS or last.startswith("nan"):
                return None
        if isinstance(root, ast.Attribute) and root.attr in _WATCHED_NAN_FIELDS:
            return root
        for child in ast.iter_child_nodes(root):
            found = self._find_watched_field(child)
            if found is not None:
                return found
        return None

    def _check_pickle_call(self, node: ast.Call) -> None:
        func_name = _dotted_name(node.func)
        last = func_name.rpartition(".")[2] if func_name else ""
        if last not in ("ExperimentSpec", "MacExperimentSpec", "submit"):
            return
        what = ("executor submission" if last == "submit"
                else f"{last} construction")
        values: List[ast.AST] = list(node.args)
        values += [kw.value for kw in node.keywords]
        for value in values:
            for sub in ast.walk(value):
                if isinstance(sub, ast.Lambda):
                    self._flag("R007", sub,
                               f"lambda in {what} does not pickle; use a "
                               f"module-level function")
                    break

    # -- R003: float equality ---------------------------------------------

    def visit_Assert(self, node: ast.Assert) -> None:
        self._assert_depth += 1
        try:
            self.generic_visit(node)
        finally:
            self._assert_depth -= 1

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for operand in (operands[i], operands[i + 1]):
                canon = self._canonical(_dotted_name(operand))
                if canon in ("math.nan", "numpy.nan"):
                    self._flag("R003", node,
                               f"comparison with {canon} is always False; "
                               f"use math.isnan/np.isnan")
                    break
                if self._assert_depth:
                    continue  # exact test oracles are deliberate
                if (isinstance(operand, ast.Constant)
                        and isinstance(operand.value, float)):
                    self._flag("R003", node,
                               f"float equality against literal "
                               f"{operand.value!r}; use np.isclose or an "
                               f"explicit tolerance")
                    break
                if (isinstance(operand, ast.Attribute)
                        and operand.attr == "ber"):
                    self._flag("R003", node,
                               "float equality on NaN-sentinel field .ber; "
                               "NaN never compares equal — use np.isclose "
                               "plus an isnan guard")
                    break
        self.generic_visit(node)

    # -- R004: arithmetic on watched fields -------------------------------

    def visit_BinOp(self, node: ast.BinOp) -> None:
        for side in (node.left, node.right):
            if (isinstance(side, ast.Attribute)
                    and side.attr in _WATCHED_NAN_FIELDS):
                self._flag("R004", node,
                           f"arithmetic on NaN-sentinel field .{side.attr} "
                           f"without a guard; check ber_valid/isnan first")
                break
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        for side in (node.target, node.value):
            if (isinstance(side, ast.Attribute)
                    and side.attr in _WATCHED_NAN_FIELDS):
                self._flag("R004", node,
                           f"in-place arithmetic on NaN-sentinel field "
                           f".{side.attr} without a guard")
                break
        self.generic_visit(node)

    # -- R005 / R007: function and class definitions ----------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def _check_defaults(self, node: ast.AST) -> None:
        args = node.args
        defaults = list(args.defaults) + [d for d in args.kw_defaults if d]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if isinstance(default, ast.Call):
                name = _dotted_name(default.func)
                mutable = name in ("list", "dict", "set", "bytearray")
            if mutable:
                self._flag("R005", default,
                           "mutable default argument is shared across "
                           "calls; default to None and create inside")

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if node.name.endswith("Spec"):
            for stmt in node.body:
                value = None
                if isinstance(stmt, ast.AnnAssign):
                    value = stmt.value
                elif isinstance(stmt, ast.Assign):
                    value = stmt.value
                if isinstance(value, ast.Lambda):
                    self._flag("R007", value,
                               f"lambda default on spec class "
                               f"{node.name} does not pickle across "
                               f"worker processes")
        self.generic_visit(node)

    # -- R006: exception handlers -----------------------------------------

    def visit_Try(self, node: ast.Try) -> None:
        for handler in node.handlers:
            self._check_handler(handler)
        self.generic_visit(node)

    def _check_handler(self, handler: ast.ExceptHandler) -> None:
        if handler.type is None:
            self._flag("R006", handler,
                       "bare except: catches SystemExit/KeyboardInterrupt; "
                       "catch Exception (or narrower) and record it")
            return
        if not self._is_broad(handler.type):
            return
        if self._handler_records(handler):
            return
        self._flag("R006", handler,
                   "broad except swallows the error silently; narrow the "
                   "exception type, or re-raise / log / record it")

    def _is_broad(self, type_node: ast.AST) -> bool:
        if isinstance(type_node, ast.Tuple):
            return any(self._is_broad(el) for el in type_node.elts)
        name = self._canonical(_dotted_name(type_node))
        return name in ("Exception", "BaseException",
                        "builtins.Exception", "builtins.BaseException")

    def _handler_records(self, handler: ast.ExceptHandler) -> bool:
        for sub in ast.walk(ast.Module(body=handler.body,
                                       type_ignores=[])):
            if isinstance(sub, ast.Raise):
                return True
            if isinstance(sub, ast.Call):
                name = _dotted_name(sub.func)
                last = (name.rpartition(".")[2] if name else "").lower()
                if any(hint in last for hint in _HANDLED_HINTS):
                    return True
        return False


# -- file-level driver -----------------------------------------------------

def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one source blob; returns every finding with ``suppressed``
    marked per the file's ``# reprolint: disable`` comments."""
    tree = ast.parse(source, filename=path)
    checker = _Checker(path)
    checker.visit(tree)
    table = _suppressions_by_line(source)
    for finding in checker.findings:
        ids = table.get(finding.line, set())
        finding.suppressed = bool(ids) and ("ALL" in ids
                                            or finding.rule_id in ids)
    return sorted(checker.findings,
                  key=lambda f: (f.line, f.col, f.rule_id))


_SKIP_DIRS = {"fixtures", "__pycache__", ".git", "results"}


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Expand *paths* into Python files.

    Directories are walked recursively, skipping fixture corpora and
    caches; explicitly named files are yielded as-is (that is how the
    deliberately violating lint fixtures get checked by their tests).
    """
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                rel_parts = sub.relative_to(path).parts
                if any(part in _SKIP_DIRS or part.startswith(".")
                       for part in rel_parts[:-1]):
                    continue
                yield sub
        else:
            yield path


def lint_paths(paths: Sequence[str]) -> LintReport:
    """Lint every Python file under *paths*."""
    report = LintReport()
    for file_path in iter_python_files(paths):
        rel = file_path.as_posix()
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            report.errors.append(f"{rel}: unreadable: {exc}")
            continue
        report.n_files += 1
        try:
            findings = lint_source(source, rel)
        except SyntaxError as exc:
            report.errors.append(f"{rel}: syntax error: {exc}")
            continue
        for finding in findings:
            (report.suppressed if finding.suppressed
             else report.findings).append(finding)
    return report


# -- CLI -------------------------------------------------------------------

def _format_rules() -> str:
    lines = []
    for rule in RULES.values():
        lines.append(f"{rule.id}  {rule.name}: {rule.summary}")
        lines.append(f"      {rule.rationale}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="project-specific static analysis "
                    "(determinism / NaN / pickling contracts)")
    parser.add_argument("paths", nargs="*",
                        default=["src", "tests", "benchmarks", "examples"],
                        help="files or directories to check (default: the "
                             "standard project trees)")
    parser.add_argument("--format", choices=["text", "json"], default="text",
                        help="output format")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print findings silenced by "
                             "'# reprolint: disable=...' comments")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_format_rules())
        return 0
    paths = [p for p in args.paths if Path(p).exists()]
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing and not paths:
        print(f"error: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2
    report = lint_paths(paths)
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
        return report.exit_code()
    for error in report.errors:
        print(f"error: {error}", file=sys.stderr)
    shown = list(report.findings)
    if args.show_suppressed:
        shown += report.suppressed
    for finding in sorted(shown, key=lambda f: (f.path, f.line, f.col)):
        tag = " (suppressed)" if finding.suppressed else ""
        print(finding.format() + tag)
    print(f"reprolint: {len(report.findings)} finding(s) "
          f"({len(report.suppressed)} suppressed) "
          f"in {report.n_files} file(s)")
    return report.exit_code()


if __name__ == "__main__":
    sys.exit(main())

"""Live progress journals: cursor-addressed JSONL for running sweeps.

The engine emits one row per finished task (plus run start/end
markers); the journal stamps each row with a monotonically increasing
``seq`` so readers can poll incrementally — "give me everything after
cursor N" — without re-reading or re-sending history.  The sweep
service keeps one journal per job and serves it over
``GET /jobs/<id>/events?cursor=N``.

Design rules, inherited from the checkpoint journal and trace sink:

* **Append-only, flushed per line.**  A killed process leaves at most
  one torn tail line, which :func:`read_progress` skips.
* **Restart-safe cursors.**  Opening an existing journal scans it for
  the highest ``seq`` and continues from there, so a job that resumes
  from a checkpoint keeps a single monotone cursor space.
* **Telemetry, not results.**  Rows carry an ``elapsed_s`` stamped from
  a monotonic clock — which is why this module lives under
  ``repro.obs`` (reprolint R008 confines wall clocks here).  Progress
  files are never part of a result payload or a spec fingerprint, so
  the cache-hit path still serves bit-identical bytes.
"""

from __future__ import annotations

import json
import os
import time
from types import TracebackType
from typing import Any, Dict, List, Optional, Type

__all__ = ["ProgressJournal", "read_progress", "last_seq", "monotonic_s"]


def monotonic_s() -> float:
    """A monotonic timestamp in seconds, for *ages and rates only*.

    This is the one sanctioned clock for code outside ``repro.obs``
    (R008): callers difference two readings to get a duration or an
    age; the absolute value is meaningless and must never be persisted
    into results, fingerprints, or checkpoints.
    """
    return time.monotonic()


class ProgressJournal:
    """Append-only JSONL writer assigning each row a monotone ``seq``."""

    def __init__(self, path: str) -> None:
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._seq = last_seq(path)
        self._t0 = time.monotonic()
        self._fh = open(path, "a")

    @property
    def seq(self) -> int:
        """The last sequence number written (0 when empty)."""
        return self._seq

    def append(self, row: Dict[str, Any]) -> int:
        """Write one row, stamped with the next ``seq`` and the seconds
        elapsed since this journal was opened; returns the ``seq``."""
        self._seq += 1
        stamped: Dict[str, Any] = {
            "seq": self._seq,
            "elapsed_s": time.monotonic() - self._t0,
        }
        stamped.update(row)
        self._fh.write(json.dumps(stamped, sort_keys=True) + "\n")
        self._fh.flush()
        return self._seq

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "ProgressJournal":
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        self.close()


def _iter_rows(path: str) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    if not os.path.exists(path):
        return rows
    with open(path) as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except json.JSONDecodeError:
                continue  # torn tail line from a killed writer
            if not isinstance(record, dict) or "seq" not in record:
                continue
            rows.append(record)
    return rows


def read_progress(path: str, after: int = 0) -> List[Dict[str, Any]]:
    """Rows with ``seq > after``, in seq order; tolerates torn lines.

    A stale cursor (past the end of the journal) simply yields an empty
    list — polling readers treat that as "no news yet".
    """
    rows = [r for r in _iter_rows(path) if int(r.get("seq", 0)) > after]
    rows.sort(key=lambda r: int(r["seq"]))
    return rows


def last_seq(path: str) -> int:
    """The highest ``seq`` present in the journal (0 when absent)."""
    rows = _iter_rows(path)
    return max((int(r.get("seq", 0)) for r in rows), default=0)

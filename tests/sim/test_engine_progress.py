"""Engine progress events and task-latency histograms.

The progress stream is telemetry riding alongside the run: rows must
narrate every task (including resumed ones), a raising callback must
never kill the run, and nothing on the stream may leak back into
results or fingerprints.  The ``engine.task.seconds`` histogram must be
worker-count invariant in shape (same buckets, same count) even though
the observed durations themselves are wall-clock.
"""

import pytest

from repro.channel.geometry import Deployment
from repro.obs import DEFAULT_LATENCY_BUCKETS, ProgressJournal, read_progress
from repro.sim.config import ZIGBEE_CONFIG
from repro.sim.engine import (
    ExperimentEngine,
    ExperimentSpec,
    FailurePolicy,
    FaultInjector,
    RunOptions,
    TaskFailure,
    execute_run,
    spec_fingerprint,
)


def _spec(distances=(2.0, 30.0), packets=2, seed=7):
    return ExperimentSpec(config=ZIGBEE_CONFIG.replace(payload_bytes=24),
                          deployment=Deployment.los(1.0),
                          distances_m=distances,
                          packets_per_point=packets, seed=seed)


class TestProgressStream:
    def test_rows_narrate_the_run(self):
        rows = []
        spec = _spec(distances=(2.0, 10.0, 30.0))
        result = ExperimentEngine(n_jobs=1).run(spec, progress=rows.append)
        assert result.ok
        kinds = [r["kind"] for r in rows]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        assert kinds.count("task") == 3
        start = rows[0]
        assert start["spec"] == spec_fingerprint(spec)
        assert start["n_tasks"] == 3 and start["n_resumed"] == 0
        tasks = [r for r in rows if r["kind"] == "task"]
        assert [r["tasks_done"] for r in tasks] == [1, 2, 3]
        assert all(r["n_tasks"] == 3 for r in tasks)
        assert all(r["status"] == "ok" for r in tasks)
        assert all("stage_counts" in r for r in tasks)
        end = rows[-1]
        assert end["tasks_done"] == 3 and end["ok"] is True

    def test_rows_cover_resumed_tasks(self, tmp_path):
        spec = _spec(distances=(2.0, 10.0, 30.0))
        path = tmp_path / "sweep.jsonl"
        ExperimentEngine(
            n_jobs=1,
            failure_policy=FailurePolicy.degrade_policy(max_attempts=1),
            fault_injector=FaultInjector(fail={2: 99})).run(
                spec, checkpoint=path)
        rows = []
        ExperimentEngine(n_jobs=1).run(spec, checkpoint=path,
                                       progress=rows.append)
        assert rows[0]["n_resumed"] == 2
        tasks = [r for r in rows if r["kind"] == "task"]
        assert [r["resumed"] for r in tasks] == [True, True, False]
        assert [r["tasks_done"] for r in tasks] == [1, 2, 3]

    def test_failing_run_still_closes_the_stream(self):
        rows = []
        with pytest.raises(TaskFailure):
            ExperimentEngine(
                n_jobs=1,
                fault_injector=FaultInjector(fail={0: 99})).run(
                    _spec(), progress=rows.append)
        kinds = [r["kind"] for r in rows]
        assert kinds[-1] == "run_end"
        assert rows[-1]["ok"] is False
        # The failing task's own row made it out before the raise.
        failed = [r for r in rows if r["kind"] == "task"]
        assert failed and failed[-1]["status"] == "failed"

    def test_raising_callback_is_counted_not_fatal(self):
        calls = []

        def bad(row):
            calls.append(row)
            raise ValueError("journal went away")

        result = ExperimentEngine(n_jobs=1).run(_spec(), progress=bad)
        assert result.ok
        assert result.metrics["counters"]["engine.progress.errors"] == \
            len(calls)

    def test_progress_never_reaches_results_or_fingerprint(self):
        rows = []
        spec = _spec()
        with_progress = ExperimentEngine(n_jobs=1).run(spec,
                                                       progress=rows.append)
        without = ExperimentEngine(n_jobs=1).run(spec)
        assert with_progress.points == without.points
        assert spec_fingerprint(with_progress.spec) == spec_fingerprint(spec)


class TestProgressJournalOption:
    def test_execute_run_writes_the_journal(self, tmp_path):
        path = str(tmp_path / "progress.jsonl")
        result = execute_run(_spec(), RunOptions(n_jobs=1,
                                                 progress_path=path))
        assert result.ok
        rows = read_progress(path)
        assert [r["kind"] for r in rows][0] == "run_start"
        assert rows[-1]["kind"] == "run_end"
        # Cursor-addressed: seq strictly increasing from 1.
        assert [r["seq"] for r in rows] == list(range(1, len(rows) + 1))

    def test_journal_rows_carry_no_wall_clock(self, tmp_path):
        path = str(tmp_path / "progress.jsonl")
        execute_run(_spec(), RunOptions(n_jobs=1, progress_path=path))
        for row in read_progress(path):
            # elapsed_s / duration_s are durations; absolute stamps
            # (epoch seconds would be ~1.7e9) must never appear.
            for value in row.values():
                if isinstance(value, (int, float)):
                    assert value < 1e6

    def test_resumed_run_continues_the_cursor_space(self, tmp_path):
        spec = _spec(distances=(2.0, 10.0, 30.0))
        checkpoint = str(tmp_path / "sweep.jsonl")
        progress = str(tmp_path / "progress.jsonl")
        options = RunOptions(n_jobs=1, checkpoint=checkpoint,
                             progress_path=progress,
                             failure_policy=FailurePolicy.degrade_policy(
                                 max_attempts=1))
        execute_run(spec, options, FaultInjector(fail={2: 99}))
        first_last = read_progress(progress)[-1]["seq"]
        execute_run(spec, options)
        rows = read_progress(progress, after=first_last)
        assert rows and rows[0]["seq"] == first_last + 1


class TestTaskLatencyHistogram:
    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_histogram_count_matches_tasks(self, n_jobs):
        spec = _spec(distances=(2.0, 10.0, 20.0, 30.0))
        result = ExperimentEngine(n_jobs=n_jobs).run(spec)
        hist = result.metrics["histograms"]["engine.task.seconds"]
        assert hist["count"] == 4
        assert hist["buckets"] == list(DEFAULT_LATENCY_BUCKETS)
        assert sum(hist["counts"]) == hist["count"]

    def test_phy_stage_histograms_mirror_timers(self):
        # Every observed stage timer gains a twin histogram fed by the
        # same clock pair, so their counts agree exactly.  (Which
        # stages fire depends on session caching — encode may be
        # skipped on a warm cache — so assert the pairing, not a
        # fixed stage list.)
        result = ExperimentEngine(n_jobs=1).run(_spec())
        timers = result.metrics["timers"]
        histograms = result.metrics["histograms"]
        stages = [n for n in timers
                  if n.startswith("phy.zigbee.")]
        assert "phy.zigbee.decode" in stages  # decode always runs
        for name in stages:
            assert histograms[f"{name}.seconds"]["count"] == \
                timers[name]["count"]


class TestJournalAppendReturnsSeq:
    def test_progress_journal_is_the_engine_callback(self, tmp_path):
        # The wiring execute_run uses: ProgressJournal.append as the
        # progress callback (via a closure, since append returns seq).
        path = str(tmp_path / "progress.jsonl")
        with ProgressJournal(path) as journal:
            ExperimentEngine(n_jobs=1).run(
                _spec(), progress=lambda row: journal.append(row))
        assert read_progress(path)[0]["kind"] == "run_start"

"""Content-addressed result store: ``spec_fingerprint -> RunResult``.

One JSON file per fingerprint.  The fingerprint *is* the cache key —
two submitters with byte-identical specs share one entry, which is what
lets the sweep service answer duplicate submissions without touching
the engine.  Invariants:

* **Atomic publication.**  Entries are written to a temp file and
  ``os.replace``-d into place, so a reader never sees a torn record and
  a crashed writer leaves no partial entry behind (at worst a stale
  ``*.tmp`` that the next ``put`` overwrites).
* **Bit-identical reads.**  :meth:`ResultStore.raw` returns the stored
  bytes untouched; :meth:`ResultStore.get` decodes them through
  :meth:`RunResult.from_dict`, which round-trips floats exactly (JSON
  ``repr`` floats, NaN BER sentinel included).  A cache hit therefore
  equals the original run point-for-point.
* **Self-verifying.**  Every record embeds its own fingerprint and the
  enveloped spec; loading a record whose embedded fingerprint disagrees
  with the requested key raises
  :class:`~repro.sim.engine.FingerprintMismatch` rather than serving a
  mislabeled result.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.sim.engine import FingerprintMismatch, RunResult, spec_fingerprint

__all__ = ["STORE_VERSION", "ResultStore", "StoreError"]

#: Schema version of stored records (bumped on incompatible changes).
STORE_VERSION = 1


class StoreError(RuntimeError):
    """A stored record that exists but cannot be decoded."""


class ResultStore:
    """On-disk map from spec fingerprint to completed :class:`RunResult`."""

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.json"

    def has(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).exists()

    def fingerprints(self) -> List[str]:
        """Every stored fingerprint, sorted."""
        return sorted(p.stem for p in self.root.glob("*.json"))

    def put(self, result: RunResult) -> str:
        """Store *result* under its spec's fingerprint; returns the key.

        The write is atomic (temp file + ``os.replace``), and re-putting
        an existing fingerprint is a harmless overwrite with equal
        content — per-task seeding makes any two complete runs of one
        spec bit-identical.
        """
        from repro.sim.spec import dump_spec

        fingerprint = spec_fingerprint(result.spec)
        record: Dict[str, Any] = {
            "version": STORE_VERSION,
            "fingerprint": fingerprint,
            "envelope": dump_spec(result.spec),
            "result": result.to_dict(),
        }
        final = self.path_for(fingerprint)
        tmp = final.with_suffix(".tmp")
        with open(tmp, "w") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
        return fingerprint

    def raw(self, fingerprint: str) -> Optional[bytes]:
        """The stored record's exact bytes (what HTTP fetch serves), or
        ``None`` when the fingerprint is absent."""
        path = self.path_for(fingerprint)
        if not path.exists():
            return None
        return path.read_bytes()

    def load_record(self, fingerprint: str) -> Dict[str, Any]:
        """The decoded full record (version/fingerprint/envelope/result)."""
        raw = self.raw(fingerprint)
        if raw is None:
            raise KeyError(fingerprint)
        try:
            record = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise StoreError(
                f"stored record for {fingerprint} is not valid JSON "
                f"({exc}); remove {self.path_for(fingerprint)} to recompute"
            ) from exc
        if not isinstance(record, dict) or "result" not in record:
            raise StoreError(
                f"stored record for {fingerprint} has no 'result' field")
        stored = record.get("fingerprint")
        if stored != fingerprint:
            raise FingerprintMismatch(fingerprint, str(stored),
                                      context="result store")
        return record

    def get(self, fingerprint: str) -> Optional[RunResult]:
        """The stored :class:`RunResult`, or ``None`` when absent."""
        if not self.has(fingerprint):
            return None
        return RunResult.from_dict(self.load_record(fingerprint)["result"])

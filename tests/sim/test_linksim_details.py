"""Detail-level tests for the link simulator's accounting."""

import numpy as np
import pytest

from repro.channel.geometry import Deployment
from repro.core.registry import session_from_config
from repro.sim.config import BLE_CONFIG, WIFI_CONFIG, ZIGBEE_CONFIG
from repro.sim.linksim import LinkPoint, LinkSimulator


class TestLinkPoint:
    def test_row_formatting(self):
        p = LinkPoint(distance_m=18.0, throughput_kbps=59.8, ber=1e-3,
                      rssi_dbm=-86.1, delivery_ratio=1.0, snr_db=9.7)
        row = p.row()
        assert "18.0" in row and "59.8" in row and "1.0e-03" in row

    def test_row_zero_ber_marker(self):
        p = LinkPoint(1.0, 60.0, 0.0, -70.0, 1.0, 25.0)
        assert "<1e-4" in p.row()


class TestSessionFactory:
    def test_each_radio_maps_to_its_session(self):
        from repro.core.session import (
            BleBackscatterSession,
            WifiBackscatterSession,
            ZigbeeBackscatterSession,
        )

        assert isinstance(session_from_config(WIFI_CONFIG, 1),
                          WifiBackscatterSession)
        assert isinstance(session_from_config(ZIGBEE_CONFIG, 1),
                          ZigbeeBackscatterSession)
        assert isinstance(session_from_config(BLE_CONFIG, 1),
                          BleBackscatterSession)

    def test_unknown_radio_raises(self):
        from dataclasses import replace

        bad = replace(WIFI_CONFIG, name="lora")
        with pytest.raises(ValueError):
            session_from_config(bad, 1)


class TestSnrAccounting:
    def test_penalty_includes_oversampling_and_impl_loss(self):
        sim = LinkSimulator(ZIGBEE_CONFIG, Deployment.los(1.0),
                            packets_per_point=1, seed=1)
        expected = (10 * np.log10(sim.session.oversample_factor)
                    + ZIGBEE_CONFIG.implementation_loss_db)
        # ZigBee: 6 dB oversampling + 14 dB implementation loss.
        assert expected == pytest.approx(20.0, abs=0.1)

    def test_wifi_penalty_is_zero(self):
        sim = LinkSimulator(WIFI_CONFIG, Deployment.los(1.0),
                            packets_per_point=1, seed=1)
        assert sim.session.oversample_factor == 1
        assert WIFI_CONFIG.implementation_loss_db == 0.0

    def test_snr_db_reports_mean_not_faded(self):
        sim = LinkSimulator(WIFI_CONFIG, Deployment.los(1.0),
                            packets_per_point=2, seed=2)
        p = sim.simulate_point(10.0)
        budget = WIFI_CONFIG.budget()
        expected = (budget.rssi_dbm(Deployment.los(10.0))
                    - budget.noise_dbm)
        assert p.snr_db == pytest.approx(expected)


class TestThroughputAccounting:
    def test_airtime_includes_gap(self):
        sim = LinkSimulator(BLE_CONFIG, Deployment.los(1.0),
                            packets_per_point=4, seed=3)
        p = sim.simulate_point(2.0)
        # 255 B packet = 2112 us + 150 us gap; 115 bits per packet.
        expected = 115 / (2112 + 150) * 1e3
        assert p.throughput_kbps == pytest.approx(expected, rel=0.02)

    def test_zero_delivery_ber_is_nan_and_flagged(self):
        sim = LinkSimulator(BLE_CONFIG, Deployment.los(1.0),
                            packets_per_point=2, seed=4)
        p = sim.simulate_point(200.0)
        assert p.delivery_ratio == 0.0
        assert p.throughput_kbps == 0.0
        # No tag bits were delivered, so BER is undefined — not 1.0.
        assert np.isnan(p.ber)
        assert not p.ber_valid
        assert "n/a" in p.row()

"""Tests for the 802.15.4 ZigBee PHY."""

import numpy as np
import pytest

from repro.channel.awgn import awgn_at_snr
from repro.phy.zigbee import (
    CHIP_SEQUENCES,
    ZigbeeReceiver,
    ZigbeeTransmitter,
    nearest_symbol,
    symbols_to_chips,
)
from repro.phy.zigbee.chips import (
    chips_to_symbols,
    correlation_table,
    nearest_symbol_soft,
)
from repro.phy.zigbee.frame import (
    HEADER_SYMBOLS,
    MAX_PSDU_BYTES,
    ZigbeeFrameBuilder,
    bytes_to_symbols,
    symbols_to_bytes,
)
from repro.phy.zigbee.oqpsk import OqpskModem


class TestChipTable:
    def test_shape_and_alphabet(self):
        assert CHIP_SEQUENCES.shape == (16, 32)
        assert set(np.unique(CHIP_SEQUENCES)) == {0, 1}

    def test_standard_symbol_zero(self):
        expect = "11011001110000110101001000101110"
        assert "".join(map(str, CHIP_SEQUENCES[0])) == expect

    def test_symbol_five_is_rotation(self):
        assert np.array_equal(CHIP_SEQUENCES[5], np.roll(CHIP_SEQUENCES[0], 20))

    def test_symbol_eight_is_conjugate(self):
        diff = CHIP_SEQUENCES[0] ^ CHIP_SEQUENCES[8]
        assert np.array_equal(diff[0::2], np.zeros(16, dtype=np.uint8))
        assert np.array_equal(diff[1::2], np.ones(16, dtype=np.uint8))

    def test_quasi_orthogonal(self):
        c = correlation_table()
        off_diag = c[~np.eye(16, dtype=bool)]
        assert np.all(np.abs(off_diag) < 0.5)
        assert np.allclose(np.diag(c), 1.0)


class TestSpreading:
    def test_round_trip(self, rng):
        symbols = rng.integers(0, 16, 40)
        assert np.array_equal(chips_to_symbols(symbols_to_chips(symbols)),
                              symbols)

    def test_nearest_symbol_corrects_chip_errors(self, rng):
        chips = CHIP_SEQUENCES[11].copy()
        err = rng.choice(32, size=6, replace=False)
        chips[err] ^= 1
        assert nearest_symbol(chips) == 11

    def test_soft_despread(self):
        metrics = 2.0 * CHIP_SEQUENCES[3].astype(float) - 1.0
        assert nearest_symbol_soft(metrics) == 3

    def test_invalid_symbol_raises(self):
        with pytest.raises(ValueError):
            symbols_to_chips([16])

    def test_wrong_chip_count_raises(self):
        with pytest.raises(ValueError):
            nearest_symbol(np.zeros(31, dtype=np.uint8))


class TestOqpsk:
    def test_chip_round_trip(self, rng):
        modem = OqpskModem(sps=4)
        chips = rng.integers(0, 2, 256).astype(np.uint8)
        wave = modem.modulate(chips)
        assert np.array_equal(modem.demodulate(wave, 256), chips)

    def test_output_length(self):
        modem = OqpskModem(sps=4)
        assert modem.modulate(np.zeros(64, dtype=np.uint8)).size == 65 * 4

    def test_low_papr(self):
        """The half-sine offset structure keeps the envelope near
        constant (the reason for OQPSK; section 3.2.2)."""
        modem = OqpskModem(sps=8)
        chips = symbols_to_chips(np.arange(16))
        wave = modem.modulate(chips)
        mid = np.abs(wave[16:-16])
        assert mid.max() / mid.mean() < 1.6

    def test_odd_chip_count_raises(self):
        with pytest.raises(ValueError):
            OqpskModem().modulate(np.zeros(33, dtype=np.uint8))


class TestFraming:
    def test_nibble_order(self):
        assert list(bytes_to_symbols(b"\xa7")) == [7, 10]

    def test_bytes_round_trip(self):
        data = bytes(range(48))
        assert symbols_to_bytes(bytes_to_symbols(data)) == data

    def test_build_parse_round_trip(self):
        builder = ZigbeeFrameBuilder()
        payload = b"freerider-zigbee"
        syms = builder.build_symbols(payload)
        out, fcs_ok = builder.parse_symbols(syms)
        assert fcs_ok and out == payload

    def test_symbol_count(self):
        builder = ZigbeeFrameBuilder()
        syms = builder.build_symbols(b"ab")
        assert syms.size == builder.n_symbols(2) == HEADER_SYMBOLS + 8

    def test_oversize_psdu_raises(self):
        with pytest.raises(ValueError):
            ZigbeeFrameBuilder().build_symbols(bytes(MAX_PSDU_BYTES))

    def test_corrupt_preamble_rejected(self):
        builder = ZigbeeFrameBuilder()
        syms = builder.build_symbols(b"hello").copy()
        syms[0:3] = 9  # break the preamble correlation
        payload, ok = builder.parse_symbols(syms)
        assert payload is None and not ok

    def test_corrupt_payload_flagged_by_fcs(self):
        builder = ZigbeeFrameBuilder()
        syms = builder.build_symbols(b"hello").copy()
        syms[HEADER_SYMBOLS + 1] = (syms[HEADER_SYMBOLS + 1] + 3) % 16
        payload, ok = builder.parse_symbols(syms)
        assert payload is not None and not ok


class TestChain:
    def test_clean_round_trip(self):
        tx = ZigbeeTransmitter(seed=4)
        payload = tx.random_payload(50)
        frame = tx.build(payload)
        res = ZigbeeReceiver().decode(frame.samples, frame.n_symbols)
        assert res.ok and res.payload == payload

    def test_noisy_round_trip(self, rng):
        tx = ZigbeeTransmitter(seed=4)
        payload = tx.random_payload(50)
        frame = tx.build(payload)
        noisy = awgn_at_snr(frame.samples, 0.0, rng)  # DSSS gain saves it
        res = ZigbeeReceiver().decode(noisy, frame.n_symbols)
        assert res.ok and res.payload == payload

    def test_data_rate(self):
        tx = ZigbeeTransmitter(seed=1)
        frame = tx.build(bytes(100))
        # 250 kb/s: (6 header + 102 PSDU) bytes = 108 * 32 us = 3456 us.
        assert frame.duration_us == pytest.approx(3456, rel=0.01)

    def test_empty_payload_raises(self):
        with pytest.raises(ValueError):
            ZigbeeTransmitter().build(b"")


class TestCfoCorrection:
    def test_estimator_accuracy(self, rng):
        from repro.channel.impairments import apply_cfo
        from repro.channel.awgn import awgn_at_snr

        tx = ZigbeeTransmitter(seed=9)
        frame = tx.build(tx.random_payload(30))
        rx = ZigbeeReceiver(cfo_correction=True)
        shifted = apply_cfo(frame.samples, 12e3, frame.sample_rate_hz)
        noisy = awgn_at_snr(shifted, 15.0, rng)
        est = rx.estimate_cfo_hz(noisy)
        assert est == pytest.approx(12e3, abs=500)

    def test_corrected_decode_under_cfo(self, rng):
        from repro.channel.impairments import apply_cfo

        tx = ZigbeeTransmitter(seed=10)
        payload = tx.random_payload(40)
        frame = tx.build(payload)
        shifted = apply_cfo(frame.samples, 20e3, frame.sample_rate_hz)
        plain = ZigbeeReceiver(cfo_correction=False).decode(
            shifted, frame.n_symbols)
        corrected = ZigbeeReceiver(cfo_correction=True).decode(
            shifted, frame.n_symbols)
        assert not plain.ok                      # uncorrected collapses
        assert corrected.ok and corrected.payload == payload

    def test_estimator_near_zero_without_cfo(self, rng):
        tx = ZigbeeTransmitter(seed=11)
        frame = tx.build(tx.random_payload(20))
        rx = ZigbeeReceiver(cfo_correction=True)
        from repro.channel.awgn import awgn_at_snr
        noisy = awgn_at_snr(frame.samples, 15.0, rng)
        assert abs(rx.estimate_cfo_hz(noisy)) < 400

"""Codewords and codebooks (paper section 2.2.1).

A *codeword* is a physical-layer symbol; a *codebook* is the set of
valid codewords a radio uses.  Codeword translation maps a codeword to
another codeword **of the same codebook** by shifting amplitude, phase
or frequency.  This module gives those notions a concrete, testable
form and can answer the central validity question: does a given signal
modification keep every codeword inside the codebook?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

__all__ = ["Codeword", "Codebook", "bluetooth_codebook", "zigbee_codebook",
           "psk_codebook"]


@dataclass(frozen=True)
class Codeword:
    """One codeword: a label plus its baseband template."""

    label: str
    template: np.ndarray

    def distance(self, signal: np.ndarray) -> float:
        """Normalised Euclidean distance of *signal* to this codeword."""
        t = self.template
        if signal.size != t.size:
            raise ValueError("length mismatch")
        scale = np.sqrt(np.mean(np.abs(t) ** 2))
        if scale == 0:
            raise ValueError("degenerate codeword")
        return float(np.sqrt(np.mean(np.abs(signal - t) ** 2)) / scale)


class Codebook:
    """A finite set of codewords with nearest-codeword classification."""

    def __init__(self, codewords: Dict[str, Codeword]) -> None:
        if len(codewords) < 2:
            raise ValueError("a codebook needs at least two codewords")
        sizes = {cw.template.size for cw in codewords.values()}
        if len(sizes) != 1:
            raise ValueError("codewords must share one template length")
        self._codewords = dict(codewords)

    def __len__(self) -> int:
        return len(self._codewords)

    def __contains__(self, label: str) -> bool:
        return label in self._codewords

    def labels(self) -> Tuple[str, ...]:
        return tuple(self._codewords)

    def get(self, label: str) -> Codeword:
        return self._codewords[label]

    def classify(self, signal: np.ndarray) -> Tuple[str, float]:
        """Nearest codeword label and its distance."""
        best_label, best_d = "", float("inf")
        for label, cw in self._codewords.items():
            d = cw.distance(signal)
            if d < best_d:
                best_label, best_d = label, d
        return best_label, best_d

    def is_valid(self, signal: np.ndarray, tolerance: float = 0.35) -> bool:
        """Is *signal* within *tolerance* of some codeword?  Figure 2's
        broken-OFDM example fails this check after a naive amplitude
        edit."""
        _, d = self.classify(signal)
        return d <= tolerance

    def translation_map(self, transform: Callable[[np.ndarray], np.ndarray],
                        tolerance: float = 0.35) -> Optional[Dict[str, str]]:
        """Apply *transform* to every codeword and classify the result.

        Returns the label->label map when every transformed codeword
        stays valid, else None.  A non-None, non-identity map is exactly
        a usable codeword translation.
        """
        mapping: Dict[str, str] = {}
        for label, cw in self._codewords.items():
            out = transform(cw.template)
            target, d = self.classify(out)
            if d > tolerance:
                return None
            mapping[label] = target
        return mapping


def bluetooth_codebook(n_samples: int = 64, fs: float = 8e6,
                       deviation_hz: float = 250e3) -> Codebook:
    """The two-tone FSK codebook B = {e^{j2pi f1 t}, e^{j2pi f0 t}}."""
    t = np.arange(n_samples) / fs
    one = Codeword("1", np.exp(1j * 2 * np.pi * deviation_hz * t))
    zero = Codeword("0", np.exp(-1j * 2 * np.pi * deviation_hz * t))
    return Codebook({"1": one, "0": zero})


def zigbee_codebook(sps: int = 4) -> Codebook:
    """The sixteen 32-chip OQPSK codewords of 802.15.4."""
    from repro.phy.zigbee.chips import CHIP_SEQUENCES
    from repro.phy.zigbee.oqpsk import OqpskModem

    modem = OqpskModem(sps=sps)
    words: Dict[str, Codeword] = {}
    for s in range(16):
        wav = modem.modulate(CHIP_SEQUENCES[s])
        words[str(s)] = Codeword(str(s), wav)
    return Codebook(words)


def psk_codebook(n_phases: int, n_samples: int = 64) -> Codebook:
    """An n-PSK single-carrier codebook (used in tests/ablations)."""
    if n_phases < 2:
        raise ValueError("need at least 2 phases")
    base = np.ones(n_samples, dtype=complex)
    words: Dict[str, Codeword] = {}
    for k in range(n_phases):
        words[str(k)] = Codeword(str(k), base * np.exp(2j * np.pi * k / n_phases))
    return Codebook(words)

"""Impairment ablation: how much of the paper's measured tag BER do
commodity-radio front-end imperfections explain?

EXPERIMENTS.md notes our AWGN-only tag BER sits below the paper's
(ZigBee ~5e-2, Bluetooth up to 0.23 at the range edge).  This bench
injects CFO and phase noise between tag and receiver and shows the BER
climbing into the paper's band — supporting the attribution.
"""

import numpy as np

from repro.channel.awgn import awgn_at_snr
from repro.channel.impairments import ImpairmentChain
from repro.core.decoder import SymbolDiffTagDecoder, XorTagDecoder
from repro.core.session import BleBackscatterSession, ZigbeeBackscatterSession
from repro.sim.results import format_table


def zigbee_ber_under(chain, snr_db=10.0, packets=5, seed=200):
    from repro.phy.zigbee import ZigbeeReceiver

    rng = np.random.default_rng(seed)
    session = ZigbeeBackscatterSession(seed=seed, repetition=4)
    # Radios with real frequency offsets run their CFO estimator.
    session.receiver = ZigbeeReceiver(sps=session.sps, cfo_correction=True)
    sent = errors = 0
    for _ in range(packets):
        frame = session.transmitter.build(
            session.transmitter.random_payload(session.payload_bytes))
        info = session._info(frame)
        bits = rng.integers(0, 2, session.tag.capacity_bits(info)) \
            .astype(np.uint8)
        out = session.tag.backscatter(frame.samples, info, bits)
        impaired = chain.apply(out.samples, session.sample_rate_hz, rng)
        noisy = awgn_at_snr(impaired, snr_db, rng)
        result = session.receiver.decode(noisy, frame.n_symbols)
        decoder = SymbolDiffTagDecoder(
            repetition=4, offset_symbols=session._header_symbols)
        decoded = decoder.decode(frame.symbols, result.symbols,
                                 n_tag_bits=out.bits_sent)
        sent += out.bits_sent
        errors += decoded.errors_against(bits[:out.bits_sent])
    return errors / sent if sent else 1.0


def ble_ber_under(chain, snr_db=16.0, packets=4, seed=201):
    rng = np.random.default_rng(seed)
    session = BleBackscatterSession(seed=seed)
    sent = errors = 0
    for _ in range(packets):
        frame = session.transmitter.build(
            session.transmitter.random_payload(session.payload_bytes))
        info = session._info(frame)
        bits = rng.integers(0, 2, session.tag.capacity_bits(info)) \
            .astype(np.uint8)
        out = session.tag.backscatter(frame.samples, info, bits)
        impaired = chain.apply(out.samples, session.sample_rate_hz, rng)
        noisy = awgn_at_snr(impaired, snr_db, rng)
        rx_bits = session.receiver.decode_bits(noisy, frame.n_bits)
        decoder = XorTagDecoder(bits_per_unit=1,
                                repetition=session.repetition,
                                offset_bits=session._header_bits,
                                guard_bits=2)
        decoded = decoder.decode(frame.bits, rx_bits,
                                 n_tag_bits=out.bits_sent)
        sent += out.bits_sent
        errors += decoded.errors_against(bits[:out.bits_sent])
    return errors / sent if sent else 1.0


ZIGBEE_CHAINS = (
    ("clean", ImpairmentChain()),
    ("cfo 10 kHz (corrected)", ImpairmentChain(cfo_hz=10e3)),
    ("cfo 25 kHz (corrected)", ImpairmentChain(cfo_hz=25e3)),
    ("cfo 25 kHz + 50 Hz phase noise",
     ImpairmentChain(cfo_hz=25e3, phase_noise_linewidth_hz=50.0)),
    ("cfo 25 kHz + 150 Hz phase noise",
     ImpairmentChain(cfo_hz=25e3, phase_noise_linewidth_hz=150.0)),
    ("cfo 40 kHz (beyond pull-in)", ImpairmentChain(cfo_hz=40e3)),
)

BLE_CHAINS = (
    ("clean", ImpairmentChain()),
    ("cfo 40 kHz", ImpairmentChain(cfo_hz=40e3)),
    ("cfo 150 kHz", ImpairmentChain(cfo_hz=150e3)),
    ("cfo 250 kHz (= deviation)", ImpairmentChain(cfo_hz=250e3)),
)


def run_experiment():
    rows = []
    for label, chain in ZIGBEE_CHAINS:
        rows.append(["zigbee", label, zigbee_ber_under(chain)])
    for label, chain in BLE_CHAINS:
        rows.append(["bluetooth", label, ble_ber_under(chain)])
    return rows


def test_impairment_ablation(once, emit):
    rows = once(run_experiment)
    table = format_table(["radio", "impairment", "tag BER"], rows,
                         title="Impairment ablation: front-end dirt vs "
                               "tag BER (see EXPERIMENTS.md deviations)")
    emit("impairment_ablation", table)

    zig = {r[1]: r[2] for r in rows if r[0] == "zigbee"}
    ble = {r[1]: r[2] for r in rows if r[0] == "bluetooth"}
    # Clean links are near error-free; CFO inside the estimator's
    # pull-in range is corrected away.
    assert zig["clean"] < 1e-2
    assert zig["cfo 25 kHz (corrected)"] < 1e-2
    # Untracked phase noise accumulates over the frame and pushes the
    # BER into (and past) the paper's ~5e-2 band.
    assert zig["cfo 25 kHz + 50 Hz phase noise"] > zig["clean"]
    assert zig["cfo 25 kHz + 150 Hz phase noise"] \
        >= zig["cfo 25 kHz + 50 Hz phase noise"] - 0.02
    # Beyond pull-in the coherent correlator collapses.
    assert zig["cfo 40 kHz (beyond pull-in)"] > 0.3
    # Bluetooth's differential discriminator shrugs off CFO until the
    # offset reaches the FSK deviation itself.
    assert ble["cfo 150 kHz"] < 1e-2
    assert ble["cfo 250 kHz (= deviation)"] > 0.3

"""R004 — NaN-bearing fields must be masked before aggregation."""

from __future__ import annotations

import ast
from typing import Optional

from repro.tools.lint.model import Rule
from repro.tools.lint.rules.base import AstLintRule, dotted_name

# Fields whose NaN sentinel (skipped / not-yet-run points) poisons any
# plain aggregate.
_WATCHED_NAN_FIELDS = {"ber", "y"}

# Aggregators that propagate NaN (numpy and builtins share the names).
_AGGREGATORS = {
    "sum", "mean", "average", "median", "min", "max", "std", "var",
    "ptp", "interp", "sort", "argsort", "cumsum", "cumprod", "prod",
    "trapz", "dot", "percentile", "quantile",
}

# Callees that are themselves the masking / inspection step.
_NAN_SAFE_CALLS = {
    "isnan", "isfinite", "isclose", "nan_to_num", "finite_points",
    "allclose", "array_equal",
}


def _watched_attr(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute) and node.attr in _WATCHED_NAN_FIELDS:
        return node.attr
    return None


class NanDisciplineRule(AstLintRule):
    rule = Rule(
        "R004", "nan-discipline",
        "NaN-bearing fields must be masked before aggregation",
        "Skipped sweep points leave NaN in .ber / .y; np.mean & friends "
        "propagate it and one skipped point silently wipes a whole "
        "curve.  Mask with isfinite / finite_points (or use nan-prefixed "
        "aggregators) first.")

    def visit_Call(self, node: ast.Call) -> None:
        callee = dotted_name(node.func)
        last = callee.rpartition(".")[2] if callee else ""
        if last in _NAN_SAFE_CALLS or last.startswith("nan"):
            # The call *is* the masking step; don't descend into its
            # arguments looking for watched fields.
            return
        if last in _AGGREGATORS:
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                attr = _watched_attr(arg)
                if attr is not None:
                    self.flag(node,
                              f"aggregating NaN-bearing field .{attr} "
                              f"with {last}(); mask with np.isfinite or "
                              f"use nan{last}")
            if isinstance(node.func, ast.Attribute):
                attr = _watched_attr(node.func.value)
                if attr is not None:
                    self.flag(node,
                              f"aggregating NaN-bearing field .{attr} "
                              f"with .{last}(); mask with np.isfinite "
                              f"first")
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        for side in (node.left, node.right):
            attr = _watched_attr(side)
            if attr is not None:
                self.flag(node,
                          f"arithmetic on NaN-bearing field .{attr} "
                          f"without a finite mask")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = _watched_attr(node.value) or _watched_attr(node.target)
        if attr is not None:
            self.flag(node,
                      f"arithmetic on NaN-bearing field .{attr} "
                      f"without a finite mask")
        self.generic_visit(node)

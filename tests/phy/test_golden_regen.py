"""Golden-vector drift guard (satellite 4 of the IQ-corpus issue).

``tests/phy/golden/generate.py`` freezes the bit-level PHY kernels'
outputs into committed JSON.  Before this test, a kernel change plus a
forgotten regeneration left the goldens silently stale — the
conformance tests kept passing against old vectors while the committed
JSON no longer matched what the generator would produce.  Here every
fixture is rebuilt in-process and diffed against the committed file,
so staleness is a test failure with a precise "regenerate" hint.
"""

import importlib.util
import json
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "golden"


def _load_generator():
    spec = importlib.util.spec_from_file_location(
        "golden_generate", GOLDEN_DIR / "generate.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


GENERATOR = _load_generator()


def test_every_fixture_is_committed():
    missing = [name for name in GENERATOR.FIXTURES
               if not (GOLDEN_DIR / name).is_file()]
    assert not missing, (
        f"golden fixtures missing from the repo: {missing}; run "
        f"PYTHONPATH=src python tests/phy/golden/generate.py")


def test_no_orphan_golden_files():
    orphans = [p.name for p in GOLDEN_DIR.glob("*.json")
               if p.name not in GENERATOR.FIXTURES]
    assert not orphans, (
        f"committed golden files with no generator entry: {orphans}")


@pytest.mark.parametrize("name", sorted(GENERATOR.FIXTURES))
def test_committed_golden_matches_regeneration(name):
    committed = json.loads((GOLDEN_DIR / name).read_text())
    regenerated = GENERATOR.FIXTURES[name]()
    assert committed == regenerated, (
        f"{name} is stale: the committed golden no longer matches what "
        f"generate.py produces. If the kernel change is an intentional "
        f"spec-conformance fix, regenerate with "
        f"PYTHONPATH=src python tests/phy/golden/generate.py and say "
        f"so in the commit message; otherwise the kernel regressed.")

"""Import-aware name resolution shared by every rule.

Each checked file gets one :class:`ImportMap`, prebuilt from all of the
file's ``import`` / ``from ... import`` statements (module-level and
nested — several sessions import their receiver classes inside
``__init__``).  Rules then canonicalise dotted call names
("np.random.rand" -> "numpy.random.rand") without re-walking the tree.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

__all__ = ["dotted_name", "ImportMap"]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Alias tables for one file: module aliases and imported names."""

    def __init__(self, tree: Optional[ast.AST] = None) -> None:
        # alias -> canonical module ("np" -> "numpy")
        self.modules: Dict[str, str] = {}
        # imported name -> canonical dotted
        # ("default_rng" -> "numpy.random.default_rng")
        self.names: Dict[str, str] = {}
        if tree is not None:
            self.collect(tree)

    def collect(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.modules[alias.asname] = alias.name
                    else:
                        head = alias.name.partition(".")[0]
                        self.modules[head] = head
            elif isinstance(node, ast.ImportFrom):
                if node.module and not node.level:
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        self.names[alias.asname or alias.name] = \
                            node.module + "." + alias.name

    def canonical(self, dotted: Optional[str]) -> Optional[str]:
        """Resolve the head of a dotted name through the alias tables."""
        if not dotted:
            return None
        head, _, rest = dotted.partition(".")
        if head in self.names:
            base = self.names[head]
        elif head in self.modules:
            base = self.modules[head]
        else:
            return dotted
        return base + "." + rest if rest else base

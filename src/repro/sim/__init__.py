"""Experiment layer: calibrated radio configurations, the distance-sweep
link simulator behind Figures 10-14, the MAC simulator behind Figure 17,
the parallel experiment engine that fans either out over processes, the
versioned spec wire format (:mod:`repro.sim.spec`), and result-table
formatting."""

from repro.sim.config import RadioConfig, WIFI_CONFIG, ZIGBEE_CONFIG, BLE_CONFIG
from repro.sim.engine import (
    ExperimentEngine,
    ExperimentSpec,
    FingerprintMismatch,
    MacExperimentSpec,
    RunOptions,
    RunResult,
    execute_run,
    run_experiment,
    spec_fingerprint,
)
from repro.sim.spec import SpecFormatError, dump_spec, load_spec
from repro.sim.linksim import LinkSimulator, LinkPoint
from repro.sim.macsim import MacExperiment, MacExperimentPoint
from repro.sim.charts import ascii_chart, ascii_cdf
from repro.sim.netsim import NetworkSimulator, NetworkResult, TagNode
from repro.sim.results import Series, format_table

__all__ = [
    "RadioConfig",
    "WIFI_CONFIG",
    "ZIGBEE_CONFIG",
    "BLE_CONFIG",
    "ExperimentEngine",
    "ExperimentSpec",
    "FingerprintMismatch",
    "MacExperimentSpec",
    "RunOptions",
    "RunResult",
    "SpecFormatError",
    "dump_spec",
    "execute_run",
    "load_spec",
    "run_experiment",
    "spec_fingerprint",
    "LinkSimulator",
    "LinkPoint",
    "MacExperiment",
    "MacExperimentPoint",
    "NetworkSimulator",
    "NetworkResult",
    "TagNode",
    "Series",
    "format_table",
    "ascii_chart",
    "ascii_cdf",
]

"""Tests for the ambient-traffic duration model (Figure 3)."""

import numpy as np
import pytest

from repro.net.traffic import AmbientTrafficModel, TrafficMix


class TestMixture:
    def test_default_weights_sum_below_one(self):
        mix = TrafficMix()
        assert mix.tail_weight > 0
        assert (mix.short_weight + mix.long_weight + mix.quiet_weight
                + mix.tail_weight) == pytest.approx(1.0)

    def test_invalid_weights_raise(self):
        with pytest.raises(ValueError):
            TrafficMix(short_weight=0.9, long_weight=0.2)


class TestSampling:
    def test_figure_3_bimodal_shape(self, rng):
        model = AmbientTrafficModel(rng=rng)
        d = model.sample_durations(60_000)
        short = float(np.mean(d < 500))
        long = float(np.mean((d >= 1500) & (d <= 2700)))
        assert short == pytest.approx(0.78, abs=0.02)
        assert long == pytest.approx(0.18, abs=0.02)

    def test_quiet_zone_nearly_empty(self, rng):
        model = AmbientTrafficModel(rng=rng)
        d = model.sample_durations(60_000)
        quiet = float(np.mean((d > 500) & (d < 1500)))
        assert quiet < 0.01

    def test_forge_probability_near_paper_claim(self, rng):
        """Figure 3 caption: ~0.03 % of ambient packets fall inside a
        PLM bit window with the 25 us bound."""
        model = AmbientTrafficModel(rng=rng)
        p = model.forge_probability(700.0, 1100.0, 25.0)
        assert 0.0001 < p < 0.0007


class TestPulseTrain:
    def test_load_respected(self, rng):
        model = AmbientTrafficModel(load=0.4, rng=rng)
        assert model.busy_fraction(3e5) == pytest.approx(0.4, abs=0.12)

    def test_zero_load_empty(self, rng):
        model = AmbientTrafficModel(load=0.0, rng=rng)
        assert model.pulse_train(1e5) == []

    def test_pulses_sorted_and_disjoint(self, rng):
        model = AmbientTrafficModel(load=0.3, rng=rng)
        pulses = model.pulse_train(2e5)
        for (t0, d0, _), (t1, _, _) in zip(pulses, pulses[1:]):
            assert t1 > t0 + d0

    def test_invalid_load_raises(self):
        with pytest.raises(ValueError):
            AmbientTrafficModel(load=1.0)

    def test_invalid_horizon_raises(self, rng):
        with pytest.raises(ValueError):
            AmbientTrafficModel(rng=rng).pulse_train(0.0)

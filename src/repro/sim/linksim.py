"""Distance-sweep link simulator: the engine behind Figures 10-14.

For each receiver distance the simulator:

1. computes the two-hop link budget's RSSI, adds per-packet log-normal
   fading, and converts to the AWGN SNR seen by the backscatter
   receiver;
2. runs the *actual PHY chain* end-to-end (excitation transmitter ->
   tag -> noise -> commodity receiver -> XOR decoder) for a batch of
   packets;
3. reports throughput (tag goodput over airtime + inter-packet gap),
   conditional tag BER, delivery ratio, and mean RSSI — the three
   panels of each evaluation figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.channel.geometry import Deployment
from repro.core.session import (
    BleBackscatterSession,
    WifiBackscatterSession,
    ZigbeeBackscatterSession,
)
from repro.sim.config import RadioConfig
from repro.utils.rng import make_rng

__all__ = ["LinkPoint", "LinkSimulator"]


@dataclass
class LinkPoint:
    """Aggregate link metrics at one receiver distance."""

    distance_m: float
    throughput_kbps: float
    ber: float
    rssi_dbm: float
    delivery_ratio: float
    snr_db: float

    def row(self) -> str:
        """One formatted results-table row."""
        ber = f"{self.ber:.1e}" if self.ber > 0 else "<1e-4 "
        return (f"{self.distance_m:7.1f}  {self.throughput_kbps:9.1f}  "
                f"{ber}  {self.rssi_dbm:8.1f}  {self.delivery_ratio:6.2f}")


def _make_session(config: RadioConfig, seed):
    if config.name == "wifi":
        return WifiBackscatterSession(payload_bytes=config.payload_bytes,
                                      repetition=config.repetition, seed=seed)
    if config.name == "zigbee":
        return ZigbeeBackscatterSession(payload_bytes=config.payload_bytes,
                                        repetition=config.repetition, seed=seed)
    if config.name == "bluetooth":
        return BleBackscatterSession(payload_bytes=config.payload_bytes,
                                     repetition=config.repetition, seed=seed)
    raise ValueError(f"unknown radio {config.name!r}")


class LinkSimulator:
    """Sweeps receiver distance for one radio configuration.

    Parameters
    ----------
    config:
        Calibrated radio configuration.
    deployment:
        Geometry template; its receiver distance is replaced per point.
    packets_per_point:
        Excitation packets simulated per distance.
    seed:
        Master seed for reproducibility.
    """

    def __init__(self, config: RadioConfig, deployment: Deployment,
                 packets_per_point: int = 20,
                 seed: Optional[int] = None):
        self.config = config
        self.deployment = deployment
        self.packets_per_point = packets_per_point
        self._rng = make_rng(seed)
        self.session = _make_session(config, self._rng)
        self.budget = config.budget()

    def simulate_point(self, distance_m: float) -> LinkPoint:
        """Run one distance point."""
        dep = self.deployment.with_rx_distance(distance_m)
        mean_rssi = self.budget.rssi_dbm(dep)
        incident = self.budget.tag_incident_dbm(dep)
        noise = self.budget.noise_dbm
        # The session adds AWGN across its full oversampled band; scale
        # so the *in-channel* noise matches the budget, and charge the
        # configured real-chip implementation loss.
        snr_penalty = (10 * np.log10(self.session.oversample_factor)
                       + self.config.implementation_loss_db)

        bits_ok = 0
        airtime_us = 0.0
        errors = 0
        bits_delivered = 0
        delivered = 0
        rssis: List[float] = []
        for _ in range(self.packets_per_point):
            rssi = mean_rssi + self._rng.normal(0, self.config.fading_sigma_db)
            rssis.append(rssi)
            snr = rssi - noise - snr_penalty
            res = self.session.run_packet(snr_db=snr,
                                          incident_power_dbm=incident,
                                          rng=self._rng)
            airtime_us += res.duration_us + self.config.interpacket_gap_us
            if res.delivered:
                delivered += 1
                bits_ok += res.tag_bits_ok
                bits_delivered += res.tag_bits_sent
                errors += res.tag_bit_errors

        throughput_kbps = bits_ok / airtime_us * 1e3 if airtime_us else 0.0
        ber = errors / bits_delivered if bits_delivered else 1.0
        return LinkPoint(
            distance_m=distance_m,
            throughput_kbps=throughput_kbps,
            ber=ber,
            rssi_dbm=float(np.mean(rssis)),
            delivery_ratio=delivered / self.packets_per_point,
            snr_db=mean_rssi - noise,
        )

    def sweep(self, distances_m: Iterable[float]) -> List[LinkPoint]:
        """Run a full distance sweep."""
        return [self.simulate_point(d) for d in distances_m]

    def max_range_m(self, distances_m: Sequence[float],
                    min_delivery: float = 0.05) -> float:
        """Largest swept distance that still delivers packets."""
        best = 0.0
        for point in self.sweep(distances_m):
            if point.delivery_ratio >= min_delivery:
                best = max(best, point.distance_m)
        return best

"""R006 — broad exception handlers must re-raise or record the error."""

from __future__ import annotations

import ast

from repro.tools.lint.model import Rule
from repro.tools.lint.rules.base import AstLintRule, dotted_name

_BROAD = {"Exception", "BaseException"}

# A handler "handles" the error when some call in its body ends in one
# of these name parts — logging, metrics, or failure bookkeeping.
_HANDLED_HINTS = (
    "log", "warn", "error", "exception", "critical", "print", "inc",
    "observe", "record", "fail", "debug", "info",
)


class SilentExceptRule(AstLintRule):
    rule = Rule(
        "R006", "no-silent-except",
        "broad exception handlers must re-raise or record the error",
        "except Exception: pass turns a crashed sweep point into a "
        "silently-missing curve point.  Broad handlers must re-raise or "
        "at least log / count the failure so the run report shows it.")

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.flag(node,
                      "bare except: catches KeyboardInterrupt/SystemExit "
                      "too; name the exceptions or use except Exception "
                      "with logging")
        elif self._is_broad(node.type) and not self._handles(node):
            self.flag(node,
                      "broad except swallows the error silently; "
                      "re-raise, or log/count it so the run report "
                      "shows the failure")
        self.generic_visit(node)

    def _is_broad(self, type_node: ast.AST) -> bool:
        names = []
        if isinstance(type_node, ast.Tuple):
            names = [dotted_name(elt) for elt in type_node.elts]
        else:
            names = [dotted_name(type_node)]
        for name in names:
            canon = self.canonical(name) or name
            if canon is not None and canon.rpartition(".")[2] in _BROAD:
                return True
        return False

    def _handles(self, handler: ast.ExceptHandler) -> bool:
        for stmt in ast.walk(ast.Module(body=handler.body,
                                        type_ignores=[])):
            if isinstance(stmt, ast.Raise):
                return True
            if isinstance(stmt, ast.Call):
                callee = dotted_name(stmt.func)
                if callee is None:
                    continue
                last = callee.rpartition(".")[2]
                if any(hint in last for hint in _HANDLED_HINTS):
                    return True
        return False

"""PLCP framing for ERP-OFDM: preamble, SIGNAL field, SERVICE/tail/pad.

The PPDU layout (802.11-2012 Figure 18-1):

    [STF 8us][LTF 8us][SIGNAL 4us][DATA symbols ...]

SIGNAL is one BPSK rate-1/2 OFDM symbol carrying RATE(4) R(1) LENGTH(12)
PARITY(1) TAIL(6).  DATA starts with the 16-bit SERVICE field (7 zero
bits that reveal the scrambler seed, then 9 reserved zeros), ends with 6
zero tail bits, and is padded to a whole number of OFDM symbols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.utils.bits import as_bits, int_to_bits, bits_to_int
from repro.phy.wifi.rates import WifiRate, SIGNAL_RATE_BITS, rate_by_mbps

__all__ = ["PlcpHeader", "build_signal_bits", "parse_signal_field",
           "build_ppdu_bits", "strip_service_and_tail",
           "short_training_field", "long_training_field",
           "SERVICE_BITS", "TAIL_BITS"]

SERVICE_BITS = 16
TAIL_BITS = 6


@dataclass(frozen=True)
class PlcpHeader:
    """Decoded SIGNAL-field contents."""

    rate: WifiRate
    length_bytes: int

    @property
    def n_data_symbols(self) -> int:
        n_bits = SERVICE_BITS + 8 * self.length_bytes + TAIL_BITS
        return self.rate.symbols_for_bits(n_bits)


def build_signal_bits(rate: WifiRate, length_bytes: int) -> np.ndarray:
    """The 24 SIGNAL bits: RATE, reserved, LENGTH (LSB first), parity, tail."""
    if not 0 < length_bytes <= 4095:
        raise ValueError("PSDU length must be 1..4095 bytes")
    rate_bits = int_to_bits(rate.signal_rate_bits, 4)  # MSB first per spec R1-R4
    length_bits = int_to_bits(length_bytes, 12, msb_first=False)  # LSB first
    head = np.concatenate([rate_bits, [0], length_bits]).astype(np.uint8)
    parity = np.array([head.sum() % 2], dtype=np.uint8)
    tail = np.zeros(TAIL_BITS, dtype=np.uint8)
    return np.concatenate([head, parity, tail])


def parse_signal_field(bits) -> Optional[PlcpHeader]:
    """Parse 24 SIGNAL bits; returns None on bad parity / unknown rate.

    A None here models the "packet header not detected" failure mode the
    paper observes at long range (section 4.2.1: when the header itself
    is not decoded, the packet is lost entirely).
    """
    arr = as_bits(bits)
    if arr.size != 24:
        raise ValueError("SIGNAL field is exactly 24 bits")
    if arr[:17].sum() % 2 != arr[17]:
        return None
    rate_val = bits_to_int(arr[:4])
    if rate_val not in SIGNAL_RATE_BITS:
        return None
    if arr[18:].any():  # tail must be zero
        return None
    length = bits_to_int(arr[5:17], msb_first=False)
    if length == 0:
        return None
    return PlcpHeader(rate_by_mbps(SIGNAL_RATE_BITS[rate_val]), length)


def build_ppdu_bits(psdu: bytes, rate: WifiRate,
                    from_bits: Optional[np.ndarray] = None) -> Tuple[np.ndarray, int]:
    """Assemble the unscrambled DATA-field bit stream.

    Returns ``(bits, n_symbols)`` where *bits* is SERVICE + PSDU + tail +
    pad, sized to fill *n_symbols* OFDM symbols at *rate*.  *from_bits*
    substitutes an arbitrary pre-built PSDU bit array (used by tests).
    """
    from repro.utils.bits import bytes_to_bits

    psdu_bits = from_bits if from_bits is not None else bytes_to_bits(psdu)
    n_bits = SERVICE_BITS + psdu_bits.size + TAIL_BITS
    n_symbols = rate.symbols_for_bits(n_bits)
    total = n_symbols * rate.n_dbps
    out = np.zeros(total, dtype=np.uint8)
    out[SERVICE_BITS:SERVICE_BITS + psdu_bits.size] = psdu_bits
    return out, n_symbols


def strip_service_and_tail(bits: np.ndarray, length_bytes: int) -> np.ndarray:
    """Extract the PSDU bits from a decoded DATA-field stream."""
    start = SERVICE_BITS
    end = start + 8 * length_bytes
    if bits.size < end:
        raise ValueError("decoded stream shorter than PSDU length")
    return bits[start:end]


def short_training_field(oversample: int = 1) -> np.ndarray:
    """The 8 us STF waveform (ten repetitions of a 16-sample pattern)."""
    s = np.zeros(64, dtype=complex)
    scale = np.sqrt(13 / 6)
    pattern = {
        -24: 1 + 1j, -20: -1 - 1j, -16: 1 + 1j, -12: -1 - 1j, -8: -1 - 1j,
        -4: 1 + 1j, 4: -1 - 1j, 8: -1 - 1j, 12: 1 + 1j, 16: 1 + 1j,
        20: 1 + 1j, 24: 1 + 1j,
    }
    for k, v in pattern.items():
        s[k % 64] = scale * v
    one_period = np.fft.ifft(s) * np.sqrt(64)
    return np.tile(one_period[:16], 10)


def long_training_field() -> np.ndarray:
    """The 8 us LTF waveform (32-sample CP + two 64-sample symbols)."""
    ltf_seq = np.array(
        [1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1,
         1, -1, 1, 1, 1, 1, 0, 1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1,
         -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1, 1], dtype=complex)
    grid = np.zeros(64, dtype=complex)
    for i, k in enumerate(range(-26, 27)):
        grid[k % 64] = ltf_seq[i]
    sym = np.fft.ifft(grid) * np.sqrt(64)
    return np.concatenate([sym[-32:], sym, sym])

"""R011 — metric names must be declared in repro/obs/names.py.

A typo'd counter name is a silently empty metric: nothing crashes, the
run report just misses a column.  Every literal name passed to ``inc``
/ ``_inc`` (counter), ``observe`` / ``timed`` / ``timer`` (timer), or
``span`` must match a pattern declared in :mod:`repro.obs.names`.
Runtime-built names (f-strings, string concatenation) are checked
structurally: the fixed parts must be consistent with some declared
pattern — ``f"{prefix}.stage.{stage}"`` passes because the
``phy.*.stage.<stage>`` patterns exist, ``f"{prefix}.stag.{stage}"``
does not.

Names that are plain variables are not checked (the declaration site
is, when it's a literal).
"""

from __future__ import annotations

import ast
import re
from typing import Optional, Tuple

from repro.obs import names as obs_names
from repro.tools.lint.model import Rule
from repro.tools.lint.rules.base import AstLintRule, dotted_name

#: method-name -> metric kind.  ``_inc`` / ``_set_gauge`` are the
#: service's locked wrappers; ``timer`` is the registry accessor
#: benches use.
_SINKS = {
    "inc": "counter", "_inc": "counter",
    "observe": "timer", "timed": "timer", "timer": "timer",
    "set_gauge": "gauge", "add_gauge": "gauge", "_set_gauge": "gauge",
    "observe_hist": "histogram",
    "span": "span",
}

#: keyword-argument sinks: ``timed(name, hist=...)`` routes its second
#: name into a histogram.
_KWARG_SINKS = {
    "timed": {"hist": "histogram"},
}


def _name_template(node: ast.AST) -> Optional[Tuple[str, bool]]:
    """``(regex_or_literal, is_template)`` for a metric-name expression.

    Literal strings come back verbatim; f-strings / concatenations come
    back as a regex with ``.+`` holes; anything unresolvable (a plain
    variable) returns None and is skipped.
    """
    if isinstance(node, ast.Constant):
        if isinstance(node.value, str):
            return node.value, False
        return None
    if isinstance(node, ast.JoinedStr):
        parts = []
        literal = True
        for value in node.values:
            if (isinstance(value, ast.Constant)
                    and isinstance(value.value, str)):
                parts.append((value.value, False))
            elif isinstance(value, ast.FormattedValue):
                parts.append(("", True))
                literal = False
            else:
                return None
        if literal:
            return "".join(text for text, _ in parts), False
        return ("".join(".+" if hole else re.escape(text)
                        for text, hole in parts), True)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _side_regex(node.left)
        right = _side_regex(node.right)
        if left is None or right is None:
            return None
        return left + right, True
    return None


def _side_regex(node: ast.AST) -> Optional[str]:
    """One side of a ``+`` concatenation, as a regex fragment."""
    if isinstance(node, ast.Constant):
        if isinstance(node.value, str):
            return re.escape(node.value)
        return None
    if isinstance(node, (ast.Name, ast.Attribute, ast.Call,
                         ast.Subscript)):
        return ".+"
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _side_regex(node.left)
        right = _side_regex(node.right)
        if left is None or right is None:
            return None
        return left + right
    if isinstance(node, ast.JoinedStr):
        result = _name_template(node)
        if result is None:
            return None
        text, is_template = result
        return text if is_template else re.escape(text)
    return None


class CounterRegistryRule(AstLintRule):
    rule = Rule(
        "R011", "counter-registry",
        "metric names must be declared in repro/obs/names.py",
        "Undeclared metric names are typically typos that produce "
        "silently empty counters.  Declare the name (or a pattern) in "
        "the registry so the observability surface stays greppable and "
        "closed.")
    path_only = ("repro/",)

    def visit_Call(self, node: ast.Call) -> None:
        callee = dotted_name(node.func)
        method = callee.rpartition(".")[2] if callee else ""
        kind = _SINKS.get(method)
        if kind is not None and node.args:
            resolved = _name_template(node.args[0])
            if resolved is not None:
                self._check_name(node, kind, *resolved)
        for keyword in node.keywords:
            kw_kind = _KWARG_SINKS.get(method, {}).get(keyword.arg or "")
            if kw_kind is not None:
                resolved = _name_template(keyword.value)
                if resolved is not None:
                    self._check_name(node, kw_kind, *resolved)
        self.generic_visit(node)

    def _check_name(self, node: ast.Call, kind: str, text: str,
                    is_template: bool) -> None:
        patterns = obs_names.PATTERNS_BY_KIND[kind]
        if is_template:
            if not obs_names.template_matches(text, patterns):
                self.flag(node,
                          f"runtime-built {kind} name matches no "
                          f"pattern declared in repro/obs/names.py")
        elif not obs_names.literal_matches(text, patterns):
            self.flag(node,
                      f"{kind} name {text!r} is not declared in "
                      f"repro/obs/names.py; declare it (or fix the "
                      f"typo)")

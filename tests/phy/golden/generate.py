"""Regenerate the golden-vector fixtures in this directory.

    PYTHONPATH=src python tests/phy/golden/generate.py

The fixtures freeze the *current* outputs of the bit-level PHY kernels
(scrambler, convolutional encoder, interleaver, chip table, whitening)
so refactors — in particular vectorised fast paths — cannot silently
change them.  Inputs are stored alongside outputs, so the conformance
tests in ``tests/phy/test_golden_vectors.py`` are self-contained.

Only rerun this script when a kernel's output is *supposed* to change
(i.e. a spec-conformance bug fix), and say so in the commit message.
"""

from __future__ import annotations

import json
import os

import numpy as np


def _pattern_bits(n: int) -> np.ndarray:
    """Deterministic, aperiodic-looking bit pattern (no RNG involved)."""
    i = np.arange(n)
    return ((i * i + i // 3) % 5 % 2).astype(np.uint8)


def _wifi_scrambler() -> dict:
    from repro.phy.wifi.scrambler import Scrambler

    data = _pattern_bits(96)
    cases = []
    for seed in (1, 0x5D, 88, 127):
        cases.append({
            "seed": seed,
            "keystream": Scrambler(seed).keystream(160).tolist(),
            "input": data.tolist(),
            "scrambled": Scrambler(seed).process(data).tolist(),
        })
    return {"cases": cases}


def _wifi_convolutional() -> dict:
    from repro.phy.wifi.convolutional import CODE_802_11

    bits = _pattern_bits(96)
    cases = []
    for rate in ((1, 2), (2, 3), (3, 4)):
        cases.append({
            "rate": list(rate),
            "input": bits.tolist(),
            "encoded": CODE_802_11.encode(bits, rate=rate).tolist(),
        })
    return {"cases": cases}


def _wifi_interleaver() -> dict:
    from repro.phy.wifi.interleaver import interleave, interleave_permutation
    from repro.phy.wifi.rates import WIFI_RATES

    pairs = sorted({(r.n_cbps, r.n_bpsc) for r in WIFI_RATES.values()})
    cases = []
    for n_cbps, n_bpsc in pairs:
        bits = _pattern_bits(n_cbps)
        cases.append({
            "n_cbps": n_cbps,
            "n_bpsc": n_bpsc,
            "permutation": interleave_permutation(n_cbps, n_bpsc).tolist(),
            "input": bits.tolist(),
            "interleaved": interleave(bits, n_cbps, n_bpsc).tolist(),
        })
    return {"cases": cases}


def _zigbee_chips() -> dict:
    from repro.phy.zigbee.chips import CHIP_SEQUENCES, symbols_to_chips

    symbols = list(range(16)) + [5, 0, 15, 8]
    return {
        "table": CHIP_SEQUENCES.tolist(),
        "symbols": symbols,
        "chips": symbols_to_chips(symbols).tolist(),
    }


def _ble_whitening() -> dict:
    from repro.phy.ble.whitening import Whitener, whiten

    data = _pattern_bits(96)
    cases = []
    for channel in (0, 8, 37, 39):
        cases.append({
            "channel": channel,
            "keystream": Whitener(channel).keystream(160).tolist(),
            "input": data.tolist(),
            "whitened": whiten(data, channel).tolist(),
        })
    return {"cases": cases}


FIXTURES = {
    "wifi_scrambler.json": _wifi_scrambler,
    "wifi_convolutional.json": _wifi_convolutional,
    "wifi_interleaver.json": _wifi_interleaver,
    "zigbee_chips.json": _zigbee_chips,
    "ble_whitening.json": _ble_whitening,
}


def main() -> None:
    here = os.path.dirname(os.path.abspath(__file__))
    for name, build in FIXTURES.items():
        path = os.path.join(here, name)
        with open(path, "w") as fh:
            json.dump(build(), fh, sort_keys=True,
                      separators=(",", ":"))
            fh.write("\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    main()

"""Tests for the process-local metrics registry (repro.obs)."""

import pytest

from repro.obs import (
    MetricsRegistry,
    TimerStat,
    collect,
    global_registry,
    inc,
    registry,
    timed,
)


class TestTimerStat:
    def test_observe_accumulates(self):
        t = TimerStat()
        t.observe(0.2)
        t.observe(0.1)
        assert t.count == 2
        assert t.total_s == pytest.approx(0.3)
        assert t.min_s == pytest.approx(0.1)
        assert t.max_s == pytest.approx(0.2)

    def test_empty_dict_form_has_no_inf(self):
        d = TimerStat().to_dict()
        assert d["count"] == 0
        assert d["min_s"] is None  # inf sentinel never leaks into JSON

    def test_empty_round_trip_restores_inf_sentinel(self):
        # min_s serializes as null when empty, and from_dict restores
        # the inf sentinel so merges keep taking a true minimum.
        stat = TimerStat.from_dict(TimerStat().to_dict())
        stat.observe(0.5)
        assert stat.min_s == pytest.approx(0.5)

    def test_merge(self):
        a, b = TimerStat(), TimerStat()
        a.observe(1.0)
        b.observe(3.0)
        a.merge(b)
        assert a.count == 2
        assert a.max_s == pytest.approx(3.0)

    def test_round_trip(self):
        t = TimerStat()
        t.observe(0.5)
        assert TimerStat.from_dict(t.to_dict()).to_dict() == t.to_dict()


class TestMetricsRegistry:
    def test_counters(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        assert reg.counter("a") == 5
        assert reg.counter("missing") == 0

    def test_timed_context(self):
        reg = MetricsRegistry()
        with reg.timed("stage"):
            pass
        assert reg.timer("stage").count == 1

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.inc("n")
        reg.observe("t", 0.25)
        snap = reg.snapshot()
        assert snap["counters"] == {"n": 1}
        assert snap["timers"]["t"]["count"] == 1
        assert snap["timers"]["t"]["mean_s"] == pytest.approx(0.25)

    def test_merge_snapshot(self):
        reg = MetricsRegistry()
        reg.inc("n", 2)
        reg.observe("t", 0.1)
        other = MetricsRegistry()
        other.inc("n", 3)
        other.observe("t", 0.3)
        reg.merge_snapshot(other.snapshot())
        assert reg.counter("n") == 5
        assert reg.timer("t").count == 2

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("n")
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "timers": {}}


class TestCollectScope:
    def test_collect_isolates_from_global(self):
        with collect() as reg:
            inc("scoped")
            assert registry() is reg
        assert reg.counter("scoped") == 1
        assert global_registry().counter("scoped") == 0
        assert registry() is global_registry()

    def test_nested_collect(self):
        with collect() as outer:
            inc("outer.only")
            with collect() as inner:
                inc("both")
            assert inner.counter("both") == 1
        assert outer.counter("outer.only") == 1
        assert outer.counter("both") == 0

    def test_timed_binds_registry_at_exit(self):
        # A timer entered before collect() but exited inside it lands in
        # the active registry at exit time (what workers rely on).
        timer = timed("late")
        timer.__enter__()
        with collect() as reg:
            timer.__exit__(None, None, None)
            assert reg.timer("late").count == 1

    def test_module_level_helpers_hit_active_registry(self):
        with collect() as reg:
            with timed("stage"):
                inc("packets", 2)
        assert reg.counter("packets") == 2
        assert reg.timer("stage").count == 1

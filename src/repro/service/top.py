"""``repro top`` — a polling text dashboard for a running sweep service.

Built entirely from the service's public HTTP surface so it exercises
the same endpoints operators script against: ``/healthz`` for queue
saturation, ``/jobs`` for the job table, ``/metrics`` (through the
strict :func:`~repro.obs.export.parse_prometheus_text` parser, so a
malformed exposition fails loudly here before an external scraper
trips on it) for cache hit rate and latency percentiles, and
``/jobs/<id>/events`` for live per-job progress bars.

The dashboard keeps one events cursor per job between polls, so each
refresh transfers only new journal rows.  ``--once`` renders a single
frame without clearing the screen — what tests and the CI smoke job
capture as an artifact.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, TextIO

from repro.obs.export import ExpositionError, parse_prometheus_text
from repro.service.client import ServiceClient
from repro.sim.results import format_table

__all__ = ["Dashboard", "run_top"]

#: ANSI: clear screen, cursor home.  Only emitted between live frames.
_CLEAR = "\x1b[2J\x1b[H"

#: Jobs shown in the table (most recent; older ones scroll off).
_MAX_JOBS = 10

#: Histogram families surfaced in the latency table, in display order.
#: Anything else histogram-typed in the exposition is appended after.
_PREFERRED_FAMILIES = (
    "repro_engine_task_seconds",
    "repro_service_job_seconds",
)


def _bar(done: int, total: int, width: int = 20) -> str:
    if total <= 0:
        return "[" + "-" * width + "]"
    filled = int(round(width * min(1.0, done / total)))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def _pct(numerator: float, denominator: float) -> str:
    if denominator <= 0:
        return "n/a"
    return f"{100.0 * numerator / denominator:.1f}%"


class Dashboard:
    """Stateful frame renderer: remembers events cursors and the last
    reported progress per job across polls."""

    def __init__(self, client: ServiceClient) -> None:
        self.client = client
        #: job_id -> last consumed events cursor.
        self._cursors: Dict[str, int] = {}
        #: job_id -> latest {"tasks_done", "n_tasks"} seen on the stream.
        self._progress: Dict[str, Dict[str, int]] = {}

    # -- data gathering ----------------------------------------------------

    def _poll_events(self, job: Dict[str, Any]) -> None:
        """Drain new progress rows for one live job into ``_progress``."""
        job_id = str(job["job_id"])
        page = self.client.events(job_id, self._cursors.get(job_id, 0))
        self._cursors[job_id] = int(page.get("cursor", 0))
        for row in page.get("events", []):
            if "n_tasks" in row:
                self._progress[job_id] = {
                    "tasks_done": int(row.get("tasks_done", 0)),
                    "n_tasks": int(row.get("n_tasks", 0)),
                }

    def gather(self) -> Dict[str, Any]:
        """One poll of every endpoint the frame needs."""
        health = self.client.healthz()
        jobs = self.client.jobs()
        for job in jobs:
            live = job.get("state") in ("pending", "running")
            # Live jobs poll every frame; settled non-cached jobs are
            # drained once so their final progress still renders.
            if live or (not job.get("cached")
                        and str(job["job_id"]) not in self._cursors):
                self._poll_events(job)
        metrics_error: Optional[str] = None
        exposition = None
        try:
            exposition = parse_prometheus_text(self.client.metrics())
        except ExpositionError as exc:
            # Surface a broken exposition on the frame instead of dying:
            # the dashboard doubles as a format canary.
            metrics_error = str(exc)
        return {"health": health, "jobs": jobs, "exposition": exposition,
                "metrics_error": metrics_error}

    # -- rendering ---------------------------------------------------------

    def _queue_line(self, data: Dict[str, Any]) -> str:
        queue = dict(data["health"].get("queue", {}))
        states = " ".join(f"{s}={queue.get(s, 0)}"
                          for s in ("pending", "running", "done", "failed"))
        line = f"queue: depth={queue.get('depth', 0)} {states}"
        exposition = data["exposition"]
        if exposition is not None:
            hits = exposition.value("repro_service_cache_hits_total") or 0.0
            misses = (exposition.value("repro_service_cache_misses_total")
                      or 0.0)
            line += (f"   cache: {int(hits)}/{int(hits + misses)} hits "
                     f"({_pct(hits, hits + misses)})")
            age = exposition.value("repro_service_job_age_seconds")
            if age:
                line += f"   oldest active: {age:.1f}s"
        return line

    def _job_rows(self, data: Dict[str, Any]) -> List[List[Any]]:
        rows: List[List[Any]] = []
        for job in data["jobs"][-_MAX_JOBS:]:
            job_id = str(job["job_id"])
            progress = self._progress.get(job_id)
            if job.get("cached"):
                detail = "cache hit"
            elif progress is not None:
                done, total = progress["tasks_done"], progress["n_tasks"]
                detail = f"{_bar(done, total)} {done}/{total} tasks"
            elif job.get("state") == "done":
                detail = "done"
            else:
                detail = ""
            if job.get("error"):
                detail = (detail + " " if detail else "") + \
                    f"error: {job['error']}"
            rows.append([job_id[:12], job["state"],
                         str(job.get("fingerprint", ""))[:16], detail])
        return rows

    def _latency_rows(self, data: Dict[str, Any]) -> List[List[Any]]:
        exposition = data["exposition"]
        if exposition is None:
            return []
        families = [f for f, t in exposition.families.items()
                    if t == "histogram"]
        ordered = [f for f in _PREFERRED_FAMILIES if f in families]
        ordered += sorted(f for f in families if f not in ordered)
        rows: List[List[Any]] = []
        for family in ordered:
            hist = exposition.histogram(family)
            if hist.count == 0:
                continue
            label = family[len("repro_"):] if family.startswith("repro_") \
                else family
            rows.append([
                label, hist.count, f"{hist.mean:.4f}",
                *(f"{hist.quantile(q) or 0.0:.4f}" for q in (0.5, 0.9, 0.99)),
            ])
        return rows

    def render(self, data: Dict[str, Any]) -> str:
        """One complete frame as text (no ANSI control codes)."""
        parts = [f"repro top — {self.client.base_url}",
                 self._queue_line(data), ""]
        job_rows = self._job_rows(data)
        if job_rows:
            parts.append(format_table(
                ["job", "state", "spec", "progress"], job_rows,
                title=f"jobs (last {_MAX_JOBS})"))
        else:
            parts.append("no jobs submitted yet")
        latency_rows = self._latency_rows(data)
        if latency_rows:
            parts.append("")
            parts.append(format_table(
                ["histogram", "count", "mean", "p50", "p90", "p99"],
                latency_rows, title="latency (seconds)"))
        if data["metrics_error"]:
            parts.append("")
            parts.append(f"WARNING: /metrics failed strict parsing: "
                         f"{data['metrics_error']}")
        return "\n".join(parts) + "\n"

    def frame(self) -> str:
        return self.render(self.gather())


def run_top(url: str, once: bool = False, interval_s: float = 1.0,
            out: Optional[TextIO] = None, max_frames: Optional[int] = None
            ) -> int:
    """Drive the dashboard; returns a process exit code.

    ``once`` renders a single frame with no screen clearing.
    ``max_frames`` bounds the live loop (tests); operators interrupt
    with Ctrl-C instead.
    """
    import sys

    stream = out if out is not None else sys.stdout
    dashboard = Dashboard(ServiceClient(url))
    frames = 0
    try:
        while True:
            text = dashboard.frame()
            if once:
                stream.write(text)
                return 0
            stream.write(_CLEAR + text)
            stream.flush()
            frames += 1
            if max_frames is not None and frames >= max_frames:
                return 0
            time.sleep(interval_s)
    except KeyboardInterrupt:
        stream.write("\n")
        return 0

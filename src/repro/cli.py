"""Command-line interface: run FreeRider experiments without writing code.

    python -m repro sweep  --radio wifi --deployment los --distances 1,10,20
    python -m repro sweep  --radio wifi --jobs 4 --json
    python -m repro packet --radio zigbee --snr 15
    python -m repro mac    --tags 4,8,12,16,20 --rounds 100 --jobs 2
    python -m repro regime
    python -m repro power
    python -m repro bench  # PHY micro-benchmarks -> BENCH_phy.json
    python -m repro lint   # project static analysis (reprolint)

Each subcommand prints the same tables the benchmark harness writes.
``--jobs`` fans the experiment out over worker processes through
:mod:`repro.sim.engine`; results are identical for any worker count.
``--json`` swaps the table for a machine-readable record that includes
timing metadata (wall time, packets/s).

Robustness and observability flags (sweep/mac):

* ``--failure-policy degrade`` finishes the sweep even when points
  fail (flagged in the table/record instead of aborting), with
  ``--retries`` attempts per point and ``--task-timeout`` seconds per
  attempt;
* ``--checkpoint sweep.jsonl`` journals completed points so a killed
  run resumes bit-identically;
* ``--metrics-json PATH`` (or ``-`` for stdout) writes per-stage PHY
  timers, retry counters, and per-task records;
* ``--metrics-prom PATH`` writes the same aggregates in Prometheus
  text exposition format;
* ``--trace PATH`` writes a JSONL trace (spans, retry/requeue events,
  sampled per-packet decode forensics) keyed by the spec fingerprint,
  with ``--trace-every-n`` / ``--trace-failures-only`` sampling knobs;
* ``repro report`` renders a finished run (metrics record + trace +
  checkpoint journal) into a text or markdown report.

Radio choices come from the session registry
(:mod:`repro.core.registry`) and the calibrated config table, so a
newly registered radio appears here without touching this module.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.channel.geometry import Deployment
from repro.core.registry import create_session, registered_radios
from repro.sim.config import config_by_name, config_names
from repro.sim.results import format_table

__all__ = ["main", "build_parser"]


def _parse_floats(text: str) -> List[float]:
    try:
        values = [float(v) for v in text.split(",") if v.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad number list: {text!r}")
    if not values:
        raise argparse.ArgumentTypeError("empty list")
    return values


def _parse_ints(text: str) -> List[int]:
    return [int(v) for v in _parse_floats(text)]


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=_positive_int, default=1,
                        help="worker processes (results are identical "
                             "for any value)")
    parser.add_argument("--json", action="store_true",
                        help="emit a JSON record (points + timing) "
                             "instead of a table")
    parser.add_argument("--failure-policy", choices=["fail-fast", "degrade"],
                        default="fail-fast",
                        help="abort on the first exhausted point, or "
                             "flag it and finish the sweep")
    parser.add_argument("--retries", type=_positive_int, default=1,
                        metavar="N",
                        help="attempts per point (retries reuse the "
                             "point's seed, so results are unchanged)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-attempt time limit")
    parser.add_argument("--checkpoint", metavar="PATH", default=None,
                        help="JSONL journal of completed points; an "
                             "interrupted run resumes from it "
                             "bit-identically")
    parser.add_argument("--metrics-json", metavar="PATH", default=None,
                        help="write stage timers / retry counters / "
                             "task records as JSON ('-' for stdout)")
    parser.add_argument("--metrics-prom", metavar="PATH", default=None,
                        help="write the same counters/timers/spans in "
                             "Prometheus text exposition format")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a JSONL trace (spans, retry events, "
                             "sampled per-packet forensics) keyed by the "
                             "spec fingerprint")
    parser.add_argument("--trace-every-n", type=_positive_int, default=1,
                        metavar="N",
                        help="sample every Nth packet event (default: "
                             "all); stage counters stay exact")
    parser.add_argument("--trace-failures-only", action="store_true",
                        help="only record packet events for failed "
                             "decode stages")


def _engine_from_args(args):
    from repro.obs import TraceConfig
    from repro.sim.engine import ExperimentEngine, FailurePolicy

    policy = FailurePolicy(mode=args.failure_policy.replace("-", "_"),
                           max_attempts=args.retries,
                           timeout_s=args.task_timeout)
    trace = None
    if (args.trace is not None or args.trace_every_n != 1
            or args.trace_failures_only):
        trace = TraceConfig(every_n=args.trace_every_n,
                            failures_only=args.trace_failures_only)
    return ExperimentEngine(n_jobs=args.jobs, failure_policy=policy,
                            trace=trace)


def _emit_metrics(result, dest: Optional[str],
                  prom_dest: Optional[str] = None) -> None:
    """Write a run's metrics record to *dest* ('-' = stdout)."""
    if prom_dest is not None:
        from repro.obs import prometheus_text

        with open(prom_dest, "w") as fh:
            fh.write(prometheus_text(result.metrics))
    if dest is None:
        return
    import json

    payload = {
        "metrics": result.metrics,
        "tasks": [t.to_dict() for t in result.tasks],
        "timing": {
            "wall_time_s": result.wall_time_s,
            "n_jobs": result.n_jobs,
            "n_tasks": result.n_tasks,
            "n_failed": result.n_failed,
            "packets_simulated": result.packets_simulated,
            "packets_per_second": result.packets_per_second,
        },
    }
    text = json.dumps(payload, indent=2, sort_keys=True)
    if dest == "-":
        print(text)
    else:
        with open(dest, "w") as fh:
            fh.write(text + "\n")


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FreeRider (CoNEXT'17) reproduction experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser("sweep", help="distance sweep (Figures 10-13)")
    sweep.add_argument("--radio", default="wifi", choices=config_names())
    sweep.add_argument("--deployment", default="los",
                       choices=["los", "nlos"])
    sweep.add_argument("--distances", type=_parse_floats,
                       default=[1, 5, 10, 20, 30, 40])
    sweep.add_argument("--packets", type=int, default=6)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--payload-bytes", type=int, default=None,
                       help="override the calibrated excitation payload")
    sweep.add_argument("--repetition", type=int, default=None,
                       help="override the calibrated symbol repetition")
    _add_engine_options(sweep)

    packet = sub.add_parser("packet", help="one end-to-end packet")
    packet.add_argument("--radio", default="wifi",
                        choices=registered_radios())
    packet.add_argument("--snr", type=float, default=20.0)
    packet.add_argument("--seed", type=int, default=0)

    mac = sub.add_parser("mac", help="multi-tag MAC (Figure 17)")
    mac.add_argument("--tags", type=_parse_ints, default=[4, 8, 12, 16, 20])
    mac.add_argument("--rounds", type=int, default=100)
    mac.add_argument("--seed", type=int, default=0)
    _add_engine_options(mac)

    sub.add_parser("regime", help="operational regime (Figure 14)")
    sub.add_parser("power", help="tag power budget (section 3.3)")

    bench = sub.add_parser(
        "bench", help="PHY micro-benchmarks (scalar vs batched kernels)")
    bench.add_argument("--smoke", action="store_true",
                       help="reduced work sizes for CI (seconds, not "
                            "minutes; tracked separately in the history)")
    bench.add_argument("--repeats", type=_positive_int, default=None,
                       help="timed repeats per kernel (default 3, or 1 "
                            "with --smoke)")
    bench.add_argument("--history", metavar="PATH", default="BENCH_phy.json",
                       help="perf-trajectory file to append to and "
                            "compare against (default: %(default)s)")
    bench.add_argument("--tolerance", type=float, default=0.20,
                       help="fractional slowdown vs the previous "
                            "comparable run that counts as a regression "
                            "(default: %(default)s)")
    bench.add_argument("--no-history", action="store_true",
                       help="measure and print only; skip the history "
                            "file entirely")

    report = sub.add_parser(
        "report", help="render a finished run (metrics record, trace "
                       "file, checkpoint journal) as text or markdown")
    report.add_argument("--metrics-json", metavar="PATH", default=None,
                        help="record written by a sweep's --metrics-json")
    report.add_argument("--trace", metavar="PATH", default=None,
                        help="JSONL trace written by a sweep's --trace")
    report.add_argument("--checkpoint", metavar="PATH", default=None,
                        help="checkpoint journal for the per-point "
                             "stage breakdown")
    report.add_argument("--format", dest="format",
                        choices=["text", "markdown"], default="text")
    report.add_argument("--top", type=_positive_int, default=10,
                        help="spans shown in the slowest-spans table "
                             "(default: %(default)s)")
    report.add_argument("-o", "--output", metavar="PATH", default=None,
                        help="write the report here instead of stdout")

    lint = sub.add_parser(
        "lint", help="project static analysis (reprolint rules R001-R008)")
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories "
                           "(default: src tests benchmarks examples)")
    lint.add_argument("--format", dest="format", choices=["text", "json"],
                      default="text")
    lint.add_argument("--show-suppressed", action="store_true",
                      help="also print suppressed findings")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue and exit")
    return parser


def _cmd_sweep(args) -> int:
    from repro.sim.engine import ExperimentSpec

    cfg = config_by_name(args.radio)
    overrides = {}
    if args.payload_bytes is not None:
        overrides["payload_bytes"] = args.payload_bytes
    if args.repetition is not None:
        overrides["repetition"] = args.repetition
    if overrides:
        cfg = cfg.replace(**overrides)
    dep = (Deployment.los(1.0) if args.deployment == "los"
           else Deployment.nlos(1.0))
    spec = ExperimentSpec(config=cfg, deployment=dep,
                          distances_m=tuple(args.distances),
                          packets_per_point=args.packets, seed=args.seed)
    result = _engine_from_args(args).run(spec, checkpoint=args.checkpoint,
                                         trace_path=args.trace)
    _emit_metrics(result, args.metrics_json, args.metrics_prom)
    if args.json:
        print(result.to_json(indent=2))
        return 0 if result.ok else 2
    rows = []
    for record, p in zip(result.tasks, result.points):
        if p is None:  # degraded point: flagged, not dropped
            rows.append([record.task, f"FAILED ({record.status})", "n/a",
                         "n/a", "n/a"])
            continue
        rows.append([p.distance_m, p.throughput_kbps,
                     p.ber if p.ber_valid else "n/a", p.rssi_dbm,
                     p.delivery_ratio])
    print(format_table(
        ["distance (m)", "throughput (kb/s)", "tag BER", "RSSI (dBm)",
         "delivery"], rows,
        title=f"{args.radio} backscatter, {args.deployment} deployment"))
    return 0 if result.ok else 2


def _cmd_packet(args) -> int:
    session = create_session(args.radio, seed=args.seed)
    result = session.run_packet(snr_db=args.snr)
    print(f"radio={args.radio} snr={args.snr:.1f} dB: "
          f"delivered={result.delivered} "
          f"tag_bits={result.tag_bits_sent} "
          f"errors={result.tag_bit_errors} "
          f"ber={result.tag_ber:.2e} "
          f"airtime={result.duration_us:.0f} us")
    return 0 if result.delivered else 1


def _cmd_mac(args) -> int:
    from repro.sim.engine import MacExperimentSpec

    spec = MacExperimentSpec(tag_counts=tuple(args.tags),
                             measured_rounds=12,
                             simulated_rounds=args.rounds,
                             seed=args.seed)
    result = _engine_from_args(args).run(spec, checkpoint=args.checkpoint,
                                         trace_path=args.trace)
    _emit_metrics(result, args.metrics_json, args.metrics_prom)
    if args.json:
        print(result.to_json(indent=2))
        return 0 if result.ok else 2
    rows = []
    for record, p in zip(result.tasks, result.points):
        if p is None:  # degraded point: flagged, not dropped
            rows.append([record.task, f"FAILED ({record.status})", "n/a",
                         "n/a", "n/a"])
            continue
        rows.append([p.n_tags, p.measured_kbps, p.simulated_kbps,
                     p.tdm_kbps, p.fairness])
    print(format_table(
        ["tags", "measured (kb/s)", "simulated (kb/s)", "TDM bound",
         "fairness"], rows, title="multi-tag MAC"))
    return 0 if result.ok else 2


def _cmd_regime(_args) -> int:
    configs = [config_by_name(r) for r in config_names()]
    rows = []
    for d_tx in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 4.5):
        rows.append([d_tx] + [c.budget().max_range_m(d_tx, c.sensitivity_dbm())
                              for c in configs])
    print(format_table(["tx-to-tag (m)"] + [c.name for c in configs], rows,
                       title="operational regime: max RX-to-tag distance (m)"))
    return 0


def _cmd_power(_args) -> int:
    from repro.tag.power import TagPowerModel

    model = TagPowerModel()
    rows = []
    for radio, shift in (("wifi", 20e6), ("zigbee", 5e6),
                         ("bluetooth", 2e6)):
        b = model.breakdown(radio, shift)
        rows.append([radio, shift / 1e6, b.clock_uw, b.rf_switch_uw,
                     b.control_uw, b.total_uw])
    print(format_table(
        ["radio", "shift (MHz)", "clock (uW)", "switch (uW)",
         "control (uW)", "total (uW)"], rows, title="tag power budget"))
    return 0


def _cmd_bench(args) -> int:
    from repro.bench import (
        compare_runs,
        format_report,
        load_history,
        run_benchmarks,
        update_history,
    )

    report = run_benchmarks(smoke=args.smoke, repeats=args.repeats)
    print(format_report(report))
    if args.no_history:
        return 0
    history = load_history(args.history)
    regressions = compare_runs(history, report, tolerance=args.tolerance)
    update_history(args.history, report)
    if regressions:
        print(f"\nPERF REGRESSION vs {args.history}:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 4
    print(f"\nhistory: appended run #{len(history['runs']) + 1} "
          f"to {args.history} (no regressions)")
    return 0


def _cmd_report(args) -> int:
    from repro.obs.report import (
        load_journal_rows,
        load_metrics_record,
        render_report,
    )
    from repro.obs.trace import read_trace

    if not (args.metrics_json or args.trace or args.checkpoint):
        print("error: report needs at least one of --metrics-json, "
              "--trace, --checkpoint", file=sys.stderr)
        return 2
    record = (load_metrics_record(args.metrics_json)
              if args.metrics_json else None)
    trace = read_trace(args.trace) if args.trace else None
    journal = (load_journal_rows(args.checkpoint)
               if args.checkpoint else None)
    text = render_report(record, trace, journal,
                         fmt=args.format, top=args.top)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
    else:
        print(text, end="")
    return 0


def _cmd_lint(args) -> int:
    from repro.tools.lint import main as lint_main

    argv: List[str] = []
    if args.list_rules:
        argv.append("--list-rules")
    if args.show_suppressed:
        argv.append("--show-suppressed")
    argv += ["--format", args.format]
    argv += list(args.paths)
    return lint_main(argv)


_COMMANDS = {
    "sweep": _cmd_sweep,
    "packet": _cmd_packet,
    "mac": _cmd_mac,
    "regime": _cmd_regime,
    "power": _cmd_power,
    "bench": _cmd_bench,
    "report": _cmd_report,
    "lint": _cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    from repro.sim.engine import TaskFailure

    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except TaskFailure as exc:
        # fail-fast policy: surface the failed point and a hint.
        print(f"error: {exc}", file=sys.stderr)
        print("hint: rerun with --failure-policy degrade to finish the "
              "sweep with failed points flagged, or --retries N to retry",
              file=sys.stderr)
        return 3


if __name__ == "__main__":
    sys.exit(main())

"""Half-sine-shaped OQPSK modem (802.15.4 2.4 GHz band).

Even-indexed chips drive the in-phase rail, odd-indexed chips the
quadrature rail delayed by one chip period Tc — the half-chip offset
that avoids 180-degree envelope transitions (low PAPR).  Each rail's
chip is shaped by a half-sine spanning 2*Tc, making the waveform
MSK-equivalent.

This offset structure is exactly what a frequency-agnostic tag phase
flip violates at its onset (paper section 3.2.2): the flip lands
mid-pulse on one rail, corrupting the straddling symbol.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.filters import half_sine_pulse

__all__ = ["OqpskModem", "CHIP_RATE_HZ"]

CHIP_RATE_HZ = 2e6


@dataclass
class OqpskModem:
    """Modulate/demodulate chip sequences at *sps* samples per chip."""

    sps: int = 4

    @property
    def sample_rate_hz(self) -> float:
        return CHIP_RATE_HZ * self.sps

    def modulate(self, chips) -> np.ndarray:
        """Chips (0/1 array, even length) -> complex baseband waveform.

        Output length is ``(n_chips + 1) * sps`` samples: the quadrature
        rail's Tc offset extends the tail by one chip.
        """
        arr = np.asarray(chips, dtype=np.uint8).ravel()
        if arr.size % 2:
            raise ValueError("OQPSK needs an even chip count")
        amp = 2.0 * arr.astype(float) - 1.0
        i_chips = amp[0::2]
        q_chips = amp[1::2]
        pulse = half_sine_pulse(2 * self.sps)  # spans two chip periods
        n_pairs = i_chips.size
        total = (arr.size + 1) * self.sps
        # Same-rail pulses abut without overlapping (each spans 2*Tc and
        # starts every 2*Tc), so both rails assemble by pure reshape.
        i_rail = np.zeros(total)
        q_rail = np.zeros(total)
        i_rail[: n_pairs * 2 * self.sps] = \
            (i_chips[:, None] * pulse[None, :]).ravel()
        q_rail[self.sps: self.sps + n_pairs * 2 * self.sps] = \
            (q_chips[:, None] * pulse[None, :]).ravel()
        return i_rail + 1j * q_rail

    def demodulate_soft(self, waveform: np.ndarray, n_chips: int) -> np.ndarray:
        """Matched-filter each rail and sample at pulse centres.

        Returns *n_chips* soft metrics (positive favours chip 1) in
        original chip order.
        """
        if n_chips % 2:
            raise ValueError("OQPSK needs an even chip count")
        pulse = half_sine_pulse(2 * self.sps)
        norm = pulse @ pulse
        n_pairs = n_chips // 2
        metrics = np.empty(n_chips)
        wav = np.asarray(waveform)
        needed = (n_chips + 1) * self.sps
        if wav.size < needed:
            wav = np.concatenate([wav, np.zeros(needed - wav.size, dtype=complex)])
        span = 2 * self.sps
        i_blocks = wav[: n_pairs * span].real.reshape(n_pairs, span)
        q_blocks = wav[self.sps: self.sps + n_pairs * span].imag \
            .reshape(n_pairs, span)
        metrics[0::2] = (i_blocks @ pulse) / norm
        metrics[1::2] = (q_blocks @ pulse) / norm
        return metrics

    def demodulate_soft_batch(self, waveforms: np.ndarray,
                              n_chips: int) -> np.ndarray:
        """Matched-filter a (B, N) waveform stack; returns (B, n_chips)
        soft metrics, bit-identical to :meth:`demodulate_soft` per row
        (the rail correlation is a row-wise matrix-vector product, which
        is invariant to stacking more rows)."""
        if n_chips % 2:
            raise ValueError("OQPSK needs an even chip count")
        wav = np.asarray(waveforms)
        if wav.ndim != 2:
            raise ValueError("demodulate_soft_batch expects a (B, N) array")
        pulse = half_sine_pulse(2 * self.sps)
        norm = pulse @ pulse
        n_pairs = n_chips // 2
        n_b = wav.shape[0]
        needed = (n_chips + 1) * self.sps
        if wav.shape[1] < needed:
            wav = np.concatenate(
                [wav, np.zeros((n_b, needed - wav.shape[1]), dtype=complex)],
                axis=1)
        span = 2 * self.sps
        i_blocks = wav[:, : n_pairs * span].real.reshape(
            n_b * n_pairs, span)
        q_blocks = wav[:, self.sps: self.sps + n_pairs * span].imag \
            .reshape(n_b * n_pairs, span)
        metrics = np.empty((n_b, n_chips))
        metrics[:, 0::2] = ((i_blocks @ pulse) / norm).reshape(n_b, n_pairs)
        metrics[:, 1::2] = ((q_blocks @ pulse) / norm).reshape(n_b, n_pairs)
        return metrics

    def demodulate(self, waveform: np.ndarray, n_chips: int) -> np.ndarray:
        """Hard chips from :meth:`demodulate_soft`."""
        return (self.demodulate_soft(waveform, n_chips) > 0).astype(np.uint8)

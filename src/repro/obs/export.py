"""Prometheus-style text exposition of a metrics snapshot — and the
strict parser that validates it.

Renders the plain-dict form of :meth:`MetricsRegistry.snapshot` into
the text format scrape endpoints serve: counters become ``*_total``
counters, gauges stay bare gauges, timers and spans become ``_seconds``
summaries (count / sum plus min/max gauges), and histograms become
proper ``histogram`` families with cumulative ``le`` buckets, a
``+Inf`` bucket, ``_sum`` and ``_count``.  Dotted metric names are
flattened to the ``[a-zA-Z0-9_]`` charset; span paths, which are
hierarchical, ride in a ``path`` label instead.

Two format rules worth spelling out:

* **One ``# TYPE`` line per family.**  Duplicate TYPE lines for a
  family are invalid exposition; the span renderer emits each family
  header exactly once and then all per-path samples.
* **Histograms supersede same-named timers.**  A timer ``engine.task``
  and a histogram ``engine.task.seconds`` would both flatten to the
  family ``repro_engine_task_seconds``.  When that happens the
  histogram (a strict superset: buckets plus the summary's count/sum)
  owns the family and the timer's summary lines are skipped — its
  ``_min`` / ``_max`` gauges still render, as those are separate
  families.  JSON snapshots keep both forms.

:func:`parse_prometheus_text` is the matching strict reader used by
tests, CI, and ``repro top``: it rejects duplicate TYPE lines, samples
that belong to no declared family, and histograms whose cumulative
buckets decrease or whose ``+Inf`` bucket disagrees with ``_count``.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs.metrics import Histogram

__all__ = ["prometheus_text", "parse_prometheus_text", "Exposition",
           "ExpositionError"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(prefix: str, dotted: str, suffix: str = "") -> str:
    name = _NAME_RE.sub("_", dotted)
    return f"{prefix}_{name}{suffix}"


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    return repr(float(value))


def _escape_label(value: str) -> str:
    """Escape a label value per the exposition spec: backslash, double
    quote, and newline."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _summary_lines(name: str, data: Mapping[str, Any],
                   labels: str = "", header: bool = True) -> List[str]:
    lines: List[str] = []
    if header:
        lines.append(f"# TYPE {name}_seconds summary")
    lines.append(f"{name}_seconds_count{labels} {int(data.get('count', 0))}")
    lines.append(f"{name}_seconds_sum{labels} "
                 f"{_fmt(float(data.get('total_s', 0.0)))}")
    return lines


def _min_max_lines(name: str, data: Mapping[str, Any],
                   labels: str = "") -> Tuple[List[str], List[str]]:
    """(min lines, max lines) for one timer/span — sans TYPE headers."""
    min_lines: List[str] = []
    min_s: Optional[float] = data.get("min_s")
    if min_s is not None:
        min_lines.append(f"{name}_seconds_min{labels} {_fmt(float(min_s))}")
    max_lines = [f"{name}_seconds_max{labels} "
                 f"{_fmt(float(data.get('max_s', 0.0)))}"]
    return min_lines, max_lines


def _histogram_lines(name: str, data: Mapping[str, Any]) -> List[str]:
    hist = Histogram.from_dict(dict(data))
    lines = [f"# TYPE {name} histogram"]
    cumulative = 0
    for bound, count in zip(hist.buckets, hist.counts):
        cumulative += count
        lines.append(
            f'{name}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {hist.count}')
    lines.append(f"{name}_sum {_fmt(hist.sum)}")
    lines.append(f"{name}_count {hist.count}")
    return lines


def prometheus_text(snapshot: Mapping[str, Any],
                    prefix: str = "repro") -> str:
    """Render *snapshot* (counters/gauges/timers/histograms/spans) as
    exposition text."""
    lines: List[str] = []
    counters: Dict[str, Any] = dict(snapshot.get("counters", {}))
    for dotted in sorted(counters):
        name = _metric_name(prefix, dotted, "_total")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {int(counters[dotted])}")
    gauges: Dict[str, Any] = dict(snapshot.get("gauges", {}))
    for dotted in sorted(gauges):
        name = _metric_name(prefix, dotted)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt(float(gauges[dotted]))}")
    histograms: Dict[str, Any] = dict(snapshot.get("histograms", {}))
    hist_families = {_metric_name(prefix, dotted) for dotted in histograms}
    timers: Dict[str, Any] = dict(snapshot.get("timers", {}))
    for dotted in sorted(timers):
        name = _metric_name(prefix, dotted)
        data = timers[dotted]
        # A histogram flattening to this timer's summary family owns
        # it; keep only the timer's min/max gauges.
        if f"{name}_seconds" not in hist_families:
            lines.extend(_summary_lines(name, data))
        min_lines, max_lines = _min_max_lines(name, data)
        if min_lines:
            lines.append(f"# TYPE {name}_seconds_min gauge")
            lines.extend(min_lines)
        lines.append(f"# TYPE {name}_seconds_max gauge")
        lines.extend(max_lines)
    for dotted in sorted(histograms):
        lines.extend(_histogram_lines(_metric_name(prefix, dotted),
                                      histograms[dotted]))
    spans: Dict[str, Any] = dict(snapshot.get("spans", {}))
    if spans:
        # One family header for all span paths, then per-path samples.
        span_name = f"{prefix}_span"
        all_min: List[str] = []
        all_max: List[str] = []
        lines.append(f"# TYPE {span_name}_seconds summary")
        for path in sorted(spans):
            labels = '{path="' + _escape_label(path) + '"}'
            lines.extend(_summary_lines(span_name, spans[path],
                                        labels=labels, header=False))
            min_lines, max_lines = _min_max_lines(span_name, spans[path],
                                                  labels=labels)
            all_min.extend(min_lines)
            all_max.extend(max_lines)
        if all_min:
            lines.append(f"# TYPE {span_name}_seconds_min gauge")
            lines.extend(all_min)
        lines.append(f"# TYPE {span_name}_seconds_max gauge")
        lines.extend(all_max)
    return "\n".join(lines) + ("\n" if lines else "")


# -- strict parsing ---------------------------------------------------------

class ExpositionError(ValueError):
    """The exposition text violates the format or its invariants."""


_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)$")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label(value: str) -> str:
    return (value.replace("\\n", "\n").replace('\\"', '"')
            .replace("\\\\", "\\"))


def _parse_labels(raw: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    pos = 0
    while pos < len(raw):
        match = _LABEL_RE.match(raw, pos)
        if match is None:
            raise ExpositionError(f"malformed label set: {{{raw}}}")
        labels[match.group(1)] = _unescape_label(match.group(2))
        pos = match.end()
        if pos < len(raw):
            if raw[pos] != ",":
                raise ExpositionError(f"malformed label set: {{{raw}}}")
            pos += 1
    return labels


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    try:
        return float(raw)
    except ValueError:
        raise ExpositionError(f"unparsable sample value: {raw!r}")


#: Sample-name suffixes each family type may emit ("" = the bare name).
_TYPE_SUFFIXES = {
    "counter": ("",),
    "gauge": ("",),
    "summary": ("_count", "_sum", ""),
    "histogram": ("_bucket", "_sum", "_count"),
}


class Exposition:
    """Parsed, validated exposition text.

    ``families`` maps family name to declared type; ``samples`` maps
    ``(sample name, sorted label items)`` to the value.
    """

    def __init__(self) -> None:
        self.families: Dict[str, str] = {}
        self.samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]],
                           float] = {}

    def value(self, name: str,
              labels: Optional[Mapping[str, str]] = None) -> Optional[float]:
        key = (name, tuple(sorted((labels or {}).items())))
        return self.samples.get(key)

    def _family_of(self, sample: str) -> Optional[Tuple[str, str]]:
        for family, ftype in self.families.items():
            for suffix in _TYPE_SUFFIXES[ftype]:
                if sample == family + suffix:
                    return family, ftype
        return None

    def histogram(self, family: str) -> Histogram:
        """Rebuild a :class:`Histogram` from a parsed histogram family
        (so callers get ``quantile`` for free)."""
        if self.families.get(family) != "histogram":
            raise ExpositionError(f"{family} is not a histogram family")
        bounds: List[float] = []
        cumulative: List[float] = []
        inf_count: Optional[float] = None
        for (name, labels), val in self.samples.items():
            if name != f"{family}_bucket":
                continue
            le = dict(labels)["le"]
            if le == "+Inf":
                inf_count = val
            else:
                bounds.append(float(le))
                cumulative.append(val)
        order = sorted(range(len(bounds)), key=lambda i: bounds[i])
        hist = Histogram([bounds[i] for i in order])
        prev = 0.0
        for slot, i in enumerate(order):
            hist.counts[slot] = int(cumulative[i] - prev)
            prev = cumulative[i]
        assert inf_count is not None  # validated at parse time
        hist.counts[-1] = int(inf_count - prev)
        hist.count = int(self.value(f"{family}_count") or 0)
        hist.sum = float(self.value(f"{family}_sum") or 0.0)
        return hist


def _validate_histograms(exp: Exposition) -> None:
    for family, ftype in exp.families.items():
        if ftype != "histogram":
            continue
        buckets: List[Tuple[float, float]] = []
        inf_count: Optional[float] = None
        for (name, labels), val in exp.samples.items():
            if name != f"{family}_bucket":
                continue
            le = dict(labels).get("le")
            if le is None:
                raise ExpositionError(
                    f"{family}_bucket sample without an le label")
            if le == "+Inf":
                inf_count = val
            else:
                buckets.append((float(le), val))
        if inf_count is None:
            raise ExpositionError(f"{family} has no +Inf bucket")
        count = exp.value(f"{family}_count")
        if count is None or exp.value(f"{family}_sum") is None:
            raise ExpositionError(f"{family} lacks _sum/_count samples")
        if inf_count != count:
            raise ExpositionError(
                f"{family}: +Inf bucket {inf_count} != _count {count}")
        buckets.sort()
        previous = 0.0
        for bound, cumulative in buckets:
            if cumulative < previous:
                raise ExpositionError(
                    f"{family}: bucket le={bound} count {cumulative} "
                    f"decreases from {previous}")
            previous = cumulative
        if previous > inf_count:
            raise ExpositionError(
                f"{family}: finite buckets exceed +Inf bucket")


def parse_prometheus_text(text: str) -> Exposition:
    """Parse exposition *text*, enforcing format invariants.

    Raises :class:`ExpositionError` on duplicate TYPE lines, duplicate
    samples, samples outside any declared family, malformed lines, and
    histogram families whose cumulative buckets decrease or whose
    ``+Inf`` bucket disagrees with ``_count``.
    """
    exp = Exposition()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in _TYPE_SUFFIXES:
                raise ExpositionError(f"line {lineno}: bad TYPE line {line!r}")
            family = parts[2]
            if family in exp.families:
                raise ExpositionError(
                    f"line {lineno}: duplicate TYPE for family {family}")
            exp.families[family] = parts[3]
            continue
        if line.startswith("#"):
            continue  # HELP or comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ExpositionError(f"line {lineno}: unparsable line {line!r}")
        name, raw_labels, raw_value = match.groups()
        labels = _parse_labels(raw_labels) if raw_labels else {}
        if exp._family_of(name) is None:
            raise ExpositionError(
                f"line {lineno}: sample {name} belongs to no declared family")
        key = (name, tuple(sorted(labels.items())))
        if key in exp.samples:
            raise ExpositionError(
                f"line {lineno}: duplicate sample {name}{labels}")
        exp.samples[key] = _parse_value(raw_value)
    _validate_histograms(exp)
    return exp

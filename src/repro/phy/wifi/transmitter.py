"""Full 802.11g/n ERP-OFDM transmit chain.

bytes -> [SERVICE|PSDU|tail|pad] -> scramble -> convolutional-encode ->
interleave -> QAM-map -> OFDM-modulate, preceded by STF/LTF training and
the SIGNAL symbol (Figure 6 of the paper, left side).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.utils.bits import bytes_to_bits
from repro.utils.rng import make_rng
from repro.phy.wifi.scrambler import Scrambler
from repro.phy.wifi.convolutional import CODE_802_11
from repro.phy.wifi.interleaver import interleave
from repro.phy.wifi.constellation import CONSTELLATIONS
from repro.phy.wifi.ofdm import OfdmModulator
from repro.phy.wifi.plcp import (
    build_ppdu_bits,
    build_signal_bits,
    long_training_field,
    short_training_field,
    TAIL_BITS,
)
from repro.phy.wifi.rates import WifiRate, rate_by_mbps

__all__ = ["WifiFrame", "WifiTransmitter", "SAMPLE_RATE_HZ"]

SAMPLE_RATE_HZ = 20e6
PREAMBLE_SAMPLES = 320  # STF (160) + LTF (160)


@dataclass
class WifiFrame:
    """A transmitted PPDU: the waveform plus everything a test or a
    FreeRider decoder needs to know about how it was built."""

    samples: np.ndarray
    rate: WifiRate
    psdu: bytes
    scrambler_seed: int
    n_data_symbols: int
    data_bits: np.ndarray = field(repr=False)  # unscrambled SERVICE+PSDU+tail+pad

    @property
    def n_samples(self) -> int:
        return int(self.samples.size)

    @property
    def duration_us(self) -> float:
        return self.n_samples / SAMPLE_RATE_HZ * 1e6

    @property
    def data_start(self) -> int:
        """Sample index where the first DATA OFDM symbol begins."""
        return PREAMBLE_SAMPLES + 80  # preamble + SIGNAL symbol

    @property
    def psdu_bits(self) -> np.ndarray:
        return bytes_to_bits(self.psdu)


class WifiTransmitter:
    """Generates standard-conformant 802.11g/n PPDUs.

    Parameters
    ----------
    rate_mbps:
        One of the eight ERP-OFDM rates; the paper's evaluation uses 6.
    seed:
        RNG seed controlling per-frame scrambler seeds.
    """

    def __init__(self, rate_mbps: float = 6.0, seed: Optional[int] = None):
        self.rate = rate_by_mbps(rate_mbps)
        self._rng = make_rng(seed)
        self._ofdm = OfdmModulator()

    def build(self, psdu: bytes, scrambler_seed: Optional[int] = None) -> WifiFrame:
        """Construct the complete PPDU waveform for *psdu*."""
        if not psdu:
            raise ValueError("PSDU must be non-empty")
        if scrambler_seed is None:
            scrambler_seed = int(self._rng.integers(1, 128))

        data_bits, n_symbols = build_ppdu_bits(psdu, self.rate)

        # Scramble everything, then force the 6 tail bits (which follow
        # the PSDU) back to zero as the standard requires.
        scrambled = Scrambler(scrambler_seed).process(data_bits)
        tail_start = 16 + 8 * len(psdu)
        scrambled[tail_start:tail_start + TAIL_BITS] = 0

        coded = CODE_802_11.encode(scrambled, self.rate.coding_rate)
        interleaved = interleave(coded, self.rate.n_cbps, self.rate.n_bpsc)
        symbols = self.rate.constellation.modulate(interleaved)
        symbol_matrix = symbols.reshape(n_symbols, -1)
        data_wave = self._ofdm.modulate(symbol_matrix, first_index=1)

        signal_wave = self._build_signal_wave(len(psdu))
        preamble = np.concatenate([short_training_field(), long_training_field()])
        samples = np.concatenate([preamble, signal_wave, data_wave])
        return WifiFrame(samples=samples, rate=self.rate, psdu=psdu,
                         scrambler_seed=scrambler_seed,
                         n_data_symbols=n_symbols, data_bits=data_bits)

    def _build_signal_wave(self, length_bytes: int) -> np.ndarray:
        """SIGNAL symbol: 24 bits, BPSK, rate 1/2, never scrambled."""
        bits = build_signal_bits(self.rate, length_bytes)
        coded = CODE_802_11.encode(bits, (1, 2))
        interleaved = interleave(coded, 48, 1)
        syms = CONSTELLATIONS["BPSK"].modulate(interleaved)
        return self._ofdm.modulate_symbol(syms, symbol_index=0)

    def random_psdu(self, n_bytes: int) -> bytes:
        """Generate a random payload (models productive traffic)."""
        if n_bytes < 1:
            raise ValueError("payload must be at least 1 byte")
        return bytes(int(b) for b in self._rng.integers(0, 256, size=n_bytes))

# lint-as: src/repro/phy/wifi/receiver.py
"""R008 violations: ad-hoc monotonic timing in an instrumented module."""

import time


def decode_timed(samples):
    start = time.perf_counter()
    result = decode(samples)
    return result, time.perf_counter() - start


def poll_deadline():
    return time.monotonic() + 5.0


def decode(samples):
    return samples

"""R001 — randomness must flow through an explicit, seeded Generator."""

from __future__ import annotations

import ast

from repro.tools.lint.model import Rule
from repro.tools.lint.rules.base import AstLintRule, dotted_name

# Construction helpers of numpy.random that are deterministic plumbing,
# not hidden-global-state draws.
_NUMPY_RNG_ALLOWED = {
    "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
}


class GlobalRngRule(AstLintRule):
    rule = Rule(
        "R001", "no-global-rng",
        "randomness must flow through an explicit, seeded Generator",
        "Module-level RNG (np.random.rand, random.random, seedless "
        "default_rng) draws from hidden global state, breaking the "
        "engine's worker-count-invariant determinism contract.  Mint "
        "generators via utils.rng / spawned SeedSequences instead.")
    # The one module allowed to mint generators from raw seeds.
    path_allow = ("repro/utils/rng.py",)

    def visit_Call(self, node: ast.Call) -> None:
        canon = self.canonical(dotted_name(node.func))
        if canon:
            self._check_rng_call(node, canon)
        self.generic_visit(node)

    def _check_rng_call(self, node: ast.Call, canon: str) -> None:
        if canon.startswith("numpy.random."):
            tail = canon[len("numpy.random."):]
            head = tail.partition(".")[0]
            if tail == "default_rng":
                if not node.args and not node.keywords:
                    self.flag(node,
                              "seedless np.random.default_rng() — seed it "
                              "from a spawned SeedSequence or "
                              "utils.rng.derive_seed")
            elif head not in _NUMPY_RNG_ALLOWED:
                self.flag(node,
                          f"module-level numpy RNG call "
                          f"numpy.random.{tail}() draws hidden global "
                          f"state; use an explicit Generator")
        elif canon.startswith("random.") and self._is_stdlib_random(canon):
            self.flag(node,
                      f"stdlib global RNG call {canon}(); use an explicit "
                      f"numpy Generator from utils.rng")

    def _is_stdlib_random(self, canon: str) -> bool:
        # Only flag when the name resolves to the stdlib module: either
        # ``import random`` is in scope, or the call came from
        # ``from random import <fn>`` (already canonicalised).
        assert self.ctx is not None
        head = canon.partition(".")[0]
        return (self.ctx.imports.modules.get(head) == "random"
                or canon in self.ctx.imports.names.values())

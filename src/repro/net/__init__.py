"""Network-level models: the ambient-traffic duration distribution of
Figure 3 and the coexistence experiments of Figures 15-16."""

from repro.net.traffic import AmbientTrafficModel, TrafficMix
from repro.net.coexistence import (
    CoexistenceSimulator,
    WifiThroughputModel,
    adjacent_channel_rejection_db,
)

__all__ = [
    "AmbientTrafficModel",
    "TrafficMix",
    "CoexistenceSimulator",
    "WifiThroughputModel",
    "adjacent_channel_rejection_db",
]

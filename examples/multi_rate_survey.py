#!/usr/bin/env python3
"""Multi-rate survey: ride whatever the network is actually sending.

A real AP hops between MCSs as channel conditions change.  FreeRider's
tag applies the same 180-degree translation regardless; the *decoder*
adapts — XOR for BPSK/QPSK excitations, constellation-rotation
estimation for 16/64-QAM (see DESIGN.md finding 5).  This example
replays a rate-adaptive traffic trace through one tag and shows tag
data arriving across every MCS, plus the PLM traffic shaper scheduling
a downlink message inside the same traffic at zero padding cost.

Run:  python examples/multi_rate_survey.py
"""

import numpy as np

from repro.core.session import WifiBackscatterSession
from repro.mac.shaper import PlmTrafficShaper
from repro.utils.bits import bytes_to_bits


def main() -> None:
    rng = np.random.default_rng(123)

    # A rate-adaptation trace: the AP reacts to fading by moving MCS.
    trace = [6.0, 6.0, 12.0, 24.0, 54.0, 54.0, 24.0, 9.0, 36.0, 48.0]
    message = bytes_to_bits(b"\xc4")  # 8 tag bits per packet

    print(f"{'pkt':>3s} {'MCS (Mb/s)':>11s} {'decoder':>10s} "
          f"{'tag bits':>8s} {'errors':>6s}")
    total = errors = 0
    for i, mbps in enumerate(trace):
        session = WifiBackscatterSession(rate_mbps=mbps, seed=100 + i,
                                         payload_bytes=512)
        result = session.run_packet(snr_db=18.0, tag_bits=message)
        decoder = "XOR" if session.transmitter.rate.n_bpsc <= 2 \
            else "rotation"
        print(f"{i:3d} {mbps:11.0f} {decoder:>10s} "
              f"{result.tag_bits_sent:8d} {result.tag_bit_errors:6d}")
        total += result.tag_bits_sent
        errors += result.tag_bit_errors
    print(f"\n{total} tag bits over 10 rate-hopping packets, "
          f"{errors} errors")

    # Downlink scheduling rides the same traffic: re-packetise the
    # backlog into PLM durations (paper section 2.4.2).
    shaper = PlmTrafficShaper(phy_rate_mbps=6.0)
    start_msg = [1, 0, 1, 1, 0, 0, 1, 0]
    backlog = 12_000  # bytes queued for ordinary clients
    packets, remaining = shaper.shape(start_msg, backlog)
    overhead = shaper.overhead_fraction(start_msg, backlog)
    print(f"\nPLM downlink: {len(packets)} shaped packets, "
          f"{shaper.airtime_us(start_msg)/1e3:.1f} ms airtime, "
          f"padding overhead {100*overhead:.1f} % "
          f"({backlog - remaining} productive bytes carried)")


if __name__ == "__main__":
    main()

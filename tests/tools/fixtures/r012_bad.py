"""R012 violations: a suppression that is stale and unjustified."""

x = 1  # reprolint: disable=R003

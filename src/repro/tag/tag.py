"""The assembled FreeRider tag (paper Figure 5).

Signal path: the reception antenna feeds an envelope detector that
flags the start of an excitation packet; after the measured 0.35 us
latency the codeword-translation logic drives the RF switch on the
second antenna, multiplying the passing signal by the translator's
control waveform.  Frequency shifting to the adjacent channel (20 MHz
for WiFi channel 6 -> 13) is a constant toggle whose conversion loss is
accounted in :class:`repro.channel.link.BackscatterLinkBudget`; the
baseband simulation is carried out directly in the shifted channel's
frame of reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.translation import TranslationPlan
from repro.tag.envelope import EnvelopeDetector
from repro.tag.oscillator import RingOscillator
from repro.tag.power import TagPowerModel, PowerBreakdown
from repro.tag.rf_switch import RfSwitch
from repro.utils.bits import as_bits
from repro.utils.rng import make_rng

__all__ = ["ExcitationInfo", "FreeRiderTag", "TagOutput"]


@dataclass(frozen=True)
class ExcitationInfo:
    """What a tag needs to know about the excitation waveform's timing.

    In hardware this knowledge is a pre-programmed per-radio schedule
    (unit duration, preamble length) plus the envelope detector's onset
    event; in simulation we hand it over explicitly.
    """

    sample_rate_hz: float
    unit_samples: int
    data_start_sample: int
    total_samples: int
    radio: str = "wifi"

    def __post_init__(self):
        if self.sample_rate_hz <= 0:
            raise ValueError("sample rate must be positive")
        if not 0 <= self.data_start_sample <= self.total_samples:
            raise ValueError("data_start_sample out of range")
        if self.unit_samples < 1:
            raise ValueError("unit_samples must be >= 1")

    def units_available(self, start_sample: int) -> int:
        """PHY units fully contained between *start_sample* and the end."""
        return max(0, (self.total_samples - start_sample) // self.unit_samples)


@dataclass
class TagOutput:
    """Result of one backscatter operation."""

    samples: Optional[np.ndarray]
    detected: bool
    bits_sent: int
    plan: Optional[TranslationPlan] = None


class FreeRiderTag:
    """A single FreeRider tag.

    Parameters
    ----------
    translator:
        A :class:`~repro.core.translation.PhaseTranslator` or
        :class:`~repro.core.translation.FskShiftTranslator`.
    repetition:
        PHY units per tag symbol (the redundancy of section 3.2.1/3.2.2).
    envelope:
        Envelope-detector model used for packet onset detection.
    """

    def __init__(self, translator, repetition: int,
                 envelope: Optional[EnvelopeDetector] = None,
                 switch: Optional[RfSwitch] = None,
                 oscillator: Optional[RingOscillator] = None,
                 power_model: Optional[TagPowerModel] = None,
                 name: str = "tag"):
        if repetition < 1:
            raise ValueError("repetition must be >= 1")
        self.translator = translator
        self.repetition = repetition
        self.envelope = envelope or EnvelopeDetector()
        self.switch = switch or RfSwitch()
        self.oscillator = oscillator or RingOscillator()
        self.power_model = power_model or TagPowerModel()
        self.name = name
        self._plan_cache: Optional[tuple] = None

    # -- timing ---------------------------------------------------------

    def plan_for(self, info: ExcitationInfo) -> TranslationPlan:
        """Translation plan: start after the PHY header plus the envelope
        detector's onset latency (which lands within an OFDM cyclic
        prefix, hence harmless — paper section 3.1)."""
        # One-slot memo: the plan is pure arithmetic over (info,
        # latency, repetition), and per-packet callers hand in the same
        # shared excitation info thousands of times in a row.
        key = (info, self.envelope.latency_us, self.repetition)
        cached = self._plan_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        latency_samples = int(round(self.envelope.latency_us * 1e-6
                                    * info.sample_rate_hz))
        start = info.data_start_sample + latency_samples
        plan = TranslationPlan(
            unit_samples=info.unit_samples,
            repetition=self.repetition,
            start_sample=start,
            n_units=info.units_available(start),
        )
        self._plan_cache = (key, plan)
        return plan

    def capacity_bits(self, info: ExcitationInfo) -> int:
        """Tag bits that fit in one excitation packet."""
        return self.plan_for(info).capacity_bits(self.translator.bits_per_symbol)

    # -- the backscatter operation ---------------------------------------

    def backscatter(self, excitation: np.ndarray, info: ExcitationInfo,
                    tag_bits, incident_power_dbm: Optional[float] = None,
                    rng: Optional[np.random.Generator] = None) -> TagOutput:
        """Reflect *excitation* while embedding *tag_bits*.

        When *incident_power_dbm* is given, the envelope detector gates
        the whole operation: an undetected packet is not backscattered
        (the tag never learns it happened).
        """
        bits = as_bits(tag_bits)
        if incident_power_dbm is not None:
            gen = make_rng(rng)
            if not self.envelope.detects(incident_power_dbm, gen):
                return TagOutput(None, False, 0)
        plan = self.plan_for(info)
        capacity = plan.capacity_bits(self.translator.bits_per_symbol)
        send = bits[:capacity]
        ctrl = self.translator.control_waveform(send, plan, info.total_samples)
        if excitation.size != info.total_samples:
            raise ValueError("excitation length disagrees with info")
        return TagOutput(excitation * ctrl, True, int(send.size), plan)

    # -- bookkeeping ------------------------------------------------------

    def power_budget(self, shift_hz: float = 20e6,
                     radio: Optional[str] = None) -> PowerBreakdown:
        """Micro-watt budget while backscattering (section 3.3)."""
        return self.power_model.breakdown(radio or "wifi", shift_hz)

"""Tests for packet length modulation (paper section 2.4.2)."""

import numpy as np
import pytest

from repro.mac.plm import PlmConfig, PlmLink, PlmReceiver, PlmTransmitter
from repro.net.traffic import AmbientTrafficModel
from repro.tag.envelope import EnvelopeDetector


class TestConfig:
    def test_default_rate_near_500bps(self):
        assert PlmConfig().bit_rate_bps == pytest.approx(500, rel=0.1)

    def test_overlapping_windows_rejected(self):
        with pytest.raises(ValueError):
            PlmConfig(l0_us=700.0, l1_us=730.0, bound_us=25.0)

    def test_durations_positive(self):
        with pytest.raises(ValueError):
            PlmConfig(l0_us=0.0)


class TestTransmitter:
    def test_pulse_durations_encode_bits(self):
        tx = PlmTransmitter()
        pulses = tx.pulses_for([0, 1, 0])
        assert pulses[0][1] == tx.config.l0_us
        assert pulses[1][1] == tx.config.l1_us

    def test_pulses_do_not_overlap(self):
        tx = PlmTransmitter()
        pulses = tx.pulses_for([1] * 10)
        for (t0, d0), (t1, _) in zip(pulses, pulses[1:]):
            assert t1 >= t0 + d0 + tx.config.gap_us - 1e-9

    def test_frame_prepends_preamble(self):
        tx = PlmTransmitter()
        framed = tx.frame([1, 1])
        assert list(framed[:len(tx.config.preamble)]) == list(tx.config.preamble)

    def test_message_airtime(self):
        tx = PlmTransmitter()
        t = tx.message_airtime_us(8)
        assert t == pytest.approx((8 + 8) * tx.config.mean_bit_period_us)


class TestReceiver:
    def test_classify_within_bound(self):
        rx = PlmReceiver()
        assert rx.classify(710.0) == 0
        assert rx.classify(1090.0) == 1
        assert rx.classify(900.0) is None
        assert rx.classify(5000.0) is None

    def test_preamble_match_extracts_payload(self):
        cfg = PlmConfig()
        tx, rx = PlmTransmitter(cfg), PlmReceiver(cfg)
        payload = np.array([1, 0, 1, 1, 0, 0, 0, 1], dtype=np.uint8)
        rx.set_payload_length(8)
        pulses = tx.pulses_for(tx.frame(payload))
        from repro.tag.envelope import PulseEvent

        events = [PulseEvent(t, d) for t, d in pulses]
        msgs = rx.push_events(events)
        assert len(msgs) == 1
        assert np.array_equal(msgs[0], payload)

    def test_ambient_pulses_ignored(self):
        rx = PlmReceiver()
        rx.set_payload_length(4)
        from repro.tag.envelope import PulseEvent

        noise = [PulseEvent(float(i) * 3000, 300.0) for i in range(20)]
        assert rx.push_events(noise) == []

    def test_bad_payload_length_raises(self):
        with pytest.raises(ValueError):
            PlmReceiver().set_payload_length(0)


class TestEndToEndLink:
    def test_strong_signal_delivers(self, rng):
        link = PlmLink()
        ok = link.send_message([1, 0, 1, 1], incident_power_dbm=-30.0,
                               rng=rng)
        assert ok

    def test_weak_signal_fails(self, rng):
        link = PlmLink()
        ok = link.send_message([1, 0, 1, 1], incident_power_dbm=-85.0,
                               rng=rng)
        assert not ok

    def test_survives_ambient_traffic(self, rng):
        link = PlmLink(detector=EnvelopeDetector(edge_jitter_us=2.0))
        traffic = AmbientTrafficModel(load=0.3, rng=rng)
        horizon = link.transmitter.message_airtime_us(8) * 1.2
        delivered = 0
        for _ in range(10):
            ambient = traffic.pulse_train(horizon)
            if link.send_message([1, 0, 1, 1, 0, 1, 0, 0], -30.0,
                                 ambient_pulses=ambient, rng=rng):
                delivered += 1
        assert delivered >= 7

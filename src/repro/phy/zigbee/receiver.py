"""ZigBee receive chain: OQPSK matched filter -> 32-chip correlation
despread -> PPDU parse.

The despreader always snaps to the *nearest valid codeword* — a
commodity radio has no notion of "invalid chips", it simply decodes the
closest of the 16 PN sequences.  That is why FreeRider's translated
signal remains decodable: a globally phase-flipped codeword correlates
best with a deterministic other codeword in the same codebook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.obs import forensics
from repro.phy.zigbee.chips import nearest_symbol_soft, nearest_symbols_soft
from repro.phy.zigbee.frame import ZigbeeFrameBuilder
from repro.phy.zigbee.oqpsk import OqpskModem

__all__ = ["ZigbeeReceiver", "ZigbeeDecodeResult"]


@dataclass
class ZigbeeDecodeResult:
    """Outcome of decoding one PPDU waveform."""

    payload: Optional[bytes]
    symbols: Optional[np.ndarray]
    fcs_ok: bool
    sfd_found: bool
    # First receive stage that failed (forensics taxonomy), "ok" if none.
    stage: str = forensics.OK

    @property
    def ok(self) -> bool:
        return self.sfd_found and self.fcs_ok


class ZigbeeReceiver:
    """Decode OQPSK PPDUs produced by :class:`ZigbeeTransmitter`.

    Parameters
    ----------
    sps:
        Samples per chip, must match the transmitter.
    monitor_mode:
        Deliver frames with bad FCS (needed by the backscatter decoder).
    cfo_correction:
        Data-aided carrier-frequency-offset estimation from the eight
        identical preamble symbols (delay-correlate at one symbol
        period), as any real 802.15.4 chip performs.  Pull-in range is
        +/- fs / (2 * 32 * sps) ~ +/-31 kHz, covering crystal offsets.
        Off by default: the single-shot estimator *adds* noise-induced
        drift on CFO-free links at very low SNR (real chips keep
        tracking through the frame); enable it when simulating radios
        with genuine frequency offsets.
    """

    def __init__(self, sps: int = 4, monitor_mode: bool = True,
                 cfo_correction: bool = False):
        self._modem = OqpskModem(sps=sps)
        self._builder = ZigbeeFrameBuilder()
        self.monitor_mode = monitor_mode
        self.cfo_correction = cfo_correction
        self.sps = sps

    def estimate_cfo_hz(self, waveform: np.ndarray) -> float:
        """Delay-correlation CFO estimate over the repeated preamble."""
        d = 32 * self.sps  # one symbol period
        n_pre = 8 * d
        seg = np.asarray(waveform[:n_pre])
        if seg.size < 2 * d:
            return 0.0
        corr = np.sum(seg[d:] * np.conj(seg[:-d]))
        fs = self._modem.sample_rate_hz
        return float(np.angle(corr) / (2 * np.pi * d / fs))

    def decode_symbols(self, waveform: np.ndarray, n_symbols: int) -> np.ndarray:
        """Despread a waveform (aligned at chip 0) into *n_symbols*
        nearest-codeword decisions, after optional CFO removal."""
        if self.cfo_correction:
            cfo = self.estimate_cfo_hz(waveform)
            fs = self._modem.sample_rate_hz
            n = np.arange(len(waveform))
            waveform = waveform * np.exp(-2j * np.pi * cfo * n / fs)
        n_chips = 32 * n_symbols
        metrics = self._modem.demodulate_soft(waveform, n_chips)
        out = np.empty(n_symbols, dtype=np.int64)
        for i in range(n_symbols):
            out[i] = nearest_symbol_soft(metrics[32 * i:32 * (i + 1)])
        return out

    def decode_symbols_batch(self, waveforms: np.ndarray,
                             n_symbols: int) -> np.ndarray:
        """Despread a (B, N) stack of aligned waveforms into a
        (B, n_symbols) decision matrix, bit-identical to
        :meth:`decode_symbols` per row.  The matched filter runs over
        all frames at once; codeword decisions stay per-symbol."""
        wav = np.asarray(waveforms)
        if wav.ndim != 2:
            raise ValueError("decode_symbols_batch expects a (B, N) array")
        if self.cfo_correction:
            # The estimator is per-frame scalar work; keep it exact.
            fs = self._modem.sample_rate_hz
            n = np.arange(wav.shape[1])
            rows = []
            for row in wav:
                cfo = self.estimate_cfo_hz(row)
                rows.append(row * np.exp(-2j * np.pi * cfo * n / fs))
            wav = np.stack(rows)
        n_chips = 32 * n_symbols
        metrics = self._modem.demodulate_soft_batch(wav, n_chips)
        decisions = nearest_symbols_soft(
            metrics.reshape(wav.shape[0] * n_symbols, 32))
        return decisions.reshape(wav.shape[0], n_symbols)

    def decode(self, waveform: np.ndarray, n_symbols: int) -> ZigbeeDecodeResult:
        """Full decode: symbols -> PPDU parse -> FCS check."""
        symbols = self.decode_symbols(waveform, n_symbols)
        return self._finish(symbols)

    def decode_batch(self, waveforms: np.ndarray,
                     n_symbols: int) -> List[ZigbeeDecodeResult]:
        """Batched :meth:`decode` over a stack of equal-length frames."""
        symbol_rows = self.decode_symbols_batch(waveforms, n_symbols)
        return [self._finish(row) for row in symbol_rows]

    def _finish(self, symbols: np.ndarray) -> ZigbeeDecodeResult:
        payload, fcs_ok = self._builder.parse_symbols(symbols)
        sfd_found = payload is not None
        if not sfd_found:
            return ZigbeeDecodeResult(None, symbols, False, False,
                                      stage=forensics.SYNC_FAIL)
        if not fcs_ok and not self.monitor_mode:
            return ZigbeeDecodeResult(None, symbols, False, True,
                                      stage=forensics.CRC_FAIL)
        return ZigbeeDecodeResult(payload, symbols, fcs_ok, True,
                                  stage=(forensics.OK if fcs_ok
                                         else forensics.CRC_FAIL))

"""Plain-text chart rendering for benchmark outputs.

The harness is headless (no matplotlib), but curve *shapes* are the
deliverable — an ASCII line chart in each results file lets a reader
eyeball the Figure 10 cliff or the Figure 17 saturation without
plotting anything.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.sim.results import Series

__all__ = ["ascii_chart", "ascii_cdf"]


def ascii_chart(series: Series, width: int = 60, height: int = 14,
                title: Optional[str] = None) -> str:
    """Render a Series as an ASCII scatter/line chart.

    Points are marked with '*'; axes are labelled with min/max values.
    """
    if width < 10 or height < 4:
        raise ValueError("chart too small")
    # NaN points (no-measurement sentinels from dead link distances)
    # would poison the min/max axis bounds and every grid coordinate;
    # plot only the finite points and annotate how many were skipped.
    x, y = series.finite_points()
    n_skipped = len(series.x) - x.size
    if x.size < 2:
        return f"{title or series.name}: (not enough points)"
    x_min, x_max = float(x.min()), float(x.max())
    y_min, y_max = float(y.min()), float(y.max())
    if x_max == x_min or y_max == y_min:
        y_max = y_min + 1.0 if y_max == y_min else y_max
        x_max = x_min + 1.0 if x_max == x_min else x_max

    grid = [[" "] * width for _ in range(height)]
    cols = np.clip(((x - x_min) / (x_max - x_min) * (width - 1)).round()
                   .astype(int), 0, width - 1)
    rows = np.clip(((y - y_min) / (y_max - y_min) * (height - 1)).round()
                   .astype(int), 0, height - 1)
    # Connect consecutive points with interpolated marks.
    for i in range(len(x) - 1):
        c0, r0, c1, r1 = cols[i], rows[i], cols[i + 1], rows[i + 1]
        steps = max(abs(c1 - c0), abs(r1 - r0), 1)
        for s in range(steps + 1):
            c = int(round(c0 + (c1 - c0) * s / steps))
            r = int(round(r0 + (r1 - r0) * s / steps))
            grid[height - 1 - r][c] = "."
    for c, r in zip(cols, rows):
        grid[height - 1 - r][c] = "*"

    y_lo, y_hi = _fmt(y_min), _fmt(y_max)
    label_w = max(len(y_lo), len(y_hi))
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        label = y_hi if i == 0 else y_lo if i == height - 1 else ""
        lines.append(f"{label.rjust(label_w)} |" + "".join(row))
    lines.append(" " * label_w + " +" + "-" * width)
    x_lo, x_hi = _fmt(x_min), _fmt(x_max)
    pad = width - len(x_lo) - len(x_hi)
    lines.append(" " * (label_w + 2) + x_lo + " " * max(pad, 1) + x_hi)
    lines.append(" " * (label_w + 2)
                 + f"{series.x_label} -> (y: {series.y_label})")
    if n_skipped:
        lines.append(" " * (label_w + 2)
                     + f"({n_skipped} point(s) without data skipped)")
    return "\n".join(lines)


def ascii_cdf(samples: Sequence[float], width: int = 60, height: int = 12,
              title: Optional[str] = None,
              value_label: str = "value") -> str:
    """Render an empirical CDF of *samples* as an ASCII chart."""
    from repro.sim.results import cdf_points

    series = cdf_points(list(samples))
    series.x_label = value_label
    series.y_label = "P(X<=x)"
    return ascii_chart(series, width=width, height=height, title=title)


def _fmt(v: float) -> str:
    if v == int(v) and abs(v) < 1e6:
        return str(int(v))
    return f"{v:.3g}"

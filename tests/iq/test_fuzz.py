"""The mutation fuzzer and its crash-free classification contract."""

import numpy as np
import pytest

from repro.iq.corpus import default_corpus_dir
from repro.iq.fuzz import MUTATIONS, FuzzViolation, _check_one, fuzz_corpus

CORPUS = default_corpus_dir()


def test_smoke_fuzz_is_clean():
    report = fuzz_corpus(CORPUS, iterations=20, seed=3)
    assert report.ok, [v.to_dict() for v in report.violations]
    assert set(report.iterations.values()) == {20}


def test_fuzz_is_deterministic():
    one = fuzz_corpus(CORPUS, iterations=10, seed=11,
                      radios=["bluetooth"])
    two = fuzz_corpus(CORPUS, iterations=10, seed=11,
                      radios=["bluetooth"])
    assert one.to_dict() == two.to_dict()


def test_radio_filter():
    report = fuzz_corpus(CORPUS, iterations=5, seed=1, radios=["dsss"])
    assert list(report.iterations) == ["dsss"]


@pytest.mark.parametrize("name", sorted(MUTATIONS))
def test_mutations_keep_waveforms_finite(name):
    gen = np.random.default_rng(5)
    samples = (gen.standard_normal(256)
               + 1j * gen.standard_normal(256)).astype(np.complex64)
    for trial in range(10):
        mutated = MUTATIONS[name](samples, gen)
        assert mutated.dtype == np.complex64
        assert np.all(np.isfinite(mutated))


class _ExplodingSession:
    """A session whose decode seam violates the contract."""

    def decode_iq(self, samples, exc, bits, batched=False, **kw):
        raise RuntimeError("receiver exploded")


def test_check_one_reports_exceptions_as_violations():
    error = _check_one(_ExplodingSession(), np.zeros(8, np.complex64),
                       None, np.zeros(4, np.uint8), batched=False)
    assert error is not None
    assert "RuntimeError" in error


def test_violation_recipe_is_json_serializable():
    import json

    violation = FuzzViolation(radio="wifi", base="wifi_clean",
                              iteration=3, mode="scalar",
                              mutations=["truncate"], error="boom")
    assert json.loads(json.dumps(violation.to_dict()))["iteration"] == 3

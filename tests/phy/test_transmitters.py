"""Cross-PHY transmitter contract tests: frame metadata must agree with
the physics of each waveform."""

import numpy as np
import pytest

from repro.phy.ble import BleTransmitter
from repro.phy.dsss import DsssTransmitter
from repro.phy.wifi import WifiTransmitter
from repro.phy.zigbee import ZigbeeTransmitter


class TestWifiFrames:
    def test_sample_count_matches_structure(self):
        tx = WifiTransmitter(6.0, seed=1)
        frame = tx.build(bytes(100))
        # 320 preamble + 80 SIGNAL + 80 per DATA symbol.
        assert frame.n_samples == 320 + 80 + 80 * frame.n_data_symbols

    def test_data_start_constant(self):
        tx = WifiTransmitter(54.0, seed=1)
        assert tx.build(bytes(64)).data_start == 400

    def test_random_psdu_bounds(self):
        tx = WifiTransmitter(6.0, seed=2)
        assert len(tx.random_psdu(7)) == 7
        with pytest.raises(ValueError):
            tx.random_psdu(0)

    def test_mean_power_near_unity(self):
        tx = WifiTransmitter(24.0, seed=3)
        frame = tx.build(tx.random_psdu(200))
        power = float(np.mean(np.abs(frame.samples) ** 2))
        assert power == pytest.approx(1.0, rel=0.25)

    def test_psdu_bits_property(self):
        tx = WifiTransmitter(6.0, seed=4)
        psdu = tx.random_psdu(10)
        assert tx.build(psdu).psdu_bits.size == 80


class TestNarrowbandFrames:
    def test_zigbee_sample_count(self):
        tx = ZigbeeTransmitter(sps=4, seed=5)
        frame = tx.build(bytes(20))
        chips = 32 * frame.n_symbols
        assert frame.samples.size == (chips + 1) * 4  # +Tc offset tail

    def test_ble_sample_count(self):
        tx = BleTransmitter(sps=8, seed=6)
        frame = tx.build(bytes(20))
        assert frame.samples.size == frame.n_bits * 8

    def test_dsss_sample_count(self):
        tx = DsssTransmitter(seed=7)
        frame = tx.build(bytes(20))
        assert frame.samples.size == 11 * frame.n_bits

    def test_constant_envelope_phys(self):
        """GFSK and Barker/DBPSK waveforms are constant-envelope; OQPSK
        is near-constant — all amplifier-friendly, unlike OFDM."""
        ble = BleTransmitter(seed=8).build(bytes(30))
        assert np.allclose(np.abs(ble.samples), 1.0)
        dsss = DsssTransmitter(seed=9).build(bytes(30))
        assert np.allclose(np.abs(dsss.samples), 1.0)

    def test_zigbee_scrambles_nothing(self):
        """802.15.4 has no scrambler — identical payloads give identical
        waveforms (and that is fine for DSSS spreading)."""
        a = ZigbeeTransmitter(seed=10).build(b"same")
        b = ZigbeeTransmitter(seed=11).build(b"same")
        assert np.allclose(a.samples, b.samples)

    def test_wifi_scrambler_randomises_frames(self):
        """802.11 frames with identical PSDUs differ on air (per-frame
        scrambler seed) — why the XOR decoder needs receiver 1's output
        rather than a cached template."""
        tx = WifiTransmitter(6.0, seed=12)
        a = tx.build(b"same-payload-here")
        b = tx.build(b"same-payload-here")
        assert a.scrambler_seed != b.scrambler_seed
        assert not np.allclose(a.samples, b.samples)

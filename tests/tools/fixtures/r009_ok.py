# lint-as: src/repro/core/batch_session.py
"""R009-clean: phases consume pre-drawn randomness only."""


class Session:
    def predraw_packet(self, rng):
        return rng.standard_normal(8)

    def channel_packets(self, drawn, batch):
        return [b * d for b, d in zip(batch, drawn)]

    def finish_packets(self, batch):
        return self._gain(batch)

    def _gain(self, batch):
        return [2 * b for b in batch]

"""ADG902-class RF switch / multi-impedance reflection network.

A backscatter tag modulates its antenna's reflection coefficient
Gamma = (Z_T - Z_A*) / (Z_T + Z_A).  Classic tags toggle between a
matched load (absorb, Gamma ~ 0) and a short (reflect, |Gamma| ~ 1);
FreeRider's tag additionally supports *multiple* impedances for fine
amplitude control and a delayed toggle waveform for phase control
(paper section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

__all__ = ["RfSwitch", "reflection_coefficient"]


def reflection_coefficient(z_load: complex, z_antenna: complex = 50 + 0j) -> complex:
    """Gamma for a load impedance against the antenna impedance."""
    denom = z_load + z_antenna
    if denom == 0:
        raise ValueError("degenerate impedance pair")
    return (z_load - np.conj(z_antenna)) / denom


@dataclass
class RfSwitch:
    """A switch across a bank of termination impedances.

    Parameters
    ----------
    impedances:
        Selectable terminations (ohms).  Defaults to the classic
        (short, matched) pair; FreeRider adds intermediate values.
    insertion_loss_db:
        Loss through the switch itself, applied to the reflected wave.
    z_antenna:
        Antenna impedance.
    """

    impedances: Tuple[complex, ...] = (0.0 + 0j, 50.0 + 0j)
    insertion_loss_db: float = 1.0
    z_antenna: complex = 50.0 + 0j
    _gammas: np.ndarray = field(default=None, repr=False, compare=False)

    def __post_init__(self):
        if len(self.impedances) < 2:
            raise ValueError("need at least two impedance states")
        loss = 10 ** (-self.insertion_loss_db / 20)
        self._gammas = np.array(
            [reflection_coefficient(z, self.z_antenna) * loss
             for z in self.impedances])

    @property
    def gammas(self) -> np.ndarray:
        """Reflection coefficient of each switch state."""
        return self._gammas

    def reflect(self, incident: np.ndarray, state_per_sample: np.ndarray) -> np.ndarray:
        """Reflected wave given an incident wave and a per-sample state
        index sequence."""
        states = np.asarray(state_per_sample, dtype=np.int64)
        if states.size != len(incident):
            raise ValueError("state sequence must match signal length")
        if states.size and (states.min() < 0 or states.max() >= len(self._gammas)):
            raise ValueError("state index out of range")
        return incident * self._gammas[states]

    def amplitude_levels(self) -> np.ndarray:
        """|Gamma| of each state — the amplitude codebook a tag could use
        (and which Figure 2 shows is unsafe for OFDM)."""
        return np.abs(self._gammas)

#!/usr/bin/env python3
"""Smart-home sensors: one tag design, three excitation radios.

FreeRider's point is that a tag is not married to one radio: wherever
there is ambient WiFi, ZigBee or Bluetooth traffic, the same microwatt
tag can ride it.  This example places a battery-free temperature sensor
in three rooms, each near a different radio, and delivers readings over
all three — reporting per-link throughput, BER and the tag's power draw.

Run:  python examples/smart_home_sensors.py
"""

import numpy as np

from repro.channel.geometry import Deployment
from repro.core.session import (
    BleBackscatterSession,
    WifiBackscatterSession,
    ZigbeeBackscatterSession,
)
from repro.sim.config import BLE_CONFIG, WIFI_CONFIG, ZIGBEE_CONFIG
from repro.tag.power import TagPowerModel
from repro.utils.bits import bits_to_bytes, bytes_to_bits


def encode_reading(temp_c: float) -> bytes:
    """Pack a temperature reading as two bytes (centi-degrees C)."""
    return int(round(temp_c * 10)).to_bytes(2, "little")


def main() -> None:
    rng = np.random.default_rng(99)
    power = TagPowerModel()

    rooms = [
        ("living room / WiFi router", WIFI_CONFIG,
         WifiBackscatterSession(seed=1, payload_bytes=512), 8.0, 21.4),
        ("kitchen / ZigBee hub", ZIGBEE_CONFIG,
         ZigbeeBackscatterSession(seed=2), 6.0, 24.9),
        ("bedroom / BLE speaker", BLE_CONFIG,
         BleBackscatterSession(seed=3), 4.0, 19.3),
    ]

    print(f"{'room':32s} {'radio':10s} {'rssi':>7s} {'reading':>8s} "
          f"{'errors':>6s} {'power':>7s}")
    for name, cfg, session, rx_dist, temp in rooms:
        budget = cfg.budget()
        dep = Deployment.los(rx_dist)
        rssi = budget.rssi_dbm(dep)
        snr = (rssi - budget.noise_dbm
               - 10 * np.log10(session.oversample_factor)
               - cfg.implementation_loss_db)

        reading = encode_reading(temp)
        tag_bits = bytes_to_bits(reading)
        result = session.run_packet(snr_db=snr, tag_bits=tag_bits)

        if result.delivered:
            status = f"{temp:5.1f} C"
        else:
            status = "lost"
        uw = power.breakdown(cfg.name, cfg.backscatter_shift_hz).total_uw
        print(f"{name:32s} {cfg.name:10s} {rssi:6.1f}  {status:>8s} "
              f"{result.tag_bit_errors:6d} {uw:5.1f} uW")

    print("\nSame tag silicon, three radios: only the codeword translator "
          "setting changes (control logic 1-3 uW of the ~30 uW budget).")


if __name__ == "__main__":
    main()

"""Rate-1/2, constraint-length-7 convolutional code of 802.11 with
puncturing to rates 2/3 and 3/4, plus a hard/soft-decision Viterbi decoder.

Generator polynomials g0 = 133 (octal), g1 = 171 (octal) — equation (9)
of the FreeRider paper written out:

    C1[k] = b[k] ^ b[k-2] ^ b[k-3] ^ b[k-5] ^ b[k-6]
    C2[k] = b[k] ^ b[k-1] ^ b[k-2] ^ b[k-3] ^ b[k-6]

Like the scrambler, the coder is linear over GF(2): complementing an
all-ones input window complements the outputs, which is what lets a
FreeRider tag's phase-flip translation map decoded bits to their
complement (paper section 3.2.1).

The Viterbi decoder is vectorised over states with numpy and supports
both hard bits and soft LLR inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.utils.bits import as_bits

__all__ = ["ConvolutionalCode", "CODE_802_11", "PUNCTURE_PATTERNS"]

# Puncture patterns indexed by (numerator, denominator) of the coding rate.
# Pattern arrays mark which of the rate-1/2 output bits are transmitted.
PUNCTURE_PATTERNS: Dict[Tuple[int, int], np.ndarray] = {
    (1, 2): np.array([1, 1], dtype=np.uint8),
    (2, 3): np.array([1, 1, 1, 0], dtype=np.uint8),
    (3, 4): np.array([1, 1, 1, 0, 0, 1], dtype=np.uint8),
}


@dataclass
class ConvolutionalCode:
    """K=7 convolutional code with numpy Viterbi decoding.

    The instance precomputes the state-transition tables once; encode and
    decode are then pure-numpy loops over time steps.
    """

    g0: int = 0o133
    g1: int = 0o171
    constraint_length: int = 7
    _tables: Optional[tuple] = field(default=None, repr=False, compare=False)
    _acs: Optional[tuple] = field(default=None, repr=False, compare=False)

    @property
    def n_states(self) -> int:
        return 1 << (self.constraint_length - 1)

    def _parity(self, x: int) -> int:
        return bin(x).count("1") & 1

    def _build_tables(self):
        """next_state[s, b], out0[s, b], out1[s, b] for all 64 states."""
        if self._tables is not None:
            return self._tables
        n = self.n_states
        next_state = np.zeros((n, 2), dtype=np.int64)
        out0 = np.zeros((n, 2), dtype=np.uint8)
        out1 = np.zeros((n, 2), dtype=np.uint8)
        for s in range(n):
            for b in range(2):
                # Shift register: newest bit on the left (MSB side of the
                # K-bit window), matching the 802.11 convention where
                # state holds the previous K-1 input bits.
                reg = (b << (self.constraint_length - 1)) | s
                out0[s, b] = self._parity(reg & self.g0)
                out1[s, b] = self._parity(reg & self.g1)
                next_state[s, b] = reg >> 1
        self._tables = (next_state, out0, out1)
        return self._tables

    def encode(self, bits, rate: Tuple[int, int] = (1, 2)) -> np.ndarray:
        """Encode *bits*; output is punctured to *rate*.

        The encoder starts in the all-zero state (the 802.11 SERVICE
        field's leading zeros flush it at the receiver).
        """
        if rate not in PUNCTURE_PATTERNS:
            raise ValueError(f"unsupported coding rate {rate}")
        arr = as_bits(bits)
        next_state, out0, out1 = self._build_tables()
        coded = np.empty(2 * arr.size, dtype=np.uint8)
        s = 0
        for i, b in enumerate(arr):
            coded[2 * i] = out0[s, b]
            coded[2 * i + 1] = out1[s, b]
            s = next_state[s, b]
        return self._puncture(coded, rate)

    def _puncture(self, coded: np.ndarray, rate: Tuple[int, int]) -> np.ndarray:
        pattern = PUNCTURE_PATTERNS[rate]
        if pattern.size == 2:  # rate 1/2: nothing removed
            return coded
        reps = int(np.ceil(coded.size / pattern.size))
        mask = np.tile(pattern, reps)[: coded.size].astype(bool)
        return coded[mask]

    def _depuncture(self, llrs: np.ndarray, rate: Tuple[int, int]) -> np.ndarray:
        """Re-insert zeros (erasures) at punctured positions of an LLR
        stream; returns a multiple-of-2-length array."""
        pattern = PUNCTURE_PATTERNS[rate]
        if pattern.size == 2:
            out = llrs.astype(float)
        else:
            kept_per_period = int(pattern.sum())
            n_periods = int(np.ceil(llrs.size / kept_per_period))
            out = np.zeros(n_periods * pattern.size, dtype=float)
            mask = np.tile(pattern, n_periods).astype(bool)
            padded = np.zeros(int(mask.sum()), dtype=float)
            padded[: llrs.size] = llrs
            out[mask] = padded
        if out.size % 2:
            out = np.concatenate([out, [0.0]])
        return out

    def _acs_tables(self):
        """Predecessor layout for the add-compare-select recursion.

        Each target state has exactly two (predecessor, input-bit) pairs;
        the two slots are laid out as one flat length-2n axis (slot 0
        first) so one gather + one add covers both per step.  Returns
        ``(pred, pbit, pred_flat, exp0_flat, exp1_flat)`` where the
        ``exp*_flat`` vectors hold the expected (+/-1) coder outputs of
        each flat transition.
        """
        if self._acs is not None:
            return self._acs
        next_state, out0, out1 = self._build_tables()
        n = self.n_states
        # Branch metric of transition (s, b) at time t:
        # correlation of expected symbols (+1 for bit 0) with LLRs.
        exp0 = 1.0 - 2.0 * out0.astype(float)  # (n,2)
        exp1 = 1.0 - 2.0 * out1.astype(float)
        pred = np.zeros((n, 2), dtype=np.int64)
        pbit = np.zeros((n, 2), dtype=np.int64)
        fill = np.zeros(n, dtype=np.int64)
        for s in range(n):
            for b in range(2):
                tgt = next_state[s, b]
                pred[tgt, fill[tgt]] = s
                pbit[tgt, fill[tgt]] = b
                fill[tgt] += 1
        exp0_pred = exp0[pred, pbit]  # (n,2) expected first output symbol
        exp1_pred = exp1[pred, pbit]
        exp0_flat = np.concatenate([exp0_pred[:, 0], exp0_pred[:, 1]])
        exp1_flat = np.concatenate([exp1_pred[:, 0], exp1_pred[:, 1]])
        pred_flat = np.concatenate([pred[:, 0], pred[:, 1]])
        self._acs = (pred, pbit, pred_flat, exp0_flat, exp1_flat)
        return self._acs

    def decode(self, received, rate: Tuple[int, int] = (1, 2),
               soft: bool = False) -> np.ndarray:
        """Viterbi-decode *received* back to information bits.

        Parameters
        ----------
        received:
            Hard bits (0/1) when ``soft`` is False, else LLRs where
            positive means "bit 0 more likely" (matched-filter sign
            convention ``llr = +1`` for 0, ``-1`` for 1).
        rate:
            The puncturing rate the encoder used.
        soft:
            Select soft-metric decoding.
        """
        if rate not in PUNCTURE_PATTERNS:
            raise ValueError(f"unsupported coding rate {rate}")
        if soft:
            llr = np.asarray(received, dtype=float)
        else:
            llr = 1.0 - 2.0 * as_bits(received).astype(float)
        llr = self._depuncture(llr, rate)
        n_steps = llr.size // 2
        if n_steps == 0:
            return np.zeros(0, dtype=np.uint8)

        n = self.n_states
        pred, pbit, pred_flat, exp0_flat, exp1_flat = self._acs_tables()

        path_metric = np.full(n, -np.inf)
        path_metric[0] = 0.0

        # All branch metrics up front in one vectorised pass over the
        # flat (n_steps, 2n) transition layout.
        bm_flat = (llr[0::2, None] * exp0_flat[None, :]
                   + llr[1::2, None] * exp1_flat[None, :])

        # choice[t, s]: which of the two predecessors of s survived at t.
        # Strict > matches np.argmax's first-index tie-breaking (slot 0
        # wins ties), keeping decodes bit-identical to the reference
        # per-step formulation.
        choices = np.zeros((n_steps, n), dtype=bool)
        cand = np.empty(2 * n)
        c0, c1 = cand[:n], cand[n:]
        for t in range(n_steps):
            np.take(path_metric, pred_flat, out=cand)
            cand += bm_flat[t]
            choice = np.greater(c1, c0, out=choices[t])
            path_metric = np.where(choice, c1, c0)

        # Traceback from the best final state.
        state = int(np.argmax(path_metric))
        decoded = np.zeros(n_steps, dtype=np.uint8)
        for t in range(n_steps - 1, -1, -1):
            slot = 1 if choices[t, state] else 0
            decoded[t] = pbit[state, slot]
            state = int(pred[state, slot])
        return decoded

    def decode_batch(self, received, rate: Tuple[int, int] = (1, 2),
                     soft: bool = False) -> np.ndarray:
        """Viterbi-decode a batch of equal-length streams at once.

        *received* is a (B, L) array of hard bits or LLRs (one frame per
        row, same convention as :meth:`decode`); returns a (B, n_steps)
        uint8 array.  The add-compare-select recursion runs over all
        rows simultaneously and the traceback advances every row's state
        vector per step, so the Python-loop cost is paid once per time
        step instead of once per frame.  Every elementwise operation
        matches the scalar recursion, so the result is bit-identical to
        ``np.stack([decode(row, ...) for row in received])``.
        """
        if rate not in PUNCTURE_PATTERNS:
            raise ValueError(f"unsupported coding rate {rate}")
        block = np.atleast_2d(np.asarray(received))
        if block.ndim != 2:
            raise ValueError("decode_batch expects a (B, L) array")
        if soft:
            llr2 = block.astype(float)
        else:
            llr2 = 1.0 - 2.0 * block.astype(float)
        if llr2.shape[0] == 0:
            return np.zeros((0, 0), dtype=np.uint8)
        # Rows share a length, so depuncturing one row fixes the layout
        # for all of them (pure scatter: float values are untouched).
        pattern = PUNCTURE_PATTERNS[rate]
        if pattern.size > 2:
            kept = int(pattern.sum())
            n_periods = int(np.ceil(llr2.shape[1] / kept))
            mask = np.tile(pattern, n_periods).astype(bool)
            padded = np.zeros((llr2.shape[0], kept * n_periods))
            padded[:, : llr2.shape[1]] = llr2
            full = np.zeros((llr2.shape[0], n_periods * pattern.size))
            full[:, mask] = padded
            llr2 = full
        if llr2.shape[1] % 2:
            llr2 = np.concatenate(
                [llr2, np.zeros((llr2.shape[0], 1))], axis=1)
        n_batch, n_steps = llr2.shape[0], llr2.shape[1] // 2
        if n_steps == 0:
            return np.zeros((n_batch, 0), dtype=np.uint8)

        n = self.n_states
        pred, pbit, pred_flat, exp0_flat, exp1_flat = self._acs_tables()

        path_metric = np.full((n_batch, n), -np.inf)
        path_metric[:, 0] = 0.0
        llr_even = llr2[:, 0::2]
        llr_odd = llr2[:, 1::2]

        choices = np.zeros((n_steps, n_batch, n), dtype=bool)
        cand = np.empty((n_batch, 2 * n))
        c0, c1 = cand[:, :n], cand[:, n:]
        for t in range(n_steps):
            # bm[b, j] = llr_even[b, t]*exp0_flat[j] + llr_odd[b, t]*...
            # — per-element arithmetic identical to the scalar bm_flat.
            np.take(path_metric, pred_flat, axis=1, out=cand)
            cand += (llr_even[:, t, None] * exp0_flat[None, :]
                     + llr_odd[:, t, None] * exp1_flat[None, :])
            choice = np.greater(c1, c0, out=choices[t])
            path_metric = np.where(choice, c1, c0)

        # Traceback: advance all rows' states together.
        state = np.argmax(path_metric, axis=1)
        decoded = np.zeros((n_batch, n_steps), dtype=np.uint8)
        rows = np.arange(n_batch)
        for t in range(n_steps - 1, -1, -1):
            slot = choices[t, rows, state].astype(np.int64)
            decoded[:, t] = pbit[state, slot]
            state = pred[state, slot]
        return decoded


CODE_802_11 = ConvolutionalCode()

"""Pilot-tracking ablation (paper section 3.2.1, last paragraph).

"Pilot tones in an OFDM symbol are used for correcting the phase
error.  Such phase error correction could remove the additional phase
offset introduced by a tag...  Fortunately, many WiFi chips, such as
Broadcom BCM43xx, do not use pilot tones for phase error correction."

FreeRider therefore depends on the receiver chipset.  This bench
quantifies it: the same tag transmission decodes perfectly on a
non-tracking receiver and collapses to all-zeros on a pilot-tracking
one — every tag 1-bit is erased, so the measured tag BER equals the
density of 1s in the tag data (~0.5).
"""

import numpy as np

from repro.core.session import WifiBackscatterSession
from repro.sim.results import format_table


def ber_with(pilot_correction, packets=5, seed=220):
    session = WifiBackscatterSession(seed=seed, payload_bytes=512,
                                     pilot_correction=pilot_correction)
    sent = errors = ones = 0
    rng = np.random.default_rng(seed)
    for _ in range(packets):
        bits = rng.integers(0, 2, 40).astype(np.uint8)
        r = session.run_packet(snr_db=18.0, tag_bits=bits)
        if r.delivered:
            sent += r.tag_bits_sent
            errors += r.tag_bit_errors
            ones += int(bits[:r.tag_bits_sent].sum())
    return (errors / sent if sent else 1.0,
            ones / sent if sent else 0.0)


def run_experiment():
    ber_off, _ = ber_with(False)
    ber_on, ones_density = ber_with(True)
    return ber_off, ber_on, ones_density


def test_pilot_ablation(once, emit):
    ber_off, ber_on, ones_density = once(run_experiment)
    table = format_table(
        ["receiver behaviour", "tag BER"],
        [["no pilot phase tracking (BCM43xx-like)", ber_off],
         ["pilot phase tracking enabled", ber_on],
         ["(density of 1s in tag data)", ones_density]],
        title="Pilot-tracking ablation: the receiver dependence of "
              "FreeRider's phase translation")
    emit("pilot_ablation", table)

    assert ber_off < 1e-2
    # Tracking erases exactly the 1-bits: BER equals their density.
    assert abs(ber_on - ones_density) < 0.05
    assert ber_on > 0.3

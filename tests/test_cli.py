"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.radio == "wifi"
        assert args.deployment == "los"

    def test_distance_list_parsing(self):
        args = build_parser().parse_args(["sweep", "--distances", "1,5,10"])
        assert args.distances == [1.0, 5.0, 10.0]

    def test_bad_distance_list_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--distances", "a,b"])

    def test_unknown_radio_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--radio", "lora"])


class TestCommands:
    def test_packet_wifi(self, capsys):
        code = main(["packet", "--radio", "wifi", "--snr", "20",
                     "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "delivered=True" in out

    def test_packet_exit_code_on_loss(self, capsys):
        code = main(["packet", "--radio", "bluetooth", "--snr", "-15",
                     "--seed", "1"])
        assert code == 1

    def test_power(self, capsys):
        assert main(["power"]) == 0
        out = capsys.readouterr().out
        assert "19.00" in out and "12.00" in out

    def test_regime(self, capsys):
        assert main(["regime"]) == 0
        out = capsys.readouterr().out
        assert "wifi" in out and "bluetooth" in out

    def test_mac(self, capsys):
        assert main(["mac", "--tags", "4", "--rounds", "20",
                     "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "fairness" in out

    def test_sweep_zigbee(self, capsys):
        assert main(["sweep", "--radio", "zigbee", "--distances", "2,6",
                     "--packets", "2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "zigbee backscatter" in out

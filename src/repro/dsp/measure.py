"""Measurement helpers: power, RSSI, BER, EVM, PAPR.

The evaluation section of the paper reports throughput, bit error rate,
and RSSI for every deployment (Figures 10-13); these are the common
definitions used by the link simulator and the tests.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

__all__ = [
    "signal_power",
    "power_dbm",
    "dbm_to_watts",
    "watts_to_dbm",
    "db_to_linear",
    "linear_to_db",
    "bit_error_rate",
    "evm",
    "papr_db",
    "THERMAL_NOISE_DBM_PER_HZ",
    "noise_floor_dbm",
]

# kTB at 290 K expressed per hertz.
THERMAL_NOISE_DBM_PER_HZ = -173.8


def signal_power(x: np.ndarray) -> float:
    """Mean power of a complex-baseband signal (linear units)."""
    if len(x) == 0:
        return 0.0
    return float(np.mean(np.abs(x) ** 2))


def watts_to_dbm(p_watts: float) -> float:
    """Convert watts to dBm; zero/negative power maps to -inf."""
    if p_watts <= 0:
        return float("-inf")
    return 10 * np.log10(p_watts * 1e3)


def dbm_to_watts(p_dbm: float) -> float:
    """Convert dBm to watts."""
    return 10 ** (p_dbm / 10) / 1e3


def db_to_linear(db: float) -> float:
    """Power ratio from decibels."""
    return 10 ** (db / 10)


def linear_to_db(ratio: float) -> float:
    """Decibels from a power ratio; zero/negative maps to -inf."""
    if ratio <= 0:
        return float("-inf")
    return 10 * np.log10(ratio)


def power_dbm(x: np.ndarray, ref_power_watts: float = 1.0) -> float:
    """Signal power in dBm given the scale where |x|^2 == 1 is *ref* watts."""
    return watts_to_dbm(signal_power(x) * ref_power_watts)


def noise_floor_dbm(bandwidth_hz: float, noise_figure_db: float = 6.0) -> float:
    """Receiver noise floor: kTB plus receiver noise figure."""
    if bandwidth_hz <= 0:
        raise ValueError("bandwidth must be positive")
    return THERMAL_NOISE_DBM_PER_HZ + 10 * np.log10(bandwidth_hz) + noise_figure_db


def bit_error_rate(tx: Union[Sequence[int], np.ndarray],
                   rx: Union[Sequence[int], np.ndarray]) -> float:
    """Fraction of differing bits; compares the overlapping prefix when
    lengths differ and counts missing tail bits as errors."""
    a = np.asarray(tx, dtype=np.uint8).ravel()
    b = np.asarray(rx, dtype=np.uint8).ravel()
    if a.size == 0:
        return 0.0
    n = min(a.size, b.size)
    errors = int(np.sum(a[:n] != b[:n])) + (a.size - n)
    return errors / a.size


def evm(reference: np.ndarray, received: np.ndarray) -> float:
    """Root-mean-square error-vector magnitude, normalised to the
    reference constellation RMS."""
    ref = np.asarray(reference)
    rx = np.asarray(received)
    if ref.size != rx.size:
        raise ValueError("EVM requires equal-length vectors")
    ref_rms = np.sqrt(np.mean(np.abs(ref) ** 2))
    if ref_rms == 0:
        raise ValueError("reference power is zero")
    return float(np.sqrt(np.mean(np.abs(rx - ref) ** 2)) / ref_rms)


def papr_db(x: np.ndarray) -> float:
    """Peak-to-average power ratio in dB (the scrambler exists to keep
    this bounded; see paper Figure 7 discussion)."""
    p = signal_power(x)
    if p == 0:
        return 0.0
    peak = float(np.max(np.abs(x) ** 2))
    return 10 * np.log10(peak / p)

"""Property-based tests (hypothesis) on core data structures and
invariants: bit algebra, CRCs, scrambler/whitener linearity, coding
round trips, interleaver permutations, repetition coding, Jain's index,
PLM classification, and the slot controller."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mac.controller import SlotController
from repro.mac.fairness import jain_index
from repro.mac.plm import PlmConfig, PlmReceiver
from repro.phy.ble.whitening import dewhiten, whiten
from repro.phy.wifi.convolutional import CODE_802_11
from repro.phy.wifi.interleaver import deinterleave, interleave
from repro.phy.wifi.scrambler import descramble, scramble
from repro.phy.zigbee.chips import chips_to_symbols, symbols_to_chips
from repro.utils.bits import (
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    int_to_bits,
    majority_vote,
    repeat_bits,
    xor_bits,
)
from repro.utils.crc import CRC16_CCITT, CRC24_BLE, CRC32

bits_arrays = st.lists(st.integers(0, 1), min_size=0, max_size=300)
payloads = st.binary(min_size=0, max_size=200)


class TestBitAlgebra:
    @given(payloads)
    def test_bytes_bits_round_trip(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data

    @given(st.integers(0, 2**20 - 1), st.integers(20, 32))
    def test_int_bits_round_trip(self, value, width):
        assert bits_to_int(int_to_bits(value, width)) == value

    @given(bits_arrays, bits_arrays)
    def test_xor_commutes(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        assert np.array_equal(xor_bits(a, b), xor_bits(b, a))

    @given(bits_arrays)
    def test_xor_self_is_zero(self, a):
        assert not xor_bits(a, a).any()

    @given(bits_arrays, st.integers(1, 9))
    def test_repeat_majority_inverse(self, bits, factor):
        out = majority_vote(repeat_bits(bits, factor), factor)
        assert np.array_equal(out, np.asarray(bits, dtype=np.uint8))


class TestCrcProperties:
    @given(payloads, st.integers(0, 199), st.integers(0, 7))
    def test_crc32_detects_single_bit_flip(self, data, byte_at, bit):
        if not data:
            return
        byte_at %= len(data)
        corrupted = bytearray(data)
        corrupted[byte_at] ^= 1 << bit
        assert CRC32.compute(data) != CRC32.compute(bytes(corrupted))

    @given(payloads)
    def test_crc_deterministic(self, data):
        assert CRC16_CCITT.compute(data) == CRC16_CCITT.compute(data)
        assert CRC24_BLE.compute(data) == CRC24_BLE.compute(data)


class TestScramblerProperties:
    @given(bits_arrays, st.integers(1, 127))
    def test_involution(self, bits, seed):
        assert np.array_equal(descramble(scramble(bits, seed), seed),
                              np.asarray(bits, dtype=np.uint8))

    @given(bits_arrays, bits_arrays, st.integers(1, 127))
    def test_gf2_linearity(self, a, b, seed):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        lhs = scramble(xor_bits(a, b), seed)
        rhs = xor_bits(scramble(a, seed), b)
        assert np.array_equal(lhs, rhs)


class TestWhitenerProperties:
    @given(bits_arrays, st.integers(0, 39))
    def test_involution(self, bits, channel):
        assert np.array_equal(dewhiten(whiten(bits, channel), channel),
                              np.asarray(bits, dtype=np.uint8))


class TestCodingProperties:
    @settings(deadline=2000, max_examples=30)
    @given(st.lists(st.integers(0, 1), min_size=12, max_size=120))
    def test_viterbi_inverts_encoder(self, bits):
        coded = CODE_802_11.encode(bits)
        assert np.array_equal(CODE_802_11.decode(coded),
                              np.asarray(bits, dtype=np.uint8))

    @settings(deadline=2000, max_examples=20)
    @given(st.lists(st.integers(0, 1), min_size=48, max_size=144))
    def test_punctured_round_trip(self, bits):
        bits = bits[: len(bits) - len(bits) % 3]  # multiple of 3 for 3/4
        if not bits:
            return
        coded = CODE_802_11.encode(bits, (3, 4))
        assert np.array_equal(CODE_802_11.decode(coded, (3, 4)),
                              np.asarray(bits, dtype=np.uint8))


class TestInterleaverProperties:
    @given(st.sampled_from([(48, 1), (96, 2), (192, 4), (288, 6)]),
           st.integers(1, 4), st.randoms(use_true_random=False))
    def test_round_trip(self, params, n_blocks, rnd):
        n_cbps, n_bpsc = params
        bits = np.array([rnd.randint(0, 1) for _ in range(n_cbps * n_blocks)],
                        dtype=np.uint8)
        out = deinterleave(interleave(bits, n_cbps, n_bpsc), n_cbps, n_bpsc)
        assert np.array_equal(out, bits)


class TestZigbeeSpreadProperties:
    @given(st.lists(st.integers(0, 15), min_size=1, max_size=60))
    def test_spread_despread(self, symbols):
        out = chips_to_symbols(symbols_to_chips(symbols))
        assert list(out) == symbols


class TestJainProperties:
    @given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=50))
    def test_bounded(self, xs):
        j = jain_index(xs)
        assert 0.0 < j <= 1.0 + 1e-9

    @given(st.floats(0.01, 1e6), st.integers(1, 40))
    def test_equal_is_one(self, value, n):
        assert jain_index([value] * n) == np.float64(1.0) or \
            abs(jain_index([value] * n) - 1.0) < 1e-9


class TestPlmProperties:
    @given(st.floats(0.0, 6000.0))
    def test_classification_partition(self, duration):
        """Every duration maps to 0, 1, or noise — and the bit windows
        never overlap."""
        cfg = PlmConfig()
        rx = PlmReceiver(cfg)
        bit = rx.classify(duration)
        in0 = abs(duration - cfg.l0_us) <= cfg.bound_us
        in1 = abs(duration - cfg.l1_us) <= cfg.bound_us
        assert not (in0 and in1)
        assert bit == (0 if in0 else 1 if in1 else None)


class TestControllerProperties:
    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30),
                              st.integers(0, 30)), max_size=40))
    def test_slots_stay_bounded(self, observations):
        ctrl = SlotController(8, min_slots=2, max_slots=64)
        for singles, collisions, empties in observations:
            ctrl.observe(singles, collisions, empties)
            assert 2 <= ctrl.n_slots <= 64

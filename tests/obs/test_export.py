"""Prometheus exposition: rendering rules and the strict parser.

The renderer and parser are tested against each other on purpose —
every exposition the repo serves must survive its own strict reader,
and the reader must reject the two bugs the renderer used to have
(duplicate per-path TYPE lines, lossy label escaping).
"""

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    parse_prometheus_text,
    prometheus_text,
)
from repro.obs.export import ExpositionError


def _span_stat(count=1, total=0.5, min_s=0.1, max_s=0.4):
    return {"count": count, "total_s": total, "min_s": min_s, "max_s": max_s}


class TestRendering:
    def test_gauges_render_as_gauge_family(self):
        text = prometheus_text({"gauges": {"service.queue.depth": 3.0}})
        assert "# TYPE repro_service_queue_depth gauge" in text
        assert "repro_service_queue_depth 3.0" in text

    def test_histogram_family_shape(self):
        reg = MetricsRegistry()
        reg.observe_hist("engine.task.seconds", 0.003)
        reg.observe_hist("engine.task.seconds", 99.0)
        text = prometheus_text(reg.snapshot())
        assert "# TYPE repro_engine_task_seconds histogram" in text
        assert 'repro_engine_task_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_engine_task_seconds_count 2" in text
        assert "repro_engine_task_seconds_sum" in text

    def test_one_type_line_per_span_family(self):
        # Regression: the old renderer re-emitted the summary (and
        # min/max gauge) TYPE headers once per span path.
        snap = {"spans": {"a": _span_stat(), "a/b": _span_stat(),
                          "a/c": _span_stat()}}
        text = prometheus_text(snap)
        assert text.count("# TYPE repro_span_seconds summary") == 1
        assert text.count("# TYPE repro_span_seconds_min gauge") == 1
        assert text.count("# TYPE repro_span_seconds_max gauge") == 1
        assert text.count("repro_span_seconds_count") == 3

    def test_label_escaping_round_trips(self):
        # Regression: quotes used to be mangled to apostrophes.
        path = 'run/"quoted"\\back\nslash'
        text = prometheus_text({"spans": {path: _span_stat(count=2)}})
        exposition = parse_prometheus_text(text)
        assert exposition.value("repro_span_seconds_count",
                                {"path": path}) == 2.0

    def test_histogram_supersedes_same_named_timer(self):
        # Timer engine.task and histogram engine.task.seconds flatten
        # to the same family; the histogram owns it, the timer's
        # min/max gauges survive, and the whole text stays parsable.
        reg = MetricsRegistry()
        with reg.timed("engine.task", hist="engine.task.seconds"):
            pass
        text = prometheus_text(reg.snapshot())
        assert "# TYPE repro_engine_task_seconds summary" not in text
        assert "# TYPE repro_engine_task_seconds histogram" in text
        assert "# TYPE repro_engine_task_seconds_max gauge" in text
        parse_prometheus_text(text)  # no duplicate families

    def test_every_rendered_exposition_parses(self):
        reg = MetricsRegistry()
        reg.inc("engine.tasks.ok", 2)
        reg.set_gauge("service.queue.depth", 1.0)
        reg.observe("service.job", 0.5)
        reg.observe_hist("service.job.seconds", 0.5)
        with reg.span("engine.run"):
            pass
        exposition = parse_prometheus_text(prometheus_text(reg.snapshot()))
        assert exposition.value("repro_engine_tasks_ok_total") == 2.0


class TestStrictParser:
    def test_rejects_duplicate_type_lines(self):
        text = ("# TYPE repro_x counter\nrepro_x 1\n"
                "# TYPE repro_x counter\n")
        with pytest.raises(ExpositionError, match="duplicate TYPE"):
            parse_prometheus_text(text)

    def test_rejects_samples_outside_any_family(self):
        with pytest.raises(ExpositionError, match="no declared family"):
            parse_prometheus_text("repro_orphan 1\n")

    def test_rejects_duplicate_samples(self):
        text = "# TYPE repro_x gauge\nrepro_x 1\nrepro_x 2\n"
        with pytest.raises(ExpositionError, match="duplicate sample"):
            parse_prometheus_text(text)

    def test_rejects_histogram_without_inf_bucket(self):
        text = ("# TYPE repro_h histogram\n"
                'repro_h_bucket{le="1.0"} 1\n'
                "repro_h_sum 0.5\nrepro_h_count 1\n")
        with pytest.raises(ExpositionError, match="no \\+Inf"):
            parse_prometheus_text(text)

    def test_rejects_inf_bucket_count_mismatch(self):
        text = ("# TYPE repro_h histogram\n"
                'repro_h_bucket{le="1.0"} 1\n'
                'repro_h_bucket{le="+Inf"} 1\n'
                "repro_h_sum 0.5\nrepro_h_count 2\n")
        with pytest.raises(ExpositionError, match="!= _count"):
            parse_prometheus_text(text)

    def test_rejects_decreasing_cumulative_buckets(self):
        text = ("# TYPE repro_h histogram\n"
                'repro_h_bucket{le="1.0"} 3\n'
                'repro_h_bucket{le="2.0"} 1\n'
                'repro_h_bucket{le="+Inf"} 3\n'
                "repro_h_sum 0.5\nrepro_h_count 3\n")
        with pytest.raises(ExpositionError, match="decreases"):
            parse_prometheus_text(text)

    def test_rejects_unparsable_lines(self):
        with pytest.raises(ExpositionError, match="unparsable"):
            parse_prometheus_text("!!!\n")

    def test_parsed_histogram_supports_quantiles(self):
        reg = MetricsRegistry()
        for v in (0.001, 0.02, 0.02, 4.0):
            reg.observe_hist("engine.task.seconds", v,
                             buckets=DEFAULT_LATENCY_BUCKETS)
        exposition = parse_prometheus_text(prometheus_text(reg.snapshot()))
        hist = exposition.histogram("repro_engine_task_seconds")
        assert hist.count == 4
        assert hist.sum == pytest.approx(4.041)
        assert 0.01 < hist.quantile(0.5) <= 0.025

    def test_histogram_accessor_rejects_other_families(self):
        exposition = parse_prometheus_text("# TYPE repro_x gauge\n"
                                           "repro_x 1\n")
        with pytest.raises(ExpositionError, match="not a histogram"):
            exposition.histogram("repro_x")

"""Tests for the extension schemes: DSSS session, quaternary scheme,
amplitude baseline, energy decoder, alternating-phase translator."""

import numpy as np
import pytest

from repro.core.decoder import EnergyTagDecoder
from repro.core.quaternary import (
    QuaternaryTagDecoder,
    bits_to_levels,
    levels_to_bits,
    reference_symbol_matrix,
)
from repro.core.session import (
    DsssBackscatterSession,
    QuaternaryWifiSession,
    WifiBackscatterSession,
)
from repro.core.translation import (
    AlternatingPhaseTranslator,
    AmplitudeTranslator,
    TranslationPlan,
)


class TestAlternatingPhaseTranslator:
    def test_zero_bits_hold_state(self):
        t = AlternatingPhaseTranslator()
        plan = TranslationPlan(4, 2, 0, 4)
        ctrl = t.control_waveform([0, 0], plan, 16)
        assert np.allclose(ctrl, 1.0)

    def test_one_bits_toggle_every_unit(self):
        t = AlternatingPhaseTranslator()
        plan = TranslationPlan(2, 3, 0, 6)
        ctrl = t.control_waveform([1, 0], plan, 12)
        # Span 0: toggles each of the 3 units: -1, +1, -1.
        assert np.allclose(ctrl[0:2], -1)
        assert np.allclose(ctrl[2:4], 1)
        assert np.allclose(ctrl[4:6], -1)
        # Span 1 (bit 0): holds the final state.
        assert np.allclose(ctrl[6:12], -1)

    def test_capacity_enforced(self):
        t = AlternatingPhaseTranslator()
        plan = TranslationPlan(2, 2, 0, 2)
        with pytest.raises(ValueError):
            t.control_waveform([1, 1], plan, 100)


class TestDsssSession:
    def test_round_trip(self):
        s = DsssBackscatterSession(seed=5)
        r = s.run_packet(snr_db=15)
        assert r.delivered and r.tag_bit_errors == 0

    def test_known_bits(self, rng):
        s = DsssBackscatterSession(seed=6, payload_bytes=200)
        bits = rng.integers(0, 2, 30).astype(np.uint8)
        r = s.run_packet(snr_db=15, tag_bits=bits)
        assert r.delivered and r.tag_bit_errors == 0

    def test_rate_exceeds_ofdm(self):
        """Paper section 4.2.1: the DSSS tag rate beats FreeRider's
        OFDM rate because DSSS symbols are shorter."""
        dsss = DsssBackscatterSession(seed=7, payload_bytes=500)
        ofdm = WifiBackscatterSession(seed=7, payload_bytes=500)
        f_d = dsss.transmitter.build(bytes(500))
        f_o = ofdm.transmitter.build(bytes(500))
        rate_d = dsss.capacity_bits() / f_d.duration_us
        rate_o = ofdm.capacity_bits() / f_o.duration_us
        assert rate_d > 1.2 * rate_o

    def test_low_snr_fails(self):
        s = DsssBackscatterSession(seed=8)
        r = s.run_packet(snr_db=-12)
        assert not r.delivered or r.tag_ber > 0.05


class TestQuaternaryHelpers:
    def test_levels_round_trip(self, rng):
        bits = rng.integers(0, 2, 40).astype(np.uint8)
        assert np.array_equal(levels_to_bits(bits_to_levels(bits)), bits)

    def test_odd_bits_raise(self):
        with pytest.raises(ValueError):
            bits_to_levels([1, 0, 1])

    def test_bad_levels_raise(self):
        with pytest.raises(ValueError):
            levels_to_bits([4])

    def test_reference_matrix_matches_receiver(self):
        """The re-derived TX constellation equals what a receiver sees
        on a clean channel."""
        from repro.phy.wifi import WifiReceiver, WifiTransmitter

        tx = WifiTransmitter(12.0, seed=9)
        frame = tx.build(tx.random_psdu(100))
        ref = reference_symbol_matrix(frame)
        res = WifiReceiver().decode(frame.samples, noise_var=1e-4)
        assert np.allclose(ref, res.equalized_symbols, atol=1e-6)


class TestQuaternarySession:
    def test_error_free_at_moderate_snr(self):
        s = QuaternaryWifiSession(seed=10)
        for snr in (15.0, 8.0):
            r = s.run_packet(snr_db=snr)
            assert r.delivered and r.tag_bit_errors == 0

    def test_doubles_instantaneous_rate(self):
        quat = QuaternaryWifiSession(seed=11, payload_bytes=512)
        binary = WifiBackscatterSession(seed=11, payload_bytes=512)
        f_q = quat.transmitter.build(bytes(512))
        f_b = binary.transmitter.build(bytes(512))
        rate_q = quat.capacity_bits() / f_q.duration_us
        rate_b = binary.capacity_bits() / f_b.duration_us
        assert rate_q > 1.7 * rate_b

    def test_needs_qpsk(self):
        with pytest.raises(ValueError):
            QuaternaryWifiSession(rate_mbps=6.0)

    def test_decoder_handles_all_levels(self, rng):
        """Each of the four rotations is recovered."""
        dec = QuaternaryTagDecoder(repetition=2, offset_symbols=0)
        ref = (rng.normal(size=(8, 48)) + 1j * rng.normal(size=(8, 48)))
        rx = ref.copy()
        for k, level in enumerate((0, 1, 2, 3)):
            rx[2 * k:2 * k + 2] *= np.exp(1j * np.pi / 2 * level)
        assert list(dec.decode_levels(ref, rx)) == [0, 1, 2, 3]


class TestAmplitudeBaseline:
    def test_translator_levels(self):
        t = AmplitudeTranslator(high=1.0, low=0.4)
        plan = TranslationPlan(4, 1, 0, 3)
        ctrl = t.control_waveform([1, 0, 1], plan, 12)
        assert np.allclose(ctrl[0:4], 0.4)
        assert np.allclose(ctrl[4:8], 1.0)

    def test_invalid_levels_raise(self):
        with pytest.raises(ValueError):
            AmplitudeTranslator(high=0.5, low=0.5)

    def test_energy_decoder_clean(self, rng):
        t = AmplitudeTranslator(high=1.0, low=0.5)
        plan = TranslationPlan(40, 1, 0, 8)
        bits = rng.integers(0, 2, 8).astype(np.uint8)
        x = np.ones(320, dtype=complex)
        y = x * t.control_waveform(bits, plan, 320)
        dec = EnergyTagDecoder(span_samples=40)
        out = dec.decode(y, n_tag_bits=8)
        assert np.array_equal(out.bits, bits)

    def test_energy_decoder_needs_snr(self, rng):
        """The incoherent baseline fails where coherent translation
        still works — the Figure 2 / [15] contrast."""
        from repro.channel.awgn import awgn_at_snr

        t = AmplitudeTranslator(high=1.0, low=0.5)
        plan = TranslationPlan(40, 1, 0, 16)
        bits = rng.integers(0, 2, 16).astype(np.uint8)
        x = np.ones(640, dtype=complex)
        y = x * t.control_waveform(bits, plan, 640)
        noisy = awgn_at_snr(y, -6.0, rng)
        dec = EnergyTagDecoder(span_samples=40)
        out = dec.decode(noisy, n_tag_bits=16)
        assert out.errors_against(bits) > 0

    def test_amplitude_breaks_qam_validity(self):
        """Scaling 16-QAM subcarriers leaves the codebook (Figure 2)."""
        from repro.phy.wifi.constellation import CONSTELLATIONS

        c = CONSTELLATIONS["16-QAM"]
        scaled = 0.5 * c.points
        dmin = c.min_distance()
        off_grid = sum(1 for p in scaled
                       if np.min(np.abs(c.points - p)) > dmin / 4)
        assert off_grid > len(scaled) / 2

    def test_energy_decoder_validation(self):
        with pytest.raises(ValueError):
            EnergyTagDecoder(span_samples=0)
        with pytest.raises(ValueError):
            EnergyTagDecoder(span_samples=4, start_sample=-1)


class TestRotationDecoderBinary:
    def test_binary_levels(self, rng):
        from repro.core.quaternary import RotationTagDecoder

        dec = RotationTagDecoder(repetition=2, offset_symbols=0, n_levels=2)
        ref = (rng.normal(size=(6, 48)) + 1j * rng.normal(size=(6, 48)))
        rx = ref.copy()
        rx[2:4] *= -1.0  # 180-degree span
        assert list(dec.decode_bits(ref, rx)) == [0, 1, 0]

    def test_invalid_levels_raise(self):
        from repro.core.quaternary import RotationTagDecoder

        with pytest.raises(ValueError):
            RotationTagDecoder(n_levels=3)

    def test_noise_tolerance(self, rng):
        from repro.core.quaternary import RotationTagDecoder

        dec = RotationTagDecoder(repetition=4, offset_symbols=0, n_levels=2)
        ref = (rng.normal(size=(16, 48)) + 1j * rng.normal(size=(16, 48)))
        bits = rng.integers(0, 2, 4).astype(np.uint8)
        rx = ref.copy()
        for k, b in enumerate(bits):
            if b:
                rx[4 * k:4 * k + 4] *= -1.0
        rx += 0.7 * (rng.normal(size=rx.shape) + 1j * rng.normal(size=rx.shape))
        assert np.array_equal(dec.decode_bits(ref, rx), bits)


class TestQamExcitation:
    """DESIGN.md finding 5: QAM MCSs need the rotation decoder, and the
    session switches automatically."""

    @pytest.mark.parametrize("mbps", [24.0, 54.0])
    def test_qam_sessions_error_free(self, mbps):
        s = WifiBackscatterSession(rate_mbps=mbps, seed=60,
                                   payload_bytes=512)
        r = s.run_packet(snr_db=20.0)
        assert r.delivered and r.tag_bit_errors == 0

    def test_qam_xor_decoder_would_fail(self, rng):
        """Directly confirm the finding: XOR decoding on 16-QAM garbles."""
        from repro.channel.awgn import awgn_at_snr
        from repro.core.decoder import XorTagDecoder
        from repro.phy.wifi import WifiReceiver, WifiTransmitter
        from repro.tag.tag import ExcitationInfo, FreeRiderTag
        from repro.core.translation import PhaseTranslator

        tx = WifiTransmitter(24.0, seed=61)
        frame = tx.build(tx.random_psdu(512))
        info = ExcitationInfo(20e6, 80, frame.data_start + 80,
                              frame.n_samples)
        tag = FreeRiderTag(PhaseTranslator(2), repetition=4)
        bits = rng.integers(0, 2, tag.capacity_bits(info)).astype(np.uint8)
        out = tag.backscatter(frame.samples, info, bits)
        noisy = awgn_at_snr(out.samples, 25.0, rng)
        result = WifiReceiver().decode(noisy, noise_var=1e-2)
        rate = frame.rate
        dec = XorTagDecoder(bits_per_unit=rate.n_dbps, repetition=4,
                            offset_bits=rate.n_dbps, guard_bits=2)
        decoded = dec.decode(frame.data_bits, result.data_field_bits,
                             n_tag_bits=out.bits_sent)
        # On QAM the flip complements only the axis MSBs, so a flipped
        # span's XOR-diff density sits at ~0.5 — exactly on the majority
        # threshold, with zero noise margin (on BPSK/QPSK it is ~1.0).
        span = rate.n_dbps * 4
        densities = []
        for k, b in enumerate(bits[:out.bits_sent]):
            if not b:
                continue
            lo = rate.n_dbps + k * span
            densities.append(float(decoded.diff_stream[lo:lo + span].mean()))
        assert densities, "need at least one tag 1-bit in the sample"
        assert max(densities) < 0.75  # never the clean ~1.0 of BPSK/QPSK

"""Engine micro-benchmark: packets/s of the WiFi distance sweep.

Four configurations of the same experiment are timed:

* ``legacy``      — ``LinkSimulator.sweep`` with ``n_jobs=None``: the
  historical serial path that rebuilds the excitation frame for every
  packet.
* ``engine x1``   — the experiment engine with one worker: serial, but
  with the per-point excitation template cache.
* ``engine xN``   — the engine fanned out over ``ProcessPoolExecutor``
  workers (N = ``--jobs``, default 4).
* ``degrade+fault`` — the same sweep with one injected worker fault
  under the degrade policy (retry once): measures the overhead of the
  fault-handling layer and asserts the sweep still completes.

Engine runs also record the observability layer's per-stage PHY timers
(``phy.wifi.encode/channel/decode``) and engine counters in the JSON
record.

All three produce statistically equivalent sweeps; the engine paths are
bit-identical to each other for any worker count.  Results go to
``benchmarks/results/BENCH_engine.json`` so regressions are diffable.

Run as a script (it is not collected by pytest — the ``bench_`` prefix
keeps it out of test discovery)::

    PYTHONPATH=src python benchmarks/bench_engine.py --jobs 4
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import time

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

DISTANCES = (1.0, 5.0, 10.0, 18.0)
PACKETS_PER_POINT = 4
SEED = 42


def _spec():
    from repro.channel.geometry import Deployment
    from repro.sim.config import WIFI_CONFIG
    from repro.sim.engine import ExperimentSpec

    return ExperimentSpec(config=WIFI_CONFIG, deployment=Deployment.los(1.0),
                          distances_m=DISTANCES,
                          packets_per_point=PACKETS_PER_POINT, seed=SEED)


def bench_legacy():
    """Serial sweep through the pre-engine code path."""
    from repro.channel.geometry import Deployment
    from repro.sim.config import WIFI_CONFIG
    from repro.sim.linksim import LinkSimulator

    sim = LinkSimulator(WIFI_CONFIG, Deployment.los(1.0),
                        packets_per_point=PACKETS_PER_POINT, seed=SEED)
    start = time.perf_counter()
    points = sim.sweep(DISTANCES)
    wall = time.perf_counter() - start
    packets = len(DISTANCES) * PACKETS_PER_POINT
    return {"label": "legacy serial sweep", "n_jobs": None,
            "wall_time_s": wall, "packets": packets,
            "packets_per_second": packets / wall,
            "n_points": len(points)}


def bench_engine(n_jobs: int):
    from repro.sim.engine import ExperimentEngine

    result = ExperimentEngine(n_jobs=n_jobs).run(_spec())
    return {"label": f"engine x{n_jobs}", "n_jobs": n_jobs,
            "wall_time_s": result.wall_time_s,
            "packets": result.packets_simulated,
            "packets_per_second": result.packets_per_second,
            "n_points": len(result.points),
            # per-stage PHY timers + engine counters (observability layer)
            "metrics": result.metrics,
            "n_failed": result.n_failed}


def bench_degrade_with_fault(n_jobs: int):
    """Resilience check: one injected worker fault, retried once.

    The sweep must complete with zero failed points and exactly one
    retry on the engine counters — regressions in the fault-handling
    path show up here as either a lost point or a changed retry count.
    """
    from repro.sim.engine import ExperimentEngine, FailurePolicy, FaultInjector

    engine = ExperimentEngine(
        n_jobs=n_jobs,
        failure_policy=FailurePolicy.degrade_policy(max_attempts=2),
        fault_injector=FaultInjector(fail={0: 1}))
    result = engine.run(_spec())
    counters = result.metrics.get("counters", {})
    return {"label": f"degrade+fault x{n_jobs}", "n_jobs": n_jobs,
            "wall_time_s": result.wall_time_s,
            "packets": result.packets_simulated,
            "packets_per_second": result.packets_per_second,
            "n_points": len(result.points),
            "metrics": result.metrics,
            "n_failed": result.n_failed,
            "retries": counters.get("engine.retries", 0)}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count for the parallel run")
    args = parser.parse_args(argv)

    runs = [bench_legacy(), bench_engine(1), bench_engine(args.jobs),
            bench_degrade_with_fault(args.jobs)]
    baseline = runs[0]["packets_per_second"]
    for run in runs:
        run["speedup_vs_legacy"] = run["packets_per_second"] / baseline
        print(f"{run['label']:>22}: {run['wall_time_s']:6.2f} s  "
              f"{run['packets_per_second']:6.2f} pkt/s  "
              f"({run['speedup_vs_legacy']:.2f}x)")

    # Per-stage accounting from the observability layer, so slow stages
    # are attributable without re-profiling.
    timers = runs[2].get("metrics", {}).get("timers", {})
    for name in sorted(timers):
        t = timers[name]
        print(f"{name:>28}: n={t['count']:<4d} total={t['total_s']:.3f}s "
              f"mean={t['mean_s'] * 1e3:.2f}ms")

    record = {
        "experiment": "wifi LOS sweep",
        "distances_m": list(DISTANCES),
        "packets_per_point": PACKETS_PER_POINT,
        "seed": SEED,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "runs": runs,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_engine.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"[written to {path}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""R007 violations: unpicklable payloads on engine boundaries."""


def build_spec(ExperimentSpec, config):
    return ExperimentSpec(config=config, transform=lambda x: x * 2)


def dispatch(pool, value):
    return pool.submit(lambda: value + 1)


class SweepSpec:
    builder = lambda: None  # noqa: E731

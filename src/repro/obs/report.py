"""Run reports: render a finished run into text or markdown.

A report combines up to three inputs, any subset of which may be
present:

* the **metrics record** written by ``--metrics-json`` (or a full
  ``RunResult.to_dict()``): timing, per-task records, and the merged
  counters / timers / span aggregates;
* the **trace file** written by ``--trace`` (JSONL, one event per
  line, each stamped with the spec fingerprint): span durations,
  sampled per-packet forensics, retry/requeue events;
* the **checkpoint journal** (JSONL): per-point stage breakdowns.

``repro report`` is the CLI front-end; :func:`render_report` is the
library entry point.  Every section degrades gracefully when its
input is missing — a report over just a trace file still shows spans
and packet forensics, a report over just the metrics record still
shows timing and engine accounting.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs import forensics

__all__ = ["load_metrics_record", "load_journal_rows", "render_report"]


def load_metrics_record(path: str) -> Dict[str, Any]:
    """Load a ``--metrics-json`` record (or ``RunResult.to_dict()``)."""
    with open(path) as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected a JSON object")
    return data


def load_journal_rows(path: str,
                      fingerprint: Optional[str] = None
                      ) -> List[Dict[str, Any]]:
    """Read completed-point rows from a checkpoint journal.

    Tolerant of torn tails and foreign lines (same contract as the
    engine's own resume path); keeps the *last* row per point index.
    When *fingerprint* is given, rows stamped with a different spec
    are dropped.
    """
    rows: Dict[int, Dict[str, Any]] = {}
    try:
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    continue  # torn tail from an interrupted run
                if not isinstance(rec, dict) or "index" not in rec:
                    continue
                if fingerprint and rec.get("spec") not in (None, fingerprint):
                    continue
                if rec.get("status", "ok") != "ok":
                    continue
                rows[int(rec["index"])] = rec
    except FileNotFoundError:
        return []
    return [rows[i] for i in sorted(rows)]


# -- table rendering ------------------------------------------------------

def _render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                  fmt: str) -> List[str]:
    cells = [[_fmt_cell(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    if fmt == "markdown":
        lines = ["| " + " | ".join(h.ljust(w) for h, w in
                                   zip(headers, widths)) + " |",
                 "|" + "|".join("-" * (w + 2) for w in widths) + "|"]
        lines += ["| " + " | ".join(c.ljust(w) for c, w in
                                    zip(row, widths)) + " |"
                  for row in cells]
        return lines
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()]
    lines.append("  ".join("-" * w for w in widths))
    lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
              for row in cells]
    return lines


def _fmt_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _heading(title: str, fmt: str) -> List[str]:
    if fmt == "markdown":
        return [f"## {title}", ""]
    return [title, "=" * len(title)]


# -- sections -------------------------------------------------------------

def _summary_section(record: Mapping[str, Any], fmt: str) -> List[str]:
    timing = record.get("timing")
    if not isinstance(timing, Mapping):
        return []
    lines = _heading("Run summary", fmt)
    for label, key, unit in (
            ("wall time", "wall_time_s", " s"),
            ("workers", "n_jobs", ""),
            ("tasks", "n_tasks", ""),
            ("failed tasks", "n_failed", ""),
            ("packets simulated", "packets_simulated", ""),
            ("packets/s", "packets_per_second", "")):
        if key in timing:
            lines.append(f"- {label}: {_fmt_cell(timing[key])}{unit}")
    lines.append("")
    return lines


def _stage_table(counters: Mapping[str, Any]) -> List[Tuple[str, Dict[str, int]]]:
    """``phy.<radio>.stage.<stage>`` counters grouped by radio."""
    per_radio: Dict[str, Dict[str, int]] = {}
    for name, value in counters.items():
        if not (name.startswith("phy.") and ".stage." in name):
            continue
        prefix, stage = name.rsplit(".stage.", 1)
        radio = prefix[len("phy."):]
        per_radio.setdefault(radio, {})[stage] = int(value)
    return sorted(per_radio.items())


def _forensics_section(record: Mapping[str, Any], fmt: str) -> List[str]:
    metrics = record.get("metrics")
    if not isinstance(metrics, Mapping):
        return []
    counters = metrics.get("counters")
    if not isinstance(counters, Mapping):
        return []
    radios = _stage_table(counters)
    if not radios:
        return []
    lines = _heading("Decode forensics", fmt)
    headers = ["radio"] + list(forensics.STAGES) + ["total", "packets"]
    rows: List[List[Any]] = []
    for radio, stages in radios:
        total = sum(stages.values())
        packets = counters.get(f"phy.{radio}.packets", total)
        rows.append([radio] + [stages.get(s, 0) for s in forensics.STAGES]
                    + [total, int(packets)])
    lines += _render_table(headers, rows, fmt)
    lines.append("")
    return lines


def _batching_section(record: Mapping[str, Any], fmt: str) -> List[str]:
    """Surface the batch-path health counters, most importantly the
    silent-scalar-fallback count: a run that asked for batching but
    fell back (``phy.batch.fallback``) is correct yet several times
    slower, which is worth a loud line rather than a missing one."""
    metrics = record.get("metrics")
    if not isinstance(metrics, Mapping):
        return []
    counters = metrics.get("counters")
    if not isinstance(counters, Mapping):
        return []
    fallbacks = int(counters.get("phy.batch.fallback", 0))
    batched = int(counters.get("engine.batch.points", 0))
    if not fallbacks and not batched:
        return []
    lines = _heading("Batching", fmt)
    if batched:
        lines.append(f"- cross-point batched tasks: {batched}")
    if fallbacks:
        lines.append(f"- WARNING: batch requested but the session fell "
                     f"back to the scalar loop {fallbacks} time(s) "
                     f"(phy.batch.fallback) — results are identical but "
                     f"several times slower; the session lacks the "
                     f"two-phase batch API")
    lines.append("")
    return lines


def _per_point_section(rows: Sequence[Mapping[str, Any]],
                       fmt: str, source: str) -> List[str]:
    """Per-point stage breakdown from journal rows or task records."""
    with_stages = [r for r in rows if r.get("stage_counts")]
    if not with_stages:
        return []
    lines = _heading(f"Per-point breakdown ({source})", fmt)
    headers = (["point", "task"] + list(forensics.STAGES) + ["total"])
    table: List[List[Any]] = []
    for rec in with_stages:
        stages = rec.get("stage_counts") or {}
        table.append([rec.get("index", "?"), rec.get("task", "?")]
                     + [int(stages.get(s, 0)) for s in forensics.STAGES]
                     + [sum(int(v) for v in stages.values())])
    lines += _render_table(headers, table, fmt)
    lines.append("")
    return lines


def _engine_section(record: Mapping[str, Any],
                    trace: Sequence[Mapping[str, Any]],
                    fmt: str) -> List[str]:
    metrics = record.get("metrics")
    counters: Mapping[str, Any] = {}
    if isinstance(metrics, Mapping):
        raw = metrics.get("counters")
        if isinstance(raw, Mapping):
            counters = raw
    retries = [e for e in trace if e.get("kind") == "engine.retry"]
    requeues = [e for e in trace if e.get("kind") == "engine.requeue"]
    names = [n for n in counters if n.startswith("engine.")]
    if not names and not retries and not requeues:
        return []
    lines = _heading("Engine accounting", fmt)
    for name in sorted(names):
        lines.append(f"- {name}: {int(counters[name])}")
    for ev in retries:
        lines.append(f"- retry: task {ev.get('task')} attempt "
                     f"{ev.get('attempt')} ({ev.get('status')}: "
                     f"{ev.get('error')})")
    for ev in requeues:
        lines.append(f"- requeue: task {ev.get('task')} attempt "
                     f"{ev.get('attempt')}")
    tasks = record.get("tasks")
    if isinstance(tasks, Sequence):
        for task in tasks:
            if isinstance(task, Mapping) and task.get("status") != "ok":
                lines.append(f"- FAILED task {task.get('index')} "
                             f"({task.get('status')} after "
                             f"{task.get('attempts')} attempts): "
                             f"{task.get('error')}")
    lines.append("")
    return lines


def _gauges_section(record: Mapping[str, Any], fmt: str) -> List[str]:
    metrics = record.get("metrics")
    gauges = metrics.get("gauges") if isinstance(metrics, Mapping) else None
    if not isinstance(gauges, Mapping) or not gauges:
        return []
    lines = _heading("Gauges", fmt)
    for name in sorted(gauges):
        lines.append(f"- {name}: {_fmt_cell(float(gauges[name]))}")
    lines.append("")
    return lines


def _histograms_section(record: Mapping[str, Any], fmt: str) -> List[str]:
    """Latency percentiles from the merged histogram snapshots."""
    from repro.obs.metrics import Histogram

    metrics = record.get("metrics")
    raw = (metrics.get("histograms")
           if isinstance(metrics, Mapping) else None)
    if not isinstance(raw, Mapping) or not raw:
        return []
    rows: List[List[Any]] = []
    for name in sorted(raw):
        data = raw[name]
        if not isinstance(data, Mapping):
            continue
        try:
            hist = Histogram.from_dict(dict(data))
        except (ValueError, TypeError, KeyError):
            continue  # foreign or torn snapshot entry; skip, don't die
        if hist.count == 0:
            continue
        rows.append([name, hist.count, hist.mean,
                     *(hist.quantile(q) or 0.0 for q in (0.5, 0.9, 0.99))])
    if not rows:
        return []
    lines = _heading("Latency histograms", fmt)
    lines += _render_table(
        ["histogram", "count", "mean (s)", "p50", "p90", "p99"], rows, fmt)
    lines.append("")
    return lines


def _spans_section(record: Mapping[str, Any],
                   trace: Sequence[Mapping[str, Any]],
                   fmt: str, top: int) -> List[str]:
    span_events = [e for e in trace
                   if e.get("kind") == "span" and "dur_s" in e]
    rows: List[List[Any]] = []
    if span_events:
        slowest = sorted(span_events, key=lambda e: -float(e["dur_s"]))[:top]
        for ev in slowest:
            attrs = ev.get("attrs") or {}
            rows.append([ev.get("path", "?"), float(ev["dur_s"]),
                         " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
                         if isinstance(attrs, Mapping) else ""])
        headers = ["span", "dur (s)", "attrs"]
    else:
        # No trace: fall back to the aggregated span stats (max as the
        # slowest observed instance of each path).
        metrics = record.get("metrics")
        spans = metrics.get("spans") if isinstance(metrics, Mapping) else None
        if not isinstance(spans, Mapping) or not spans:
            return []
        stats = sorted(spans.items(),
                       key=lambda kv: -float(kv[1].get("max_s", 0.0)))[:top]
        for path, stat in stats:
            rows.append([path, float(stat.get("max_s", 0.0)),
                         f"count={int(stat.get('count', 0))}"])
        headers = ["span", "max (s)", "attrs"]
    lines = _heading(f"Slowest spans (top {len(rows)})", fmt)
    lines += _render_table(headers, rows, fmt)
    lines.append("")
    return lines


def _packet_trace_section(trace: Sequence[Mapping[str, Any]],
                          fmt: str) -> List[str]:
    packets = [e for e in trace if e.get("kind") == "packet"]
    if not packets:
        return []
    by_stage: Dict[str, int] = {}
    for ev in packets:
        stage = str(ev.get("stage", "?"))
        by_stage[stage] = by_stage.get(stage, 0) + 1
    lines = _heading("Traced packets (sampled)", fmt)
    lines.append(f"- events: {len(packets)}")
    for stage in forensics.STAGES:
        if stage in by_stage:
            lines.append(f"- {stage}: {by_stage[stage]}")
    for stage in sorted(set(by_stage) - set(forensics.STAGES)):
        lines.append(f"- {stage}: {by_stage[stage]}")
    lines.append("")
    return lines


def render_report(record: Optional[Mapping[str, Any]] = None,
                  trace: Optional[Sequence[Mapping[str, Any]]] = None,
                  journal_rows: Optional[Sequence[Mapping[str, Any]]] = None,
                  fmt: str = "text", top: int = 10) -> str:
    """Render a run report from any subset of the three inputs.

    Parameters
    ----------
    record:
        The ``--metrics-json`` payload or ``RunResult.to_dict()``.
    trace:
        Parsed trace events (see :func:`repro.obs.trace.read_trace`).
    journal_rows:
        Checkpoint-journal rows (see :func:`load_journal_rows`); used
        for the per-point stage breakdown.  When absent, the per-task
        ``stage_counts`` from *record* are used instead.
    fmt:
        ``"text"`` or ``"markdown"``.
    top:
        How many spans the slowest-spans table shows.
    """
    if fmt not in ("text", "markdown"):
        raise ValueError(f"unknown report format: {fmt!r}")
    record = record or {}
    trace = trace or []
    lines: List[str] = []
    if fmt == "markdown":
        lines += ["# Run report", ""]
    else:
        lines += ["Run report", ""]
    lines += _summary_section(record, fmt)
    lines += _forensics_section(record, fmt)
    lines += _batching_section(record, fmt)
    if journal_rows:
        lines += _per_point_section(journal_rows, fmt, "checkpoint journal")
    else:
        tasks = record.get("tasks")
        if isinstance(tasks, Sequence):
            task_rows = [t for t in tasks if isinstance(t, Mapping)]
            lines += _per_point_section(task_rows, fmt, "task records")
    lines += _engine_section(record, trace, fmt)
    lines += _gauges_section(record, fmt)
    lines += _histograms_section(record, fmt)
    lines += _packet_trace_section(trace, fmt)
    lines += _spans_section(record, trace, fmt, top)
    if len(lines) <= 2:
        lines.append("(no inputs produced any report sections)")
    return "\n".join(lines).rstrip() + "\n"

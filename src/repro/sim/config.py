"""Calibrated per-radio configurations (DESIGN.md section 5).

All free parameters of the reproduction live here, set once so that the
paper's headline anchors hold (~60 kb/s WiFi backscatter within 18 m,
42 m LOS range; ~15 kb/s ZigBee to 22 m; ~50 kb/s Bluetooth to 12 m).

Calibration notes
-----------------
* ``tx_power_dbm`` are the paper's: 15 dBm WiFi (Intel 5300), 5 dBm
  ZigBee (CC2650), 0 dBm Bluetooth (CC2541).
* The hallway path loss (exponent 2.6, 30 dB at 1 m with the three
  3 dBi VERT2450 antenna gains absorbed) reproduces the RSSI span of
  Figure 10(c): about -70 dBm near the tag to -95 dBm at 42 m.
* ``repetition`` values are chosen so the *instantaneous* tag rate
  matches the paper: 1 bit / 4 OFDM symbols = 62.5 kb/s (section
  3.2.1); 1 bit / 4 ZigBee symbols = 15.6 kb/s; 1 bit / 18 Bluetooth
  bits = 55 kb/s.
* ``payload_bytes`` / ``interpacket_gap_us`` set the excitation duty
  cycle of a saturating exciter, giving the paper's average rates.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping

from repro.channel.link import BackscatterLinkBudget

__all__ = ["RadioConfig", "WIFI_CONFIG", "ZIGBEE_CONFIG", "BLE_CONFIG",
           "config_by_name", "config_names"]


@dataclass(frozen=True)
class RadioConfig:
    """Everything the link simulator needs to run one radio."""

    name: str
    tx_power_dbm: float
    bandwidth_hz: float
    noise_figure_db: float
    payload_bytes: int
    repetition: int
    interpacket_gap_us: float
    fading_sigma_db: float      # per-packet log-normal RSSI spread
    backscatter_shift_hz: float  # channel-offset toggle frequency
    implementation_loss_db: float = 0.0  # real-chip sensitivity penalty
    # Decode threshold of the full receive chain, measured by running
    # the signal-level session against an SNR sweep (the point of ~50 %
    # packet delivery).  Used by the analytic range solver (Figure 14).
    decode_threshold_snr_db: float = 0.0

    def budget(self) -> BackscatterLinkBudget:
        """The two-hop link budget for this radio."""
        return BackscatterLinkBudget(
            tx_power_dbm=self.tx_power_dbm,
            bandwidth_hz=self.bandwidth_hz,
            noise_figure_db=self.noise_figure_db,
        )

    def sensitivity_dbm(self) -> float:
        """Minimum backscatter RSSI for ~50 % packet delivery."""
        return self.budget().noise_dbm + self.decode_threshold_snr_db

    # -- serialization / derivation --------------------------------------
    # Experiment specs carry configs across process boundaries and into
    # JSON result files, and the CLI derives one-off variants
    # (--payload-bytes, --repetition) without hand-building dataclasses.

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-safe; round-trips via :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RadioConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys are ignored so configs serialized by a newer
        version of the code still load.
        """
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})

    def replace(self, **overrides) -> "RadioConfig":
        """Copy with *overrides* applied (the config is frozen)."""
        return dataclasses.replace(self, **overrides)


WIFI_CONFIG = RadioConfig(
    name="wifi",
    tx_power_dbm=15.0,
    bandwidth_hz=20e6,
    noise_figure_db=5.0,
    payload_bytes=1500,
    repetition=4,
    interpacket_gap_us=50.0,     # DIFS + minimal backoff, saturating TX
    fading_sigma_db=3.0,
    backscatter_shift_hz=20e6,   # channel 6 -> channel 13
    decode_threshold_snr_db=0.2,
)

ZIGBEE_CONFIG = RadioConfig(
    name="zigbee",
    tx_power_dbm=5.0,
    bandwidth_hz=2e6,
    noise_figure_db=5.0,
    payload_bytes=100,
    repetition=4,
    interpacket_gap_us=192.0,    # 802.15.4 turnaround
    fading_sigma_db=2.5,
    backscatter_shift_hz=5e6,    # move near 2.48 GHz
    # Our coherent 32-chip correlator decodes far below a CC2650's
    # -100 dBm datasheet sensitivity; this penalty aligns the simulated
    # cliff with the real chip (and the paper's 22 m).
    implementation_loss_db=14.0,
    decode_threshold_snr_db=7.5,
)

BLE_CONFIG = RadioConfig(
    name="bluetooth",
    tx_power_dbm=0.0,
    bandwidth_hz=1e6,
    noise_figure_db=5.0,
    payload_bytes=255,
    repetition=18,
    interpacket_gap_us=150.0,    # T_IFS
    fading_sigma_db=2.5,
    backscatter_shift_hz=2e6,
    implementation_loss_db=1.5,  # CC2541 front-end vs ideal discriminator
    decode_threshold_snr_db=12.3,
)

_CONFIGS = {c.name: c for c in (WIFI_CONFIG, ZIGBEE_CONFIG, BLE_CONFIG)}


def config_by_name(name: str) -> RadioConfig:
    """Look up a radio configuration by name."""
    try:
        return _CONFIGS[name.lower()]
    except KeyError:
        raise ValueError(f"unknown radio {name!r}; "
                         f"choose from {sorted(_CONFIGS)}") from None


def config_names() -> List[str]:
    """Sorted names of every calibrated radio configuration."""
    return sorted(_CONFIGS)

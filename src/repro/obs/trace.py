"""JSONL trace sink: durable, append-only event streams per run.

One line per event, every line stamped with the owning run's
``spec_fingerprint`` so multiple runs can share a file and a report can
filter to one run — the same keying discipline as the engine's
checkpoint journal.  Events are plain dicts (the registry's event
buffer plus whatever the engine adds: task indices, retry/backoff
records), written eagerly and flushed per line so a crashed run still
leaves a readable prefix.
"""

from __future__ import annotations

import json
import os
from types import TracebackType
from typing import Any, Dict, List, Optional, Type

__all__ = ["TraceSink", "read_trace"]


class TraceSink:
    """Append-only JSONL writer for trace events of one run."""

    def __init__(self, path: str, fingerprint: str) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self._n_written = 0
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._fh = open(path, "a")

    @property
    def n_written(self) -> int:
        return self._n_written

    def write(self, record: Dict[str, Any]) -> None:
        """Write one event, stamped with the run fingerprint."""
        line: Dict[str, Any] = {"spec": self.fingerprint}
        line.update(record)
        self._fh.write(json.dumps(line, sort_keys=True) + "\n")
        self._fh.flush()
        self._n_written += 1

    def write_all(self, records: List[Dict[str, Any]]) -> None:
        for record in records:
            self.write(record)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        self.close()


def read_trace(path: str,
               fingerprint: Optional[str] = None) -> List[Dict[str, Any]]:
    """Load trace events from *path*, optionally filtered to one run.

    Torn or non-JSON lines (a crash mid-write) are skipped, matching
    the checkpoint journal's tolerance.
    """
    events: List[Dict[str, Any]] = []
    if not os.path.exists(path):
        return events
    with open(path) as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict):
                continue
            if fingerprint is not None and record.get("spec") != fingerprint:
                continue
            events.append(record)
    return events

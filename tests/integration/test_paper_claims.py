"""Integration tests pinning the paper's headline claims.

Each test exercises the full stack (PHY + tag + channel + decoder or
MAC) and asserts the *shape* anchors of the evaluation section.  These
are the same quantities the benchmarks print; here they run with small
batches for speed.
"""

import numpy as np
import pytest

from repro.channel.geometry import Deployment
from repro.core.session import (
    BleBackscatterSession,
    WifiBackscatterSession,
    ZigbeeBackscatterSession,
)
from repro.sim.config import BLE_CONFIG, WIFI_CONFIG, ZIGBEE_CONFIG
from repro.sim.linksim import LinkSimulator
from repro.sim.macsim import MacExperiment


class TestHeadlineRates:
    """Abstract: ~60 kb/s single-tag WiFi, 15 kb/s multi-tag, 42 m."""

    def test_wifi_60kbps_at_close_range(self):
        sim = LinkSimulator(WIFI_CONFIG, Deployment.los(1.0),
                            packets_per_point=3, seed=11)
        assert sim.simulate_point(5.0).throughput_kbps == pytest.approx(
            60.0, abs=4.0)

    def test_wifi_alive_at_40m_dead_at_80m(self):
        sim = LinkSimulator(WIFI_CONFIG, Deployment.los(1.0),
                            packets_per_point=12, seed=12)
        assert sim.simulate_point(36.0).delivery_ratio > 0.15
        assert sim.simulate_point(80.0).delivery_ratio == 0.0

    def test_zigbee_14kbps_within_12m(self):
        sim = LinkSimulator(ZIGBEE_CONFIG, Deployment.los(1.0),
                            packets_per_point=3, seed=13)
        assert sim.simulate_point(6.0).throughput_kbps == pytest.approx(
            14.0, abs=2.0)

    def test_bluetooth_50kbps_within_10m(self):
        sim = LinkSimulator(BLE_CONFIG, Deployment.los(1.0),
                            packets_per_point=3, seed=14)
        assert sim.simulate_point(4.0).throughput_kbps == pytest.approx(
            50.0, abs=4.0)


class TestBerConditionedOnDelivery:
    """Section 4.2.1: when the header decodes, tag BER stays low even
    at long range (the ~1e-3 observation)."""

    def test_wifi_ber_low_at_30m(self):
        sim = LinkSimulator(WIFI_CONFIG, Deployment.los(1.0),
                            packets_per_point=8, seed=15)
        p = sim.simulate_point(30.0)
        if p.delivery_ratio > 0:
            assert p.ber < 2e-2


class TestRedundancyClaim:
    """Section 3.2.1: one tag bit per four OFDM symbols at 6 Mb/s gives
    ~1e-3 tag BER; fewer symbols per bit degrade sharply."""

    def _ber(self, repetition, snr_db, packets=4):
        s = WifiBackscatterSession(seed=16, payload_bytes=300,
                                   repetition=repetition)
        sent = errs = 0
        for _ in range(packets):
            r = s.run_packet(snr_db=snr_db)
            if r.delivered:
                sent += r.tag_bits_sent
                errs += r.tag_bit_errors
        return errs / sent if sent else 1.0

    def test_four_symbol_redundancy_near_1e_3(self):
        assert self._ber(4, snr_db=6.0) < 5e-3

    def test_single_symbol_much_worse(self):
        assert self._ber(1, snr_db=6.0) > 5 * max(self._ber(4, 6.0), 1e-4)


class TestZigbeeRepetition:
    """Section 3.2.2: N=8 OQPSK symbols per tag bit decode reliably; the
    boundary-violation errors hurt N=1."""

    def _errors(self, repetition):
        s = ZigbeeBackscatterSession(seed=17, repetition=repetition)
        r = s.run_packet(snr_db=15)
        return r.tag_bit_errors / max(r.tag_bits_sent, 1)

    def test_n8_clean(self):
        assert self._errors(8) == 0.0

    def test_n4_clean(self):
        assert self._errors(4) < 0.05


class TestMultiTagClaims:
    """Section 4.5: 20 tags work; Aloha ~18 kb/s asymptote vs TDM
    ~40 kb/s; fairness ~0.85 over a measurement window."""

    def test_20_tags_all_heard(self):
        from repro.mac.aloha import FramedSlottedAloha

        res = FramedSlottedAloha(seed=18).simulate(20, n_rounds=60)
        assert all(bits > 0 for bits in res.per_tag_bits.values())

    def test_asymptotes(self):
        exp = MacExperiment(seed=19)
        aloha = exp.asymptote_kbps(n_tags=100, scheme="aloha")
        tdm = exp.asymptote_kbps(n_tags=100, scheme="tdm")
        assert aloha == pytest.approx(18.0, abs=4.0)
        assert tdm == pytest.approx(40.0, abs=14.0)

    def test_window_fairness_near_085(self):
        exp = MacExperiment(measured_rounds=12, seed=20)
        fairness = [exp.run_point(20).fairness for _ in range(5)]
        assert np.mean(fairness) == pytest.approx(0.85, abs=0.1)


class TestBluetoothEdge:
    """Figure 13: Bluetooth throughput ~50 kb/s inside 10 m and a sharp
    collapse past 12 m."""

    def test_cliff(self):
        sim = LinkSimulator(BLE_CONFIG, Deployment.los(1.0),
                            packets_per_point=6, seed=21)
        near = sim.simulate_point(8.0)
        far = sim.simulate_point(20.0)
        assert near.delivery_ratio > 0.8
        assert far.delivery_ratio < 0.35

"""Bluetooth LE style air frame: preamble | access address | PDU | CRC24.

PDU here is a simple [length][payload] container; PDU+CRC are whitened
with the channel-index LFSR.  Octets are serialised LSB-first.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.bits import bytes_to_bits, bits_to_bytes
from repro.utils.crc import CRC24_BLE
from repro.phy.ble.whitening import Whitener

__all__ = ["BleFrameBuilder", "BLE_ACCESS_ADDRESS", "BLE_PREAMBLE_BYTE",
           "MAX_PAYLOAD_BYTES"]

BLE_ACCESS_ADDRESS = 0x8E89BED6
BLE_PREAMBLE_BYTE = 0xAA
MAX_PAYLOAD_BYTES = 255
HEADER_BYTES = 1 + 4 + 1  # preamble + access address + length octet
CRC_BYTES = 3


class BleFrameBuilder:
    """Builds and parses the on-air bit stream of one BLE-style packet."""

    def __init__(self, access_address: int = BLE_ACCESS_ADDRESS,
                 channel: int = 37):
        if not 0 <= access_address < 2**32:
            raise ValueError("access address must be a 32-bit value")
        self.access_address = access_address
        self.channel = channel

    def n_bits(self, payload_len: int) -> int:
        """On-air bit count for a payload of *payload_len* bytes."""
        return 8 * (HEADER_BYTES + payload_len + CRC_BYTES)

    def build_bits(self, payload: bytes) -> np.ndarray:
        """Assemble the whitened on-air bit stream for *payload*."""
        if not 1 <= len(payload) <= MAX_PAYLOAD_BYTES:
            raise ValueError(f"payload must be 1..{MAX_PAYLOAD_BYTES} bytes")
        pdu = bytes([len(payload)]) + payload
        crc = CRC24_BLE.digest(pdu)
        plain = bytes_to_bits(pdu + crc)
        whitened = Whitener(self.channel).process(plain)
        head = bytes([BLE_PREAMBLE_BYTE]) + self.access_address.to_bytes(4, "little")
        return np.concatenate([bytes_to_bits(head), whitened])

    def parse_bits(self, bits: np.ndarray) -> Tuple[Optional[bytes], bool]:
        """Parse received on-air bits into ``(payload, crc_ok)``.

        Returns ``(None, False)`` when the access address does not match
        (modelling sync failure / packet loss).
        """
        if bits.size < 8 * HEADER_BYTES + 8 * CRC_BYTES:
            return None, False
        head = bits_to_bytes(bits[: 8 * HEADER_BYTES])
        aa = int.from_bytes(head[1:5], "little")
        if aa != self.access_address:
            return None, False
        body_bits = bits[8 * (HEADER_BYTES - 1):]  # length octet onwards
        plain = Whitener(self.channel).process(body_bits)
        body = bits_to_bytes(plain)
        length = body[0]
        if len(body) < 1 + length + CRC_BYTES:
            return None, False
        payload = body[1: 1 + length]
        crc_rx = int.from_bytes(body[1 + length: 1 + length + CRC_BYTES], "little")
        crc_ok = CRC24_BLE.verify(bytes([length]) + payload, crc_rx)
        return payload, crc_ok

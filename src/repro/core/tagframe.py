"""Tag-data link layer: reliable messages over raw backscatter bits.

The paper's system delivers a raw tag bit-stream; a deployment needs
message boundaries, integrity and reassembly — a tag's reading rarely
fits one excitation packet, and packets get lost.  This thin link layer
frames tag payloads as

    [ preamble 8 | length 8 | payload ... | CRC-8 ]

streams the frame bits across as many excitation packets as needed
(each packet carries whatever its `capacity_bits` allows), and
reassembles on the decoder side by scanning the concatenated stream for
the preamble.  Lost excitation packets surface as CRC failures, never
as silent corruption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Union

import numpy as np

from repro.utils.bits import as_bits, bits_to_bytes, bytes_to_bits, int_to_bits, bits_to_int
from repro.utils.crc import Crc

__all__ = ["TagFramer", "TagDeframer", "TagMessage"]

PREAMBLE = (1, 0, 1, 1, 1, 0, 0, 1)
MAX_PAYLOAD_BYTES = 255

# CRC-8/MAXIM — cheap enough for a tag's control logic.
CRC8 = Crc(width=8, poly=0x31, init=0x00, refin=True, refout=True,
           xorout=0x00, name="crc8/maxim")


@dataclass(frozen=True)
class TagMessage:
    """One reassembled tag message."""

    payload: bytes
    crc_ok: bool
    start_bit: int  # position in the concatenated tag bit-stream


class TagFramer:
    """Tag-side: wrap payloads into frame bits and chunk them to
    excitation-packet capacities."""

    def frame_bits(self, payload: bytes) -> np.ndarray:
        """[preamble | length | payload | crc8] as a bit array."""
        if not 1 <= len(payload) <= MAX_PAYLOAD_BYTES:
            raise ValueError(f"payload must be 1..{MAX_PAYLOAD_BYTES} bytes")
        head = np.array(PREAMBLE, dtype=np.uint8)
        length = int_to_bits(len(payload), 8)
        body = bytes_to_bits(payload)
        crc = bytes_to_bits(bytes([CRC8.compute(payload)]))
        return np.concatenate([head, length, body, crc])

    def chunk(self, frame_bits: np.ndarray,
              capacities: List[int]) -> List[np.ndarray]:
        """Split frame bits across packets with the given capacities.

        Raises when total capacity is insufficient (the MAC schedules
        more packets in that case).
        """
        if any(c < 0 for c in capacities):
            raise ValueError("capacities must be non-negative")
        if sum(capacities) < frame_bits.size:
            raise ValueError("insufficient capacity for the frame")
        out: List[np.ndarray] = []
        at = 0
        for cap in capacities:
            take = min(cap, frame_bits.size - at)
            out.append(frame_bits[at:at + take])
            at += take
            if at >= frame_bits.size:
                break
        return out


class TagDeframer:
    """Decoder-side: accumulate decoded tag bits, emit messages.

    Bits arrive in per-packet pieces (possibly with garbage from lost
    packets interleaved); `push()` returns any complete messages found.
    """

    def __init__(self) -> None:
        self._buffer: List[int] = []
        self._consumed = 0

    def push(self, bits: Union[Sequence[int], np.ndarray, str]
             ) -> List[TagMessage]:
        """Feed decoded tag bits; return newly completed messages."""
        self._buffer.extend(int(b) for b in as_bits(bits))
        return self._drain()

    def _drain(self) -> List[TagMessage]:
        pre = list(PREAMBLE)
        npre = len(pre)
        messages: List[TagMessage] = []
        while True:
            buf = self._buffer
            # Find the preamble.
            found = -1
            for i in range(len(buf) - npre + 1):
                if buf[i:i + npre] == pre:
                    found = i
                    break
            if found < 0:
                # Keep a preamble-sized tail; drop leading garbage.
                drop = max(0, len(buf) - npre + 1)
                del buf[:drop]
                self._consumed += drop
                return messages
            header_end = found + npre + 8
            if len(buf) < header_end:
                return messages
            length = bits_to_int(np.array(buf[found + npre:header_end],
                                          dtype=np.uint8))
            total = npre + 8 + 8 * length + 8
            if length == 0 or length > MAX_PAYLOAD_BYTES:
                # Bogus header (garbage matched the preamble): skip it.
                del buf[:found + 1]
                self._consumed += found + 1
                continue
            if len(buf) < found + total:
                return messages
            bits = np.array(buf[header_end:found + total], dtype=np.uint8)
            payload = bits_to_bytes(bits[: 8 * length])
            crc_rx = bits_to_bytes(bits[8 * length:])[0]
            ok = CRC8.verify(payload, crc_rx)
            messages.append(TagMessage(payload=payload, crc_ok=ok,
                                       start_bit=self._consumed + found))
            if ok:
                del buf[:found + total]
                self._consumed += found + total
            else:
                # A garbage bit-pattern can fake a preamble whose bogus
                # length field swallows a real frame behind it.  On CRC
                # failure, resynchronise just past the suspect preamble
                # instead of consuming the whole bogus frame.
                del buf[:found + 1]
                self._consumed += found + 1

    def flush(self) -> List[TagMessage]:
        """End-of-stream resynchronisation.

        A garbage preamble with a large bogus length can leave the
        deframer waiting for bits that will never arrive, with a real
        frame buried behind it.  ``flush()`` declares the stream
        complete: while an incomplete frame candidate blocks the head
        of the buffer, skip past its preamble and rescan.  Returns any
        messages recovered.
        """
        pre = list(PREAMBLE)
        npre = len(pre)
        messages: List[TagMessage] = []
        while True:
            messages.extend(self._drain())
            buf = self._buffer
            found = -1
            for i in range(len(buf) - npre + 1):
                if buf[i:i + npre] == pre:
                    found = i
                    break
            if found < 0:
                return messages
            # _drain() left this candidate pending (not enough bits to
            # complete it) — it can never complete now, so skip it.
            del buf[:found + 1]
            self._consumed += found + 1

    def reset(self) -> None:
        """Discard buffered bits."""
        self._buffer.clear()
        self._consumed = 0

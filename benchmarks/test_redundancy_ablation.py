"""Ablations of the design choices DESIGN.md calls out.

E12 — section 3.2.1's redundancy claim: one tag bit per four OFDM
symbols at 6 Mb/s yields ~1e-3 tag BER, while shorter repetition breaks
against the scrambler/coder memory.  Also: ZigBee symbol repetition
(section 3.2.2) and the Bluetooth delta-f sideband condition
(equation 10).
"""

import numpy as np
import pytest

from repro.core.session import (
    BleBackscatterSession,
    WifiBackscatterSession,
    ZigbeeBackscatterSession,
)
from repro.sim.results import format_table


def wifi_ber(repetition, snr_db=8.0, packets=6, seed=180):
    session = WifiBackscatterSession(seed=seed, payload_bytes=400,
                                     repetition=repetition)
    sent = errors = 0
    for _ in range(packets):
        r = session.run_packet(snr_db=snr_db)
        if r.delivered:
            sent += r.tag_bits_sent
            errors += r.tag_bit_errors
    return errors / sent if sent else 1.0, sent


def zigbee_ber(repetition, snr_db=12.0, packets=6, seed=181):
    session = ZigbeeBackscatterSession(seed=seed, repetition=repetition)
    sent = errors = 0
    for _ in range(packets):
        r = session.run_packet(snr_db=snr_db)
        if r.delivered:
            sent += r.tag_bits_sent
            errors += r.tag_bit_errors
    return errors / sent if sent else 1.0, sent


def ble_ber(delta_f, snr_db=22.0, packets=4, seed=182):
    session = BleBackscatterSession(seed=seed, delta_f=delta_f)
    sent = errors = 0
    for _ in range(packets):
        r = session.run_packet(snr_db=snr_db)
        if r.delivered:
            sent += r.tag_bits_sent
            errors += r.tag_bit_errors
    return errors / sent if sent else 1.0, sent


def run_experiment():
    wifi = {n: wifi_ber(n) for n in (1, 2, 4, 8)}
    zigbee = {n: zigbee_ber(n) for n in (1, 2, 4, 8)}
    ble = {df: ble_ber(df) for df in (200e3, 350e3, 500e3)}
    return wifi, zigbee, ble


def test_redundancy_ablation(once, emit):
    wifi, zigbee, ble = once(run_experiment)

    rows = [["wifi", f"N={n} OFDM symbols/bit", ber, bits]
            for n, (ber, bits) in wifi.items()]
    rows += [["zigbee", f"N={n} OQPSK symbols/bit", ber, bits]
             for n, (ber, bits) in zigbee.items()]
    rows += [["bluetooth", f"delta_f={df/1e3:.0f} kHz", ber, bits]
             for df, (ber, bits) in ble.items()]
    table = format_table(["radio", "setting", "tag BER", "bits measured"],
                         rows,
                         title="Redundancy / translation-parameter ablation")
    emit("redundancy_ablation", table)

    # Section 3.2.1: N=4 at 6 Mb/s reaches ~1e-3; N=1 collapses.
    assert wifi[4][0] < 5e-3
    assert wifi[8][0] < 5e-3
    assert wifi[1][0] > 10 * max(wifi[4][0], 1e-4)
    # Section 3.2.2: N=8 is sufficient for ZigBee; N=1 is hurt by the
    # OQPSK boundary violation.
    assert zigbee[8][0] < 1e-2
    assert zigbee[1][0] >= zigbee[8][0]
    # Equation 10: delta_f = 200 kHz < (1-i)w/2 + margin leaves the
    # mirror sideband in-channel and degrades decoding.
    assert ble[500e3][0] < 2e-2
    assert ble[200e3][0] > 5 * max(ble[500e3][0], 1e-3)

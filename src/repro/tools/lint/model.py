"""Core datatypes of reprolint: rules, findings, reports.

Kept dependency-free (stdlib only) so every other lint module — the
project index, the rule modules, the emitters — can import from here
without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["LINT_VERSION", "Rule", "Finding", "LintReport"]

#: Analyzer version; part of every cache key, so bumping it invalidates
#: all cached per-file results (used when analysis semantics change in
#: a way individual rule versions do not capture).
LINT_VERSION = "2.0"


@dataclass(frozen=True)
class Rule:
    """One reprolint rule: identifier, name, and why it exists."""

    id: str
    name: str
    summary: str
    rationale: str


@dataclass
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    suppressed: bool = False
    baselined: bool = False

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.rule_id} {self.message}")

    def to_dict(self) -> Dict[str, object]:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule_id, "message": self.message,
                "suppressed": self.suppressed}


@dataclass
class LintReport:
    """Outcome of one lint run.

    ``findings`` are the gate-failing results; ``suppressed`` were
    silenced by ``# reprolint: disable=`` comments and ``baselined``
    were absorbed by the committed ratchet file — neither fails the
    run.  ``errors`` (unreadable, undecodable, or unparseable files)
    always force exit code 2.
    """

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    n_files: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors

    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 0 if not self.findings else 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "files": self.n_files,
            "errors": list(self.errors),
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "baselined": [f.to_dict() for f in self.baselined],
            "cache": {"hits": self.cache_hits,
                      "misses": self.cache_misses},
        }

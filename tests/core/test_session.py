"""End-to-end backscatter session tests for all three radios."""

import numpy as np
import pytest

from repro.core.session import (
    BleBackscatterSession,
    SessionResult,
    WifiBackscatterSession,
    ZigbeeBackscatterSession,
)


class TestSessionResult:
    def test_ber_and_ok_counts(self):
        r = SessionResult(True, 100, 5, 1000.0)
        assert r.tag_ber == pytest.approx(0.05)
        assert r.tag_bits_ok == 95

    def test_zero_bits(self):
        assert SessionResult(False, 0, 0, 1.0).tag_ber == 0.0


class TestWifiSession:
    def test_high_snr_error_free(self):
        s = WifiBackscatterSession(seed=1, payload_bytes=256)
        for _ in range(3):
            r = s.run_packet(snr_db=25)
            assert r.delivered and r.tag_bit_errors == 0

    def test_capacity_matches_paper_rate(self):
        """1500 B at 6 Mb/s -> 501 OFDM symbols; one skipped for SERVICE,
        the envelope latency trims one more, 4 symbols per tag bit ->
        124 tag bits (~62 kb/s instantaneous; the paper's ~60 kb/s)."""
        s = WifiBackscatterSession(seed=1, payload_bytes=1500)
        assert s.capacity_bits() == 124

    def test_known_tag_bits_recovered(self, rng):
        s = WifiBackscatterSession(seed=2, payload_bytes=256)
        bits = rng.integers(0, 2, 20).astype(np.uint8)
        r = s.run_packet(snr_db=20, tag_bits=bits)
        assert r.delivered and r.tag_bit_errors == 0

    def test_low_snr_drops_packet(self):
        s = WifiBackscatterSession(seed=3, payload_bytes=256)
        r = s.run_packet(snr_db=-12)
        assert not r.delivered
        assert r.tag_bit_errors == r.tag_bits_sent  # all counted lost

    def test_envelope_gating(self, rng):
        s = WifiBackscatterSession(seed=4, payload_bytes=256)
        r = s.run_packet(snr_db=30, incident_power_dbm=-90.0, rng=rng)
        assert not r.delivered

    def test_frame_cache_invalidated_on_transmitter_swap(self):
        """Regression: the excitation template cache used to key only on
        the payload bytes, so swapping the transmitter (new rate, same
        zero-filled PSDU) served the stale old-rate frame."""
        from repro.phy.wifi.transmitter import WifiTransmitter

        s = WifiBackscatterSession(seed=1, payload_bytes=1500)
        at_6mbps = s.capacity_bits()
        s.transmitter = WifiTransmitter(12.0, seed=7)
        assert s.capacity_bits() != at_6mbps  # fresh 12 Mb/s template

    def test_frame_cache_still_hits_for_same_shape(self):
        from repro import obs

        s = WifiBackscatterSession(seed=1, payload_bytes=1500)
        with obs.collect() as reg:
            s.capacity_bits()
            s.capacity_bits()
        assert reg.counter("phy.wifi.encode_cached") == 1
        assert reg.timer("phy.wifi.encode").count == 1

    def test_pilot_correction_breaks_decoding(self):
        """Negative control (section 3.2.1): a receiver that re-derives
        phase from pilots erases the tag's phase modulation."""
        s = WifiBackscatterSession(seed=5, payload_bytes=256,
                                   pilot_correction=True)
        bits = np.ones(10, dtype=np.uint8)  # all ones must vanish
        r = s.run_packet(snr_db=25, tag_bits=bits)
        assert r.delivered
        assert r.tag_bit_errors >= 8  # ones decoded as zeros


class TestZigbeeSession:
    def test_high_snr_error_free(self):
        s = ZigbeeBackscatterSession(seed=1)
        r = s.run_packet(snr_db=20)
        assert r.delivered and r.tag_bit_errors == 0

    def test_capacity(self):
        # 100 B payload -> 204 payload symbols / repetition 4 -> 51 bits.
        s = ZigbeeBackscatterSession(seed=1, payload_bytes=100,
                                     repetition=4)
        assert s.capacity_bits() == 51

    def test_low_snr_drops_packet(self):
        s = ZigbeeBackscatterSession(seed=2)
        r = s.run_packet(snr_db=-18)
        assert not r.delivered


class TestBleSession:
    def test_high_snr_error_free(self):
        s = BleBackscatterSession(seed=1)
        r = s.run_packet(snr_db=20)
        assert r.delivered and r.tag_bit_errors == 0

    def test_capacity_matches_paper_rate(self):
        # 255 B -> 2112 on-air bits, minus 40 header bits, /18 -> 115.
        s = BleBackscatterSession(seed=1, payload_bytes=255)
        assert s.capacity_bits() == 115

    def test_low_snr_drops_packet(self):
        s = BleBackscatterSession(seed=2)
        r = s.run_packet(snr_db=-10)
        assert not r.delivered

    def test_delta_f_violating_eq10_would_fail(self):
        """A 200 kHz toggle leaves the undesired sideband in-channel
        (equation 10 violated) and corrupts decoding."""
        good = BleBackscatterSession(seed=3, delta_f=500e3)
        bad = BleBackscatterSession(seed=3, delta_f=200e3)
        r_good = good.run_packet(snr_db=25)
        r_bad = bad.run_packet(snr_db=25)
        assert r_good.tag_ber < 0.05
        assert r_bad.tag_ber > r_good.tag_ber


class TestOversampleFactors:
    def test_values(self):
        assert WifiBackscatterSession(seed=1).oversample_factor == 1
        assert ZigbeeBackscatterSession(seed=1).oversample_factor == 4
        assert BleBackscatterSession(seed=1).oversample_factor == 8

"""Bluetooth PHY: 1 Mb/s Gaussian FSK, modulation index 0.5, 1 MHz
channel — the CC2541 configuration of the paper (section 3.1).

The two FSK tones f0/f1 are the entire Bluetooth codebook
B = {e^{j2pi f0 t}, e^{j2pi f1 t}}; a FreeRider tag translates between
them with a square-wave frequency shift of |f1 - f0| (paper section
2.3.3 and equation 10).
"""

from repro.phy.ble.whitening import Whitener, whiten, dewhiten
from repro.phy.ble.gfsk import GfskModem
from repro.phy.ble.frame import BleFrameBuilder, BLE_ACCESS_ADDRESS
from repro.phy.ble.transmitter import BleTransmitter, BleFrame
from repro.phy.ble.receiver import BleReceiver, BleDecodeResult

__all__ = [
    "Whitener",
    "whiten",
    "dewhiten",
    "GfskModem",
    "BleFrameBuilder",
    "BLE_ACCESS_ADDRESS",
    "BleTransmitter",
    "BleFrame",
    "BleReceiver",
    "BleDecodeResult",
]

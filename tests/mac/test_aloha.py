"""Tests for framed slotted Aloha, the TDM baseline and the controller."""

import pytest

from repro.mac.aloha import AlohaConfig, FramedSlottedAloha, TdmScheme
from repro.mac.controller import SlotController
from repro.mac.fairness import jain_index


class TestJain:
    def test_equal_allocations(self):
        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_single_hog(self):
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_all_zero_defined_fair(self):
        assert jain_index([0, 0]) == 1.0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            jain_index([1, -1])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            jain_index([])


class TestSlotController:
    def test_grows_under_collisions(self):
        c = SlotController(8)
        before = c.n_slots
        for _ in range(5):
            c.observe(singles=1, collisions=7, empties=0)
        assert c.n_slots > before

    def test_shrinks_when_idle(self):
        c = SlotController(32)
        for _ in range(5):
            c.observe(singles=2, collisions=0, empties=30)
        assert c.n_slots < 32

    def test_bounds_respected(self):
        c = SlotController(8, min_slots=4, max_slots=16)
        for _ in range(20):
            c.observe(singles=0, collisions=16, empties=0)
        assert c.n_slots <= 16
        for _ in range(20):
            c.observe(singles=0, collisions=0, empties=16)
        assert c.n_slots >= 4

    def test_validation(self):
        with pytest.raises(ValueError):
            SlotController(1, min_slots=2, max_slots=8)
        with pytest.raises(ValueError):
            SlotController(4, smoothing=0.0)
        c = SlotController(4)
        with pytest.raises(ValueError):
            c.observe(singles=-1, collisions=0, empties=0)


class TestAlohaConfig:
    def test_slot_airtime(self):
        cfg = AlohaConfig(slot_bits=256, tag_rate_kbps=62.5)
        assert cfg.slot_airtime_us == pytest.approx(4096)

    def test_control_airtime_dominated_by_plm(self):
        cfg = AlohaConfig()
        assert cfg.control_airtime_us() > 10 * cfg.slot_airtime_us


class TestFramedSlottedAloha:
    def test_single_tag_never_collides(self):
        res = FramedSlottedAloha(seed=1).simulate(1, n_rounds=50)
        assert res.collision_rate == 0.0
        assert res.delivered_bits == 50 * 256

    def test_throughput_increases_with_tags(self):
        sim = FramedSlottedAloha(seed=2)
        t4 = sim.simulate(4, n_rounds=150).aggregate_throughput_kbps
        t20 = FramedSlottedAloha(seed=2).simulate(20, n_rounds=150) \
            .aggregate_throughput_kbps
        assert t20 > t4

    def test_asymptote_near_18kbps(self):
        """Section 4.5: beyond 20 tags the FSA throughput flattens at
        about 18 kb/s."""
        res = FramedSlottedAloha(seed=3).simulate(120, n_rounds=120)
        assert 14.0 < res.aggregate_throughput_kbps < 22.0

    def test_fairness_high_over_long_runs(self):
        res = FramedSlottedAloha(seed=4).simulate(20, n_rounds=300)
        assert res.fairness > 0.95

    def test_fairness_lower_over_short_windows(self):
        res = FramedSlottedAloha(seed=5).simulate(20, n_rounds=10)
        assert res.fairness < 0.98

    def test_delivery_prob_scales_throughput(self):
        lossy_cfg = AlohaConfig(slot_delivery_prob=0.5)
        clean = FramedSlottedAloha(seed=6).simulate(10, n_rounds=150)
        lossy = FramedSlottedAloha(lossy_cfg, seed=6).simulate(10, n_rounds=150)
        ratio = (lossy.aggregate_throughput_kbps
                 / clean.aggregate_throughput_kbps)
        assert 0.35 < ratio < 0.65

    def test_zero_tags_raises(self):
        with pytest.raises(ValueError):
            FramedSlottedAloha(seed=1).simulate(0)


class TestTdm:
    def test_no_collisions_ever(self):
        res = TdmScheme(seed=1).simulate(20, n_rounds=100)
        assert all(r.collisions == 0 for r in res.rounds)
        assert res.fairness == pytest.approx(1.0)

    def test_asymptote_near_40kbps(self):
        """Section 4.5: the collision-free TDM bound asymptotes at about
        40 kb/s — capped by the per-slot grant overhead, not by the raw
        62.5 kb/s tag rate."""
        res = TdmScheme(seed=2).simulate(120, n_rounds=80)
        assert 34.0 < res.aggregate_throughput_kbps < 46.0

    def test_beats_aloha(self):
        tdm = TdmScheme(seed=3).simulate(16, n_rounds=150)
        fsa = FramedSlottedAloha(seed=3).simulate(16, n_rounds=150)
        assert (tdm.aggregate_throughput_kbps
                > 1.8 * fsa.aggregate_throughput_kbps)

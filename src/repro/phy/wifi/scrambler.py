"""802.11 data scrambler (IEEE 802.11-2012 section 18.3.5.5).

The scrambler XORs the data with the output of the LFSR
``x^7 + x^4 + 1`` — equation (8) of the FreeRider paper:

    c[k] = b[k] ^ b[k-3] ^ b[k-7]    (feedback form: s7 ^ s4)

Because scrambling is a pure XOR stream, flipping every input bit of an
8-bit window flips the corresponding outputs — the linearity property the
paper exploits (section 3.2.1) to let a tag's repeated-bit translation
survive the whitening.  :class:`Scrambler` is self-synchronising in the
descramble direction only through knowledge of the 7-bit seed carried in
the SERVICE field.
"""

from __future__ import annotations

import numpy as np

from repro.utils.bits import as_bits

__all__ = ["Scrambler", "scramble", "descramble", "scrambler_sequence",
           "periodic_keystream"]


class Scrambler:
    """Stateful 127-periodic LFSR scrambler.

    Parameters
    ----------
    seed:
        Initial 7-bit state, must be non-zero (1..127).  802.11
        transmitters pick a pseudorandom nonzero seed per frame.
    """

    def __init__(self, seed: int = 0b1011101):
        if not 1 <= seed <= 127:
            raise ValueError("scrambler seed must be a non-zero 7-bit value")
        self._state = seed

    @property
    def state(self) -> int:
        """Current 7-bit LFSR state."""
        return self._state

    def next_bit(self) -> int:
        """Advance the LFSR one step and return the keystream bit."""
        s = self._state
        # x^7 + x^4 + 1: feedback is bit7 XOR bit4 (1-indexed from LSB side).
        fb = ((s >> 6) ^ (s >> 3)) & 1
        self._state = ((s << 1) | fb) & 0x7F
        return fb

    def keystream(self, n: int) -> np.ndarray:
        """Generate *n* keystream bits."""
        return np.array([self.next_bit() for _ in range(n)], dtype=np.uint8)

    def process(self, bits) -> np.ndarray:
        """Scramble (or descramble — the operation is an involution given
        the same starting state) a bit array."""
        arr = as_bits(bits)
        return np.bitwise_xor(arr, self.keystream(arr.size))


def scrambler_sequence(seed: int, n: int) -> np.ndarray:
    """The raw keystream for a given seed — exposed for analysis tools."""
    return Scrambler(seed).keystream(n)


def periodic_keystream(seed: int, n: int) -> np.ndarray:
    """*n* keystream bits via the LFSR's 127-bit period.

    ``x^7 + x^4 + 1`` is primitive, so any non-zero state cycles with
    period 127; stepping the register 127 times and tiling gives the
    same bits as ``Scrambler(seed).keystream(n)`` at O(127) state
    updates instead of O(n) — the fast path for whole-frame
    descrambling.
    """
    period = Scrambler(seed).keystream(min(n, 127))
    if n <= 127:
        return period
    reps = -(-n // 127)  # ceil
    return np.tile(period, reps)[:n]


def scramble(bits, seed: int = 0b1011101) -> np.ndarray:
    """One-shot scramble of *bits* with *seed*."""
    return Scrambler(seed).process(bits)


def descramble(bits, seed: int = 0b1011101) -> np.ndarray:
    """One-shot descramble; identical operation to :func:`scramble`."""
    return Scrambler(seed).process(bits)

"""Bit-level helpers used throughout the PHY and decoding stacks.

All bit sequences in this project are represented as 1-D ``numpy`` arrays
of dtype ``uint8`` containing only 0s and 1s.  Helpers here convert between
byte strings and bit arrays, apply XOR algebra (the heart of FreeRider's
tag-data extraction, Table 1 of the paper) and implement the repetition
coding / majority voting used to survive the 802.11 scrambler and
convolutional coder (paper section 3.2.1).
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

BitArray = np.ndarray

__all__ = [
    "as_bits",
    "bits_to_bytes",
    "bytes_to_bits",
    "bits_to_int",
    "int_to_bits",
    "xor_bits",
    "hamming_distance",
    "repeat_bits",
    "majority_vote",
    "random_bits",
]


def as_bits(bits: Union[Sequence[int], np.ndarray, str]) -> BitArray:
    """Coerce *bits* (list, ndarray, or '0101' string) to a uint8 bit array.

    Raises ``ValueError`` when any element is not 0 or 1.  Strings are
    validated character-by-character *before* any arithmetic: the old
    ``char - ord('0')`` path wrapped out-of-range characters around the
    uint8 space first and relied on a max check afterwards, and turned
    non-ASCII input into a ``UnicodeEncodeError`` instead of the
    documented ``ValueError``.  The empty string is a valid empty bit
    array.
    """
    if isinstance(bits, str):
        if not bits:
            return np.zeros(0, dtype=np.uint8)
        try:
            raw = np.frombuffer(bits.encode("ascii"), dtype=np.uint8)
        except UnicodeEncodeError:
            raise ValueError(
                f"bit string may only contain '0' and '1', got {bits!r}"
            ) from None
        if np.any((raw != ord("0")) & (raw != ord("1"))):
            raise ValueError(
                f"bit string may only contain '0' and '1', got {bits!r}")
        arr = raw - ord("0")
    else:
        arr = np.asarray(bits, dtype=np.uint8).ravel()
        if arr.size and arr.max(initial=0) > 1:
            raise ValueError("bit array may only contain 0s and 1s")
    return arr.astype(np.uint8)


def bytes_to_bits(data: bytes, msb_first: bool = False) -> BitArray:
    """Expand a byte string into bits.

    802.11 and 802.15.4 serialise each octet LSB-first, which is the
    default here; pass ``msb_first=True`` for the opposite convention.
    """
    arr = np.frombuffer(data, dtype=np.uint8)
    bits = np.unpackbits(arr.reshape(-1, 1), axis=1)
    if not msb_first:
        bits = bits[:, ::-1]
    return bits.ravel().astype(np.uint8)


def bits_to_bytes(bits: Union[Sequence[int], np.ndarray], msb_first: bool = False) -> bytes:
    """Pack a bit array back into bytes, zero-padding to a byte boundary."""
    arr = as_bits(bits)
    pad = (-arr.size) % 8
    if pad:
        arr = np.concatenate([arr, np.zeros(pad, dtype=np.uint8)])
    grouped = arr.reshape(-1, 8)
    if not msb_first:
        grouped = grouped[:, ::-1]
    return np.packbits(grouped, axis=1).ravel().tobytes()


def bits_to_int(bits: Union[Sequence[int], np.ndarray], msb_first: bool = True) -> int:
    """Interpret a bit array as an unsigned integer (MSB-first by default)."""
    arr = as_bits(bits)
    if not msb_first:
        arr = arr[::-1]
    value = 0
    for b in arr:
        value = (value << 1) | int(b)
    return value


def int_to_bits(value: int, width: int, msb_first: bool = True) -> BitArray:
    """Encode *value* as exactly *width* bits; raises if it does not fit."""
    if value < 0:
        raise ValueError("value must be non-negative")
    if width < 0:
        raise ValueError("width must be non-negative")
    if value >> width:
        raise ValueError(f"value {value} does not fit in {width} bits")
    bits = [(value >> i) & 1 for i in range(width)]
    arr = np.array(bits[::-1] if msb_first else bits, dtype=np.uint8)
    return arr


def xor_bits(a: Union[Sequence[int], np.ndarray], b: Union[Sequence[int], np.ndarray]) -> BitArray:
    """Element-wise XOR of two equal-length bit arrays.

    This is the FreeRider decoding primitive: tag bits are the XOR of the
    backscattered bit-stream and the original excitation bit-stream
    (paper Table 1).
    """
    aa, bb = as_bits(a), as_bits(b)
    if aa.size != bb.size:
        raise ValueError(f"length mismatch: {aa.size} vs {bb.size}")
    return np.bitwise_xor(aa, bb)


def hamming_distance(a: Union[Sequence[int], np.ndarray], b: Union[Sequence[int], np.ndarray]) -> int:
    """Number of positions at which two bit arrays differ."""
    return int(xor_bits(a, b).sum())


def repeat_bits(bits: Union[Sequence[int], np.ndarray], factor: int) -> BitArray:
    """Repeat each bit *factor* times (tag-side redundancy coding).

    FreeRider maps one tag bit onto several OFDM symbols so that the
    scrambler / convolutional-coder structure survives translation
    (paper section 3.2.1: one tag bit per four OFDM symbols at 6 Mb/s).
    """
    if factor < 1:
        raise ValueError("repetition factor must be >= 1")
    return np.repeat(as_bits(bits), factor)


def majority_vote(bits: Union[Sequence[int], np.ndarray], factor: int) -> BitArray:
    """Invert :func:`repeat_bits`: majority-decode groups of *factor* bits.

    Trailing bits that do not fill a complete group are discarded.  Ties
    (possible only for even *factor*) decode as 1, matching a ``>=``
    threshold comparator.
    """
    if factor < 1:
        raise ValueError("repetition factor must be >= 1")
    arr = as_bits(bits)
    n_groups = arr.size // factor
    if n_groups == 0:
        return np.zeros(0, dtype=np.uint8)
    grouped = arr[: n_groups * factor].reshape(n_groups, factor)
    return (grouped.sum(axis=1) * 2 >= factor).astype(np.uint8)


def random_bits(n: int, rng: np.random.Generator) -> BitArray:
    """Draw *n* i.i.d. uniform bits from *rng*."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return rng.integers(0, 2, size=n, dtype=np.uint8)

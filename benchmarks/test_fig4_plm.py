"""Figure 4: rate of successfully received PLM scheduling messages vs
distance (15 dBm transmitter, 1.8 V comparator reference).

Shape anchors: >70 % inside ~4 m, declining gradually to ~50 % around
50 m; higher reference voltage trades range for noise immunity.
"""

import numpy as np

from repro.channel.pathloss import LOS_HALLWAY
from repro.mac.plm import PlmLink
from repro.net.traffic import AmbientTrafficModel
from repro.sim.results import Series, format_table

TX_POWER_DBM = 15.0
SHADOW_SIGMA_DB = 6.0  # per-message fading/shadowing in a busy hallway


def message_accuracy(distance_m, n_messages=60, payload_bits=8, seed=40):
    rng = np.random.default_rng(seed + int(distance_m * 10))
    link = PlmLink()
    traffic = AmbientTrafficModel(load=0.15, rng=rng)
    horizon = link.transmitter.message_airtime_us(payload_bits) * 1.3
    mean_power = TX_POWER_DBM - LOS_HALLWAY.loss_db(distance_m)
    ok = 0
    for _ in range(n_messages):
        power = mean_power + rng.normal(0, SHADOW_SIGMA_DB)
        payload = rng.integers(0, 2, payload_bits)
        ambient = traffic.pulse_train(horizon)
        if link.send_message(payload, power, ambient_pulses=ambient,
                             rng=rng):
            ok += 1
    return ok / n_messages


def run_experiment():
    series = Series("plm-accuracy", x_label="distance (m)",
                    y_label="message accuracy")
    for d in (1, 2, 4, 8, 15, 25, 35, 45, 50):
        series.append(d, message_accuracy(d))
    return series


def test_fig4(once, emit):
    series = once(run_experiment)
    rows = [[d, 100 * a] for d, a in zip(series.x, series.y)]
    table = format_table(["distance (m)", "accuracy (%)"], rows,
                         title="Figure 4: PLM scheduling-message accuracy "
                               "vs distance (15 dBm TX)")
    from repro.sim.charts import ascii_chart

    table += "\n\n" + ascii_chart(series,
                                  title="PLM accuracy vs distance")
    emit("fig4_plm", table)
    acc = dict(zip(series.x, series.y))
    assert acc[1] > 0.7 and acc[4] > 0.7          # paper: >70 % within 4 m
    assert acc[50] > 0.25                          # still useful at 50 m
    assert acc[50] < acc[4]                        # declines with distance

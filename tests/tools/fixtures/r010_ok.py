# lint-as: src/repro/service/fixture_queue.py
"""R010-clean: every guarded access holds the lock (or asserts it)."""

import threading


class Queue:
    def __init__(self):
        self._lock = threading.Lock()
        self._jobs = {}  # guarded-by: _lock

    def add(self, job_id, record):
        with self._lock:
            self._jobs[job_id] = record

    # Callers wrap batched mutations in one lock acquisition.
    def _add_unlocked(self, job_id, record):  # reprolint: holds(_lock)
        self._jobs[job_id] = record

"""Bluetooth transmit chain: payload -> framed bits -> GFSK waveform."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.rng import make_rng
from repro.phy.ble.frame import BleFrameBuilder
from repro.phy.ble.gfsk import GfskModem, BIT_RATE_HZ

__all__ = ["BleFrame", "BleTransmitter"]


@dataclass
class BleFrame:
    """A transmitted Bluetooth packet with its ground truth."""

    samples: np.ndarray
    payload: bytes
    bits: np.ndarray
    sps: int

    @property
    def n_bits(self) -> int:
        return int(self.bits.size)

    @property
    def sample_rate_hz(self) -> float:
        return BIT_RATE_HZ * self.sps

    @property
    def duration_us(self) -> float:
        return self.samples.size / self.sample_rate_hz * 1e6


class BleTransmitter:
    """Generates GFSK packets at 1 Mb/s, modulation index 0.5."""

    def __init__(self, sps: int = 8, channel: int = 37,
                 seed: Optional[int] = None):
        self._modem = GfskModem(sps=sps)
        self._builder = BleFrameBuilder(channel=channel)
        self._rng = make_rng(seed)
        self.sps = sps

    @property
    def modem(self) -> GfskModem:
        return self._modem

    def build(self, payload: bytes) -> BleFrame:
        """Construct the waveform of one packet carrying *payload*."""
        bits = self._builder.build_bits(payload)
        samples = self._modem.modulate(bits)
        return BleFrame(samples=samples, payload=payload, bits=bits,
                        sps=self.sps)

    def random_payload(self, n_bytes: int) -> bytes:
        """Random PDU body (models productive Bluetooth traffic)."""
        if n_bytes < 1:
            raise ValueError("payload must be at least 1 byte")
        return bytes(int(b) for b in self._rng.integers(0, 256, size=n_bytes))

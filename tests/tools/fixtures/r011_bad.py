# lint-as: src/repro/mac/fixture_metrics.py
"""R011 violations: metric names absent from repro/obs/names.py."""

from repro import obs


def record(prefix):
    obs.inc("mac.slost.singles")  # typo'd literal counter
    obs.inc(f"{prefix}.stag.ok")  # template matches no declared pattern
    obs.set_gauge("service.queue.depth.extra", 1)  # two segments after *
    obs.observe_hist("engine.task.second", 0.1)  # typo'd histogram
    with obs.timed("bench.fixture", hist="bench.fixture.nanos"):
        pass  # hist keyword routes to an undeclared histogram name

"""Coexistence experiments (paper section 4.4, Figures 15 and 16).

Two questions, answered with airtime/interference models layered on the
event scheduler:

1. *Does backscatter impact WiFi?* (Figure 15)  The tag reflects
   microwatts onto channel 13; a WiFi link on channel 6 sees only the
   tag's out-of-channel leakage attenuated by adjacent-channel
   rejection — immeasurably small, so the throughput CDF is unchanged.

2. *Does WiFi impact backscatter?* (Figure 16)  Ambient WiFi bursts on
   channel 6 leak into the backscatter receiver on channel 13 / at
   2.48 GHz.  A wideband (20 MHz) WiFi backscatter receiver admits more
   of that leakage than narrowband ZigBee/Bluetooth receivers, so WiFi
   backscatter shows a visible lower tail while ZigBee/Bluetooth shift
   by only ~1-2 kb/s — exactly the paper's observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.net.traffic import AmbientTrafficModel
from repro.utils.rng import make_rng

__all__ = ["adjacent_channel_rejection_db", "WifiThroughputModel",
           "CoexistenceSimulator"]


def adjacent_channel_rejection_db(channel_separation: int,
                                  receiver_bandwidth_hz: float) -> float:
    """How much a receiver attenuates a signal *channel_separation*
    2.4 GHz WiFi channels (5 MHz each) away.

    Narrowband receivers (ZigBee 2 MHz, Bluetooth 1 MHz) reject
    out-of-band energy much harder than a 20 MHz WiFi front-end — the
    paper's explanation for Figure 16(b)/(c) being nearly unaffected.
    """
    if channel_separation < 0:
        raise ValueError("separation must be non-negative")
    if channel_separation == 0:
        return 0.0
    offset_hz = channel_separation * 5e6
    edge = receiver_bandwidth_hz / 2
    if offset_hz <= edge:
        return 0.0
    # ~35 dB at the first 5 MHz beyond the filter edge, +15 dB/5 MHz after.
    excess = offset_hz - edge
    return 35.0 + 15.0 * (excess / 5e6 - 1.0)


@dataclass
class WifiThroughputModel:
    """Productive-WiFi TCP throughput under interference.

    Baseline matches the paper's file transfer: ~37.4 Mb/s median with
    run-to-run spread.  Interference above the carrier-sense threshold
    steals airtime; sub-threshold leakage raises the noise floor and
    trims the MCS margin.
    """

    baseline_mbps: float = 37.4
    spread_mbps: float = 1.6
    noise_floor_dbm: float = -95.0

    def sample(self, n: int, interference_dbm: float = float("-inf"),
               rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw *n* one-second throughput samples."""
        gen = make_rng(rng)
        base = gen.normal(self.baseline_mbps, self.spread_mbps, size=n)
        if np.isfinite(interference_dbm):
            # SINR-driven degradation: harmless below the noise floor,
            # sharp once the interferer rises above it.
            excess = interference_dbm - self.noise_floor_dbm
            if excess > 0:
                base *= float(np.clip(1.0 - excess / 25.0, 0.05, 1.0))
        return np.clip(base, 0.1, None)


class CoexistenceSimulator:
    """Monte-Carlo generator of the CDFs in Figures 15 and 16."""

    def __init__(self, seed: Optional[int] = None):
        self._rng = make_rng(seed)

    # -- Figure 15: backscatter's impact on WiFi -------------------------

    def wifi_throughput_samples(self, n: int = 200,
                                tag_present: bool = False,
                                tag_radio: str = "wifi",
                                tag_rssi_dbm: float = -60.0) -> np.ndarray:
        """WiFi throughput with/without a tag 1 m from the receiver.

        The tag's emission at the WiFi receiver is its backscatter RSSI
        minus the receiver's rejection of the tag's channel.
        """
        model = WifiThroughputModel()
        if not tag_present:
            return model.sample(n, rng=self._rng)
        separation = {"wifi": 7, "zigbee": 8, "bluetooth": 8}[tag_radio]
        rejection = adjacent_channel_rejection_db(separation, 20e6)
        interference = tag_rssi_dbm - rejection
        return model.sample(n, interference_dbm=interference, rng=self._rng)

    # -- Figure 16: WiFi's impact on backscatter --------------------------

    def backscatter_throughput_samples(
            self, n: int = 200, base_kbps: float = 61.8,
            receiver_bandwidth_hz: float = 20e6,
            wifi_present: bool = False,
            wifi_load: float = 0.6,
            wifi_power_dbm: float = -40.0,
            backscatter_rssi_dbm: float = -75.0,
            window_us: float = 100_000.0,
            rts_cts: bool = False) -> np.ndarray:
        """Per-window backscatter throughput samples.

        Each window, ambient WiFi bursts overlap a fraction of the
        excitation packets; an overlapped packet is lost when the
        leaked interference rivals the backscattered signal.

        With ``rts_cts`` the exciter reserves the medium before each
        backscatter burst (paper section 4.4.2, following [25]): overlap
        losses vanish, at the price of the RTS/CTS/SIFS exchange's
        airtime (~3.5 % at the paper's packet sizes).
        """
        # RTS(20B@24Mb/s)+SIFS+CTS(14B)+SIFS before each ~2 ms burst.
        reservation_overhead = 0.035 if rts_cts else 0.0
        effective_base = base_kbps * (1.0 - reservation_overhead)
        if not wifi_present:
            # Residual variation: exciter backoff jitter and fading.
            return np.clip(self._rng.normal(effective_base,
                                            base_kbps * 0.03, size=n),
                           0, effective_base * 1.12)
        # Interference into the backscatter channel is bounded by the
        # interferer's spectral-mask regrowth (~45 dB down at 35 MHz for
        # OFDM); narrowband receivers filter a further ~17 dB of it.
        isolation_db = 45.0 if receiver_bandwidth_hz >= 10e6 else 62.0
        traffic = AmbientTrafficModel(load=wifi_load, rng=self._rng)
        out = np.empty(n)
        for i in range(n):
            # The interferer's strength at the backscatter receiver
            # varies window to window (mobility, rate control, fading).
            power = self._rng.normal(wifi_power_dbm, 8.0)
            sir_db = backscatter_rssi_dbm - (power - isolation_db)
            # Overlapped packets survive when the backscatter signal
            # clears the leaked interference by a capture margin.
            loss_prob_when_hit = float(np.clip((8.0 - sir_db) / 16.0,
                                               0.0, 1.0))
            hit_fraction = 0.0 if rts_cts \
                else traffic.busy_fraction(window_us / 10)
            lost = hit_fraction * loss_prob_when_hit
            jitter = self._rng.normal(0, base_kbps * 0.03)
            out[i] = max(0.0, effective_base * (1.0 - lost) + jitter)
        return out

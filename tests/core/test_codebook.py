"""Tests for the codeword/codebook abstraction (paper section 2.2.1)."""

import numpy as np
import pytest

from repro.core.codebook import (
    Codebook,
    Codeword,
    bluetooth_codebook,
    psk_codebook,
    zigbee_codebook,
)
from repro.dsp.mixing import frequency_shift, phase_offset


class TestCodeword:
    def test_distance_zero_to_self(self):
        cw = Codeword("a", np.ones(8, dtype=complex))
        assert cw.distance(cw.template) == 0.0

    def test_distance_normalised(self):
        cw = Codeword("a", 2 * np.ones(8, dtype=complex))
        assert cw.distance(np.zeros(8, dtype=complex)) == pytest.approx(1.0)

    def test_length_mismatch_raises(self):
        cw = Codeword("a", np.ones(8, dtype=complex))
        with pytest.raises(ValueError):
            cw.distance(np.ones(4, dtype=complex))


class TestCodebook:
    def test_classify_exact(self):
        book = psk_codebook(4)
        label, d = book.classify(book.get("2").template)
        assert label == "2" and d == pytest.approx(0.0)

    def test_is_valid_tolerance(self):
        book = psk_codebook(2)
        noisy = book.get("0").template + 0.1
        assert book.is_valid(noisy)
        assert not book.is_valid(book.get("0").template * 1j, tolerance=0.3)

    def test_needs_two_codewords(self):
        with pytest.raises(ValueError):
            Codebook({"a": Codeword("a", np.ones(4, complex))})

    def test_mixed_lengths_rejected(self):
        with pytest.raises(ValueError):
            Codebook({
                "a": Codeword("a", np.ones(4, complex)),
                "b": Codeword("b", np.ones(8, complex)),
            })


class TestTranslationMaps:
    def test_bluetooth_tone_one_maps_to_zero(self):
        fs = 8e6
        book = bluetooth_codebook(n_samples=2048, fs=fs)
        shifted = frequency_shift(book.get("1").template, -500e3, fs)
        label, d = book.classify(shifted)
        assert label == "0" and d < 0.1

    def test_phase_flip_preserves_psk_codebook(self):
        """A 180-degree offset is a valid translation for BPSK."""
        book = psk_codebook(2)
        mapping = book.translation_map(lambda s: phase_offset(s, np.pi),
                                       tolerance=0.1)
        assert mapping == {"0": "1", "1": "0"}

    def test_quarter_phase_invalid_for_bpsk(self):
        """A 90-degree offset leaves the BPSK codebook — why binary
        phase translation must use 180 degrees on BPSK excitation."""
        book = psk_codebook(2)
        mapping = book.translation_map(lambda s: phase_offset(s, np.pi / 2),
                                       tolerance=0.3)
        assert mapping is None

    def test_quarter_phase_valid_for_qpsk(self):
        """...but is valid on QPSK (equation 5's quaternary scheme)."""
        book = psk_codebook(4)
        mapping = book.translation_map(lambda s: phase_offset(s, np.pi / 2),
                                       tolerance=0.1)
        assert mapping is not None
        assert sorted(mapping.values()) == ["0", "1", "2", "3"]

    def test_zigbee_phase_flip_decodes_to_different_symbol(self):
        """Flipping a ZigBee codeword's phase inverts all 32 chips.  The
        result is a valid OQPSK *waveform* but not a PN codeword, so a
        commodity despreader snaps it to the nearest (different) symbol
        — deterministic inequality is all the section 2.3.2 decoder
        needs, and the reduced margin explains the paper's higher
        ZigBee tag BER (~5e-2 in Figure 12(b))."""
        book = zigbee_codebook(sps=4)
        for label in book.labels():
            flipped = -book.get(label).template
            target, _ = book.classify(flipped)
            assert target != label

    def test_zigbee_phase_flip_not_strictly_valid(self):
        """The strict codeword-validity check fails for the flip —
        distance to the nearest codeword exceeds the noise tolerance."""
        book = zigbee_codebook(sps=4)
        assert book.translation_map(lambda s: -s, tolerance=0.35) is None

    def test_amplitude_scaling_invalid_for_zigbee(self):
        book = zigbee_codebook(sps=4)
        mapping = book.translation_map(lambda s: 0.4 * s, tolerance=0.35)
        assert mapping is None

"""MAC layer (paper section 2.4): packet-length-modulation downlink,
framed-slotted-Aloha uplink with dynamic slot adjustment, and the
transmitter-side controller that ties them together."""

from repro.mac.events import EventScheduler
from repro.mac.fairness import jain_index
from repro.mac.plm import PlmConfig, PlmTransmitter, PlmReceiver, PlmLink
from repro.mac.aloha import (
    AlohaConfig,
    FramedSlottedAloha,
    TdmScheme,
    MacRoundStats,
    MacResult,
)
from repro.mac.controller import SlotController
from repro.mac.shaper import PlmTrafficShaper, ShapedPacket

__all__ = [
    "EventScheduler",
    "jain_index",
    "PlmConfig",
    "PlmTransmitter",
    "PlmReceiver",
    "PlmLink",
    "AlohaConfig",
    "FramedSlottedAloha",
    "TdmScheme",
    "MacRoundStats",
    "MacResult",
    "SlotController",
    "PlmTrafficShaper",
    "ShapedPacket",
]

"""Wireless channel models: log-distance path loss (LOS/NLOS), AWGN,
flat fading, and the two-hop backscatter link budget that drives every
range/throughput/BER figure of the paper."""

from repro.channel.pathloss import (
    PathLossModel,
    LOS_HALLWAY,
    NLOS_OFFICE,
    free_space_path_loss_db,
)
from repro.channel.awgn import awgn, awgn_at_snr, snr_from_powers
from repro.channel.fading import RayleighFading, RicianFading
from repro.channel.impairments import ImpairmentChain
from repro.channel.link import BackscatterLinkBudget, DirectLinkBudget
from repro.channel.geometry import Deployment
from repro.channel.multipath import TappedDelayLine, indoor_office_channel

__all__ = [
    "PathLossModel",
    "LOS_HALLWAY",
    "NLOS_OFFICE",
    "free_space_path_loss_db",
    "awgn",
    "awgn_at_snr",
    "snr_from_powers",
    "RayleighFading",
    "RicianFading",
    "ImpairmentChain",
    "BackscatterLinkBudget",
    "DirectLinkBudget",
    "Deployment",
    "TappedDelayLine",
    "indoor_office_channel",
]

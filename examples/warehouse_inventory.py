#!/usr/bin/env python3
"""Warehouse inventory: twenty battery-free tags share one WiFi exciter.

The intro's motivating IoT scenario: item-tracking tags that cannot
afford radios of their own.  The transmitter coordinates them with
packet-length-modulation start messages and a framed-slotted-Aloha
frame whose size adapts to the (unknown, changing) tag population —
tags join and leave mid-run with no association step.

Run:  python examples/warehouse_inventory.py
"""

import numpy as np

from repro.mac.aloha import AlohaConfig, FramedSlottedAloha
from repro.mac.controller import SlotController
from repro.mac.fairness import jain_index
from repro.mac.plm import PlmConfig, PlmTransmitter


def main() -> None:
    cfg = AlohaConfig()
    plm = PlmTransmitter(PlmConfig())
    print("MAC configuration:")
    print(f"  slot: {cfg.slot_bits} bits = {cfg.slot_airtime_us/1e3:.1f} ms "
          f"at {cfg.tag_rate_kbps} kb/s tag rate")
    print(f"  start message: {cfg.control_payload_bits} bits over PLM = "
          f"{plm.message_airtime_us(cfg.control_payload_bits)/1e3:.0f} ms "
          f"({plm.config.bit_rate_bps:.0f} b/s downlink)")

    # Phase 1: 8 tags on shift.
    print("\nphase 1: 8 tags, 40 rounds")
    sim = FramedSlottedAloha(cfg, seed=42)
    res = sim.simulate(8, n_rounds=40)
    report(res)

    # Phase 2: a pallet of 12 more tagged items arrives -- no
    # re-association, the frame size simply adapts.
    print("\nphase 2: 20 tags, 40 rounds (12 new arrivals)")
    ctrl = SlotController(res.rounds[-1].n_slots, cfg.min_slots,
                          cfg.max_slots)
    res2 = FramedSlottedAloha(cfg, seed=43).simulate(20, n_rounds=40,
                                                     controller=ctrl)
    report(res2)

    slots = [r.n_slots for r in res.rounds] + [r.n_slots for r in res2.rounds]
    print(f"\nframe-size trajectory (first->last): {slots[0]} -> {slots[-1]} "
          f"slots (controller tracked the population)")


def report(res) -> None:
    bits = list(res.per_tag_bits.values())
    heard = sum(1 for b in bits if b > 0)
    print(f"  aggregate throughput: {res.aggregate_throughput_kbps:5.1f} kb/s")
    print(f"  tags heard: {heard}/{res.n_tags}")
    print(f"  Jain fairness: {jain_index(bits):.2f}")
    print(f"  collision rate: {res.collision_rate:.2f}")


if __name__ == "__main__":
    main()

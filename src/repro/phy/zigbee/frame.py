"""802.15.4 PPDU framing: preamble, SFD, PHR, PSDU + FCS.

Layout: 4 zero octets (preamble) | 0xA7 SFD | 7-bit frame length PHR |
PSDU (MPDU) whose last two octets are the CRC-16 FCS.  Octets map to
two 4-bit symbols, low nibble first.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.utils.crc import CRC16_CCITT

__all__ = ["ZigbeeFrameBuilder", "ZIGBEE_PREAMBLE", "ZIGBEE_SFD",
           "bytes_to_symbols", "symbols_to_bytes", "MAX_PSDU_BYTES"]

ZIGBEE_PREAMBLE = bytes(4)
ZIGBEE_SFD = 0xA7
MAX_PSDU_BYTES = 127
HEADER_SYMBOLS = 2 * (len(ZIGBEE_PREAMBLE) + 1 + 1)  # preamble + SFD + PHR


def bytes_to_symbols(data: bytes) -> np.ndarray:
    """Each octet becomes two symbols, low nibble first (802.15.4 rule)."""
    arr = np.frombuffer(data, dtype=np.uint8)
    out = np.empty(2 * arr.size, dtype=np.int64)
    out[0::2] = arr & 0x0F
    out[1::2] = arr >> 4
    return out


def symbols_to_bytes(symbols) -> bytes:
    """Inverse of :func:`bytes_to_symbols`; trailing odd symbol dropped."""
    arr = np.asarray(symbols, dtype=np.int64).ravel()
    n = arr.size // 2
    lo = arr[0:2 * n:2] & 0x0F
    hi = arr[1:2 * n:2] & 0x0F
    return ((hi << 4) | lo).astype(np.uint8).tobytes()


class ZigbeeFrameBuilder:
    """Builds and parses 802.15.4 PPDU symbol streams."""

    def build_symbols(self, payload: bytes) -> np.ndarray:
        """Symbols of a full PPDU whose PSDU is *payload* + CRC16 FCS."""
        psdu = payload + CRC16_CCITT.digest(payload)
        if len(psdu) > MAX_PSDU_BYTES:
            raise ValueError(f"PSDU exceeds {MAX_PSDU_BYTES} bytes")
        header = ZIGBEE_PREAMBLE + bytes([ZIGBEE_SFD, len(psdu)])
        return bytes_to_symbols(header + psdu)

    def parse_symbols(self, symbols) -> Tuple[Optional[bytes], bool]:
        """Parse a decoded symbol stream back to ``(payload, fcs_ok)``.

        Returns ``(None, False)`` when the SFD cannot be found (the
        "header not detected" loss mode of the paper's long-range plots).
        """
        arr = np.asarray(symbols, dtype=np.int64).ravel()
        # A commodity receiver locks onto the known all-zero preamble by
        # correlation before hunting for the SFD; require most of the
        # eight preamble symbols to decode correctly.
        n_pre = 2 * len(ZIGBEE_PREAMBLE)
        if arr.size < n_pre or int(np.sum(arr[:n_pre] == 0)) < n_pre - 1:
            return None, False
        raw = symbols_to_bytes(symbols)
        sfd_at = raw.find(bytes([ZIGBEE_SFD]), 0, len(ZIGBEE_PREAMBLE) + 2)
        if sfd_at < 0:
            return None, False
        if len(raw) < sfd_at + 2:
            return None, False
        length = raw[sfd_at + 1] & 0x7F
        psdu = raw[sfd_at + 2: sfd_at + 2 + length]
        if len(psdu) != length or length < 2:
            return None, False
        payload, fcs = psdu[:-2], int.from_bytes(psdu[-2:], "little")
        return payload, CRC16_CCITT.verify(payload, fcs)

    def n_symbols(self, payload_len: int) -> int:
        """Total PPDU symbols for a payload of *payload_len* bytes."""
        return HEADER_SYMBOLS + 2 * (payload_len + 2)

"""R002 — no wall-clock reads in result-affecting code."""

from __future__ import annotations

import ast

from repro.tools.lint.model import Rule
from repro.tools.lint.rules.base import AstLintRule, dotted_name

# Wall-clock reads (canonical dotted names after import resolution).
_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.ctime", "time.localtime",
    "time.gmtime", "time.strftime", "time.asctime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}


class WallClockRule(AstLintRule):
    rule = Rule(
        "R002", "no-wall-clock",
        "no wall-clock reads in result-affecting code",
        "time.time() / datetime.now() make results depend on when the "
        "run happened, so a resumed sweep cannot be bit-identical.  "
        "Monotonic timers (time.perf_counter) for *measuring* are fine; "
        "repro/obs and the engine's timing plumbing are allowlisted.")
    # Observability and the engine's timing plumbing measure wall time
    # by design; results never depend on the values.
    path_allow = ("repro/obs/", "repro/sim/engine.py")

    def visit_Call(self, node: ast.Call) -> None:
        canon = self.canonical(dotted_name(node.func))
        if canon in _WALL_CLOCK:
            self.flag(node,
                      f"wall-clock read {canon}() in result-affecting "
                      f"code; use time.perf_counter for measuring, or "
                      f"pass timestamps in explicitly")
        self.generic_visit(node)

"""Figure 16: backscatter throughput CDFs with WiFi traffic present or
absent, for all three excitation radios.

Paper anchors: WiFi backscatter keeps its 61.8 kb/s median but gains a
lower tail (degrading to ~35 kb/s for ~10 % of the time) when channel-6
traffic runs; ZigBee and Bluetooth backscatter shift by only ~1-2 kb/s
because their narrowband receivers filter the out-of-band interference.
"""

import numpy as np

from repro.net.coexistence import CoexistenceSimulator
from repro.sim.results import format_table

SCENARIOS = (
    ("wifi", 61.8, 20e6),
    ("zigbee", 15.0, 2e6),
    ("bluetooth", 55.0, 1e6),
)


def run_experiment(n=250, seed=160):
    sim = CoexistenceSimulator(seed=seed)
    out = {}
    for radio, base, bw in SCENARIOS:
        out[(radio, "absent")] = sim.backscatter_throughput_samples(
            n, base_kbps=base, receiver_bandwidth_hz=bw, wifi_present=False)
        out[(radio, "present")] = sim.backscatter_throughput_samples(
            n, base_kbps=base, receiver_bandwidth_hz=bw, wifi_present=True)
    return out


def test_fig16_backscatter_impact(once, emit):
    samples = once(run_experiment)
    rows = []
    for (radio, wifi_state), s in samples.items():
        rows.append([radio, wifi_state, float(np.median(s)),
                     float(np.percentile(s, 10))])
    table = format_table(
        ["backscattered radio", "wifi traffic", "median (kb/s)",
         "p10 (kb/s)"], rows,
        title="Figure 16: backscatter throughput with WiFi present/absent")
    emit("fig16_backscatter_impact", table)

    def med(radio, state):
        return float(np.median(samples[(radio, state)]))

    def p10(radio, state):
        return float(np.percentile(samples[(radio, state)], 10))

    # (a) WiFi backscatter: median stable, tail visibly degraded.
    assert abs(med("wifi", "present") - med("wifi", "absent")) < 3.0
    assert p10("wifi", "present") < p10("wifi", "absent") - 5.0
    # (b)/(c) narrowband radios: ~1-2 kb/s shift only.
    for radio in ("zigbee", "bluetooth"):
        assert abs(med(radio, "present") - med(radio, "absent")) < 2.0
        assert abs(p10(radio, "present") - p10(radio, "absent")) < 3.0

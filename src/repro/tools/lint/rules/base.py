"""Rule plumbing: per-file context, base classes, path scoping.

Every rule lives in its own module under ``repro.tools.lint.rules`` and
registers itself in ``rules/__init__`` by appearing in
``ALL_CHECKERS``.  A rule is a class with:

* ``rule`` — the :class:`~repro.tools.lint.model.Rule` metadata
  (id, name, summary, rationale);
* ``version`` — bumped when the rule's semantics change, which
  invalidates cached per-file results for the whole tree;
* ``path_allow`` / ``path_only`` — path scoping (allowlisted files,
  opt-in trees);
* ``check(ctx)`` — returns the findings for one file.

File-local AST rules subclass :class:`AstLintRule` and get the usual
``visit_*`` hooks plus :meth:`AstLintRule.flag`; project-level rules
(R009 and friends) subclass :class:`LintRule` directly and read
``ctx.index``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import ClassVar, Dict, List, Optional, Set, Tuple

from repro.tools.lint.index import ModuleInfo, ProjectIndex
from repro.tools.lint.model import Finding, Rule
from repro.tools.lint.resolve import ImportMap, dotted_name
from repro.tools.lint.suppress import Suppression

__all__ = ["FileContext", "LintRule", "AstLintRule", "dotted_name"]


@dataclass
class FileContext:
    """Everything a rule may consult about one checked file."""

    path: str
    source: str
    tree: ast.AST
    imports: ImportMap
    comments: Dict[int, str]
    suppressions: Dict[int, Suppression]
    index: ProjectIndex
    module: ModuleInfo
    #: ``# guarded-by: <lock>`` annotations, by line (R010).
    guarded_by: Dict[int, str] = field(default_factory=dict)
    #: ``# reprolint: holds(<lock>)`` assertions, by def line (R010).
    holds_locks: Dict[int, Set[str]] = field(default_factory=dict)
    #: Findings from every other rule, pre-suppression; only populated
    #: for rules declaring ``wants_prior_findings`` (R012 audits them).
    prior_findings: List[Finding] = field(default_factory=list)


class LintRule:
    """Base class for all rules; one instance is created per file."""

    rule: ClassVar[Rule]
    #: Bump when the rule's semantics change (cache invalidation).
    version: ClassVar[int] = 1
    #: Path suffixes / directory patterns exempt from this rule.
    #: Entries ending in "/" match directories anywhere on the path;
    #: other entries match path suffixes.
    path_allow: ClassVar[Tuple[str, ...]] = ()
    #: When set, the rule only applies under these directory components
    #: ("repro/" scopes a rule to project modules).
    path_only: ClassVar[Optional[Tuple[str, ...]]] = None
    #: Set by R012: ``check`` receives every other rule's findings.
    wants_prior_findings: ClassVar[bool] = False

    def check(self, ctx: FileContext) -> List[Finding]:
        raise NotImplementedError

    # -- path scoping -----------------------------------------------------

    @classmethod
    def path_allowed(cls, path: str) -> bool:
        haystack = "/" + path.replace("\\", "/")
        for pat in cls.path_allow:
            if pat.endswith("/"):
                if "/" + pat in haystack + "/":
                    return True
            elif haystack.endswith("/" + pat) or haystack.endswith(pat):
                return True
        return False

    @classmethod
    def in_scope(cls, path: str) -> bool:
        if cls.path_only is None:
            return True
        haystack = "/" + path.replace("\\", "/") + "/"
        return any("/" + pat in haystack for pat in cls.path_only)

    @classmethod
    def applies_to(cls, path: str) -> bool:
        return cls.in_scope(path) and not cls.path_allowed(path)


class AstLintRule(LintRule, ast.NodeVisitor):
    """File-local rule driven by a NodeVisitor walk of the file."""

    def __init__(self) -> None:
        self.findings: List[Finding] = []
        self.ctx: Optional[FileContext] = None

    def check(self, ctx: FileContext) -> List[Finding]:
        if not self.applies_to(ctx.path):
            return []
        self.ctx = ctx
        self.findings = []
        self.begin(ctx)
        self.visit(ctx.tree)
        return self.findings

    def begin(self, ctx: FileContext) -> None:
        """Per-file state reset hook; default does nothing."""

    def flag(self, node: ast.AST, message: str) -> None:
        assert self.ctx is not None
        self.findings.append(Finding(
            path=self.ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule.id, message=message))

    def canonical(self, dotted: Optional[str]) -> Optional[str]:
        assert self.ctx is not None
        return self.ctx.imports.canonical(dotted)

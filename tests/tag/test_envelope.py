"""Tests for the envelope-detector model."""

import numpy as np
import pytest

from repro.tag.envelope import EnvelopeDetector, PulseEvent


class TestVoltageResponse:
    def test_log_linear_region(self):
        det = EnvelopeDetector()
        v1 = det.output_voltage(-70.0)
        v2 = det.output_voltage(-60.0)
        assert v2 - v1 == pytest.approx(10 * det.slope_v_per_db)

    def test_clamped_at_floor(self):
        det = EnvelopeDetector()
        assert det.output_voltage(det.p_min_dbm - 30) == 0.0

    def test_clamped_at_ceiling(self):
        det = EnvelopeDetector()
        assert det.output_voltage(0.0) == det.v_max

    def test_noise_perturbs(self, rng):
        det = EnvelopeDetector()
        vals = {det.output_voltage(-50.0, rng) for _ in range(5)}
        assert len(vals) > 1


class TestDetection:
    def test_strong_signal_detected(self, rng):
        det = EnvelopeDetector()
        assert all(det.detects(-30.0, rng) for _ in range(20))

    def test_weak_signal_missed(self, rng):
        det = EnvelopeDetector()
        assert not any(det.detects(-80.0, rng) for _ in range(20))

    def test_probability_monotone(self):
        det = EnvelopeDetector()
        probs = [det.detection_probability(p) for p in (-75, -65, -55, -45)]
        assert probs == sorted(probs)
        assert probs[0] < 0.01 and probs[-1] > 0.99

    def test_min_power_is_half_probability(self):
        det = EnvelopeDetector()
        assert det.detection_probability(det.min_power_dbm()) \
            == pytest.approx(0.5, abs=0.02)

    def test_higher_vref_needs_more_power(self):
        low = EnvelopeDetector(v_ref=1.5)
        high = EnvelopeDetector(v_ref=2.1)
        assert high.min_power_dbm() > low.min_power_dbm()


class TestPulseObservation:
    def test_strong_pulses_measured(self, rng):
        det = EnvelopeDetector(edge_jitter_us=0.0)
        events = det.observe_pulses([(0.0, 700.0, -30.0),
                                     (2000.0, 1100.0, -30.0)], rng)
        assert len(events) == 2
        assert events[0].duration_us == pytest.approx(700.0)
        assert events[0].start_us == pytest.approx(det.latency_us)

    def test_weak_pulses_dropped(self, rng):
        det = EnvelopeDetector()
        assert det.observe_pulses([(0.0, 700.0, -90.0)], rng) == []

    def test_jitter_spreads_durations(self, rng):
        det = EnvelopeDetector(edge_jitter_us=8.0)
        events = det.observe_pulses([(i * 2000.0, 700.0, -30.0)
                                     for i in range(60)], rng)
        durations = [e.duration_us for e in events]
        assert np.std(durations) > 2.0

    def test_event_dataclass(self):
        ev = PulseEvent(start_us=1.0, duration_us=2.0)
        assert ev.start_us == 1.0 and ev.duration_us == 2.0

"""R006 violations: silently swallowed exceptions."""


def swallow_everything(fn):
    try:
        return fn()
    except:  # noqa: E722
        return None


def swallow_broad(fn):
    try:
        return fn()
    except Exception:
        pass
    return None

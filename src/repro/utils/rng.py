"""Deterministic random-number plumbing.

Every stochastic component in the simulator (channel noise, traffic
arrivals, Aloha slot choices, payload generation) takes an explicit
``numpy.random.Generator``.  :func:`make_rng` is the single place seeds
are minted so that experiments are reproducible run-to-run and components
can be given independent streams derived from one experiment seed.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["make_rng", "spawn"]


def make_rng(seed: Optional[Union[int, np.random.Generator]] = None) -> np.random.Generator:
    """Return a ``Generator``; pass a Generator through, or seed a new one."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list:
    """Derive *n* statistically independent child generators from *rng*."""
    if n < 0:
        raise ValueError("n must be non-negative")
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]

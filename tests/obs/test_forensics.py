"""Decode-forensics tests: stage taxonomy, receiver classification on
truncated frames, and the stage-sum invariant (every packet lands in
exactly one stage counter)."""

import numpy as np
import pytest

from repro.obs import TraceConfig, collect, forensics

TRACED = TraceConfig()


class TestTaxonomy:
    def test_stage_order_is_the_receive_chain(self):
        assert forensics.STAGES == (
            forensics.SYNC_FAIL, forensics.HEADER_FAIL,
            forensics.FEC_FAIL, forensics.CRC_FAIL, forensics.OK)

    def test_stage_counter_name(self):
        assert forensics.stage_counter("phy.wifi", forensics.OK) \
            == "phy.wifi.stage.ok"

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError):
            forensics.stage_counter("phy.wifi", "mystery")


class TestReceiverClassification:
    """Truncated-frame fixtures from test_receiver_edges, now with the
    failing stage attached to the decode result."""

    def test_wifi_truncated_preamble_is_sync_fail(self):
        from repro.phy.wifi import WifiReceiver, WifiTransmitter

        frame = WifiTransmitter(6.0, seed=0).build(b"\x55" * 16)
        result = WifiReceiver().decode(frame.samples[:100], noise_var=1e-4)
        assert result.stage == forensics.SYNC_FAIL

    def test_wifi_truncated_data_is_fec_fail(self):
        from repro.phy.wifi import WifiReceiver, WifiTransmitter

        frame = WifiTransmitter(6.0, seed=0).build(b"\x55" * 16)
        cut = frame.data_start + 80  # SIGNAL decodes, DATA missing
        result = WifiReceiver().decode(frame.samples[:cut], noise_var=1e-4)
        assert result.header_ok
        assert result.stage == forensics.FEC_FAIL

    def test_wifi_clean_frame_is_ok(self):
        # The PSDU needs a real FCS trailer: a raw payload decodes
        # perfectly but classifies as crc_fail (no valid checksum).
        from repro.phy.wifi import WifiReceiver, WifiTransmitter
        from repro.utils.crc import CRC32

        body = b"\x55" * 16
        psdu = body + CRC32.compute(body).to_bytes(4, "little")
        frame = WifiTransmitter(6.0, seed=0).build(psdu)
        result = WifiReceiver().decode(frame.samples, noise_var=1e-4)
        assert result.fcs_ok
        assert result.stage == forensics.OK

    def test_wifi_raw_psdu_without_fcs_is_crc_fail(self):
        from repro.phy.wifi import WifiReceiver, WifiTransmitter

        frame = WifiTransmitter(6.0, seed=0).build(b"\x55" * 16)
        result = WifiReceiver().decode(frame.samples, noise_var=1e-4)
        assert result.header_ok
        assert result.stage == forensics.CRC_FAIL

    def test_wifi_batch_matches_scalar_stage(self):
        from repro.phy.wifi import WifiReceiver, WifiTransmitter

        frame = WifiTransmitter(6.0, seed=0).build(b"\x55" * 16)
        short = np.stack([frame.samples[:100]] * 3)
        results = WifiReceiver().decode_batch(short, np.full(3, 1e-4))
        assert [r.stage for r in results] == [forensics.SYNC_FAIL] * 3

    def test_zigbee_truncated_frame_is_sync_fail(self):
        from repro.phy.zigbee import ZigbeeReceiver, ZigbeeTransmitter

        frame = ZigbeeTransmitter(sps=4, seed=0).build(b"\x11\x22")
        result = ZigbeeReceiver(sps=4).decode(frame.samples[:40],
                                              frame.n_symbols)
        assert result.stage == forensics.SYNC_FAIL

    def test_zigbee_clean_frame_is_ok(self):
        from repro.phy.zigbee import ZigbeeReceiver, ZigbeeTransmitter

        frame = ZigbeeTransmitter(sps=4, seed=0).build(b"\x00")
        result = ZigbeeReceiver(sps=4).decode(frame.samples,
                                              frame.n_symbols)
        assert result.stage == forensics.OK

    def test_ble_truncated_frame_is_sync_fail(self):
        from repro.phy.ble import BleReceiver, BleTransmitter

        frame = BleTransmitter(sps=8, seed=0).build(b"\x77")
        result = BleReceiver(sps=8).decode(frame.samples[:50], frame.n_bits)
        assert result.stage == forensics.SYNC_FAIL

    def test_ble_clean_frame_is_ok(self):
        from repro.phy.ble import BleReceiver, BleTransmitter

        frame = BleTransmitter(sps=8, seed=0).build(b"\x00")
        result = BleReceiver(sps=8).decode(frame.samples, frame.n_bits)
        assert result.stage == forensics.OK

    def test_dsss_garbage_is_header_fail(self):
        from repro.phy.dsss import DsssReceiver

        noise = (np.random.default_rng(3).normal(size=11 * 96)
                 .astype(np.complex128))
        result = DsssReceiver().decode(noise, 96)
        assert not result.ok
        assert result.stage == forensics.HEADER_FAIL


def _stage_sum(reg, prefix):
    return sum(reg.counter(forensics.stage_counter(prefix, s))
               for s in forensics.STAGES)


def _session(name):
    from repro.core.session import (
        BleBackscatterSession,
        DsssBackscatterSession,
        QuaternaryWifiSession,
        WifiBackscatterSession,
        ZigbeeBackscatterSession,
    )

    makers = {
        "wifi": lambda: WifiBackscatterSession(seed=0, payload_bytes=24),
        "zigbee": lambda: ZigbeeBackscatterSession(seed=0),
        "ble": lambda: BleBackscatterSession(seed=0),
        "dsss": lambda: DsssBackscatterSession(seed=0),
        "quaternary": lambda: QuaternaryWifiSession(seed=0,
                                                    payload_bytes=24),
    }
    return makers[name]()


SESSIONS = ["wifi", "zigbee", "ble", "dsss", "quaternary"]
# SNRs spanning deep failure to clean decode so several stages fire.
SNRS = [-20.0, -5.0, 5.0, 12.0, 25.0]


class TestStageSumInvariant:
    @pytest.mark.parametrize("name", SESSIONS)
    def test_every_packet_hits_exactly_one_stage(self, name):
        session = _session(name)
        with collect() as reg:
            gen = np.random.default_rng(11)
            for snr in SNRS:
                session.run_packet(snr, rng=gen)
        assert _stage_sum(reg, session._obs) == len(SNRS)
        assert reg.counter(f"{session._obs}.packets") == len(SNRS)

    @pytest.mark.parametrize("name", ["wifi", "zigbee", "ble"])
    def test_scalar_and_batched_stage_counts_match(self, name):
        session = _session(name)
        with collect() as scalar_reg:
            gen = np.random.default_rng(11)
            scalar = [session.run_packet(snr, rng=gen) for snr in SNRS]

        session = _session(name)
        with collect() as batch_reg:
            gen = np.random.default_rng(11)
            batched = session.run_packets(SNRS, rng=gen)

        for stage in forensics.STAGES:
            counter = forensics.stage_counter(session._obs, stage)
            assert scalar_reg.counter(counter) \
                == batch_reg.counter(counter), stage
        # Outcomes stay bit-identical with classification in place.
        assert [r.delivered for r in scalar] == \
            [r.delivered for r in batched]
        assert [r.tag_bit_errors for r in scalar] == \
            [r.tag_bit_errors for r in batched]

    def test_stage_counters_always_on_while_events_sample(self):
        session = _session("zigbee")
        cfg = TraceConfig(every_n=4, failures_only=False)
        with collect(trace=cfg) as reg:
            gen = np.random.default_rng(11)
            for snr in SNRS:
                session.run_packet(snr, rng=gen)
        assert _stage_sum(reg, "phy.zigbee") == len(SNRS)
        packet_events = [e for e in reg.events if e["kind"] == "packet"]
        assert len(packet_events) == 2  # seq 1 and 5 of 5

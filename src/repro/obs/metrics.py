"""Process-local counters and timers for experiment observability.

The simulator's hot paths (PHY encode/channel/decode, engine task
dispatch) record where time and retries go through a tiny metrics
registry.  Design constraints, in order:

* **Near-zero overhead.**  A counter increment is a dict lookup plus an
  integer add; a timer is two ``perf_counter`` calls.  The PHY chain is
  numpy-bound, so this is noise.
* **Process-local.**  Engine workers are separate processes; each one
  accumulates into its own registry and ships a plain-dict
  :meth:`MetricsRegistry.snapshot` back with the task result, which the
  engine merges (:meth:`MetricsRegistry.merge_snapshot`).  Nothing here
  is thread- or process-shared, so there are no locks.
* **Scoped collection.**  Instrumented code records into whatever
  registry is *active*.  By default that is one module-global registry;
  :func:`collect` pushes a fresh registry for the duration of a block so
  callers (the engine's per-task wrapper, tests) get an isolated view
  without touching the instrumentation sites.

Typical use::

    from repro import obs

    with obs.timed("phy.wifi.decode"):
        receiver.decode(...)
    obs.inc("phy.wifi.packets")

    with obs.collect() as reg:       # isolate one task's metrics
        run_task()
    snapshot = reg.snapshot()        # {"counters": ..., "timers": ...}
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["TimerStat", "MetricsRegistry", "registry", "global_registry",
           "collect", "timed", "inc", "observe"]


@dataclass
class TimerStat:
    """Aggregate of one named timer: count / total / min / max seconds."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = math.inf
    max_s: float = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        self.min_s = min(self.min_s, seconds)
        self.max_s = max(self.max_s, seconds)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def merge(self, other: "TimerStat") -> None:
        self.count += other.count
        self.total_s += other.total_s
        self.min_s = min(self.min_s, other.min_s)
        self.max_s = max(self.max_s, other.max_s)

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            # min is inf until the first observation; JSON needs a value.
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "TimerStat":
        stat = cls(count=int(data.get("count", 0)),
                   total_s=float(data.get("total_s", 0.0)),
                   max_s=float(data.get("max_s", 0.0)))
        stat.min_s = float(data.get("min_s", 0.0)) if stat.count else math.inf
        return stat


class MetricsRegistry:
    """A named bag of counters and timers."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._timers: Dict[str, TimerStat] = {}

    # -- recording --------------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + n

    def observe(self, name: str, seconds: float) -> None:
        stat = self._timers.get(name)
        if stat is None:
            stat = self._timers[name] = TimerStat()
        stat.observe(seconds)

    @contextmanager
    def timed(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # -- reading ----------------------------------------------------------

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def timer(self, name: str) -> Optional[TimerStat]:
        return self._timers.get(name)

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict view (JSON-serializable, picklable)."""
        return {
            "counters": dict(self._counters),
            "timers": {k: v.to_dict() for k, v in self._timers.items()},
        }

    # -- combining --------------------------------------------------------

    def merge_snapshot(self, snapshot: Optional[Dict[str, Any]]) -> None:
        """Fold another registry's :meth:`snapshot` into this one."""
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, int(value))
        for name, data in snapshot.get("timers", {}).items():
            stat = self._timers.get(name)
            if stat is None:
                self._timers[name] = TimerStat.from_dict(data)
            else:
                stat.merge(TimerStat.from_dict(data))

    def reset(self) -> None:
        self._counters.clear()
        self._timers.clear()


# -- the active-registry stack --------------------------------------------
# Bottom entry is the always-present global registry; ``collect`` pushes
# a scratch registry on top for the duration of a block.

_STACK: List[MetricsRegistry] = [MetricsRegistry()]


def registry() -> MetricsRegistry:
    """The registry instrumentation currently records into."""
    return _STACK[-1]


def global_registry() -> MetricsRegistry:
    """The process-wide default registry (bottom of the stack)."""
    return _STACK[0]


@contextmanager
def collect() -> Iterator[MetricsRegistry]:
    """Route all recording inside the block into a fresh registry."""
    reg = MetricsRegistry()
    _STACK.append(reg)
    try:
        yield reg
    finally:
        _STACK.remove(reg)


def timed(name: str) -> "_ActiveTimer":
    """Context manager timing a block into the active registry.

    The registry is resolved when the block *exits*, so a ``timed``
    entered just before a :func:`collect` block still records into the
    registry active at completion time.
    """
    return _ActiveTimer(name)


class _ActiveTimer:
    __slots__ = ("_name", "_start")

    _name: str
    _start: float

    def __init__(self, name: str) -> None:
        self._name = name

    def __enter__(self) -> "_ActiveTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        registry().observe(self._name, time.perf_counter() - self._start)


def inc(name: str, n: int = 1) -> None:
    """Increment a counter on the active registry."""
    registry().inc(name, n)


def observe(name: str, seconds: float) -> None:
    """Record one timer observation on the active registry."""
    registry().observe(name, seconds)

"""Figure 3: PDF of ambient packet durations on channel 6, and the
caption's claim that ~0.03 % of ambient packets forge a PLM bit."""

import numpy as np

from repro.net.traffic import AmbientTrafficModel
from repro.sim.results import format_table


def run_experiment(n_packets=300_000, seed=30):
    model = AmbientTrafficModel(rng=np.random.default_rng(seed))
    durations = model.sample_durations(n_packets)
    edges_ms = np.arange(0.0, 3.2, 0.2)
    hist, _ = np.histogram(durations / 1e3, bins=edges_ms)
    pdf = hist / n_packets
    forge = model.forge_probability(700.0, 1100.0, 25.0, n_probe=n_packets)
    short = float(np.mean(durations < 500))
    long = float(np.mean((durations >= 1500) & (durations <= 2700)))
    return edges_ms, pdf, forge, short, long


def test_fig3(once, emit):
    edges, pdf, forge, short, long = once(run_experiment)
    rows = [[f"{edges[i]:.1f}-{edges[i + 1]:.1f}", float(p)]
            for i, p in enumerate(pdf)]
    table = format_table(["duration (ms)", "PDF"], rows,
                         title="Figure 3: ambient packet-duration PDF "
                               "(30 M-packet lecture-hall model)")
    table += (f"\n<500us mass: {short:.3f} (paper ~0.78)   "
              f"1.5-2.7ms mass: {long:.3f} (paper ~0.18)"
              f"\nP(ambient forges a PLM bit, 25us bound): {100 * forge:.3f} %"
              f" (paper ~0.03 %)")
    emit("fig3_traffic", table)
    assert abs(short - 0.78) < 0.02
    assert abs(long - 0.18) < 0.02
    assert 0.0001 < forge < 0.0007
    # Bimodal: the quiet zone (0.6-1.4 ms) is nearly empty.
    quiet = sum(p for (lo, p) in zip(edges, pdf) if 0.6 <= lo < 1.4)
    assert quiet < 0.01

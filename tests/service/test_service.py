"""SweepService end-to-end: submit -> run -> fetch, dedup, crash recovery."""

import json

import pytest

from repro.service import ServiceError, SweepService, UnknownJobError
from repro.sim.engine import (
    FailurePolicy,
    FaultInjector,
    RunOptions,
    TaskFailure,
    execute_run,
    spec_fingerprint,
)
from repro.sim.spec import dump_spec


def points_json(result):
    """The deterministic payload of a result: spec + points, exact floats."""
    return json.dumps({"spec": result.spec.to_dict(),
                       "points": [p.__dict__ for p in result.points]},
                      sort_keys=True)


class TestSubmitRunFetch:
    def test_round_trip(self, tmp_path, link_spec):
        svc = SweepService(tmp_path / "svc")
        job = svc.submit(link_spec)
        assert job.state == "pending" and not job.cached
        assert svc.step()  # run it synchronously
        status = svc.status(job.job_id)
        assert status["state"] == "done"
        assert status["n_tasks"] == 2 and status["n_failed"] == 0
        assert status["packets_simulated"] == 4
        assert "stage_counts" in status
        result = svc.result(job.job_id)
        assert result.ok and len(result.points) == 2
        assert svc.counter("service.jobs.completed") == 1
        assert svc.counter("service.cache.stores") == 1
        # Engine metrics folded into the service registry.
        assert svc.counter("engine.tasks.ok") == 2

    def test_submit_accepts_envelope_dict(self, tmp_path, link_spec):
        svc = SweepService(tmp_path / "svc")
        job = svc.submit(dump_spec(link_spec))
        assert job.fingerprint == spec_fingerprint(link_spec)

    def test_submit_rejects_garbage(self, tmp_path):
        svc = SweepService(tmp_path / "svc")
        with pytest.raises(ValueError):
            svc.submit({"kind": "nope"})

    def test_result_before_done_raises(self, tmp_path, link_spec):
        svc = SweepService(tmp_path / "svc")
        job = svc.submit(link_spec)
        with pytest.raises(ServiceError, match="pending"):
            svc.result(job.job_id)
        with pytest.raises(UnknownJobError):
            svc.status("job-424242")

    def test_step_with_empty_queue(self, tmp_path):
        assert SweepService(tmp_path / "svc").step() is False

    def test_background_workers(self, tmp_path, link_spec):
        with SweepService(tmp_path / "svc") as svc:
            job = svc.submit(link_spec)
            done = svc.wait(job.job_id, timeout_s=60)
        assert done.state == "done"
        assert svc.result(job.job_id).ok


class TestDeduplication:
    def test_duplicate_submission_is_cache_hit_no_engine_tasks(
            self, tmp_path, link_spec):
        svc = SweepService(tmp_path / "svc")
        first = svc.submit(link_spec)
        assert svc.step()
        tasks_after_first = svc.counter("engine.tasks.ok")
        assert tasks_after_first == 2
        second = svc.submit(link_spec)
        # Answered at submission time: born done, flagged cached.
        assert second.state == "done" and second.cached
        assert second.job_id != first.job_id
        assert svc.counter("service.cache.hits") == 1
        # Zero new engine tasks ran for the duplicate.
        assert svc.counter("engine.tasks.ok") == tasks_after_first
        assert not svc.step()  # nothing left to run

    def test_duplicate_results_bit_identical(self, tmp_path, link_spec):
        svc = SweepService(tmp_path / "svc")
        first = svc.submit(link_spec)
        svc.step()
        second = svc.submit(link_spec)
        assert svc.raw_result(first.job_id) == svc.raw_result(second.job_id)

    def test_queued_duplicates_dedup_at_claim_time(self, tmp_path,
                                                   link_spec):
        # Both copies queued before either ran: the second becomes a
        # cache hit when claimed, without computing.
        svc = SweepService(tmp_path / "svc")
        a = svc.submit(link_spec)
        b = svc.submit(link_spec)
        assert b.state == "pending"  # store not populated yet
        assert svc.step() and svc.step()
        assert svc.counter("engine.tasks.ok") == 2  # one compute total
        assert svc.counter("service.cache.hits") == 1
        assert svc.status(b.job_id)["cached"]
        assert svc.raw_result(a.job_id) == svc.raw_result(b.job_id)

    def test_different_specs_do_not_collide(self, tmp_path, link_spec,
                                            other_link_spec):
        svc = SweepService(tmp_path / "svc")
        a = svc.submit(link_spec)
        b = svc.submit(other_link_spec)
        assert a.fingerprint != b.fingerprint
        svc.step()
        svc.step()
        assert svc.counter("service.cache.hits") == 0
        assert svc.counter("engine.tasks.ok") == 4

    def test_submit_record_marks_cache_hit(self, tmp_path, link_spec):
        svc = SweepService(tmp_path / "svc")
        first = svc.submit_record(dump_spec(link_spec))
        assert first["cache_hit"] is False and "warning" not in first
        svc.step()
        second = svc.submit_record(dump_spec(link_spec))
        assert second["cache_hit"] is True
        # No obs artifacts were requested, so no warning either.
        assert "warning" not in second

    def test_cache_hit_warns_about_unserved_obs_request(self, tmp_path,
                                                        link_spec):
        # Dedup keys on the spec fingerprint only: an obs section must
        # not fork the cache, but the hit must say what it can't serve.
        svc = SweepService(tmp_path / "svc")
        payload = dict(dump_spec(link_spec))
        payload["obs"] = {"trace": True, "metrics": True}
        first = svc.submit_record(payload)
        assert first["cache_hit"] is False and "warning" not in first
        svc.step()
        second = svc.submit_record(payload)
        assert second["cache_hit"] is True and second["cached"]
        assert "metrics, trace" in second["warning"]
        assert "not regenerated" in second["warning"]
        assert svc.counter("service.cache.obs_warnings") == 1
        # The obs section never reached the cache key: one compute.
        assert svc.counter("service.cache.hits") == 1


class TestFailures:
    def test_failed_run_marks_job_failed_and_caches_nothing(
            self, tmp_path, mac_spec):
        svc = SweepService(tmp_path / "svc")
        job = svc.submit(mac_spec)
        # Sabotage: poison the journaled envelope so the run cannot
        # even build a spec.
        record = svc.queue.get(job.job_id)
        record.envelope["spec"] = {"nonsense": True}
        assert svc.step()
        status = svc.status(job.job_id)
        assert status["state"] == "failed"
        assert "SpecFormatError" in status["error"]
        assert svc.counter("service.jobs.failed") == 1
        assert not svc.store.has(job.fingerprint)

    def test_degraded_run_not_cached(self, tmp_path, link_spec):
        svc = SweepService(tmp_path / "svc",
                           failure_policy=FailurePolicy(mode="degrade"))
        job = svc.submit(link_spec)
        # Degrade-mode run with an injected fault on every attempt of
        # task 0: the run completes but result.ok is False.
        claimed = svc.queue.claim_next()
        options = RunOptions(
            failure_policy=FailurePolicy(mode="degrade"),
            checkpoint=str(svc.checkpoint_path(claimed.fingerprint)))
        result = execute_run(link_spec, options,
                             fault_injector=FaultInjector(fail={0: 99}))
        assert not result.ok
        # The service-side contract: a not-ok result is never stored.
        svc.queue.set_state(claimed.job_id, "failed", error="degraded")
        assert not svc.store.has(job.fingerprint)
        with pytest.raises(ServiceError, match="failed"):
            svc.result(job.job_id)


class TestCrashRecovery:
    def test_kill_and_restart_resumes_and_matches_uninterrupted(
            self, tmp_path, link_spec):
        fingerprint = spec_fingerprint(link_spec)

        # Reference: an uninterrupted run in a separate service root.
        ref = SweepService(tmp_path / "ref")
        ref_job = ref.submit(link_spec)
        ref.step()
        ref_result = ref.result(ref_job.job_id)

        # Victim service: submit, claim, crash mid-job.
        svc1 = SweepService(tmp_path / "svc")
        job = svc1.submit(link_spec)
        claimed = svc1.queue.claim_next()
        assert claimed.job_id == job.job_id  # now journaled as running
        with pytest.raises(TaskFailure):
            # Task 0 completes (and is checkpointed); task 1 dies.
            execute_run(
                link_spec,
                RunOptions(checkpoint=str(svc1.checkpoint_path(fingerprint))),
                fault_injector=FaultInjector(fail={1: 99}))
        # svc1 is now "killed": no further state writes.
        del svc1

        # Restart over the same root: the job must be requeued...
        svc2 = SweepService(tmp_path / "svc")
        assert svc2.counter("service.jobs.recovered") == 1
        assert svc2.queue.get(job.job_id).state == "pending"
        # ...and run to completion, resuming the checkpointed point.
        assert svc2.step()
        status = svc2.status(job.job_id)
        assert status["state"] == "done"
        result = svc2.result(job.job_id)
        resumed = [t for t in result.tasks if t.resumed]
        assert [t.index for t in resumed] == [0]
        # The recovered result is bit-identical to the uninterrupted
        # run: same points, exact float equality, via canonical JSON.
        assert points_json(result) == points_json(ref_result)
        # And engine work was saved: only the un-checkpointed task ran.
        assert svc2.counter("engine.tasks.ok") == 1
        assert svc2.counter("engine.tasks.resumed") == 1

    def test_pending_jobs_survive_restart(self, tmp_path, link_spec,
                                          other_link_spec):
        svc1 = SweepService(tmp_path / "svc")
        a = svc1.submit(link_spec)
        b = svc1.submit(other_link_spec)
        del svc1  # killed before any worker ran

        svc2 = SweepService(tmp_path / "svc")
        assert svc2.counter("service.jobs.recovered") == 0  # none running
        assert [j["job_id"] for j in svc2.jobs()] == [a.job_id, b.job_id]
        assert svc2.step() and svc2.step()
        assert svc2.status(a.job_id)["state"] == "done"
        assert svc2.status(b.job_id)["state"] == "done"


class TestMetricsEndpointData:
    def test_snapshot_includes_queue_gauges_and_job_timer(
            self, tmp_path, link_spec, other_link_spec):
        svc = SweepService(tmp_path / "svc")
        svc.submit(link_spec)
        svc.submit(other_link_spec)
        svc.step()
        snap = svc.metrics_snapshot()
        assert snap["gauges"]["service.queue.done"] == 1.0
        assert snap["gauges"]["service.queue.pending"] == 1.0
        assert snap["gauges"]["service.queue.depth"] == 1.0
        assert snap["gauges"]["service.jobs.running"] == 0.0
        assert snap["counters"]["service.jobs.submitted"] == 2
        assert snap["timers"]["service.job"]["count"] == 1
        assert snap["histograms"]["service.job.seconds"]["count"] == 1
        text = svc.metrics_text()
        assert "repro_service_jobs_submitted_total 2" in text
        assert "repro_service_queue_pending" in text

    def test_job_age_gauge_tracks_oldest_active(self, tmp_path, link_spec):
        svc = SweepService(tmp_path / "svc")
        assert svc.metrics_snapshot()["gauges"][
            "service.job.age_seconds"] == 0.0
        svc.submit(link_spec)
        assert svc.metrics_snapshot()["gauges"][
            "service.job.age_seconds"] >= 0.0
        svc.step()
        # Settled: nothing active, age falls back to zero.
        assert svc.metrics_snapshot()["gauges"][
            "service.job.age_seconds"] == 0.0

    def test_exposition_passes_the_strict_parser(self, tmp_path, link_spec):
        from repro.obs import parse_prometheus_text

        svc = SweepService(tmp_path / "svc")
        svc.submit(link_spec)
        svc.step()
        svc.submit(link_spec)  # cache hit
        exposition = parse_prometheus_text(svc.metrics_text())
        assert exposition.value("repro_service_cache_hits_total") == 1.0
        assert exposition.value("repro_service_queue_done") == 2.0
        hist = exposition.histogram("repro_engine_task_seconds")
        assert hist.count == 2  # two distances in link_spec
        assert sum(hist.counts) == hist.count


class TestProgressEvents:
    def test_events_stream_with_cursor(self, tmp_path, link_spec):
        svc = SweepService(tmp_path / "svc")
        job = svc.submit(link_spec)
        before = svc.events(job.job_id)
        assert before["state"] == "pending" and before["events"] == []
        assert before["cursor"] == 0
        svc.step()
        page = svc.events(job.job_id)
        kinds = [r["kind"] for r in page["events"]]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        assert kinds.count("task") == 2
        assert page["state"] == "done"
        assert page["cursor"] == page["events"][-1]["seq"]
        # Resuming from the final cursor yields nothing new.
        resumed = svc.events(job.job_id, cursor=page["cursor"])
        assert resumed["events"] == []
        assert resumed["cursor"] == page["cursor"]

    def test_stale_cursor_is_safe(self, tmp_path, link_spec):
        svc = SweepService(tmp_path / "svc")
        job = svc.submit(link_spec)
        svc.step()
        page = svc.events(job.job_id, cursor=10_000)
        assert page["events"] == [] and page["cursor"] == 10_000

    def test_unknown_job_raises(self, tmp_path):
        svc = SweepService(tmp_path / "svc")
        with pytest.raises(UnknownJobError):
            svc.events("job-424242")

    def test_cached_job_has_no_stream(self, tmp_path, link_spec):
        svc = SweepService(tmp_path / "svc")
        first = svc.submit(link_spec)
        svc.step()
        dup = svc.submit(link_spec)
        page = svc.events(dup.job_id)
        assert page["cached"] is True and page["events"] == []
        assert svc.events(first.job_id)["events"]  # the original ran

    def test_progress_artifacts_live_outside_results(self, tmp_path,
                                                     link_spec):
        # The journal is keyed by job id under progress/, never inside
        # the content-addressed result store — so the dedup path cannot
        # serve (or hash) progress telemetry.
        svc = SweepService(tmp_path / "svc")
        job = svc.submit(link_spec)
        svc.step()
        assert svc.progress_path(job.job_id).exists()
        results_dir = tmp_path / "svc" / "results"
        assert not list(results_dir.glob("**/*progress*"))
        raw_before = svc.raw_result(job.job_id)
        dup = svc.submit(link_spec)
        assert svc.raw_result(dup.job_id) == raw_before

"""reprolint unit tests: per-rule fixtures, suppressions, CLI contract.

Each rule has one deliberately violating and one clean fixture under
``tests/tools/fixtures/`` (kept out of normal lint walks — the linter
skips directories named ``fixtures`` — but checked here by explicit
path, which is also how the non-zero exit code is exercised).
"""

import json

import pytest

from repro.tools.lint import (
    RULES,
    iter_python_files,
    lint_paths,
    lint_source,
    main,
)

from tests.tools.test_tree_is_clean import FIXTURES

ALL_RULES = sorted(RULES)


def _rule_ids(findings):
    return {f.rule_id for f in findings}


def _lint_fixture(name):
    path = FIXTURES / name
    source = path.read_text()
    # Scoped rules (R008) only fire under certain trees; a fixture can
    # opt in by declaring the path it should be linted as.
    lint_path = path.as_posix()
    first = source.splitlines()[0] if source else ""
    if first.startswith("# lint-as:"):
        lint_path = first.split(":", 1)[1].strip()
    return lint_source(source, lint_path)


class TestFixtureCorpus:
    @pytest.mark.parametrize("rule_id", ALL_RULES)
    def test_violating_fixture_is_flagged(self, rule_id):
        findings = _lint_fixture(f"{rule_id.lower()}_bad.py")
        unsuppressed = [f for f in findings if not f.suppressed]
        assert rule_id in _rule_ids(unsuppressed), \
            f"{rule_id} fixture produced {unsuppressed}"

    @pytest.mark.parametrize("rule_id", ALL_RULES)
    def test_clean_fixture_is_clean(self, rule_id):
        # Suppressed findings are fine in ok-fixtures: r012_ok.py shows
        # a justified live suppression, which silences R003 without
        # tripping suppression hygiene.
        findings = [f for f in _lint_fixture(f"{rule_id.lower()}_ok.py")
                    if not f.suppressed]
        assert findings == [], [f.format() for f in findings]

    @pytest.mark.parametrize("rule_id", ALL_RULES)
    def test_fixture_pair_exists(self, rule_id):
        assert (FIXTURES / f"{rule_id.lower()}_bad.py").is_file()
        assert (FIXTURES / f"{rule_id.lower()}_ok.py").is_file()


class TestRuleEdgeCases:
    def test_seeded_default_rng_allowed(self):
        assert lint_source("import numpy as np\n"
                           "rng = np.random.default_rng(42)\n") == []

    def test_seedless_default_rng_flagged(self):
        findings = lint_source("import numpy as np\n"
                               "rng = np.random.default_rng()\n")
        assert _rule_ids(findings) == {"R001"}

    def test_seed_sequence_plumbing_allowed(self):
        src = ("import numpy as np\n"
               "children = np.random.SeedSequence(7).spawn(3)\n")
        assert lint_source(src) == []

    def test_numpy_alias_resolved(self):
        findings = lint_source("import numpy\n"
                               "x = numpy.random.normal(0, 1)\n")
        assert _rule_ids(findings) == {"R001"}

    def test_from_import_random_flagged(self):
        findings = lint_source("from random import randint\n"
                               "x = randint(0, 1)\n")
        assert _rule_ids(findings) == {"R001"}

    def test_unrelated_random_attribute_not_flagged(self):
        # No ``import random``: the name is not the stdlib module.
        assert lint_source("x = obj.random.shuffle()\n") == []

    def test_perf_counter_allowed(self):
        assert lint_source("import time\nt = time.perf_counter()\n") == []

    def test_perf_counter_flagged_in_repro_modules(self):
        # R008 is scoped: raw monotonic reads are fine in scripts and
        # benchmarks, flagged inside repro/ (except the allowlist).
        src = "import time\nt = time.perf_counter()\n"
        assert _rule_ids(lint_source(src, "src/repro/sim/linksim.py")) \
            == {"R008"}
        assert lint_source(src, "src/repro/obs/metrics.py") == []
        assert lint_source(src, "src/repro/sim/engine.py") == []
        assert lint_source(src, "benchmarks/bench_engine.py") == []

    def test_from_import_datetime_now_flagged(self):
        findings = lint_source("from datetime import datetime\n"
                               "stamp = datetime.now()\n")
        assert _rule_ids(findings) == {"R002"}

    def test_wall_clock_allowlisted_in_obs(self):
        src = "import time\nstamp = time.time()\n"
        assert lint_source(src, "src/repro/obs/metrics.py") == []
        assert _rule_ids(lint_source(src, "src/repro/sim/linksim.py")) \
            == {"R002"}

    def test_rng_allowlisted_in_utils_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert lint_source(src, "src/repro/utils/rng.py") == []

    def test_float_literal_in_assert_exempt(self):
        assert lint_source("assert compute() == 0.25\n") == []

    def test_nan_compare_flagged_even_in_assert(self):
        findings = lint_source("import math\n"
                               "assert compute() == math.nan\n")
        assert _rule_ids(findings) == {"R003"}

    def test_int_literal_equality_allowed(self):
        assert lint_source("ok = count == 0\n") == []

    def test_method_style_aggregation_on_series_flagged(self):
        findings = lint_source("m = series.y.mean()\n")
        assert _rule_ids(findings) == {"R004"}

    def test_nan_safe_wrapper_allowed(self):
        src = ("import numpy as np\n"
               "m = np.mean(np.nan_to_num(series.y))\n")
        assert lint_source(src) == []

    def test_narrow_except_allowed(self):
        src = ("try:\n    work()\n"
               "except ValueError:\n    pass\n")
        assert lint_source(src) == []

    def test_broad_except_in_tuple_flagged(self):
        src = ("try:\n    work()\n"
               "except (ValueError, Exception):\n    pass\n")
        assert _rule_ids(lint_source(src)) == {"R006"}

    def test_submit_with_function_allowed(self):
        assert lint_source("fut = pool.submit(work, 1)\n") == []

    def test_spec_lambda_keyword_flagged(self):
        findings = lint_source(
            "spec = ExperimentSpec(seed=1, build=lambda: 2)\n")
        assert _rule_ids(findings) == {"R007"}


class TestSuppression:
    # Suppressions carry a why-clause (R012 suppression hygiene flags
    # them otherwise).

    def test_line_suppression(self):
        src = "x = value == 0.5  # reprolint: disable=R003 - exact oracle\n"
        findings = lint_source(src)
        assert len(findings) == 1 and findings[0].suppressed

    def test_suppress_all(self):
        src = "x = value == 0.5  # reprolint: disable=all - test fixture\n"
        findings = lint_source(src)
        assert findings and all(f.suppressed for f in findings)

    def test_wrong_rule_id_does_not_suppress(self):
        src = "x = value == 0.5  # reprolint: disable=R001 - wrong id\n"
        findings = lint_source(src)
        by_rule = {f.rule_id: f for f in findings}
        assert not by_rule["R003"].suppressed
        # ... and the mismatched id is itself flagged as stale.
        assert "R012" in by_rule

    def test_multi_rule_suppression(self):
        src = ("def f(a=[], b=x == 0.5):"
               "  # reprolint: disable=R005,R003 - covers both\n"
               "    return a\n")
        findings = lint_source(src)
        assert findings and all(f.suppressed for f in findings)

    def test_unsuppressed_line_unaffected(self):
        src = ("a = x == 0.5  # reprolint: disable=R003 - exact oracle\n"
               "b = y == 0.5\n")
        findings = lint_source(src)
        assert [f.suppressed for f in findings] == [True, False]

    def test_missing_why_is_flagged(self):
        src = "x = value == 0.5  # reprolint: disable=R003\n"
        findings = lint_source(src)
        assert "R012" in _rule_ids(findings)

    def test_why_on_previous_comment_line(self):
        src = ("# The checkpoint oracle is bit-exact on purpose.\n"
               "x = value == 0.5  # reprolint: disable=R003\n")
        findings = lint_source(src)
        assert "R012" not in _rule_ids(findings)

    def test_stale_suppression_is_flagged(self):
        src = "x = 1  # reprolint: disable=R003 - nothing here\n"
        findings = lint_source(src)
        assert _rule_ids(findings) == {"R012"}

    def test_r012_cannot_be_suppressed(self):
        src = "x = 1  # reprolint: disable=R012,all - self-vouching\n"
        findings = lint_source(src)
        assert any(f.rule_id == "R012" and not f.suppressed
                   for f in findings)


class TestDriver:
    def test_fixture_dirs_skipped_in_walks(self):
        files = list(iter_python_files([str(FIXTURES.parent.parent)]))
        assert files, "walk found no test files"
        assert not any("fixtures" in f.parts for f in files)

    def test_explicit_fixture_path_checked(self):
        bad = FIXTURES / "r001_bad.py"
        report = lint_paths([str(bad)])
        assert report.n_files == 1
        assert "R001" in _rule_ids(report.findings)

    def test_exit_code_nonzero_on_violations(self, capsys):
        assert main(["--no-cache", str(FIXTURES / "r001_bad.py")]) == 1
        out = capsys.readouterr().out
        assert "R001" in out and "finding" in out

    def test_exit_code_zero_on_clean(self, capsys):
        assert main(["--no-cache", str(FIXTURES / "r001_ok.py")]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_exit_code_two_on_missing_path(self, capsys):
        assert main(["no/such/path.py"]) == 2

    def test_exit_code_two_on_syntax_error(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        assert main(["--no-cache", str(broken)]) == 2
        assert "syntax error" in capsys.readouterr().err

    def test_json_output(self, capsys):
        assert main(["--no-cache", "--format", "json",
                     str(FIXTURES / "r003_bad.py")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files"] == 1
        assert any(f["rule"] == "R003" for f in payload["findings"])
        assert all(not f["suppressed"] for f in payload["findings"])

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ALL_RULES:
            assert rule_id in out

    def test_show_suppressed(self, tmp_path, capsys):
        f = tmp_path / "s.py"
        f.write_text("x = v == 0.5"
                     "  # reprolint: disable=R003 - exact oracle\n")
        assert main(["--no-cache", str(f)]) == 0
        assert "(suppressed)" not in capsys.readouterr().out
        assert main(["--no-cache", "--show-suppressed", str(f)]) == 0
        assert "(suppressed)" in capsys.readouterr().out

    def test_rule_catalogue_is_contiguous(self):
        assert ALL_RULES == [f"R{n:03d}" for n in range(1, len(RULES) + 1)]

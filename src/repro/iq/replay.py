"""Deterministic replay of a frozen IQ corpus.

Every capture is decoded through :meth:`decode_iq` twice — the scalar
receiver path and the batched (stacked-kernel) path — and each decode
is diffed against the sidecar's frozen ``expect`` block on four axes:
the forensics **stage** (read back from the ``phy.<radio>.stage.*``
counter the decode incremented, so the accounting itself is under
test), the delivered flag, the bits-sent count, and the bit-error
count.  The session's RNG state is also checked before/after every
decode: ``decode_iq`` makes no draws, so a corpus replay that moves a
generator is itself a regression.

The report is JSON-serializable for the CI artifact
(``repro corpus replay --report``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.core.registry import create_session
from repro.core.session import Excitation
from repro.iq.corpus import observed_stage
from repro.iq.format import IQCapture, iter_captures
from repro.utils.bits import as_bits

__all__ = ["ReplayDiff", "ReplayReport", "replay_corpus"]

MODES: Tuple[str, ...] = ("scalar", "batched")


@dataclass
class ReplayDiff:
    """One frozen-vs-replayed disagreement."""

    name: str
    mode: str
    field: str
    expected: Any
    actual: Any

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "mode": self.mode, "field": self.field,
                "expected": self.expected, "actual": self.actual}


@dataclass
class ReplayReport:
    """Outcome of one full-corpus replay."""

    entries: int = 0
    decodes: int = 0
    diffs: List[ReplayDiff] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diffs

    def to_dict(self) -> Dict[str, Any]:
        return {"entries": self.entries, "decodes": self.decodes,
                "ok": self.ok,
                "diffs": [d.to_dict() for d in self.diffs]}


def _session_for(capture: IQCapture, cache: Dict[Any, Any]) -> Any:
    key = (capture.radio,
           tuple(sorted(capture.meta["session"].items())))
    session = cache.get(key)
    if session is None:
        session = create_session(capture.radio, seed=0,
                                 **capture.meta["session"])
        cache[key] = session
    return session


def _excitation_for(capture: IQCapture, session: Any) -> Excitation:
    payload = bytes.fromhex(capture.meta["payload_hex"])
    seed = capture.meta.get("scrambler_seed")
    if seed is None:
        return session.excitation_from_payload(payload)
    return session.excitation_from_payload(payload,
                                           scrambler_seed=int(seed))


def replay_corpus(directory: Path,
                  modes: Tuple[str, ...] = MODES,
                  session_cache: Optional[Dict[Any, Any]] = None
                  ) -> ReplayReport:
    """Replay every capture under *directory*; returns the diff report.

    Format errors (unreadable pairs, stale fingerprints) propagate as
    :class:`repro.iq.format.IQFormatError` — a broken corpus is a
    different failure class than a decode regression and maps to a
    different CLI exit code.
    """
    report = ReplayReport()
    cache: Dict[Any, Any] = (session_cache if session_cache is not None
                             else {})
    for capture in iter_captures(Path(directory)):
        report.entries += 1
        obs.inc("iq.replay.entries")
        session = _session_for(capture, cache)
        exc = _excitation_for(capture, session)
        bits = as_bits(capture.meta["tag_bits"])
        expect = capture.expect
        for mode in modes:
            rng_before = session._rng.bit_generator.state
            with obs.collect() as reg:
                result = session.decode_iq(
                    capture.samples, exc, bits,
                    noise_var=float(capture.meta["noise_var"]),
                    snr_db=float(capture.meta["snr_db"]),
                    batched=(mode == "batched"))
            prefix, stage = observed_stage(reg)
            actual: Dict[str, Any] = {
                "stage": stage,
                "delivered": bool(result.delivered),
                "bits_sent": int(result.tag_bits_sent),
                "bit_errors": int(result.tag_bit_errors),
            }
            report.decodes += 1
            for key in ("stage", "delivered", "bits_sent", "bit_errors"):
                if actual[key] != expect[key]:
                    report.diffs.append(ReplayDiff(
                        capture.name, mode, key, expect[key], actual[key]))
            if reg.counter(f"{prefix}.packets") != 1:
                report.diffs.append(ReplayDiff(
                    capture.name, mode, "packets_counter", 1,
                    reg.counter(f"{prefix}.packets")))
            if prefix != capture.meta["obs_prefix"]:
                report.diffs.append(ReplayDiff(
                    capture.name, mode, "obs_prefix",
                    capture.meta["obs_prefix"], prefix))
            if session._rng.bit_generator.state != rng_before:
                report.diffs.append(ReplayDiff(
                    capture.name, mode, "rng_state", "unchanged",
                    "perturbed"))
    obs.inc("iq.replay.diffs", len(report.diffs))
    return report

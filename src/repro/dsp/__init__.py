"""Shared signal-processing primitives (pulse shaping, mixing, metrics)."""

from repro.dsp.filters import gaussian_taps, half_sine_pulse, rrc_taps, moving_average
from repro.dsp.mixing import (
    frequency_shift,
    phase_offset,
    time_delay,
    square_wave,
    square_wave_mix,
    SQUARE_WAVE_FUNDAMENTAL_LOSS_DB,
)
from repro.dsp.measure import (
    signal_power,
    power_dbm,
    dbm_to_watts,
    watts_to_dbm,
    bit_error_rate,
    evm,
    papr_db,
)

__all__ = [
    "gaussian_taps",
    "half_sine_pulse",
    "rrc_taps",
    "moving_average",
    "frequency_shift",
    "phase_offset",
    "time_delay",
    "square_wave",
    "square_wave_mix",
    "SQUARE_WAVE_FUNDAMENTAL_LOSS_DB",
    "signal_power",
    "power_dbm",
    "dbm_to_watts",
    "watts_to_dbm",
    "bit_error_rate",
    "evm",
    "papr_db",
]

"""The versioned spec envelope (repro.sim.spec).

One wire format for every boundary a spec crosses: HTTP submission
bodies, checkpoint journal headers, and the CLI's ``--spec-json``.
These tests pin the envelope schema, the legacy bare-dict fallback
(with its deprecation warning), and the typed errors malformed
payloads must raise.
"""

import json
import warnings

import pytest

from repro.channel.geometry import Deployment
from repro.sim.config import config_by_name
from repro.sim.engine import (
    ExperimentSpec,
    MacExperimentSpec,
    spec_fingerprint,
)
from repro.sim.spec import (
    SPEC_VERSION,
    SpecFormatError,
    dump_spec,
    dumps_spec,
    load_spec,
    loads_spec,
    spec_kind,
)


def link_spec() -> ExperimentSpec:
    return ExperimentSpec(config=config_by_name("wifi"),
                          deployment=Deployment.los(1.0),
                          distances_m=(1.0, 5.0),
                          packets_per_point=2, seed=7)


def mac_spec() -> MacExperimentSpec:
    return MacExperimentSpec(tag_counts=(4, 8), measured_rounds=12,
                             simulated_rounds=20, seed=1)


class TestEnvelope:
    def test_link_round_trip(self):
        env = dump_spec(link_spec())
        assert env["kind"] == "link"
        assert env["version"] == SPEC_VERSION
        loaded = load_spec(env)
        assert loaded == link_spec()
        assert spec_fingerprint(loaded) == spec_fingerprint(link_spec())

    def test_mac_round_trip(self):
        env = dump_spec(mac_spec())
        assert env["kind"] == "mac"
        assert load_spec(env) == mac_spec()

    def test_string_round_trip(self):
        text = dumps_spec(link_spec())
        assert json.loads(text)["kind"] == "link"
        assert loads_spec(text) == link_spec()

    def test_envelope_is_json_clean(self):
        # The envelope must survive a strict JSON round trip untouched.
        env = dump_spec(mac_spec())
        assert json.loads(json.dumps(env, allow_nan=False)) == env

    def test_spec_kind(self):
        assert spec_kind(link_spec()) == "link"
        assert spec_kind(mac_spec()) == "mac"
        with pytest.raises(SpecFormatError):
            spec_kind(object())  # type: ignore[arg-type]

    def test_enveloped_load_emits_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            load_spec(dump_spec(link_spec()))


class TestLegacyBareDicts:
    def test_bare_link_dict_loads_with_deprecation_warning(self):
        bare = link_spec().to_dict()
        with pytest.warns(DeprecationWarning, match="dump_spec"):
            assert load_spec(bare) == link_spec()

    def test_bare_mac_dict_loads_with_deprecation_warning(self):
        bare = mac_spec().to_dict()
        with pytest.warns(DeprecationWarning):
            assert load_spec(bare) == mac_spec()

    def test_warn_legacy_false_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert load_spec(link_spec().to_dict(),
                             warn_legacy=False) == link_spec()

    def test_very_old_dict_without_kind_tag(self):
        # Pre-"kind" payloads are recognized by their distinguishing
        # field.
        bare = link_spec().to_dict()
        bare.pop("kind", None)
        with pytest.warns(DeprecationWarning):
            assert load_spec(bare) == link_spec()


class TestMalformedPayloads:
    def test_non_mapping_rejected(self):
        with pytest.raises(SpecFormatError, match="JSON object"):
            load_spec([1, 2, 3])  # type: ignore[arg-type]

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecFormatError, match="kind"):
            load_spec({"kind": "quantum", "version": 1, "spec": {}})

    def test_missing_version_rejected(self):
        env = dump_spec(link_spec())
        del env["version"]
        with pytest.raises(SpecFormatError, match="version"):
            load_spec(env)

    def test_bool_version_rejected(self):
        env = dump_spec(link_spec())
        env["version"] = True  # json has no int/bool confusion; we do
        with pytest.raises(SpecFormatError, match="version"):
            load_spec(env)

    def test_future_version_rejected(self):
        env = dump_spec(link_spec())
        env["version"] = SPEC_VERSION + 1
        with pytest.raises(SpecFormatError, match="unsupported"):
            load_spec(env)

    def test_non_object_body_rejected(self):
        env = dump_spec(link_spec())
        env["spec"] = "not a dict"
        with pytest.raises(SpecFormatError, match="'spec'"):
            load_spec(env)

    def test_bad_body_wrapped_as_format_error(self):
        env = dump_spec(link_spec())
        env["spec"] = {"nonsense": 1}
        with pytest.raises(SpecFormatError, match="ExperimentSpec"):
            load_spec(env)

    def test_invalid_json_text_rejected(self):
        with pytest.raises(SpecFormatError, match="not valid JSON"):
            loads_spec("{nope")

    def test_format_error_is_value_error(self):
        # HTTP handlers map ValueError -> 400; keep that contract.
        assert issubclass(SpecFormatError, ValueError)


class TestCheckpointHeaderUsesEnvelope:
    def test_journal_header_is_enveloped(self, tmp_path):
        from repro.sim.engine import CheckpointJournal

        spec = link_spec()
        journal = CheckpointJournal(tmp_path / "ck.jsonl", spec)
        journal.ensure_header()
        first = json.loads(
            (tmp_path / "ck.jsonl").read_text().splitlines()[0])
        assert first["kind"] == "header"
        assert first["spec"] == spec_fingerprint(spec)
        assert load_spec(first["envelope"]) == spec

    def test_header_envelopes_recovers_specs(self, tmp_path):
        from repro.sim.engine import CheckpointJournal

        spec = link_spec()
        journal = CheckpointJournal(tmp_path / "ck.jsonl", spec)
        journal.ensure_header()
        mapping = CheckpointJournal.header_envelopes(tmp_path / "ck.jsonl")
        assert list(mapping) == [spec_fingerprint(spec)]
        assert load_spec(mapping[spec_fingerprint(spec)]) == spec

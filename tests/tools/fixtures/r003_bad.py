"""R003 violations: exact float comparisons."""

import math


def literal_compare(x):
    return x == 0.5


def literal_ne(y):
    return y != 1.25


def nan_compare(z):
    return z == math.nan


def ber_compare(point, other):
    return point.ber == other.ber

"""Distance-sweep link simulator: the engine behind Figures 10-14.

For each receiver distance the simulator:

1. computes the two-hop link budget's RSSI, adds per-packet log-normal
   fading, and converts to the AWGN SNR seen by the backscatter
   receiver;
2. runs the *actual PHY chain* end-to-end (excitation transmitter ->
   tag -> noise -> commodity receiver -> XOR decoder) for a batch of
   packets;
3. reports throughput (tag goodput over airtime + inter-packet gap),
   conditional tag BER, delivery ratio, and mean RSSI — the three
   panels of each evaluation figure.

Sweeps can fan out over processes: ``sweep(distances, n_jobs=4)``
routes through :mod:`repro.sim.engine`, whose per-point seed spawning
makes the result identical for any worker count (and different from
the legacy serial stream, which threads one generator through every
point in order).
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.channel.geometry import Deployment
from repro.core.registry import session_from_config
from repro.sim.config import RadioConfig
from repro.utils.rng import derive_seed, make_rng

__all__ = ["LinkPoint", "LinkSimulator"]

# Fallback upper bound on waveforms held in stacked form at once during
# cross-point batching: bounds peak memory and keeps the elementwise
# channel math cache-resident (large stacks go memory-bound and lose to
# the scalar loop) without changing any result — chunk boundaries only
# regroup exact elementwise arithmetic.  Sessions carry their own tuned
# ``_chunk_packets`` which takes precedence.
_CHUNK_PACKETS = 16


@dataclass
class LinkPoint:
    """Aggregate link metrics at one receiver distance.

    ``ber`` is *conditional* on delivery: when no packet survives at a
    distance there is no measurement, so ``ber`` is NaN and
    ``ber_valid`` is False — distinct from a genuinely measured BER of
    1.0 on delivered packets.
    """

    distance_m: float
    throughput_kbps: float
    ber: float
    rssi_dbm: float
    delivery_ratio: float
    snr_db: float
    ber_valid: bool = True

    def __eq__(self, other) -> bool:
        # Field-wise equality, except that two NaN BERs (the no-data
        # sentinel) compare equal — identical runs must compare equal.
        if not isinstance(other, LinkPoint):
            return NotImplemented
        # Exact compare is deliberate: checkpoint resume relies on
        # bit-identical points, so no tolerance is acceptable here.
        ber_eq = (self.ber == other.ber  # reprolint: disable=R003
                  or (math.isnan(self.ber) and math.isnan(other.ber)))
        return ber_eq and all(
            getattr(self, f) == getattr(other, f)
            for f in ("distance_m", "throughput_kbps", "rssi_dbm",
                      "delivery_ratio", "snr_db", "ber_valid"))

    def row(self) -> str:
        """One formatted results-table row."""
        if not self.ber_valid:
            ber = "n/a".rjust(7)
        elif self.ber > 0:
            ber = f"{self.ber:.1e}"
        else:
            ber = "<1e-4  "
        return (f"{self.distance_m:7.1f}  {self.throughput_kbps:9.1f}  "
                f"{ber}  {self.rssi_dbm:8.1f}  {self.delivery_ratio:6.2f}")


@dataclass
class _PendingPoint:
    """One distance point between phase 1 (all RNG consumed) and the
    batched channel/decode/aggregate phases."""

    distance_m: float
    mean_rssi: float
    noise_dbm: float
    rssis: List[float]
    draws: List[Any] = field(default_factory=list)
    results: List[Any] = field(default_factory=list)


class LinkSimulator:
    """Sweeps receiver distance for one radio configuration.

    Parameters
    ----------
    config:
        Calibrated radio configuration.
    deployment:
        Geometry template; its receiver distance is replaced per point.
    packets_per_point:
        Excitation packets simulated per distance.
    seed:
        Master seed for reproducibility.
    batch:
        Decode each point's packets through the session's batched
        receiver kernels (:meth:`~repro.core.session._BatchPacketMixin.
        run_packets`) instead of one at a time — and, for serial
        sweeps, stack packets *across* distance points.  Bit-identical
        to the scalar loop — all randomness is drawn in the same order —
        and several times faster.  A session without the two-phase batch
        API falls back to the scalar loop and counts the
        ``phy.batch.fallback`` metric (surfaced by ``repro report``).
    """

    def __init__(self, config: RadioConfig, deployment: Deployment,
                 packets_per_point: int = 20,
                 seed: Optional[int] = None,
                 batch: bool = True):
        self.config = config
        self.deployment = deployment
        self.packets_per_point = packets_per_point
        self.batch = batch
        self._seed = seed if isinstance(seed, (int, np.integer)) else None
        self._rng = make_rng(seed)
        self.session = session_from_config(config, seed=self._rng)
        self.budget = config.budget()

    def simulate_point(self, distance_m: float, *,
                       rng: Optional[np.random.Generator] = None,
                       share_excitation: bool = False) -> LinkPoint:
        """Run one distance point.

        Parameters
        ----------
        rng:
            Generator for every draw at this point.  Defaults to the
            simulator's own stream (the legacy serial behaviour); the
            experiment engine passes a per-point spawned generator so
            points are independent of execution order.
        share_excitation:
            Draw one excitation frame and reuse it for all packets at
            this point instead of rebuilding the waveform per packet.
            Statistically equivalent (tag bits, fading, sync and noise
            still vary per packet) and much faster.
        """
        with obs.span("sim.point", distance_m=float(distance_m),
                      packets=self.packets_per_point):
            return self._simulate_point(distance_m, rng=rng,
                                        share_excitation=share_excitation)

    def _simulate_point(self, distance_m: float, *,
                        rng: Optional[np.random.Generator],
                        share_excitation: bool) -> LinkPoint:
        gen = self._rng if rng is None else make_rng(rng)
        pending = self._point_phase1(distance_m, gen, share_excitation)
        if pending.draws:
            self.session.channel_packets(pending.draws)
            pending.results = list(self.session.finish_packets(pending.draws))
        return self._point_finish(pending)

    def _point_phase1(self, distance_m: float, gen: np.random.Generator,
                      share_excitation: bool) -> "_PendingPoint":
        """Phase 1 of one distance point: link budget, then per packet
        the fading draw interleaved with the session's own draws,
        exactly as the scalar loop orders them.

        On the batch path the returned draws still await their channel
        (``session.channel_packets``) and decode; on the scalar
        fallback ``results`` is already complete and ``draws`` empty.
        """
        dep = self.deployment.with_rx_distance(distance_m)
        mean_rssi = self.budget.rssi_dbm(dep)
        incident = self.budget.tag_incident_dbm(dep)
        noise = self.budget.noise_dbm
        # The session adds AWGN across its full oversampled band; scale
        # so the *in-channel* noise matches the budget, and charge the
        # configured real-chip implementation loss.
        snr_penalty = (10 * np.log10(self.session.oversample_factor)
                       + self.config.implementation_loss_db)

        excitation = (self.session.make_excitation(gen)
                      if share_excitation else None)
        use_batch = self.batch and hasattr(self.session, "predraw_packet")
        if self.batch and not use_batch:
            # Batch requested but this session has no two-phase API —
            # count the silent scalar fallback so `repro report` can
            # surface it instead of quietly losing the speedup.
            obs.inc("phy.batch.fallback")
        rssis: List[float] = []
        draws: List[Any] = []
        results: List[Any] = []
        for _ in range(self.packets_per_point):
            rssi = mean_rssi + gen.normal(0, self.config.fading_sigma_db)
            rssis.append(rssi)
            snr = rssi - noise - snr_penalty
            if use_batch:
                draws.append(self.session.predraw_packet(
                    snr_db=snr, incident_power_dbm=incident,
                    rng=gen, excitation=excitation))
            else:
                results.append(self.session.run_packet(
                    snr_db=snr, incident_power_dbm=incident,
                    rng=gen, excitation=excitation))
        return _PendingPoint(distance_m=distance_m, mean_rssi=mean_rssi,
                             noise_dbm=noise, rssis=rssis, draws=draws,
                             results=results)

    def _point_finish(self, pending: "_PendingPoint") -> LinkPoint:
        bits_ok = 0
        airtime_us = 0.0
        errors = 0
        bits_delivered = 0
        delivered = 0
        # Aggregate in packet order so float sums match the scalar loop.
        for res in pending.results:
            airtime_us += res.duration_us + self.config.interpacket_gap_us
            if res.delivered:
                delivered += 1
                bits_ok += res.tag_bits_ok
                bits_delivered += res.tag_bits_sent
                errors += res.tag_bit_errors

        throughput_kbps = bits_ok / airtime_us * 1e3 if airtime_us else 0.0
        ber = errors / bits_delivered if bits_delivered else math.nan
        return LinkPoint(
            distance_m=pending.distance_m,
            throughput_kbps=throughput_kbps,
            ber=ber,
            rssi_dbm=float(np.mean(pending.rssis)),
            delivery_ratio=delivered / self.packets_per_point,
            snr_db=pending.mean_rssi - pending.noise_dbm,
            ber_valid=bits_delivered > 0,
        )

    def simulate_points(self, distances_m: Sequence[float], *,
                        rngs: Optional[Sequence[np.random.Generator]] = None,
                        share_excitation: bool = False,
                        registries: Optional[Sequence[Any]] = None
                        ) -> List[LinkPoint]:
        """Cross-point batched ``[simulate_point(d) for d in ...]``.

        Phase 1 runs per point in order (each point's RNG draws are
        identical to the per-point loop), then the channel and decode
        are stacked *across* points in chunks of up to the session's
        ``_chunk_packets`` — so a whole sweep amortises the
        vectorised receiver kernels even when each point only carries a
        handful of packets.  Bit-identical to the per-point loop.

        Parameters
        ----------
        rngs:
            One generator per point (the engine's per-task streams);
            default is the simulator's own serial stream for every
            point, matching serial ``sweep``.
        registries:
            Optional one :class:`~repro.obs.MetricsRegistry` per point;
            each point's counters and stage records are routed to its
            registry (the cross-point channel/decode timers stay on the
            ambient registry).  Used by the engine to keep per-task
            forensics exact while sharing the stacked kernels.
        """
        session = self.session
        if not hasattr(session, "predraw_packet"):
            raise TypeError("session has no two-phase batch API; use "
                            "simulate_point per point instead")
        pendings: List[_PendingPoint] = []
        buffered: List[Any] = []           # (point idx, packet idx, draw)
        chunk = int(getattr(session, "_chunk_packets", _CHUNK_PACKETS))

        def point_scope(idx: int):
            return (obs.collect_into(registries[idx])
                    if registries is not None else nullcontext())

        def flush() -> None:
            draws = [d for (_, _, d) in buffered]
            session.channel_packets(draws)
            decodes = session.decode_packets(draws)
            k = 0
            while k < len(buffered):
                pi = buffered[k][0]
                j = k
                while j < len(buffered) and buffered[j][0] == pi:
                    j += 1
                with point_scope(pi):
                    for (_, di, d), dec in zip(buffered[k:j],
                                               decodes[k:j]):
                        pendings[pi].results[di] = \
                            session.finish_packet(d, dec)
                        d.noisy = None
                k = j
            buffered.clear()

        for idx, dist in enumerate(distances_m):
            gen = self._rng if rngs is None else make_rng(rngs[idx])
            with point_scope(idx):
                pending = self._point_phase1(float(dist), gen,
                                             share_excitation)
            if pending.draws:
                pending.results = [None] * len(pending.draws)
                for di, d in enumerate(pending.draws):
                    if d.result is not None:
                        pending.results[di] = d.result
                    else:
                        buffered.append((idx, di, d))
            pendings.append(pending)
            if len(buffered) >= chunk:
                flush()
        if buffered:
            flush()
        return [self._point_finish(p) for p in pendings]

    def _spec_seed(self) -> int:
        """Integer master seed for the engine path (minted lazily when
        the simulator was seeded with a generator or not at all).

        Derived from the instance generator's *state* without drawing
        from it, so minting a spec never perturbs the serial stream:
        ``sweep()`` results are identical whether ``spec()`` was called
        before or after any serial method.
        """
        if self._seed is None:
            self._seed = derive_seed(self._rng)
        return int(self._seed)

    def spec(self, distances_m: Sequence[float]):
        """The :class:`~repro.sim.engine.ExperimentSpec` equivalent of
        ``sweep(distances_m, n_jobs=...)``."""
        from repro.sim.engine import ExperimentSpec

        return ExperimentSpec(config=self.config,
                              deployment=self.deployment,
                              distances_m=tuple(distances_m),
                              packets_per_point=self.packets_per_point,
                              seed=self._spec_seed())

    def sweep(self, distances_m: Iterable[float],
              n_jobs: Optional[int] = None, *,
              failure_policy=None, checkpoint=None) -> List[LinkPoint]:
        """Run a full distance sweep.

        With ``n_jobs=None`` (default) the sweep runs serially through
        the simulator's own generator, preserving the historical result
        stream.  Any integer ``n_jobs`` — including 1 — routes through
        the parallel engine with per-point seeds, so ``n_jobs=1`` and
        ``n_jobs=8`` agree point-for-point.

        *failure_policy* and *checkpoint* are forwarded to
        :class:`~repro.sim.engine.ExperimentEngine` (supplying either
        implies the engine path, with ``n_jobs=1`` if unset): a
        checkpointed sweep journals completed points to a JSONL file
        and resumes bit-identically after an interruption.
        """
        distances = list(distances_m)
        if n_jobs is None and failure_policy is None and checkpoint is None:
            if (self.batch and len(distances) > 1
                    and hasattr(self.session, "predraw_packet")
                    and not obs.tracing_active()):
                # Serial cross-point batching: same generator stream,
                # same results, one stacked kernel pass per chunk.  With
                # tracing active keep the per-point loop so each
                # ``sim.point`` span encloses its own decode work.
                return self.simulate_points(distances)
            return [self.simulate_point(d) for d in distances]

        from repro.sim.engine import ExperimentEngine

        engine = ExperimentEngine(n_jobs=1 if n_jobs is None else n_jobs,
                                  failure_policy=failure_policy)
        return engine.run(self.spec(distances), checkpoint=checkpoint).points

    def max_range_m(self, distances_m: Sequence[float],
                    min_delivery: float = 0.05) -> float:
        """Largest swept distance that still delivers packets."""
        best = 0.0
        for point in self.sweep(distances_m):
            if point.delivery_ratio >= min_delivery:
                best = max(best, point.distance_m)
        return best

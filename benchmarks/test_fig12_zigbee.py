"""Figure 12: ZigBee LOS deployment — throughput/BER/RSSI vs distance.

Paper anchors: ~14 kb/s inside 12 m, ~12 kb/s still at 20 m, link ends
near 22 m where RSSI approaches the CC2650's noise floor; tag BER is
noticeably higher than WiFi's (~5e-2) because the phase-flipped PN
codeword sits far from every valid codeword (reduced decision margin).
"""

from repro.channel.geometry import Deployment
from repro.sim.config import ZIGBEE_CONFIG
from repro.sim.linksim import LinkSimulator
from repro.sim.results import format_table

DISTANCES = (1, 4, 8, 12, 16, 20, 22, 26)


def run_experiment(packets_per_point=12, seed=120, n_jobs=None):
    sim = LinkSimulator(ZIGBEE_CONFIG, Deployment.los(1.0),
                        packets_per_point=packets_per_point, seed=seed)
    return sim.sweep(DISTANCES, n_jobs=n_jobs)


def test_fig12_zigbee(once, emit, engine_jobs):
    points = once(run_experiment, n_jobs=engine_jobs)
    rows = [[p.distance_m, p.throughput_kbps, p.ber, p.rssi_dbm,
             p.delivery_ratio] for p in points]
    table = format_table(
        ["distance (m)", "throughput (kb/s)", "tag BER", "RSSI (dBm)",
         "delivery"], rows,
        title="Figure 12: ZigBee LOS backscatter vs distance "
              "(5 dBm 802.15.4 exciter, tag 1 m away)")
    from repro.sim.charts import ascii_chart
    from repro.sim.results import Series
    curve = Series("throughput", x_label="distance (m)",
                   y_label="kb/s")
    for p in points:
        curve.append(p.distance_m, p.throughput_kbps)
    table += "\n\n" + ascii_chart(curve, title="ZigBee LOS throughput vs distance")
    emit("fig12_zigbee", table)

    by_d = {p.distance_m: p for p in points}
    # (a) ~14 kb/s inside 12 m.
    assert 11.0 < by_d[4].throughput_kbps < 16.0
    assert by_d[12].throughput_kbps > 9.0
    # Link fading out past 22 m (our cliff is softer than the paper's
    # hard 22 m stop; see EXPERIMENTS.md).
    assert by_d[26].delivery_ratio < 0.75
    assert by_d[26].throughput_kbps < 0.7 * by_d[4].throughput_kbps
    # (c) RSSI approaches the noise region at the edge.
    assert by_d[22].rssi_dbm < -92.0

"""Tests for STF-based packet detection (unaligned decoding)."""

import numpy as np
import pytest

from repro.channel.awgn import awgn
from repro.phy.wifi import WifiReceiver, WifiTransmitter


def noisy_gap(n, rng, sigma=0.05):
    return sigma * (rng.normal(size=n) + 1j * rng.normal(size=n))


class TestDetectStart:
    @pytest.mark.parametrize("gap", [0, 37, 500, 1911])
    def test_exact_alignment(self, rng, gap):
        tx = WifiTransmitter(6.0, seed=1)
        frame = tx.build(tx.random_psdu(60))
        sig = np.concatenate([noisy_gap(gap, rng), frame.samples])
        sig = awgn(sig, 0.003, rng)
        assert WifiReceiver().detect_start(sig) == gap

    def test_noise_only_returns_none(self, rng):
        sig = noisy_gap(4000, rng)
        assert WifiReceiver().detect_start(sig) is None

    def test_too_short_input(self, rng):
        assert WifiReceiver().detect_start(noisy_gap(50, rng)) is None

    def test_detection_survives_moderate_noise(self, rng):
        tx = WifiTransmitter(6.0, seed=2)
        frame = tx.build(tx.random_psdu(60))
        sig = np.concatenate([noisy_gap(300, rng), frame.samples])
        sig = awgn(sig, 0.1, rng)  # ~10 dB SNR
        start = WifiReceiver().detect_start(sig)
        assert start is not None
        assert abs(start - 300) <= 2

    def test_search_limit_respected(self, rng):
        tx = WifiTransmitter(6.0, seed=3)
        frame = tx.build(tx.random_psdu(60))
        sig = np.concatenate([noisy_gap(1000, rng), frame.samples])
        assert WifiReceiver().detect_start(sig, search_limit=500) is None


class TestDecodeUnaligned:
    def test_full_decode_after_detection(self, rng):
        tx = WifiTransmitter(12.0, seed=4)
        psdu = tx.random_psdu(150)
        frame = tx.build(psdu)
        sig = np.concatenate([noisy_gap(444, rng), frame.samples,
                              noisy_gap(200, rng)])
        sig = awgn(sig, 0.01, rng)
        res = WifiReceiver().decode_unaligned(sig)
        assert res.header_ok and res.psdu == psdu

    def test_noise_only_fails_cleanly(self, rng):
        res = WifiReceiver().decode_unaligned(noisy_gap(3000, rng))
        assert not res.header_ok

    def test_backscattered_frame_detected(self, rng):
        """The tag's phase modulation does not break STF detection —
        the preamble passes through untranslated."""
        from repro.core.translation import PhaseTranslator
        from repro.tag.tag import ExcitationInfo, FreeRiderTag

        tx = WifiTransmitter(6.0, seed=5)
        frame = tx.build(tx.random_psdu(100))
        info = ExcitationInfo(20e6, 80, frame.data_start + 80,
                              frame.n_samples)
        tag = FreeRiderTag(PhaseTranslator(2), repetition=4)
        out = tag.backscatter(frame.samples, info,
                              rng.integers(0, 2, tag.capacity_bits(info)))
        sig = np.concatenate([noisy_gap(250, rng), out.samples])
        sig = awgn(sig, 0.01, rng)
        assert WifiReceiver().detect_start(sig) == 250
